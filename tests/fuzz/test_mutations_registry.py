"""Tests for the mutation-strategy registry and base contracts."""

import numpy as np
import pytest

from repro.errors import MutationError
from repro.fuzz.mutations import (
    MutationStrategy,
    create_strategy,
    get_strategy_class,
    register_strategy,
    strategy_names,
)
from repro.fuzz.mutations.noise import GaussianNoise


class TestRegistry:
    def test_paper_strategies_registered(self):
        names = strategy_names()
        for expected in ("gauss", "rand", "row_rand", "col_rand", "row_col_rand", "shift"):
            assert expected in names

    def test_domain_filter(self):
        assert "gauss" in strategy_names("image")
        assert "gauss" not in strategy_names("text")
        assert "char_sub" in strategy_names("text")

    def test_create_by_name(self):
        strat = create_strategy("gauss", sigma=1.0)
        assert isinstance(strat, GaussianNoise)
        assert strat.sigma == 1.0

    def test_unknown_name_raises(self):
        with pytest.raises(MutationError, match="unknown"):
            create_strategy("nonexistent")

    def test_get_strategy_class(self):
        assert get_strategy_class("gauss") is GaussianNoise

    def test_duplicate_registration_rejected(self):
        with pytest.raises(MutationError, match="already registered"):

            @register_strategy
            class Duplicate(MutationStrategy):
                name = "gauss"

                def mutate(self, item, n, *, rng=None):
                    return item

    def test_empty_name_rejected(self):
        with pytest.raises(MutationError, match="non-empty"):

            @register_strategy
            class Nameless(MutationStrategy):
                def mutate(self, item, n, *, rng=None):
                    return item


class TestBaseContract:
    def test_params_reflect_configuration(self):
        strat = GaussianNoise(sigma=3.5)
        assert strat.params() == {"sigma": 3.5}

    def test_repr_includes_params(self):
        assert "sigma=3.5" in repr(GaussianNoise(sigma=3.5))
