"""Tests for the fuzzing-domain abstraction layer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fuzz import (
    HDTest,
    ImageConstraint,
    NullConstraint,
    RecordConstraint,
    TextConstraint,
)
from repro.fuzz.domains import (
    FuzzDomain,
    ImageDomain,
    RecordDomain,
    TextDomain,
    create_domain,
    domain_names,
    get_domain_class,
    infer_domain,
    resolve_domain,
)
from repro.fuzz.mutations import create_strategy


class TestRegistry:
    def test_names_include_aliases(self):
        names = domain_names()
        assert {"image", "text", "record", "voice"} <= set(names)
        assert set(domain_names(include_aliases=False)) == {"image", "text", "record"}

    def test_voice_aliases_record(self):
        assert get_domain_class("voice") is RecordDomain
        assert isinstance(create_domain("voice"), RecordDomain)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fuzzing domain"):
            create_domain("audio")

    def test_create_each(self):
        assert isinstance(create_domain("image"), ImageDomain)
        assert isinstance(create_domain("text"), TextDomain)
        assert isinstance(create_domain("record"), RecordDomain)

    def test_default_strategies_registered(self):
        for name in ("image", "text", "record"):
            domain = create_domain(name)
            assert domain.default_strategy in domain.strategy_names()


class TestInference:
    def test_infer_by_input_shape(self):
        assert infer_domain("hello").name == "text"
        assert infer_domain(np.zeros((4, 4))).name == "image"
        assert infer_domain(np.zeros(4)).name == "record"

    def test_unmatchable_input_rejected(self):
        with pytest.raises(ConfigurationError, match="no registered domain"):
            infer_domain(42)

    def test_resolve_from_strategy(self):
        assert resolve_domain(None, strategy=create_strategy("char_sub")).name == "text"
        assert resolve_domain(None, strategy=create_strategy("gauss")).name == "image"
        assert resolve_domain(None, strategy=create_strategy("record_rand")).name == "record"

    def test_resolve_passthrough_and_errors(self):
        domain = TextDomain()
        assert resolve_domain(domain) is domain
        with pytest.raises(ConfigurationError):
            resolve_domain(None)
        with pytest.raises(ConfigurationError):
            resolve_domain(3.14)


class TestImageDomain:
    def test_to_internal_validates(self):
        domain = ImageDomain()
        out = domain.to_internal(np.zeros((3, 3), dtype=np.uint8))
        assert out.dtype == np.float64
        with pytest.raises(ConfigurationError, match="array"):
            domain.to_internal("not an image")
        with pytest.raises(ConfigurationError, match="2-D"):
            domain.to_internal(np.zeros(5))

    def test_stack_requires_one_shape(self):
        domain = ImageDomain()
        with pytest.raises(ConfigurationError, match="shape"):
            domain.stack([np.zeros((3, 3)), np.zeros((2, 2))])

    def test_default_constraints(self):
        domain = ImageDomain()
        assert isinstance(domain.default_constraint(create_strategy("gauss")), ImageConstraint)
        assert isinstance(domain.default_constraint(create_strategy("shift")), NullConstraint)


class TestRecordDomain:
    def test_round_trip(self):
        domain = RecordDomain()
        rec = np.array([0.25, 0.5, 0.75])
        np.testing.assert_array_equal(domain.to_internal(rec), rec)
        out = domain.to_external(rec)
        assert out is not rec

    def test_default_constraints(self):
        domain = RecordDomain(value_range=(0.0, 2.0))
        constraint = domain.default_constraint(create_strategy("record_gauss"))
        assert isinstance(constraint, RecordConstraint)
        assert constraint.value_range == (0.0, 2.0)
        assert isinstance(
            domain.default_constraint(create_strategy("record_shift")), NullConstraint
        )

    def test_rejects_non_records(self):
        with pytest.raises(ConfigurationError):
            RecordDomain().to_internal(np.zeros((2, 2)))
        with pytest.raises(ConfigurationError):
            RecordDomain().to_internal("text")


class TestTextDomain:
    def test_round_trip(self):
        domain = TextDomain("abc ")
        codes = domain.to_internal("a cab")
        assert codes.dtype == np.uint8
        assert domain.to_external(codes) == "a cab"

    def test_codes_pass_through(self):
        domain = TextDomain("abc")
        codes = np.array([0, 1, 2], dtype=np.int64)
        out = domain.to_internal(codes)
        assert out.dtype == np.uint8
        assert domain.to_external(out) == "abc"

    def test_out_of_alphabet_policies(self):
        with pytest.raises(ConfigurationError, match="not in the fuzzing alphabet"):
            TextDomain("abc").to_internal("abz")
        mapped = TextDomain("abc", unknown_policy="map").to_internal("abz")
        assert TextDomain("abc").to_external(mapped) == "abc"

    def test_stack_requires_equal_lengths(self):
        domain = TextDomain("abc")
        stacked = domain.stack(["abc", "cba"])
        assert stacked.shape == (2, 3)
        with pytest.raises(ConfigurationError, match="length"):
            domain.stack(["abc", "ab"])

    def test_invalid_constructions(self):
        with pytest.raises(ConfigurationError):
            TextDomain("")
        with pytest.raises(ConfigurationError):
            TextDomain("aa")
        with pytest.raises(ConfigurationError):
            TextDomain("abc", unknown_policy="skip")

    def test_empty_string_rejected(self):
        with pytest.raises(ConfigurationError):
            TextDomain("abc").to_internal("")

    def test_default_constraint(self):
        assert isinstance(
            TextDomain().default_constraint(create_strategy("char_sub")), TextConstraint
        )

    def test_for_model_reads_encoder(self):
        from repro.hdc.encoders.ngram import NgramEncoder

        class FakeModel:
            encoder = NgramEncoder(alphabet="xyz ", rng=0, unknown_policy="map")

        domain = TextDomain.for_model(FakeModel())
        assert domain.alphabet == "xyz "
        assert domain.unknown_policy == "map"
        # skip cannot be represented length-preservingly -> raise policy.
        class SkipModel:
            encoder = NgramEncoder(alphabet="xyz ", rng=0, unknown_policy="skip")

        assert TextDomain.for_model(SkipModel()).unknown_policy == "raise"


class TestEngineIntegration:
    def test_engine_exposes_domain(self, trained_model):
        fuzzer = HDTest(trained_model, "gauss", rng=0)
        assert isinstance(fuzzer.domain, FuzzDomain)
        assert fuzzer.domain.name == "image"

    def test_explicit_domain_instance(self, trained_model):
        domain = ImageDomain()
        fuzzer = HDTest(trained_model, "gauss", domain=domain, rng=0)
        assert fuzzer.domain is domain

    def test_delta_encoder_gating(self, trained_model):
        # The pixel encoder supports the full delta surface...
        assert ImageDomain().delta_encoder(trained_model) is trained_model.encoder

        # ...an encoder missing any part of the API falls back to scratch.
        class NoDelta:
            encoder = object()

        assert ImageDomain().delta_encoder(NoDelta()) is None


class TestReviewRegressions:
    """Fixes from the PR 3 review pass."""

    def test_negative_codes_rejected(self):
        # uint8 casting must not wrap negative codes to valid symbols.
        with pytest.raises(ConfigurationError, match="codes must lie"):
            TextDomain("abc").to_internal(np.array([-1, 0, 1], dtype=np.int64))

    def test_strategy_alphabet_mismatch_rejected_at_construction(self):
        from repro.datasets import make_language_dataset
        from repro.hdc import HDCClassifier, NgramEncoder

        data = make_language_dataset(
            n_per_class=8, n_languages=2, length=20, alphabet="abcd", seed=0
        )
        model = HDCClassifier(
            NgramEncoder(n=3, alphabet="abcd", dimension=256, rng=0), 2
        ).fit(list(data.texts), data.labels)
        # Default char_sub carries the 27-symbol alphabet -> caught early,
        # not as an EncodingError mid-campaign.
        with pytest.raises(ConfigurationError, match="alphabet"):
            HDTest(model, "char_sub", rng=0)
        # Matching the encoder's alphabet works end to end.
        fuzzer = HDTest(
            model, create_strategy("char_sub", alphabet="abcd"), rng=0
        )
        outcome = fuzzer.fuzz_one(data.texts[0])
        assert outcome.reference_label in (0, 1)

    def test_sample_seed_keeps_class_structure(self):
        from repro.datasets import make_language_dataset, make_voice_dataset

        base = make_language_dataset(n_per_class=4, n_languages=2, length=30, seed=9)
        fresh = make_language_dataset(
            n_per_class=4, n_languages=2, length=30, seed=9, sample_seed=10
        )
        assert fresh.texts != base.texts  # new samples...
        assert fresh.language_names == base.language_names
        # ...but an n-gram model trained on the base corpus still
        # classifies the fresh draw perfectly: same languages.
        from repro.hdc import HDCClassifier, NgramEncoder

        model = HDCClassifier(NgramEncoder(n=3, dimension=1024, rng=9), 2).fit(
            list(base.texts), base.labels
        )
        assert model.score(list(fresh.texts), fresh.labels) == 1.0

        voice_base = make_voice_dataset(n_per_class=3, n_classes=2, seed=9)
        voice_fresh = make_voice_dataset(
            n_per_class=3, n_classes=2, seed=9, sample_seed=10
        )
        assert not np.array_equal(voice_fresh.records, voice_base.records)
