"""Integration tests for the HDTest loop (Alg. 1)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotTrainedError
from repro.fuzz.constraints import ImageConstraint, NullConstraint, TextConstraint
from repro.fuzz.fitness import RandomFitness
from repro.fuzz.fuzzer import HDTest, HDTestConfig
from repro.fuzz.mutations.noise import GaussianNoise
from repro.fuzz.oracle import TargetedOracle
from repro.hdc import HDCClassifier, PixelEncoder


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = HDTestConfig()
        assert cfg.top_n == 3  # "In our experiments, N = 3"
        assert cfg.guided is True

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            HDTestConfig(iter_times=0)
        with pytest.raises(ConfigurationError):
            HDTestConfig(top_n=0)
        with pytest.raises(ConfigurationError):
            HDTestConfig(children_per_seed=0)


class TestConstruction:
    def test_untrained_model_rejected(self):
        model = HDCClassifier(PixelEncoder(dimension=256, rng=0), 10)
        with pytest.raises(NotTrainedError):
            HDTest(model, "gauss")

    def test_non_model_rejected(self):
        with pytest.raises(ConfigurationError):
            HDTest(object(), "gauss")  # type: ignore[arg-type]

    def test_strategy_by_name(self, trained_model):
        fuzzer = HDTest(trained_model, "gauss", rng=0)
        assert fuzzer.strategy.name == "gauss"

    def test_strategy_by_instance(self, trained_model):
        strat = GaussianNoise(sigma=1.0)
        assert HDTest(trained_model, strat, rng=0).strategy is strat

    def test_invalid_strategy_type(self, trained_model):
        with pytest.raises(ConfigurationError):
            HDTest(trained_model, 42)  # type: ignore[arg-type]

    def test_shift_defaults_to_null_constraint(self, trained_model):
        fuzzer = HDTest(trained_model, "shift", rng=0)
        assert isinstance(fuzzer.constraint, NullConstraint)

    def test_noise_defaults_to_image_constraint(self, trained_model):
        fuzzer = HDTest(trained_model, "gauss", rng=0)
        assert isinstance(fuzzer.constraint, ImageConstraint)

    def test_text_strategy_gets_text_default_constraint(self, trained_model):
        # The domain layer supplies defaults for every modality — the old
        # "no default constraint for domain" error path is gone.
        fuzzer = HDTest(trained_model, "char_sub", rng=0)
        assert isinstance(fuzzer.constraint, TextConstraint)
        assert fuzzer.domain.name == "text"

    def test_domain_strategy_mismatch_rejected(self, trained_model):
        with pytest.raises(ConfigurationError, match="domain"):
            HDTest(trained_model, "gauss", domain="text", rng=0)


class TestFuzzOne:
    def test_success_outcome_structure(self, trained_model, test_images):
        fuzzer = HDTest(trained_model, "gauss", rng=0)
        outcome = fuzzer.fuzz_one(test_images[0])
        assert outcome.success
        ex = outcome.example
        assert ex.reference_label != ex.adversarial_label
        assert ex.iterations == outcome.iterations >= 1
        assert ex.strategy == "gauss"

    def test_adversarial_actually_flips_model(self, trained_model, test_images):
        fuzzer = HDTest(trained_model, "gauss", rng=1)
        outcome = fuzzer.fuzz_one(test_images[1])
        assert outcome.success
        ex = outcome.example
        assert trained_model.predict_one(ex.adversarial) == ex.adversarial_label
        assert trained_model.predict_one(ex.original) == ex.reference_label

    def test_constraint_respected(self, trained_model, test_images):
        budget = 0.5
        fuzzer = HDTest(
            trained_model, "gauss",
            constraint=ImageConstraint(max_l2=budget), rng=2,
        )
        outcome = fuzzer.fuzz_one(test_images[2])
        if outcome.success:
            assert outcome.example.metrics["l2"] <= budget + 1e-9

    def test_original_image_not_mutated(self, trained_model, test_images):
        img = test_images[3].copy()
        HDTest(trained_model, "gauss", rng=3).fuzz_one(img)
        np.testing.assert_array_equal(img, test_images[3])

    def test_iteration_budget_respected(self, trained_model, test_images):
        cfg = HDTestConfig(iter_times=2)
        # Impossibly tight budget: nothing survives, so no success.
        fuzzer = HDTest(
            trained_model, "gauss",
            config=cfg, constraint=ImageConstraint(max_l2=1e-9), rng=4,
        )
        outcome = fuzzer.fuzz_one(test_images[0])
        assert not outcome.success
        assert outcome.iterations == 2

    def test_reproducible_with_seed(self, trained_model, test_images):
        a = HDTest(trained_model, "gauss", rng=42).fuzz_one(test_images[4])
        b = HDTest(trained_model, "gauss", rng=42).fuzz_one(test_images[4])
        assert a.success == b.success
        if a.success:
            np.testing.assert_array_equal(a.example.adversarial, b.example.adversarial)

    def test_dedupe_does_not_change_results(self, trained_model, test_images):
        on = HDTest(
            trained_model, "shift", config=HDTestConfig(dedupe=True), rng=5
        ).fuzz_one(test_images[5])
        off = HDTest(
            trained_model, "shift", config=HDTestConfig(dedupe=False), rng=5
        ).fuzz_one(test_images[5])
        assert on.success == off.success
        assert on.iterations == off.iterations
        if on.success:
            np.testing.assert_array_equal(on.example.adversarial, off.example.adversarial)

    def test_unguided_mode_runs(self, trained_model, test_images):
        cfg = HDTestConfig(guided=False)
        fuzzer = HDTest(trained_model, "gauss", config=cfg, rng=6)
        assert isinstance(fuzzer._fitness, RandomFitness)
        outcome = fuzzer.fuzz_one(test_images[6])
        assert outcome.iterations >= 1

    def test_targeted_oracle(self, trained_model, test_images):
        ref = trained_model.predict_one(test_images[7])
        target = (ref + 1) % 10
        fuzzer = HDTest(
            trained_model, "gauss",
            oracle=TargetedOracle(target), config=HDTestConfig(iter_times=15), rng=7,
        )
        outcome = fuzzer.fuzz_one(test_images[7])
        if outcome.success:
            assert outcome.example.adversarial_label == target


class TestFuzzBatch:
    def test_campaign_structure(self, trained_model, test_images):
        result = HDTest(trained_model, "gauss", rng=8).fuzz(test_images[:5])
        assert result.n_inputs == 5
        assert result.strategy == "gauss"
        assert result.elapsed_seconds > 0
        assert result.guided is True

    def test_gauss_mostly_succeeds(self, trained_model, test_images):
        result = HDTest(trained_model, "gauss", rng=9).fuzz(test_images[:10])
        assert result.success_rate >= 0.8

    def test_picks_least_perturbed_flip(self, trained_model, test_images):
        # With many children per iteration the chosen example should be
        # the smallest-L2 among the flips of the winning iteration; we
        # can at least assert the recorded metrics match the images.
        result = HDTest(trained_model, "gauss", rng=10).fuzz(test_images[:3])
        for ex in result.examples:
            from repro.metrics.distances import normalized_l2

            assert ex.metrics["l2"] == pytest.approx(
                normalized_l2(ex.original, ex.adversarial)
            )
