"""Tests for hypervector-space coverage tracking and guided fitness."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DimensionMismatchError
from repro.fuzz.coverage import CoverageGuidedFitness, CoverageMap
from repro.fuzz.fitness import DistanceGuidedFitness
from repro.hdc.spaces import BipolarSpace

DIM = 1024
SPACE = BipolarSpace(DIM)


class TestCoverageMap:
    def test_initially_empty(self):
        cov = CoverageMap(DIM, n_bits=12, rng=0)
        assert cov.n_cells_visited == 0
        assert cov.total_cells == 2**12
        assert cov.coverage_fraction() == 0.0

    def test_observe_marks_new_cells(self):
        cov = CoverageMap(DIM, n_bits=16, rng=0)
        batch = SPACE.random(5, rng=1)
        novel = cov.observe(batch)
        # 5 random HVs at 16 bits collide with negligible probability.
        assert novel.all()
        assert cov.n_cells_visited == 5

    def test_repeat_observation_not_novel(self):
        cov = CoverageMap(DIM, n_bits=16, rng=0)
        hv = SPACE.random(rng=2)
        assert cov.observe(hv[None])[0]
        assert not cov.observe(hv[None])[0]

    def test_duplicates_within_batch_count_once(self):
        cov = CoverageMap(DIM, n_bits=16, rng=0)
        hv = SPACE.random(rng=3)
        novel = cov.observe(np.stack([hv, hv]))
        assert novel.tolist() == [True, False]

    def test_signatures_deterministic(self):
        batch = SPACE.random(4, rng=4)
        a = CoverageMap(DIM, n_bits=16, rng=9).signatures(batch)
        b = CoverageMap(DIM, n_bits=16, rng=9).signatures(batch)
        np.testing.assert_array_equal(a, b)

    def test_similar_hvs_share_cells_more_than_random(self):
        # SimHash is locality sensitive: a few bit flips should often
        # keep the signature; an independent HV should not.
        cov = CoverageMap(DIM, n_bits=8, rng=5)
        base = SPACE.random(rng=6)
        near = base.copy()
        near[:10] = -near[:10]
        far = SPACE.random(rng=7)
        same_near = sum(
            int(cov.signatures(base[None])[0] == cov.signatures(near[None])[0])
            for _ in range(1)
        )
        # Deterministic single check: near likely equal, far likely not.
        sig_base = int(cov.signatures(base[None])[0])
        assert int(cov.signatures(near[None])[0]) == sig_base
        assert int(cov.signatures(far[None])[0]) != sig_base

    def test_is_covered(self):
        cov = CoverageMap(DIM, n_bits=16, rng=0)
        hv = SPACE.random(rng=8)
        assert not cov.is_covered(hv[None])[0]
        cov.observe(hv[None])
        assert cov.is_covered(hv[None])[0]

    def test_reset(self):
        cov = CoverageMap(DIM, n_bits=16, rng=0)
        cov.observe(SPACE.random(3, rng=9))
        cov.reset()
        assert cov.n_cells_visited == 0

    def test_dimension_mismatch(self):
        cov = CoverageMap(DIM, rng=0)
        with pytest.raises(DimensionMismatchError):
            cov.signatures(np.ones((1, DIM + 1)))

    def test_too_many_bits_rejected(self):
        with pytest.raises(ConfigurationError):
            CoverageMap(DIM, n_bits=64)


class TestCoverageGuidedFitness:
    def test_zero_bonus_matches_distance_fitness(self):
        cov = CoverageMap(DIM, n_bits=16, rng=0)
        fitness = CoverageGuidedFitness(cov, novelty_bonus=0.0)
        ref = SPACE.random(rng=0)
        queries = SPACE.random(4, rng=1)
        expected = DistanceGuidedFitness().scores(ref, queries)
        np.testing.assert_allclose(fitness.scores(ref, queries), expected)

    def test_novelty_bonus_applied_once(self):
        cov = CoverageMap(DIM, n_bits=16, rng=0)
        fitness = CoverageGuidedFitness(cov, novelty_bonus=1.0)
        ref = SPACE.random(rng=2)
        query = SPACE.random(rng=3)[None]
        first = fitness.scores(ref, query)[0]
        second = fitness.scores(ref, query)[0]
        assert first == pytest.approx(second + 1.0)

    def test_guided_flag(self):
        cov = CoverageMap(DIM, rng=0)
        assert CoverageGuidedFitness(cov).guided is True

    def test_negative_bonus_rejected(self):
        with pytest.raises(ConfigurationError):
            CoverageGuidedFitness(CoverageMap(DIM, rng=0), novelty_bonus=-0.1)

    def test_integrates_with_fuzzer(self, trained_model, test_images):
        from repro.fuzz import HDTest, HDTestConfig

        cov = CoverageMap(trained_model.dimension, n_bits=16, rng=0)
        fuzzer = HDTest(
            trained_model,
            "gauss",
            config=HDTestConfig(iter_times=20),
            fitness=CoverageGuidedFitness(cov),
            rng=4,
        )
        result = fuzzer.fuzz(test_images[:3])
        assert result.n_inputs == 3
        assert cov.n_cells_visited > 0
