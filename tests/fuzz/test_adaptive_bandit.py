"""Thompson bandit: validation, convergence, and draw-count invariance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fuzz.adaptive import ThompsonBandit


class TestValidation:
    def test_needs_arms(self):
        with pytest.raises(ConfigurationError):
            ThompsonBandit([])

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            ThompsonBandit(["gauss", "gauss"])

    def test_rejects_bad_prior(self):
        with pytest.raises(ConfigurationError):
            ThompsonBandit(["gauss"], prior=(0.0, 1.0))

    def test_rejects_unknown_arm(self):
        bandit = ThompsonBandit(["gauss"])
        with pytest.raises(ConfigurationError):
            bandit.update("shift", successes=1, trials=2)

    def test_rejects_successes_over_trials(self):
        bandit = ThompsonBandit(["gauss"])
        with pytest.raises(ConfigurationError):
            bandit.update("gauss", successes=3, trials=2)


class TestPosterior:
    def test_posterior_mean_tracks_evidence(self):
        bandit = ThompsonBandit(["a", "b"])
        bandit.update("a", successes=9, trials=10)
        bandit.update("b", successes=1, trials=10)
        assert bandit.posterior_mean("a") == pytest.approx(10 / 12)
        assert bandit.posterior_mean("b") == pytest.approx(2 / 12)
        assert bandit.best_arm() == "a"

    def test_snapshot_round_trips(self):
        bandit = ThompsonBandit(["a"], prior=(2.0, 3.0))
        bandit.update("a", successes=4, trials=10)
        snap = bandit.snapshot()
        assert snap["a"]["alpha"] == 6.0 and snap["a"]["beta"] == 9.0
        assert snap["a"]["mean"] == pytest.approx(6 / 15)


class TestConvergence:
    """Property tests on synthetic Bernoulli reward streams."""

    @pytest.mark.parametrize("rates", [(0.6, 0.1, 0.1), (0.3, 0.25, 0.02)])
    def test_allocation_concentrates_on_best_arm(self, rates):
        arms = [f"arm{i}" for i in range(len(rates))]
        bandit = ThompsonBandit(arms)
        env = np.random.default_rng(0)
        scheduler = np.random.default_rng(1)
        pulls = {arm: 0 for arm in arms}
        for _ in range(400):
            arm = bandit.sample(scheduler)
            pulls[arm] += 1
            reward = int(env.random() < rates[arms.index(arm)])
            bandit.update(arm, successes=reward, trials=1)
        best = arms[int(np.argmax(rates))]
        assert bandit.best_arm() == best
        # The true best arm must dominate total allocation.
        assert pulls[best] > sum(pulls.values()) / 2

    def test_block_updates_converge_like_driver(self):
        # The driver folds whole blocks in at once (successes=retired,
        # trials=encode work); posterior ordering must still match the
        # underlying rates.
        bandit = ThompsonBandit(["cheap", "pricey"])
        env = np.random.default_rng(7)
        for _ in range(30):
            bandit.update(
                "cheap", successes=int(env.binomial(10, 0.4)), trials=100
            )
            bandit.update(
                "pricey", successes=int(env.binomial(10, 0.4)), trials=1000
            )
        assert bandit.best_arm() == "cheap"
        assert bandit.posterior_mean("cheap") > 2 * bandit.posterior_mean("pricey")


class TestDrawCountInvariance:
    def test_sample_advances_rng_identically_whichever_arm_wins(self):
        # Reproducibility hinges on sample() consuming exactly len(arms)
        # Beta draws: two bandits with very different posteriors must
        # leave a shared generator in the same state.
        lopsided = ThompsonBandit(["a", "b", "c"])
        lopsided.update("a", successes=99, trials=100)
        flat = ThompsonBandit(["a", "b", "c"])
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        lopsided.sample(rng1)
        flat.sample(rng2)
        assert rng1.bit_generator.state == rng2.bit_generator.state

    def test_allocate_returns_n_blocks(self):
        bandit = ThompsonBandit(["a", "b"])
        drawn = bandit.allocate(5, np.random.default_rng(3))
        assert len(drawn) == 5
        assert set(drawn) <= {"a", "b"}
