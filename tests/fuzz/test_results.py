"""Tests for result records and campaign aggregation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fuzz.results import AdversarialExample, CampaignResult, InputOutcome


def _example(ref=1, adv=2, iters=3, l1=1.0, l2=0.1, cls=None):
    img = np.zeros((4, 4))
    return AdversarialExample(
        original=img,
        adversarial=img + 1,
        reference_label=ref if cls is None else cls,
        adversarial_label=adv,
        iterations=iters,
        metrics={"l1": l1, "l2": l2, "linf": 0.1, "l0": 4.0},
        strategy="gauss",
    )


def _success(iters=3, ref=1, **kw):
    ex = _example(ref=ref, iters=iters, **kw)
    return InputOutcome(
        success=True,
        iterations=iters,
        reference_label=ex.reference_label,
        example=ex,
    )


def _failure(iters=30, ref=0):
    return InputOutcome(success=False, iterations=iters, reference_label=ref)


class TestInputOutcome:
    def test_success_requires_example(self):
        with pytest.raises(ConfigurationError):
            InputOutcome(success=True, iterations=1, reference_label=0)

    def test_failure_rejects_example(self):
        with pytest.raises(ConfigurationError):
            InputOutcome(
                success=False, iterations=1, reference_label=0, example=_example()
            )


class TestAdversarialExample:
    def test_l1_l2_properties(self):
        ex = _example(l1=2.5, l2=0.3)
        assert ex.l1 == 2.5
        assert ex.l2 == 0.3

    def test_missing_metrics_are_nan(self):
        ex = AdversarialExample(
            original="txt", adversarial="tyt", reference_label=0,
            adversarial_label=1, iterations=1, metrics={"edits": 1.0},
            strategy="char_sub",
        )
        assert np.isnan(ex.l1) and np.isnan(ex.l2)


class TestCampaignResult:
    def _result(self):
        outcomes = [
            _success(iters=2, l1=1.0, l2=0.1),
            _success(iters=4, l1=3.0, l2=0.3),
            _failure(iters=30),
        ]
        return CampaignResult("gauss", outcomes, elapsed_seconds=6.0)

    def test_counts(self):
        r = self._result()
        assert r.n_inputs == 3
        assert r.n_success == 2
        assert r.success_rate == pytest.approx(2 / 3)

    def test_avg_iterations_includes_failures(self):
        # Paper: #total iterations / #images.
        r = self._result()
        assert r.avg_iterations == pytest.approx((2 + 4 + 30) / 3)

    def test_distances_over_successes_only(self):
        r = self._result()
        assert r.avg_l1 == pytest.approx(2.0)
        assert r.avg_l2 == pytest.approx(0.2)

    def test_time_per_1k_extrapolates(self):
        r = self._result()
        assert r.time_per_1k == pytest.approx(6.0 / 2 * 1000)

    def test_images_per_minute(self):
        r = self._result()
        assert r.images_per_minute == pytest.approx(2 / 6.0 * 60)

    def test_empty_campaign_gives_nans(self):
        r = CampaignResult("gauss", [], elapsed_seconds=0.0)
        assert np.isnan(r.success_rate)
        assert np.isnan(r.avg_l1)
        assert np.isnan(r.time_per_1k)

    def test_all_failures(self):
        r = CampaignResult("gauss", [_failure(), _failure()], elapsed_seconds=1.0)
        assert r.n_success == 0
        assert np.isnan(r.avg_l1)
        assert np.isnan(r.time_per_1k)

    def test_examples_in_order(self):
        r = self._result()
        assert len(r.examples) == 2
        assert r.examples[0].iterations == 2

    def test_per_class_grouping(self):
        outcomes = [
            _success(iters=2, cls=0),
            _success(iters=6, cls=0),
            _success(iters=10, cls=3),
            _failure(iters=30, ref=5),
        ]
        r = CampaignResult("gauss", outcomes, elapsed_seconds=1.0)
        data = r.per_class(10)
        assert data["iterations"][0] == pytest.approx(4.0)
        assert data["iterations"][3] == pytest.approx(10.0)
        assert data["iterations"][5] == pytest.approx(30.0)
        assert np.isnan(data["iterations"][1])
        assert np.isnan(data["l1"][5])  # failure contributes no distance

    def test_per_class_invalid_n(self):
        with pytest.raises(ConfigurationError):
            self._result().per_class(0)

    def test_summary_keys(self):
        summary = self._result().summary()
        for key in ("strategy", "avg_l1", "avg_l2", "avg_iterations",
                    "time_per_1k", "success_rate", "images_per_minute"):
            assert key in summary

    def test_repr(self):
        assert "gauss" in repr(self._result())
