"""Tests for text mutations and the joint (composite) strategy."""

import numpy as np
import pytest

from repro.errors import MutationError
from repro.fuzz.mutations.composite import JointStrategy
from repro.fuzz.mutations.noise import GaussianNoise, RandomNoise
from repro.fuzz.mutations.text import CharSubstitution, CharTransposition


class TestCharSubstitution:
    def test_produces_n_children(self):
        out = CharSubstitution().mutate("hello world", 5, rng=0)
        assert len(out) == 5
        assert all(isinstance(c, str) for c in out)

    def test_length_preserved(self):
        out = CharSubstitution(chars_per_step=3).mutate("abcdefgh", 4, rng=0)
        assert all(len(c) == 8 for c in out)

    def test_at_most_k_positions_changed(self):
        text = "abcdefghijklmnop"
        out = CharSubstitution(chars_per_step=2).mutate(text, 10, rng=0)
        for child in out:
            diffs = sum(a != b for a, b in zip(text, child))
            assert diffs <= 2

    def test_replacements_from_alphabet(self):
        out = CharSubstitution(alphabet="xyz").mutate("aaaa", 10, rng=0)
        for child in out:
            assert set(child).issubset(set("axyz"))

    def test_chars_per_step_capped_at_length(self):
        out = CharSubstitution(chars_per_step=50).mutate("abc", 2, rng=0)
        assert all(len(c) == 3 for c in out)

    def test_deterministic(self):
        a = CharSubstitution().mutate("hello there", 3, rng=4)
        b = CharSubstitution().mutate("hello there", 3, rng=4)
        assert a == b

    def test_empty_string_rejected(self):
        with pytest.raises(MutationError):
            CharSubstitution().mutate("", 1, rng=0)

    def test_non_string_rejected(self):
        with pytest.raises(MutationError):
            CharSubstitution().mutate(123, 1, rng=0)

    def test_empty_alphabet_rejected(self):
        with pytest.raises(MutationError):
            CharSubstitution(alphabet="")


class TestCharTransposition:
    def test_multiset_preserved(self):
        text = "abcdefg"
        out = CharTransposition(swaps_per_step=2).mutate(text, 5, rng=0)
        for child in out:
            assert sorted(child) == sorted(text)

    def test_adjacent_swap_only(self):
        text = "abcd"
        out = CharTransposition(swaps_per_step=1).mutate(text, 20, rng=0)
        for child in out:
            diffs = [i for i, (a, b) in enumerate(zip(text, child)) if a != b]
            assert len(diffs) in (0, 2)
            if diffs:
                assert diffs[1] == diffs[0] + 1

    def test_too_short_rejected(self):
        with pytest.raises(MutationError):
            CharTransposition().mutate("a", 1, rng=0)


class TestJointStrategy:
    def test_combines_image_strategies(self):
        joint = JointStrategy([GaussianNoise(), RandomNoise()])
        image = np.random.default_rng(0).uniform(0, 255, size=(8, 8))
        out = joint.mutate(image, 10, rng=0)
        assert out.shape == (10, 8, 8)

    def test_combines_text_strategies(self):
        joint = JointStrategy([CharSubstitution(), CharTransposition()])
        out = joint.mutate("hello world", 6, rng=0)
        assert len(out) == 6

    def test_domain_set_from_members(self):
        assert JointStrategy([GaussianNoise()]).domain == "image"
        assert JointStrategy([CharSubstitution()]).domain == "text"

    def test_mixed_domains_rejected(self):
        with pytest.raises(MutationError, match="domains"):
            JointStrategy([GaussianNoise(), CharSubstitution()])

    def test_empty_members_rejected(self):
        with pytest.raises(MutationError):
            JointStrategy([])

    def test_weight_length_mismatch_rejected(self):
        with pytest.raises(MutationError):
            JointStrategy([GaussianNoise()], weights=[0.5, 0.5])

    def test_negative_weights_rejected(self):
        with pytest.raises(MutationError):
            JointStrategy([GaussianNoise(), RandomNoise()], weights=[-1.0, 2.0])

    def test_zero_weight_member_never_selected(self):
        image = np.random.default_rng(0).uniform(50, 200, size=(8, 8))
        joint = JointStrategy(
            [GaussianNoise(sigma=5.0), RandomNoise(pixels_per_step=1)],
            weights=[0.0, 1.0],
        )
        out = joint.mutate(image, 20, rng=0)
        for child in out:
            # RandomNoise touches ≤1 pixel; gauss would touch nearly all.
            assert (np.abs(child - image) > 1e-9).sum() <= 1

    def test_params_lists_members(self):
        joint = JointStrategy([GaussianNoise(), RandomNoise()])
        params = joint.params()
        assert params["strategies"] == ["gauss", "rand"]
