"""Tests for campaign runners (Table II / defense workflows)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FuzzingError
from repro.fuzz.campaign import compare_strategies, generate_adversarial_set
from repro.fuzz.constraints import ImageConstraint
from repro.fuzz.fuzzer import HDTestConfig


class TestCompareStrategies:
    def test_result_per_strategy(self, trained_model, test_images):
        results = compare_strategies(
            trained_model, test_images[:4], ("gauss", "shift"), rng=0
        )
        assert set(results) == {"gauss", "shift"}
        for result in results.values():
            assert result.n_inputs == 4

    def test_deterministic_given_seed(self, trained_model, test_images):
        a = compare_strategies(trained_model, test_images[:3], ("gauss",), rng=5)
        b = compare_strategies(trained_model, test_images[:3], ("gauss",), rng=5)
        assert a["gauss"].avg_iterations == b["gauss"].avg_iterations
        assert a["gauss"].avg_l2 == b["gauss"].avg_l2

    def test_config_passed_through(self, trained_model, test_images):
        cfg = HDTestConfig(iter_times=1, children_per_seed=2)
        results = compare_strategies(
            trained_model, test_images[:3], ("gauss",), config=cfg, rng=0
        )
        assert results["gauss"].avg_iterations <= 1.0

    def test_duplicate_strategy_rejected(self, trained_model, test_images):
        with pytest.raises(ConfigurationError, match="duplicate"):
            compare_strategies(trained_model, test_images[:2], ("gauss", "gauss"), rng=0)

    def test_duplicate_rejected_before_fuzzing(self, trained_model, test_images):
        # The check must fire up front, not after an expensive campaign.
        with pytest.raises(ConfigurationError, match="duplicate"):
            compare_strategies(
                trained_model, test_images[:2], ("shift", "gauss", "shift"), rng=0
            )

    def test_per_strategy_results_invariant_to_ordering(
        self, trained_model, test_images
    ):
        """Regression: each strategy draws from its *own* child generator.

        The docstring always promised independent generators per
        strategy, but one shared generator used to couple them: any
        reordering changed every campaign.  Results must now depend only
        on (root seed, strategy name).
        """
        cfg = HDTestConfig(iter_times=4)
        forward = compare_strategies(
            trained_model, test_images[:4], ("gauss", "rand", "shift"),
            config=cfg, rng=77,
        )
        reversed_ = compare_strategies(
            trained_model, test_images[:4], ("shift", "rand", "gauss"),
            config=cfg, rng=77,
        )
        for name in ("gauss", "rand", "shift"):
            a, b = forward[name], reversed_[name]
            assert [o.iterations for o in a.outcomes] == [
                o.iterations for o in b.outcomes
            ]
            assert [o.success for o in a.outcomes] == [o.success for o in b.outcomes]
            for ea, eb in zip(a.examples, b.examples):
                np.testing.assert_array_equal(ea.adversarial, eb.adversarial)


class TestGenerateAdversarialSet:
    def test_exact_count(self, trained_model, test_images):
        examples, elapsed = generate_adversarial_set(
            trained_model, test_images[:10], 5, strategy="gauss", rng=0
        )
        assert len(examples) == 5
        assert elapsed > 0

    def test_recycles_inputs_when_needed(self, trained_model, test_images):
        examples, _ = generate_adversarial_set(
            trained_model, test_images[:2], 6, strategy="gauss", rng=1
        )
        assert len(examples) == 6

    def test_true_labels_attached(self, trained_model, digit_data, test_images):
        _, test = digit_data
        examples, _ = generate_adversarial_set(
            trained_model,
            test_images[:10],
            4,
            strategy="gauss",
            true_labels=test.labels[:10],
            rng=2,
        )
        assert all(e.true_label is not None for e in examples)

    def test_true_labels_length_mismatch(self, trained_model, test_images):
        with pytest.raises(ConfigurationError):
            generate_adversarial_set(
                trained_model, test_images[:5], 2, true_labels=[0, 1], rng=0
            )

    def test_empty_inputs_rejected(self, trained_model):
        with pytest.raises(ConfigurationError):
            generate_adversarial_set(trained_model, [], 2, rng=0)

    def test_target_met_on_final_allowed_attempt(self, trained_model, test_images):
        """Regression: the cap must not fire once the target is reached.

        With max_attempts_factor=1 every attempt must succeed; reaching
        n_target on exactly the max_attempts-th attempt is a completed
        campaign, not a failure.
        """
        examples, _ = generate_adversarial_set(
            trained_model, test_images[:5], 3, strategy="gauss",
            max_attempts_factor=1, rng=0,
        )
        assert len(examples) == 3

    def test_attempt_cap_raises(self, trained_model, test_images):
        # An impossible budget means no adversarial is ever found.
        with pytest.raises(FuzzingError, match="attempts"):
            generate_adversarial_set(
                trained_model,
                test_images[:2],
                3,
                strategy="gauss",
                constraint=ImageConstraint(max_l2=1e-12),
                config=HDTestConfig(iter_times=1),
                max_attempts_factor=2,
                rng=0,
            )
