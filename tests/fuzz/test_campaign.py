"""Tests for campaign runners (Table II / defense workflows)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FuzzingError
from repro.fuzz.campaign import compare_strategies, generate_adversarial_set
from repro.fuzz.constraints import ImageConstraint
from repro.fuzz.fuzzer import HDTestConfig


class TestCompareStrategies:
    def test_result_per_strategy(self, trained_model, test_images):
        results = compare_strategies(
            trained_model, test_images[:4], ("gauss", "shift"), rng=0
        )
        assert set(results) == {"gauss", "shift"}
        for result in results.values():
            assert result.n_inputs == 4

    def test_deterministic_given_seed(self, trained_model, test_images):
        a = compare_strategies(trained_model, test_images[:3], ("gauss",), rng=5)
        b = compare_strategies(trained_model, test_images[:3], ("gauss",), rng=5)
        assert a["gauss"].avg_iterations == b["gauss"].avg_iterations
        assert a["gauss"].avg_l2 == b["gauss"].avg_l2

    def test_config_passed_through(self, trained_model, test_images):
        cfg = HDTestConfig(iter_times=1, children_per_seed=2)
        results = compare_strategies(
            trained_model, test_images[:3], ("gauss",), config=cfg, rng=0
        )
        assert results["gauss"].avg_iterations <= 1.0

    def test_duplicate_strategy_rejected(self, trained_model, test_images):
        with pytest.raises(ConfigurationError, match="duplicate"):
            compare_strategies(trained_model, test_images[:2], ("gauss", "gauss"), rng=0)


class TestGenerateAdversarialSet:
    def test_exact_count(self, trained_model, test_images):
        examples, elapsed = generate_adversarial_set(
            trained_model, test_images[:10], 5, strategy="gauss", rng=0
        )
        assert len(examples) == 5
        assert elapsed > 0

    def test_recycles_inputs_when_needed(self, trained_model, test_images):
        examples, _ = generate_adversarial_set(
            trained_model, test_images[:2], 6, strategy="gauss", rng=1
        )
        assert len(examples) == 6

    def test_true_labels_attached(self, trained_model, digit_data, test_images):
        _, test = digit_data
        examples, _ = generate_adversarial_set(
            trained_model,
            test_images[:10],
            4,
            strategy="gauss",
            true_labels=test.labels[:10],
            rng=2,
        )
        assert all(e.true_label is not None for e in examples)

    def test_true_labels_length_mismatch(self, trained_model, test_images):
        with pytest.raises(ConfigurationError):
            generate_adversarial_set(
                trained_model, test_images[:5], 2, true_labels=[0, 1], rng=0
            )

    def test_empty_inputs_rejected(self, trained_model):
        with pytest.raises(ConfigurationError):
            generate_adversarial_set(trained_model, [], 2, rng=0)

    def test_attempt_cap_raises(self, trained_model, test_images):
        # An impossible budget means no adversarial is ever found.
        with pytest.raises(FuzzingError, match="attempts"):
            generate_adversarial_set(
                trained_model,
                test_images[:2],
                3,
                strategy="gauss",
                constraint=ImageConstraint(max_l2=1e-12),
                config=HDTestConfig(iter_times=1),
                max_attempts_factor=2,
                rng=0,
            )
