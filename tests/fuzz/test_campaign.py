"""Tests for campaign runners (Table II / defense workflows)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FuzzingError
from repro.fuzz.campaign import compare_strategies, generate_adversarial_set
from repro.fuzz.constraints import ImageConstraint
from repro.fuzz.executor import CampaignExecutor
from repro.fuzz.fuzzer import HDTestConfig
from repro.fuzz.results import AdversarialExample, CampaignResult


class TestCompareStrategies:
    def test_result_per_strategy(self, trained_model, test_images):
        results = compare_strategies(
            trained_model, test_images[:4], ("gauss", "shift"), rng=0
        )
        assert set(results) == {"gauss", "shift"}
        for result in results.values():
            assert result.n_inputs == 4

    def test_deterministic_given_seed(self, trained_model, test_images):
        a = compare_strategies(trained_model, test_images[:3], ("gauss",), rng=5)
        b = compare_strategies(trained_model, test_images[:3], ("gauss",), rng=5)
        assert a["gauss"].avg_iterations == b["gauss"].avg_iterations
        assert a["gauss"].avg_l2 == b["gauss"].avg_l2

    def test_config_passed_through(self, trained_model, test_images):
        cfg = HDTestConfig(iter_times=1, children_per_seed=2)
        results = compare_strategies(
            trained_model, test_images[:3], ("gauss",), config=cfg, rng=0
        )
        assert results["gauss"].avg_iterations <= 1.0

    def test_duplicate_strategy_rejected(self, trained_model, test_images):
        with pytest.raises(ConfigurationError, match="duplicate"):
            compare_strategies(trained_model, test_images[:2], ("gauss", "gauss"), rng=0)

    def test_duplicate_rejected_before_fuzzing(self, trained_model, test_images):
        # The check must fire up front, not after an expensive campaign.
        with pytest.raises(ConfigurationError, match="duplicate"):
            compare_strategies(
                trained_model, test_images[:2], ("shift", "gauss", "shift"), rng=0
            )

    def test_per_strategy_results_invariant_to_ordering(
        self, trained_model, test_images
    ):
        """Regression: each strategy draws from its *own* child generator.

        The docstring always promised independent generators per
        strategy, but one shared generator used to couple them: any
        reordering changed every campaign.  Results must now depend only
        on (root seed, strategy name).
        """
        cfg = HDTestConfig(iter_times=4)
        forward = compare_strategies(
            trained_model, test_images[:4], ("gauss", "rand", "shift"),
            config=cfg, rng=77,
        )
        reversed_ = compare_strategies(
            trained_model, test_images[:4], ("shift", "rand", "gauss"),
            config=cfg, rng=77,
        )
        for name in ("gauss", "rand", "shift"):
            a, b = forward[name], reversed_[name]
            assert [o.iterations for o in a.outcomes] == [
                o.iterations for o in b.outcomes
            ]
            assert [o.success for o in a.outcomes] == [o.success for o in b.outcomes]
            for ea, eb in zip(a.examples, b.examples):
                np.testing.assert_array_equal(ea.adversarial, eb.adversarial)


class TestGenerateAdversarialSet:
    def test_exact_count(self, trained_model, test_images):
        examples, elapsed = generate_adversarial_set(
            trained_model, test_images[:10], 5, strategy="gauss", rng=0
        )
        assert len(examples) == 5
        assert elapsed > 0

    def test_recycles_inputs_when_needed(self, trained_model, test_images):
        examples, _ = generate_adversarial_set(
            trained_model, test_images[:2], 6, strategy="gauss", rng=1
        )
        assert len(examples) == 6

    def test_true_labels_attached(self, trained_model, digit_data, test_images):
        _, test = digit_data
        examples, _ = generate_adversarial_set(
            trained_model,
            test_images[:10],
            4,
            strategy="gauss",
            true_labels=test.labels[:10],
            rng=2,
        )
        assert all(e.true_label is not None for e in examples)

    def test_true_labels_length_mismatch(self, trained_model, test_images):
        with pytest.raises(ConfigurationError):
            generate_adversarial_set(
                trained_model, test_images[:5], 2, true_labels=[0, 1], rng=0
            )

    def test_empty_inputs_rejected(self, trained_model):
        with pytest.raises(ConfigurationError):
            generate_adversarial_set(trained_model, [], 2, rng=0)

    def test_target_met_on_final_allowed_attempt(self, trained_model, test_images):
        """Regression: the cap must not fire once the target is reached.

        With max_attempts_factor=1 every attempt must succeed; reaching
        n_target on exactly the max_attempts-th attempt is a completed
        campaign, not a failure.
        """
        examples, _ = generate_adversarial_set(
            trained_model, test_images[:5], 3, strategy="gauss",
            max_attempts_factor=1, rng=0,
        )
        assert len(examples) == 3

    def test_attempt_cap_raises(self, trained_model, test_images):
        # An impossible budget means no adversarial is ever found.
        with pytest.raises(FuzzingError, match="attempts"):
            generate_adversarial_set(
                trained_model,
                test_images[:2],
                3,
                strategy="gauss",
                constraint=ImageConstraint(max_l2=1e-12),
                config=HDTestConfig(iter_times=1),
                max_attempts_factor=2,
                rng=0,
            )


class _ScannedOutcome:
    """``InputOutcome`` stand-in that records reads of its success flag."""

    def __init__(self, example):
        self.example = example
        self.iterations = 1
        self.reference_label = 0
        self.success_reads = 0

    @property
    def success(self):
        self.success_reads += 1
        return True


class _CannedExecutor(CampaignExecutor):
    """Executor returning pre-fabricated all-success waves."""

    name = "canned"

    def __init__(self):
        self.waves: list[list[_ScannedOutcome]] = []

    def run(self, model, strategy, inputs, *, domain=None, config=None,
            constraint=None, fitness=None, oracle=None, rng=None,
            telemetry=None):
        wave = [
            _ScannedOutcome(
                AdversarialExample(
                    original=np.zeros(4),
                    adversarial=np.full(4, float(len(self.waves) * 100 + j)),
                    reference_label=0, adversarial_label=1, iterations=1,
                    metrics={"l1": float(len(self.waves) * 100 + j)},
                    strategy="gauss",
                )
            )
            for j in range(len(inputs))
        ]
        self.waves.append(wave)
        return CampaignResult(strategy="gauss", outcomes=wave, elapsed_seconds=0.0)


class TestSurplusSuccessTally:
    """Regression: the outcome scan must not stop at ``n_target``.

    Surplus successes in the final wave used to be skipped entirely —
    discarded *and* excluded from the ``successes`` tally that
    ``_wave_size`` uses as the observed rate.  Every outcome must be
    scanned; only the returned list is truncated.
    """

    def test_every_outcome_scanned_and_list_truncated(
        self, trained_model, test_images
    ):
        executor = _CannedExecutor()
        examples, _ = generate_adversarial_set(
            trained_model, test_images[:8], 4,
            strategy="gauss", executor=executor,
            true_labels=np.arange(8), rng=0,
        )
        # One wave of 8 (pool-clamped), all successful: 4 surplus.
        assert [len(w) for w in executor.waves] == [8]
        assert len(examples) == 4
        # The returned list is the *first* n_target in wave order...
        assert [e.metrics["l1"] for e in examples] == [0.0, 1.0, 2.0, 3.0]
        assert [e.true_label for e in examples] == [0, 1, 2, 3]
        # ...but every outcome — surplus included — was tallied.
        assert all(o.success_reads >= 1 for o in executor.waves[0])


class TestAdaptiveWaveSizing:
    """Waves are sized from the observed success rate (ROADMAP item)."""

    def test_wave_size_formula(self):
        from repro.fuzz.campaign import _wave_size

        # No signal yet: the historical 2x-remaining heuristic, floored at 16.
        assert _wave_size(100, 0, 0, 1000, 10_000) == 200
        assert _wave_size(3, 0, 0, 1000, 10_000) == 16
        # Perfect success rate: a wave barely larger than the deficit.
        assert _wave_size(100, 64, 64, 1000, 10_000) == 125
        # A robust model scales the wave up to cover the deficit.
        assert _wave_size(10, 200, 10, 1000, 10_000) == 250
        # Clamped by the pool and the remaining attempt budget.
        assert _wave_size(10, 200, 10, 40, 10_000) == 40
        assert _wave_size(10, 200, 10, 1000, 7) == 7

    def test_outcomes_invariant_to_wave_sizing(
        self, trained_model, test_images, monkeypatch
    ):
        """Adaptive waves must not change what is found, only scheduling.

        Per-input generators are drawn from the root stream in visit
        order, so re-partitioning the attempt sequence into different
        waves leaves every input's outcome bit-identical.
        """
        import repro.fuzz.campaign as campaign_mod
        from repro.fuzz import BatchedExecutor

        kwargs = dict(
            strategy="gauss",
            true_labels=np.arange(8) % 3,
            config=HDTestConfig(iter_times=10),
            rng=123,
        )
        with BatchedExecutor(batch_size=4) as executor:
            adaptive, _ = generate_adversarial_set(
                trained_model, test_images[:8], 6, executor=executor, **kwargs
            )
        monkeypatch.setattr(
            campaign_mod,
            "_wave_size",
            lambda remaining, attempts, successes, n_inputs, attempts_left: max(
                1, min(n_inputs, attempts_left, max(2 * remaining, 16))
            ),
        )
        with BatchedExecutor(batch_size=4) as executor:
            fixed, _ = generate_adversarial_set(
                trained_model, test_images[:8], 6, executor=executor, **kwargs
            )
        assert len(adaptive) == len(fixed) == 6
        assert [e.true_label for e in adaptive] == [e.true_label for e in fixed]
        assert [e.adversarial_label for e in adaptive] == [
            e.adversarial_label for e in fixed
        ]
        for a, b in zip(adaptive, fixed):
            np.testing.assert_array_equal(a.adversarial, b.adversarial)

    def test_text_generation_through_waves(self, monkeypatch):
        """generate_adversarial_set drives the text domain end to end."""
        from repro.datasets import make_language_dataset
        from repro.hdc import HDCClassifier, NgramEncoder

        data = make_language_dataset(n_per_class=20, n_languages=3, length=40, seed=4)
        train, test = data.split(0.8, rng=0)
        model = HDCClassifier(NgramEncoder(n=3, dimension=1024, rng=4), 3).fit(
            list(train.texts), train.labels
        )
        examples, _ = generate_adversarial_set(
            model, list(test.texts)[:8], 4,
            strategy="char_sub", executor="batched",
            config=HDTestConfig(iter_times=20), rng=0,
        )
        assert len(examples) == 4
        assert all(isinstance(e.adversarial, str) for e in examples)
