"""Tests for the lock-step batched fuzzing engine.

The load-bearing property is sequential↔batched equivalence: under the
shared RNG discipline (one spawned generator per input),
:class:`BatchedHDTest` must reproduce :meth:`HDTest.fuzz_one` outcome
for outcome — same success flags, iteration counts, reference labels,
and adversarial payloads.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, FuzzingError
from repro.fuzz import (
    BatchedHDTest,
    HDTest,
    HDTestConfig,
    ImageConstraint,
    SeedPoolBatch,
)
from repro.utils.rng import spawn


def _assert_outcomes_equal(sequential, batched):
    assert len(sequential) == len(batched)
    for seq, bat in zip(sequential, batched):
        assert seq.success == bat.success
        assert seq.iterations == bat.iterations
        assert seq.reference_label == bat.reference_label
        if seq.success:
            assert seq.example.adversarial_label == bat.example.adversarial_label
            assert seq.example.metrics == bat.example.metrics
            np.testing.assert_array_equal(
                seq.example.adversarial, bat.example.adversarial
            )


class TestSeedPoolBatch:
    def test_reset_state(self):
        originals = np.arange(12, dtype=np.float64).reshape(3, 2, 2)
        pool = SeedPoolBatch(originals, top_n=2)
        assert pool.n_inputs == 3
        assert pool.count(1) == 1
        np.testing.assert_array_equal(pool.seeds(1)[0], originals[1])
        assert pool.fitness(1)[0] == -np.inf
        assert pool.generations(1)[0] == 0

    def test_update_selects_top_n_stable(self):
        pool = SeedPoolBatch(np.zeros((1, 2, 2)), top_n=2)
        children = np.arange(16, dtype=np.float64).reshape(4, 2, 2)
        pool.update(0, children, [0.3, 0.9, 0.9, 0.1], generation=1)
        assert pool.count(0) == 2
        # Stable sort: the first of the tied 0.9s wins, fittest first.
        np.testing.assert_array_equal(pool.seeds(0)[0], children[1])
        np.testing.assert_array_equal(pool.seeds(0)[1], children[2])
        assert list(pool.generations(0)) == [1, 1]

    def test_update_matches_sequential_seedpool(self, rng):
        """Row semantics must equal SeedPool's top-N selection exactly."""
        from repro.fuzz import SeedPool

        original = rng.random((2, 2))
        children = rng.random((7, 2, 2))
        scores = rng.random(7)
        sequential = SeedPool(3)
        sequential.reset(original)
        sequential.update(children, scores, generation=4)
        pool = SeedPoolBatch(original[None], top_n=3)
        pool.update(0, children, scores, generation=4)
        for seed, row in zip(sequential.seeds, pool.seeds(0)):
            np.testing.assert_array_equal(seed.data, row)
        np.testing.assert_allclose(
            [s.fitness for s in sequential.seeds], pool.fitness(0)
        )

    def test_empty_update_keeps_seeds(self):
        pool = SeedPoolBatch(np.ones((1, 2, 2)), top_n=3)
        pool.update(0, np.empty((0, 2, 2)), [], generation=1)
        assert pool.count(0) == 1
        np.testing.assert_array_equal(pool.seeds(0)[0], np.ones((2, 2)))

    def test_side_arrays_follow_selection(self):
        pool = SeedPoolBatch(
            np.zeros((1, 2, 2)),
            top_n=1,
            accumulators=np.array([[5, 5]], dtype=np.int16),
            levels=np.array([[0, 0, 0, 0]], dtype=np.int16),
        )
        children = np.arange(8, dtype=np.float64).reshape(2, 2, 2)
        accs = np.array([[1, 1], [2, 2]], dtype=np.int16)
        levels = np.array([[1, 1, 1, 1], [2, 2, 2, 2]], dtype=np.int16)
        pool.update(
            0, children, [0.1, 0.7], generation=1, accumulators=accs, levels=levels
        )
        np.testing.assert_array_equal(pool.accumulators(0)[0], [2, 2])
        np.testing.assert_array_equal(pool.levels(0)[0], [2, 2, 2, 2])

    def test_side_arrays_required_once_declared(self):
        pool = SeedPoolBatch(
            np.zeros((1, 2, 2)), top_n=1,
            accumulators=np.zeros((1, 2), dtype=np.int16),
        )
        with pytest.raises(FuzzingError, match="accumulators"):
            pool.update(0, np.ones((1, 2, 2)), [0.5], generation=1)

    def test_side_arrays_absent_raise_on_access(self):
        pool = SeedPoolBatch(np.zeros((1, 2, 2)), top_n=1)
        with pytest.raises(FuzzingError):
            pool.accumulators(0)

    def test_mismatched_scores_rejected(self):
        pool = SeedPoolBatch(np.zeros((1, 2, 2)), top_n=1)
        with pytest.raises(FuzzingError):
            pool.update(0, np.ones((2, 2, 2)), [0.5], generation=1)

    def test_unstacked_originals_rejected(self):
        with pytest.raises(FuzzingError):
            SeedPoolBatch(np.zeros(4), top_n=1)


class TestBatchedEquivalence:
    """BatchedHDTest == per-input fuzz_one under shared RNG discipline."""

    @pytest.mark.parametrize("strategy", ["gauss", "rand", "row_col_rand", "shift"])
    def test_matches_fuzz_one(self, trained_model, test_images, strategy):
        inputs = test_images[:6]
        cfg = HDTestConfig(iter_times=8)
        generators = spawn(314, len(inputs))
        sequential = [
            HDTest(trained_model, strategy, config=cfg).fuzz_one(image, rng=generator)
            for image, generator in zip(inputs, generators)
        ]
        batched = BatchedHDTest(trained_model, strategy, config=cfg).fuzz_outcomes(
            list(inputs), rng=314
        )
        _assert_outcomes_equal(sequential, batched)

    def test_matches_without_dedupe(self, trained_model, test_images):
        inputs = test_images[:4]
        cfg = HDTestConfig(iter_times=5, dedupe=False)
        generators = spawn(99, len(inputs))
        sequential = [
            HDTest(trained_model, "shift", config=cfg).fuzz_one(image, rng=generator)
            for image, generator in zip(inputs, generators)
        ]
        batched = BatchedHDTest(trained_model, "shift", config=cfg).fuzz_outcomes(
            list(inputs), rng=99
        )
        _assert_outcomes_equal(sequential, batched)

    def test_matches_with_tiny_cache(self, trained_model, test_images):
        """LRU eviction under a pathological capacity must not change results."""
        inputs = test_images[:3]
        cfg = HDTestConfig(iter_times=6, cache_max_entries=2)
        generators = spawn(7, len(inputs))
        sequential = [
            HDTest(trained_model, "gauss", config=cfg).fuzz_one(image, rng=generator)
            for image, generator in zip(inputs, generators)
        ]
        batched = BatchedHDTest(trained_model, "gauss", config=cfg).fuzz_outcomes(
            list(inputs), rng=7
        )
        _assert_outcomes_equal(sequential, batched)

    def test_unguided_matches_fuzz_one(self, trained_model, test_images):
        """Satellite: the lock-step equivalence now covers unguided runs.

        RandomFitness draws from each input's own generator, so the
        batched engine reproduces per-input fuzz_one outcomes even when
        survival is a lottery.
        """
        inputs = list(test_images[:5])
        cfg = HDTestConfig(iter_times=8, guided=False)
        generators = spawn(2024, len(inputs))
        sequential = [
            HDTest(trained_model, "gauss", config=cfg).fuzz_one(image, rng=generator)
            for image, generator in zip(inputs, generators)
        ]
        batched = BatchedHDTest(trained_model, "gauss", config=cfg).fuzz_outcomes(
            inputs, rng=2024
        )
        _assert_outcomes_equal(sequential, batched)

    def test_explicit_generators_match_spawned(self, trained_model, test_images):
        inputs = list(test_images[:4])
        cfg = HDTestConfig(iter_times=4)
        engine = BatchedHDTest(trained_model, "rand", config=cfg)
        a = engine.fuzz_outcomes(inputs, rng=42)
        b = engine.fuzz_outcomes(inputs, generators=spawn(42, len(inputs)))
        _assert_outcomes_equal(a, b)

    def test_direct_encode_path_matches(self, trained_model, test_images):
        """Forcing the non-delta path (as any non-pixel encoder would use)
        must yield identical outcomes — the two encode paths are exact."""
        inputs = list(test_images[:4])
        cfg = HDTestConfig(iter_times=5)
        engine = BatchedHDTest(trained_model, "gauss", config=cfg)
        fast = engine.fuzz_outcomes(inputs, rng=21)
        engine_direct = BatchedHDTest(trained_model, "gauss", config=cfg)
        engine_direct._delta_encoder = lambda: None  # noqa: SLF001 - test hook
        direct = engine_direct.fuzz_outcomes(inputs, rng=21)
        _assert_outcomes_equal(fast, direct)


class TestBatchedEdgeCases:
    def test_empty_input_list(self, trained_model):
        engine = BatchedHDTest(trained_model, "gauss")
        assert engine.fuzz_outcomes([], rng=0) == []
        result = engine.fuzz([], rng=0)
        assert result.n_inputs == 0
        assert result.executor == "batched"

    def test_success_on_iteration_one(self, trained_model, test_images):
        # A huge-amplitude strategy flips essentially immediately.
        from repro.fuzz.mutations.noise import GaussianNoise

        engine = BatchedHDTest(
            trained_model,
            GaussianNoise(sigma=120.0),
            constraint=ImageConstraint(max_l2=1e9),
            config=HDTestConfig(iter_times=3),
        )
        outcomes = engine.fuzz_outcomes(list(test_images[:4]), rng=0)
        assert all(o.success and o.iterations == 1 for o in outcomes)

    def test_all_children_clipped_every_iteration(self, trained_model, test_images):
        # An impossible budget rejects every child: inputs must survive
        # the full iteration budget and report honest counts.
        cfg = HDTestConfig(iter_times=4)
        engine = BatchedHDTest(
            trained_model, "gauss",
            constraint=ImageConstraint(max_l2=1e-12), config=cfg,
        )
        outcomes = engine.fuzz_outcomes(list(test_images[:3]), rng=0)
        assert all(not o.success for o in outcomes)
        assert all(o.iterations == cfg.iter_times for o in outcomes)

    def test_mixed_retirement(self, trained_model, test_images):
        """Some inputs retiring early must not disturb the rest."""
        inputs = list(test_images[:6])
        cfg = HDTestConfig(iter_times=10)
        generators = spawn(1234, len(inputs))
        sequential = [
            HDTest(trained_model, "rand", config=cfg).fuzz_one(image, rng=generator)
            for image, generator in zip(inputs, generators)
        ]
        batched = BatchedHDTest(trained_model, "rand", config=cfg).fuzz_outcomes(
            inputs, rng=1234
        )
        _assert_outcomes_equal(sequential, batched)
        assert len({o.iterations for o in batched}) > 1  # genuinely staggered

    def test_non_array_inputs_rejected(self, trained_model):
        engine = BatchedHDTest(trained_model, "gauss")
        with pytest.raises(ConfigurationError, match="array"):
            engine.fuzz_outcomes(["not an image"], rng=0)

    def test_mismatched_shapes_rejected(self, trained_model):
        engine = BatchedHDTest(trained_model, "gauss")
        with pytest.raises(ConfigurationError, match="shape"):
            engine.fuzz_outcomes([np.zeros((28, 28)), np.zeros((14, 14))], rng=0)

    def test_generator_count_mismatch_rejected(self, trained_model, test_images):
        engine = BatchedHDTest(trained_model, "gauss")
        with pytest.raises(ConfigurationError, match="generators"):
            engine.fuzz_outcomes(list(test_images[:3]), generators=spawn(0, 2))

    def test_cache_pool_reshare_and_reserve(self):
        """Per-input caches re-share one aggregate entry budget."""
        from repro.fuzz.batch import _CachePool

        pool = _CachePool()
        pool.reserve(1, 512)
        first = pool.get(b"a", 512)
        assert first.max_entries == 512
        # The same input under a many-input share shrinks its cache.
        assert pool.get(b"a", 32) is first
        assert first.max_entries == 32
        # A stream of distinct full-capacity inputs stays within the
        # aggregate budget instead of pinning one cache per input.
        stream = _CachePool()
        stream.reserve(1, 512)
        for i in range(10):
            stream.get(str(i).encode(), 512)
        assert len(stream._caches) <= 2
        # reserve() guarantees a whole chunk's caches coexist.
        chunk = _CachePool()
        chunk.reserve(300, 32)
        for i in range(300):
            chunk.get(str(i).encode(), 32)
        assert len(chunk._caches) == 300

    def test_cache_warm_across_calls(self, trained_model, test_images):
        """Recycled inputs hit their content-keyed cache on later calls."""
        engine = BatchedHDTest(
            trained_model, "shift", config=HDTestConfig(iter_times=4)
        )
        inputs = list(test_images[:2])
        first = engine.fuzz_outcomes(inputs, rng=5)
        caches = list(engine._cache_pool._caches.values())
        hits_before = sum(c.hits for c in caches)
        second = engine.fuzz_outcomes(inputs, rng=5)
        hits_after = sum(c.hits for c in engine._cache_pool._caches.values())
        assert hits_after > hits_before  # warm start, not a cold rebuild
        _assert_outcomes_equal(first, second)

    def test_campaign_result_aggregates(self, trained_model, test_images):
        result = BatchedHDTest(
            trained_model, "gauss", config=HDTestConfig(iter_times=3)
        ).fuzz(list(test_images[:5]), rng=3)
        assert result.n_inputs == 5
        assert result.strategy == "gauss"
        assert result.elapsed_seconds > 0
        assert result.executor == "batched"
