"""Prediction targets: single-model bit-identity and K-model lock-step.

Two claims pinned here:

* wrapping a model in :class:`SingleModelTarget` (what the engines do
  internally) changes nothing — outcomes are bit-identical to handing
  the engines the bare model, guided and unguided, sequential and
  batched;
* a :class:`ModelEnsembleTarget` runs the same Alg. 1 loop lock-step
  over K members with identical outcomes across every schedule
  (sequential == batched == BatchedExecutor == ProcessExecutor) and
  encode path (delta == scratch), under the shared RNG discipline.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotTrainedError
from repro.fuzz import (
    AgreementMarginFitness,
    BatchedExecutor,
    BatchedHDTest,
    CrossModelOracle,
    DistanceGuidedFitness,
    HDTest,
    HDTestConfig,
    MajorityOracle,
    ModelEnsembleTarget,
    ProcessExecutor,
    RandomFitness,
    SingleModelTarget,
    TargetPredictions,
    majority_vote,
    vote_counts,
)
from repro.fuzz.targets import clone_architecture
from repro.hdc import HDCClassifier, PixelEncoder

CFG = HDTestConfig(iter_times=8)
ENSEMBLE_DIM = 512


def outcome_key(outcome):
    key = (outcome.success, outcome.iterations, outcome.reference_label)
    if outcome.example is None:
        return key
    example = outcome.example
    return key + (
        example.adversarial_label,
        example.disagreed_members,
        np.asarray(example.adversarial).tobytes(),
    )


@pytest.fixture(scope="module")
def ensemble(digit_data):
    train, _ = digit_data
    members = [
        HDCClassifier(PixelEncoder(dimension=ENSEMBLE_DIM, rng=seed), 10).fit(
            train.images, train.labels
        )
        for seed in (3, 4, 5)
    ]
    return ModelEnsembleTarget(*members)


# -- single-model bit-identity ----------------------------------------------
class TestSingleModelTarget:
    def test_wrapping_is_bit_identical_sequential(self, trained_model, test_images):
        images = test_images[:4]
        bare = [
            HDTest(trained_model, "gauss", config=CFG).fuzz_one(x, rng=7)
            for x in images
        ]
        wrapped = [
            HDTest(SingleModelTarget(trained_model), "gauss", config=CFG).fuzz_one(
                x, rng=7
            )
            for x in images
        ]
        assert [outcome_key(o) for o in bare] == [outcome_key(o) for o in wrapped]

    def test_wrapping_is_bit_identical_batched(self, trained_model, test_images):
        images = list(test_images[:5])
        bare = BatchedHDTest(trained_model, "gauss", config=CFG).fuzz_outcomes(
            images, rng=11
        )
        wrapped = BatchedHDTest(
            SingleModelTarget(trained_model), "gauss", config=CFG
        ).fuzz_outcomes(images, rng=11)
        assert [outcome_key(o) for o in bare] == [outcome_key(o) for o in wrapped]

    def test_single_examples_have_no_member_bookkeeping(
        self, trained_model, test_images
    ):
        result = BatchedHDTest(trained_model, "gauss", config=CFG).fuzz(
            list(test_images[:6]), rng=0
        )
        assert result.n_members == 1
        for example in result.examples:
            assert example.disagreed_members is None

    def test_untrained_member_rejected(self):
        model = HDCClassifier(PixelEncoder(dimension=64, rng=0), 10)
        with pytest.raises(NotTrainedError):
            SingleModelTarget(model)

    def test_greybox_api_enforced(self):
        with pytest.raises(ConfigurationError, match="grey-box fuzzing API"):
            SingleModelTarget(object())

    def test_ensemble_oracle_rejected_for_single_model(
        self, trained_model
    ):
        with pytest.raises(ConfigurationError, match="ModelEnsembleTarget"):
            HDTest(trained_model, "gauss", oracle=CrossModelOracle())


# -- ensemble construction ---------------------------------------------------
class TestEnsembleConstruction:
    def test_requires_two_members(self, trained_model):
        with pytest.raises(ConfigurationError, match="at least 2"):
            ModelEnsembleTarget(trained_model)

    def test_accepts_member_list(self, ensemble):
        rebuilt = ModelEnsembleTarget(list(ensemble.members))
        assert rebuilt.n_members == 3

    def test_n_classes_must_agree(self, digit_data):
        train, _ = digit_data
        a = HDCClassifier(PixelEncoder(dimension=128, rng=0), 10).fit(
            train.images, train.labels
        )
        b = HDCClassifier(PixelEncoder(dimension=128, rng=1), 5).fit(
            train.images, np.asarray(train.labels) % 5
        )
        with pytest.raises(ConfigurationError, match="n_classes"):
            ModelEnsembleTarget(a, b)

    def test_trained_like_spawns_distinct_members(self, trained_model, digit_data):
        train, _ = digit_data
        target = ModelEnsembleTarget.trained_like(
            trained_model, 3, train.images[:100], train.labels[:100], rng=0
        )
        assert target.n_members == 3
        assert target.primary is trained_model
        first = target.members[1].encoder.position_memory.vectors
        second = target.members[2].encoder.position_memory.vectors
        assert not np.array_equal(first, second)  # independently spawned

    def test_trained_like_rng_reproducible(self, trained_model, digit_data):
        train, _ = digit_data
        one = ModelEnsembleTarget.trained_like(
            trained_model, 2, train.images[:50], train.labels[:50], rng=9
        )
        two = ModelEnsembleTarget.trained_like(
            trained_model, 2, train.images[:50], train.labels[:50], rng=9
        )
        np.testing.assert_array_equal(
            one.members[1].encoder.position_memory.vectors,
            two.members[1].encoder.position_memory.vectors,
        )

    def test_clone_architecture_unknown_model_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot clone"):
            clone_architecture(object(), rng=0)

    @pytest.mark.parametrize("bipolar_am", [True, False])
    def test_clone_preserves_am_semantics_across_encoders(self, bipolar_am):
        from repro.hdc import NgramEncoder, RecordEncoder

        for encoder in (
            PixelEncoder(shape=(4, 4), dimension=64, rng=0),
            NgramEncoder(2, dimension=64, rng=0),
            RecordEncoder(5, dimension=64, rng=0),
        ):
            base = HDCClassifier(encoder, 3, bipolar_am=bipolar_am)
            clone = clone_architecture(base, rng=1)
            assert clone.associative_memory.bipolar == bipolar_am

    def test_copy_is_independent(self, ensemble, digit_data):
        train, _ = digit_data
        clone = ensemble.copy()
        clone.members[0].retrain(train.images[:20], train.labels[:20])
        # The original's member is untouched (copy() cloned the AMs).
        assert not np.array_equal(
            clone.members[0].associative_memory.counts,
            ensemble.members[0].associative_memory.counts,
        )

    def test_training_counts_tracks_members(self, ensemble, digit_data):
        train, _ = digit_data
        before = ensemble.training_counts()
        clone = ensemble.copy()
        clone.members[1].retrain(train.images[:10], train.labels[:10], mode="additive")
        assert clone.training_counts() != before


# -- lock-step schedule equivalence -----------------------------------------
class TestEnsembleEquivalence:
    @pytest.mark.parametrize("guided", [True, False])
    def test_sequential_matches_batched(self, ensemble, test_images, guided):
        from repro.utils.rng import spawn

        images = list(test_images[:6])
        cfg = HDTestConfig(iter_times=8, guided=guided)
        sequential = [
            HDTest(ensemble, "gauss", config=cfg).fuzz_one(x, rng=g)
            for x, g in zip(images, spawn(13, len(images)))
        ]
        batched = BatchedHDTest(ensemble, "gauss", config=cfg).fuzz_outcomes(
            images, generators=spawn(13, len(images))
        )
        assert [outcome_key(o) for o in sequential] == [
            outcome_key(o) for o in batched
        ]

    def test_delta_matches_scratch(self, ensemble, test_images):
        from repro.utils.rng import spawn

        images = list(test_images[:5])
        delta = BatchedHDTest(ensemble, "gauss", config=CFG).fuzz_outcomes(
            images, generators=spawn(3, len(images))
        )
        scratch_engine = BatchedHDTest(ensemble, "gauss", config=CFG)
        scratch_engine._delta_encoder = lambda: None  # noqa: SLF001 - test hook
        scratch = scratch_engine.fuzz_outcomes(images, generators=spawn(3, len(images)))
        assert [outcome_key(o) for o in delta] == [outcome_key(o) for o in scratch]

    def test_executors_agree(self, ensemble, test_images):
        images = list(test_images[:4])
        batched = BatchedExecutor(batch_size=2).run(
            ensemble, "gauss", images, config=CFG, rng=21
        )
        with ProcessExecutor(n_workers=2, batch_size=2) as process:
            pooled = process.run(ensemble, "gauss", images, config=CFG, rng=21)
        assert [outcome_key(o) for o in batched.outcomes] == [
            outcome_key(o) for o in pooled.outcomes
        ]
        assert batched.n_members == pooled.n_members == 3

    def test_majority_oracle_runs_everywhere(self, ensemble, test_images):
        from repro.utils.rng import spawn

        images = list(test_images[:4])
        oracle = MajorityOracle(10)
        sequential = [
            HDTest(ensemble, "gauss", config=CFG, oracle=oracle).fuzz_one(x, rng=g)
            for x, g in zip(images, spawn(2, len(images)))
        ]
        batched = BatchedHDTest(
            ensemble, "gauss", config=CFG, oracle=oracle
        ).fuzz_outcomes(images, generators=spawn(2, len(images)))
        assert [outcome_key(o) for o in sequential] == [
            outcome_key(o) for o in batched
        ]


# -- cross-model semantics ---------------------------------------------------
class TestEnsembleSemantics:
    def test_seed_discrepancies_are_iteration_zero(self, ensemble, test_images):
        result = BatchedHDTest(ensemble, "gauss", config=CFG).fuzz(
            list(test_images[:20]), rng=1
        )
        votes = ensemble.predict(list(test_images[:20]))
        naturally_split = (~(votes == votes[0]).all(axis=0)).sum()
        seeds = result.seed_discrepancies
        assert len(seeds) == naturally_split
        for example in seeds:
            assert example.iterations == 0
            np.testing.assert_array_equal(
                np.asarray(example.original), np.asarray(example.adversarial)
            )
            assert example.disagreed_members is not None

    def test_disagreed_members_point_at_dissenters(self, ensemble, test_images):
        result = BatchedHDTest(ensemble, "gauss", config=CFG).fuzz(
            list(test_images[:12]), rng=5
        )
        checked = 0
        for example in result.examples:
            labels = ensemble.predict([np.asarray(example.adversarial)])[:, 0]
            expected = tuple(
                int(m) for m in np.nonzero(labels != example.reference_label)[0]
            )
            assert example.disagreed_members == expected
            assert example.adversarial_label != example.reference_label
            checked += 1
        assert checked > 0

    def test_identical_members_never_disagree(self, trained_model, test_images):
        target = ModelEnsembleTarget(trained_model, trained_model.copy())
        result = BatchedHDTest(target, "gauss", config=CFG).fuzz(
            list(test_images[:5]), rng=0
        )
        assert result.n_success == 0  # cross-model oracle is blind to clones

    def test_mixed_family_ensemble_fuzzes(self, ensemble, test_images):
        from repro.hdc.backends.bipolar import PackedBipolarHDCClassifier

        packed_member = PackedBipolarHDCClassifier.from_dense(ensemble.members[1])
        mixed = ModelEnsembleTarget(ensemble.members[0], packed_member)
        result = BatchedHDTest(mixed, "gauss", config=CFG).fuzz(
            list(test_images[:6]), rng=2
        )
        assert result.n_inputs == 6 and result.n_members == 2
        # Packing is exact, so the packed member votes exactly like its
        # dense source: outcomes match the dense-dense pairing.
        dense = ModelEnsembleTarget(ensemble.members[0], ensemble.members[1])
        dense_result = BatchedHDTest(dense, "gauss", config=CFG).fuzz(
            list(test_images[:6]), rng=2
        )
        assert [outcome_key(o) for o in result.outcomes] == [
            outcome_key(o) for o in dense_result.outcomes
        ]

    def test_with_backend_repackages_members(self, ensemble):
        packed = ensemble.with_backend("packed-bipolar")
        assert packed.n_members == ensemble.n_members
        assert all(
            getattr(m, "packed_alphabet", None) == "bipolar" for m in packed.members
        )
        assert ensemble.with_backend(None) is ensemble

    def test_cosine_fitness_rejected_for_ensembles(self, ensemble):
        with pytest.raises(ConfigurationError, match="ensemble"):
            HDTest(ensemble, "gauss", fitness=DistanceGuidedFitness())

    def test_plain_oracle_rejected_for_ensembles(self, ensemble):
        from repro.fuzz import DifferentialOracle

        with pytest.raises(ConfigurationError, match="cross-model"):
            HDTest(ensemble, "gauss", oracle=DifferentialOracle())

    def test_mixed_dimension_ensemble_falls_back_to_scratch(
        self, ensemble, digit_data, test_images
    ):
        train, _ = digit_data
        odd = HDCClassifier(PixelEncoder(dimension=256, rng=9), 10).fit(
            train.images, train.labels
        )
        mixed = ModelEnsembleTarget(ensemble.members[0], odd)
        engine = HDTest(mixed, "gauss", config=CFG)
        assert engine._delta_encoder() is None  # noqa: SLF001 - documented hook
        outcome = engine.fuzz_one(test_images[0], rng=0)
        assert outcome.iterations >= 0  # runs end to end on the scratch path


# -- voting helpers and fitness ---------------------------------------------
class TestVotingAndFitness:
    def test_vote_counts(self):
        labels = np.array([[0, 1, 2], [0, 1, 0], [1, 1, 2]])
        counts = vote_counts(labels, 3)
        np.testing.assert_array_equal(
            counts, [[2, 1, 0], [0, 3, 0], [1, 0, 2]]
        )

    def test_majority_vote_tie_breaks_low(self):
        labels = np.array([[2], [1]])
        assert majority_vote(labels, 3)[0] == 1  # tie → lowest label

    def test_agreement_margin_orders_by_vote_split(self):
        fitness = AgreementMarginFitness(similarity_weight=0.0)
        labels = np.array([
            [0, 0, 0],
            [0, 0, 1],
            [0, 1, 2],
        ])  # columns: child 0 unanimous, child 1 one defection, child 2 split
        scores = fitness.scores_ensemble(TargetPredictions(labels))
        assert scores[2] > scores[1] > scores[0]

    def test_similarity_tiebreak_stays_below_vote_quantum(self):
        fitness = AgreementMarginFitness()
        rng = np.random.default_rng(0)
        labels = np.tile(np.array([[0, 0], [0, 1], [1, 1]]), (1, 1))
        sims = rng.random((3, 2, 4))
        with_sims = fitness.scores_ensemble(TargetPredictions(labels, sims))
        votes_only = AgreementMarginFitness(
            similarity_weight=0.0
        ).scores_ensemble(TargetPredictions(labels))
        # The tie-break only ever adds, and always less than one vote
        # quantum (1/K) — equal-vote children may reorder, nothing else.
        assert np.all(with_sims >= votes_only)
        assert np.all(with_sims - votes_only < 1.0 / 3.0)

    def test_agreement_margin_rejects_single_hvs(self):
        fitness = AgreementMarginFitness()
        with pytest.raises(ConfigurationError, match="ensemble"):
            fitness.scores(np.zeros(8), np.zeros((2, 8)))

    def test_random_fitness_scores_ensembles(self):
        fitness = RandomFitness(rng=0)
        labels = np.zeros((3, 5), dtype=np.int64)
        scores = fitness.scores_ensemble(TargetPredictions(labels), rng=4)
        assert scores.shape == (5,)

    def test_negative_similarity_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            AgreementMarginFitness(similarity_weight=-0.1)
