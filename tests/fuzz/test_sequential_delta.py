"""Tests for the sequential engine's incremental (delta) encode path.

`HDTest.fuzz_one` now threads parent accumulators through the
:class:`~repro.fuzz.seeds.SeedPool`, encoding children from their
parent's accumulator instead of from scratch.  The algebra is exact, so
outcomes must be bit-identical to the direct path — for the bipolar,
binary, and packed model families alike.
"""

import numpy as np
import pytest

from repro.fuzz import HDTest, HDTestConfig, SeedPool
from repro.utils.rng import spawn


def _key(outcomes):
    return [
        (
            o.success,
            o.iterations,
            o.reference_label,
            None
            if o.example is None
            else (o.example.adversarial_label, o.example.adversarial.tobytes()),
        )
        for o in outcomes
    ]


def _run(model, strategy, inputs, cfg, seed, *, force_direct=False):
    fuzzer = HDTest(model, strategy, config=cfg)
    if force_direct:
        fuzzer._delta_encoder = lambda: None  # noqa: SLF001 - test hook
    return [
        fuzzer.fuzz_one(x, rng=g) for x, g in zip(inputs, spawn(seed, len(inputs)))
    ]


class TestSeedPoolSideData:
    def test_reset_and_update_carry_side_data(self):
        pool = SeedPool(2)
        pool.reset(np.zeros((2, 2)), accumulator=np.array([1, 2]), levels=np.array([0]))
        assert pool.best().generation == 0
        np.testing.assert_array_equal(pool.best().accumulator, [1, 2])
        children = np.arange(12, dtype=np.float64).reshape(3, 2, 2)
        accs = np.arange(6).reshape(3, 2)
        levels = np.arange(3).reshape(3, 1)
        pool.update(
            children, [0.1, 0.9, 0.5], generation=1, accumulators=accs, levels=levels
        )
        # Fittest first: candidate 1, then candidate 2.
        np.testing.assert_array_equal(pool.seeds[0].accumulator, accs[1])
        np.testing.assert_array_equal(pool.seeds[1].levels, levels[2])

    def test_side_data_defaults_to_none(self):
        pool = SeedPool(2)
        pool.reset("text seed")
        assert pool.best().accumulator is None
        pool.update(["a", "b"], [0.3, 0.6], generation=1)
        assert pool.seeds[0].levels is None


class TestSequentialDeltaEquivalence:
    @pytest.mark.parametrize("strategy", ["gauss", "rand", "shift"])
    def test_bipolar_matches_direct(self, trained_model, test_images, strategy):
        inputs = list(test_images[:4])
        cfg = HDTestConfig(iter_times=6)
        delta = _run(trained_model, strategy, inputs, cfg, 42)
        direct = _run(trained_model, strategy, inputs, cfg, 42, force_direct=True)
        assert _key(delta) == _key(direct)

    def test_without_dedupe(self, trained_model, test_images):
        inputs = list(test_images[:3])
        cfg = HDTestConfig(iter_times=5, dedupe=False)
        delta = _run(trained_model, "gauss", inputs, cfg, 8)
        direct = _run(trained_model, "gauss", inputs, cfg, 8, force_direct=True)
        assert _key(delta) == _key(direct)

    def test_binary_family_matches_direct(self, digit_data, test_images):
        from repro.hdc import BinaryHDCClassifier, BinaryPixelEncoder

        train, _ = digit_data
        model = BinaryHDCClassifier(
            BinaryPixelEncoder(dimension=512, rng=3), 10
        ).fit(train.images[:200], train.labels[:200])
        inputs = list(test_images[:3])
        cfg = HDTestConfig(iter_times=5)
        delta = _run(model, "gauss", inputs, cfg, 5)
        direct = _run(model, "gauss", inputs, cfg, 5, force_direct=True)
        assert _key(delta) == _key(direct)

    def test_delta_encoder_detected(self, trained_model):
        assert HDTest(trained_model, "gauss")._delta_encoder() is not None

    def test_delta_cache_still_bounded(self, trained_model, test_images):
        """A pathologically small dedupe cache must not change results."""
        inputs = list(test_images[:2])
        cfg = HDTestConfig(iter_times=5, cache_max_entries=2)
        delta = _run(trained_model, "gauss", inputs, cfg, 17)
        direct = _run(trained_model, "gauss", inputs, cfg, 17, force_direct=True)
        assert _key(delta) == _key(direct)
