"""Packed ↔ unpacked fuzzing equivalence (the tentpole property).

Packing is representation only, so the differential fuzzer must produce
**identical outcomes** — success flags, iteration counts, reference
labels, and the adversarial payloads themselves — whether the model
runs unpacked (int8 per component) or packed (uint64 words),
sequentially or batched, through any executor.  Both packed families
are covered: dense-binary ↔ packed-binary, and the paper's bipolar
family ↔ packed-bipolar (sign words + popcount cosine fitness).
"""

import numpy as np
import pytest

from repro.datasets import load_digits
from repro.fuzz import (
    BatchedExecutor,
    BatchedHDTest,
    DistanceGuidedFitness,
    HDTest,
    HDTestConfig,
    ProcessExecutor,
    compare_strategies,
)
from repro.hdc import (
    BinaryHDCClassifier,
    BinaryPixelEncoder,
    PackedBinaryHDCClassifier,
    PackedBipolarHDCClassifier,
)
from repro.hdc.backends.packed import pack_bits, pack_signs
from repro.utils.rng import spawn

DIM = 1024


@pytest.fixture(scope="module")
def binary_model(digit_data):
    train, _ = digit_data
    encoder = BinaryPixelEncoder(dimension=DIM, rng=5)
    return BinaryHDCClassifier(encoder, n_classes=10).fit(
        train.images[:300], train.labels[:300]
    )


@pytest.fixture(scope="module")
def packed_model(binary_model):
    return PackedBinaryHDCClassifier.from_binary(binary_model)


def _key(outcomes):
    return [
        (
            o.success,
            o.iterations,
            o.reference_label,
            None
            if o.example is None
            else (o.example.adversarial_label, o.example.adversarial.tobytes()),
        )
        for o in outcomes
    ]


class TestPackedFitness:
    def test_distance_fitness_bit_identical(self, binary_model, packed_model, rng):
        """1 − Cosim on packed words equals the unpacked computation."""
        bits = rng.integers(0, 2, size=(16, DIM)).astype(np.int8)
        ref = binary_model.reference_hv(0)
        fitness = DistanceGuidedFitness()
        np.testing.assert_array_equal(
            fitness.scores(pack_bits(ref), pack_bits(bits)),
            fitness.scores(ref, bits),
        )


class TestPackedFuzzingEquivalence:
    @pytest.mark.parametrize("strategy", ["gauss", "rand"])
    def test_batched_outcomes_identical(
        self, binary_model, packed_model, test_images, strategy
    ):
        inputs = list(test_images[:5])
        cfg = HDTestConfig(iter_times=8)
        unpacked = BatchedHDTest(binary_model, strategy, config=cfg).fuzz_outcomes(
            inputs, rng=21
        )
        packed = BatchedHDTest(packed_model, strategy, config=cfg).fuzz_outcomes(
            inputs, rng=21
        )
        assert _key(unpacked) == _key(packed)

    def test_sequential_outcomes_identical(
        self, binary_model, packed_model, test_images
    ):
        inputs = list(test_images[:4])
        cfg = HDTestConfig(iter_times=6)
        generators = spawn(77, len(inputs))
        unpacked = [
            HDTest(binary_model, "gauss", config=cfg).fuzz_one(x, rng=g)
            for x, g in zip(inputs, generators)
        ]
        packed = [
            HDTest(packed_model, "gauss", config=cfg).fuzz_one(x, rng=g)
            for x, g in zip(inputs, spawn(77, len(inputs)))
        ]
        assert _key(unpacked) == _key(packed)

    def test_unguided_outcomes_identical(self, binary_model, packed_model, test_images):
        inputs = list(test_images[:4])
        cfg = HDTestConfig(iter_times=6, guided=False)
        unpacked = BatchedHDTest(binary_model, "rand", config=cfg).fuzz_outcomes(
            inputs, rng=13
        )
        packed = BatchedHDTest(packed_model, "rand", config=cfg).fuzz_outcomes(
            inputs, rng=13
        )
        assert _key(unpacked) == _key(packed)

    def test_campaign_backend_flag(self, binary_model, test_images):
        """compare_strategies(backend='packed') == the unpacked campaign."""
        inputs = test_images[:4]
        cfg = HDTestConfig(iter_times=6)
        dense = compare_strategies(
            binary_model, inputs, ("gauss",), config=cfg, rng=2,
            executor=BatchedExecutor(batch_size=2),
        )["gauss"]
        packed = compare_strategies(
            binary_model, inputs, ("gauss",), config=cfg, rng=2,
            executor=BatchedExecutor(batch_size=2), backend="packed",
        )["gauss"]
        assert _key(dense.outcomes) == _key(packed.outcomes)

    def test_packed_adversarials_fool_the_unpacked_model(
        self, binary_model, packed_model, test_images
    ):
        cfg = HDTestConfig(iter_times=25)
        result = BatchedHDTest(packed_model, "gauss", config=cfg).fuzz(
            list(test_images[:4]), rng=6
        )
        for example in result.examples:
            assert (
                binary_model.predict_one(example.adversarial)
                == example.adversarial_label
            )


@pytest.fixture(scope="module")
def packed_bipolar_model(trained_model):
    """The shared dense bipolar fixture, repackaged onto sign words."""
    return PackedBipolarHDCClassifier.from_dense(trained_model)


class TestPackedBipolarFitness:
    def test_sign_cosine_fitness_bit_identical(self, trained_model, rng):
        """1 − Cosim on packed sign words equals the dense computation."""
        values = (rng.integers(0, 2, size=(16, DIM)) * 2 - 1).astype(np.int8)
        ref = trained_model.reference_hv(0)
        dense_scores = DistanceGuidedFitness().scores(ref, values)
        packed_scores = DistanceGuidedFitness(bipolar_dimension=DIM).scores(
            pack_signs(ref), pack_signs(values)
        )
        np.testing.assert_array_equal(packed_scores, dense_scores)

    def test_engine_default_fitness_picks_the_sign_kernel(
        self, trained_model, packed_bipolar_model
    ):
        dense_engine = HDTest(trained_model, "gauss")
        packed_engine = HDTest(packed_bipolar_model, "gauss")
        assert "bipolar_dimension" not in repr(dense_engine._fitness)  # noqa: SLF001
        assert f"bipolar_dimension={DIM}" in repr(packed_engine._fitness)  # noqa: SLF001

    def test_binary_scored_fitness_rejected_for_packed_bipolar(
        self, packed_bipolar_model
    ):
        """A mis-configured cosine fitness must fail loudly at construction."""
        from repro.errors import ConfigurationError
        from repro.fuzz import CoverageGuidedFitness, CoverageMap, RandomFitness

        with pytest.raises(ConfigurationError, match="bipolar_dimension"):
            HDTest(packed_bipolar_model, "gauss", fitness=DistanceGuidedFitness())
        # A wrong (stale) dimension is just as silently corrupting as None.
        with pytest.raises(ConfigurationError, match="bipolar_dimension"):
            HDTest(
                packed_bipolar_model, "gauss",
                fitness=DistanceGuidedFitness(bipolar_dimension=DIM // 2),
            )
        # The coverage fitness wraps a cosine term, so it is guarded too.
        packed_words = packed_bipolar_model.associative_memory.n_words
        with pytest.raises(ConfigurationError, match="bipolar_dimension"):
            HDTest(
                packed_bipolar_model, "gauss",
                fitness=CoverageGuidedFitness(CoverageMap(packed_words, rng=0)),
            )
        # Correctly-configured and non-cosine fitnesses still pass.
        HDTest(
            packed_bipolar_model, "gauss",
            fitness=DistanceGuidedFitness(bipolar_dimension=DIM),
        )
        HDTest(
            packed_bipolar_model, "gauss",
            fitness=CoverageGuidedFitness(
                CoverageMap(packed_words, rng=0), bipolar_dimension=DIM
            ),
        )
        HDTest(packed_bipolar_model, "gauss", fitness=RandomFitness(rng=0))


class TestPackedBipolarFuzzingEquivalence:
    """The paper's model, packed: same outcomes as dense, any schedule."""

    @pytest.mark.parametrize("strategy", ["gauss", "rand"])
    def test_batched_outcomes_identical(
        self, trained_model, packed_bipolar_model, test_images, strategy
    ):
        inputs = list(test_images[:5])
        cfg = HDTestConfig(iter_times=8)
        dense = BatchedHDTest(trained_model, strategy, config=cfg).fuzz_outcomes(
            inputs, rng=21
        )
        packed = BatchedHDTest(
            packed_bipolar_model, strategy, config=cfg
        ).fuzz_outcomes(inputs, rng=21)
        assert _key(dense) == _key(packed)
        assert any(o.success for o in dense)  # the equivalence has teeth

    def test_sequential_outcomes_identical(
        self, trained_model, packed_bipolar_model, test_images
    ):
        inputs = list(test_images[:4])
        cfg = HDTestConfig(iter_times=6)
        dense = [
            HDTest(trained_model, "gauss", config=cfg).fuzz_one(x, rng=g)
            for x, g in zip(inputs, spawn(77, len(inputs)))
        ]
        packed = [
            HDTest(packed_bipolar_model, "gauss", config=cfg).fuzz_one(x, rng=g)
            for x, g in zip(inputs, spawn(77, len(inputs)))
        ]
        assert _key(dense) == _key(packed)

    def test_executors_identical(
        self, trained_model, packed_bipolar_model, test_images
    ):
        """sequential == batched == ProcessExecutor on the packed model."""
        inputs = list(test_images[:6])
        cfg = HDTestConfig(iter_times=8)
        dense = BatchedHDTest(trained_model, "gauss", config=cfg).fuzz_outcomes(
            inputs, generators=spawn(9, len(inputs))
        )
        via_batched = BatchedExecutor(batch_size=2).run(
            packed_bipolar_model, "gauss", inputs, config=cfg, rng=9
        )
        assert _key(dense) == _key(via_batched.outcomes)
        with ProcessExecutor(n_workers=2, batch_size=2) as executor:
            via_process = executor.run(
                packed_bipolar_model, "gauss", inputs, config=cfg, rng=9
            )
        assert _key(dense) == _key(via_process.outcomes)

    def test_unguided_outcomes_identical(
        self, trained_model, packed_bipolar_model, test_images
    ):
        inputs = list(test_images[:4])
        cfg = HDTestConfig(iter_times=6, guided=False)
        dense = BatchedHDTest(trained_model, "rand", config=cfg).fuzz_outcomes(
            inputs, rng=13
        )
        packed = BatchedHDTest(
            packed_bipolar_model, "rand", config=cfg
        ).fuzz_outcomes(inputs, rng=13)
        assert _key(dense) == _key(packed)

    def test_campaign_backend_flag(self, trained_model, test_images):
        """compare_strategies(backend='packed-bipolar') == the dense campaign."""
        inputs = test_images[:4]
        cfg = HDTestConfig(iter_times=6)
        dense = compare_strategies(
            trained_model, inputs, ("gauss",), config=cfg, rng=2,
            executor=BatchedExecutor(batch_size=2),
        )["gauss"]
        packed = compare_strategies(
            trained_model, inputs, ("gauss",), config=cfg, rng=2,
            executor=BatchedExecutor(batch_size=2), backend="packed-bipolar",
        )["gauss"]
        assert _key(dense.outcomes) == _key(packed.outcomes)

    def test_packed_adversarials_fool_the_dense_model(
        self, trained_model, packed_bipolar_model, test_images
    ):
        cfg = HDTestConfig(iter_times=25)
        result = BatchedHDTest(packed_bipolar_model, "gauss", config=cfg).fuzz(
            list(test_images[:4]), rng=6
        )
        assert result.n_success > 0
        for example in result.examples:
            assert (
                trained_model.predict_one(example.adversarial)
                == example.adversarial_label
            )
