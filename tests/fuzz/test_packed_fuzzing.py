"""Packed ↔ unpacked fuzzing equivalence (the tentpole property).

Packing is representation only, so the differential fuzzer must produce
**identical outcomes** — success flags, iteration counts, reference
labels, and the adversarial payloads themselves — whether the binary
model runs unpacked (int8 per component) or packed (uint64 words),
sequentially or batched, through any executor.
"""

import numpy as np
import pytest

from repro.datasets import load_digits
from repro.fuzz import (
    BatchedExecutor,
    BatchedHDTest,
    DistanceGuidedFitness,
    HDTest,
    HDTestConfig,
    compare_strategies,
)
from repro.hdc import (
    BinaryHDCClassifier,
    BinaryPixelEncoder,
    PackedBinaryHDCClassifier,
)
from repro.hdc.backends.packed import pack_bits
from repro.utils.rng import spawn

DIM = 1024


@pytest.fixture(scope="module")
def binary_model(digit_data):
    train, _ = digit_data
    encoder = BinaryPixelEncoder(dimension=DIM, rng=5)
    return BinaryHDCClassifier(encoder, n_classes=10).fit(
        train.images[:300], train.labels[:300]
    )


@pytest.fixture(scope="module")
def packed_model(binary_model):
    return PackedBinaryHDCClassifier.from_binary(binary_model)


def _key(outcomes):
    return [
        (
            o.success,
            o.iterations,
            o.reference_label,
            None
            if o.example is None
            else (o.example.adversarial_label, o.example.adversarial.tobytes()),
        )
        for o in outcomes
    ]


class TestPackedFitness:
    def test_distance_fitness_bit_identical(self, binary_model, packed_model, rng):
        """1 − Cosim on packed words equals the unpacked computation."""
        bits = rng.integers(0, 2, size=(16, DIM)).astype(np.int8)
        ref = binary_model.reference_hv(0)
        fitness = DistanceGuidedFitness()
        np.testing.assert_array_equal(
            fitness.scores(pack_bits(ref), pack_bits(bits)),
            fitness.scores(ref, bits),
        )


class TestPackedFuzzingEquivalence:
    @pytest.mark.parametrize("strategy", ["gauss", "rand"])
    def test_batched_outcomes_identical(
        self, binary_model, packed_model, test_images, strategy
    ):
        inputs = list(test_images[:5])
        cfg = HDTestConfig(iter_times=8)
        unpacked = BatchedHDTest(binary_model, strategy, config=cfg).fuzz_outcomes(
            inputs, rng=21
        )
        packed = BatchedHDTest(packed_model, strategy, config=cfg).fuzz_outcomes(
            inputs, rng=21
        )
        assert _key(unpacked) == _key(packed)

    def test_sequential_outcomes_identical(
        self, binary_model, packed_model, test_images
    ):
        inputs = list(test_images[:4])
        cfg = HDTestConfig(iter_times=6)
        generators = spawn(77, len(inputs))
        unpacked = [
            HDTest(binary_model, "gauss", config=cfg).fuzz_one(x, rng=g)
            for x, g in zip(inputs, generators)
        ]
        packed = [
            HDTest(packed_model, "gauss", config=cfg).fuzz_one(x, rng=g)
            for x, g in zip(inputs, spawn(77, len(inputs)))
        ]
        assert _key(unpacked) == _key(packed)

    def test_unguided_outcomes_identical(self, binary_model, packed_model, test_images):
        inputs = list(test_images[:4])
        cfg = HDTestConfig(iter_times=6, guided=False)
        unpacked = BatchedHDTest(binary_model, "rand", config=cfg).fuzz_outcomes(
            inputs, rng=13
        )
        packed = BatchedHDTest(packed_model, "rand", config=cfg).fuzz_outcomes(
            inputs, rng=13
        )
        assert _key(unpacked) == _key(packed)

    def test_campaign_backend_flag(self, binary_model, test_images):
        """compare_strategies(backend='packed') == the unpacked campaign."""
        inputs = test_images[:4]
        cfg = HDTestConfig(iter_times=6)
        dense = compare_strategies(
            binary_model, inputs, ("gauss",), config=cfg, rng=2,
            executor=BatchedExecutor(batch_size=2),
        )["gauss"]
        packed = compare_strategies(
            binary_model, inputs, ("gauss",), config=cfg, rng=2,
            executor=BatchedExecutor(batch_size=2), backend="packed",
        )["gauss"]
        assert _key(dense.outcomes) == _key(packed.outcomes)

    def test_packed_adversarials_fool_the_unpacked_model(
        self, binary_model, packed_model, test_images
    ):
        cfg = HDTestConfig(iter_times=25)
        result = BatchedHDTest(packed_model, "gauss", config=cfg).fuzz(
            list(test_images[:4]), rng=6
        )
        for example in result.examples:
            assert (
                binary_model.predict_one(example.adversarial)
                == example.adversarial_label
            )
