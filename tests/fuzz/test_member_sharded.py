"""Member-sharded execution must be a pure schedule change.

The acceptance property mirrors the executor suite's: sharding one
worker per ensemble member — with the parent running mutation, oracle,
fitness, and survival — produces campaigns bit-identical to the serial,
batched, and process schedules, for both target shapes (independent
codebooks: workers encode their own block; shared codebook: the parent
encodes once and workers answer AM queries) and both transports (shm
handles or pickled arrays).  Everything else here guards the machinery:
group lifecycle and reuse, graceful shutdown, telemetry equality, and
the zero-copy broadcast actually being smaller on the wire.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fuzz import HDTestConfig
from repro.fuzz.batch import BatchedHDTest
from repro.fuzz.executor import (
    BatchedExecutor,
    MemberShardedExecutor,
    SerialExecutor,
    create_executor,
)
from repro.fuzz.member_sharded import (
    MemberShardedHDTest,
    MemberWorkerGroup,
    create_member_engine,
)
from repro.fuzz.oracle import CrossModelOracle, MajorityOracle
from repro.fuzz.targets import ModelEnsembleTarget, SharedCodebookEnsembleTarget
from repro.obs import CampaignTelemetry

CONFIG = HDTestConfig(iter_times=4, children_per_seed=4)

#: Engine counters that must be schedule-invariant (the conservation
#: laws in the recorder's docstring, summed across members).
INVARIANT_COUNTERS = (
    "inputs", "iterations", "children", "encode_requests",
    "encoded_children", "encodes", "seed_encodes", "am_queries", "retired",
)


@pytest.fixture(scope="module")
def independent_target(trained_model, digit_data):
    train, _ = digit_data
    return ModelEnsembleTarget.trained_like(
        trained_model, 3, train.images[:200], train.labels[:200], rng=5
    )


@pytest.fixture(scope="module")
def shared_target(trained_model, digit_data):
    train, _ = digit_data
    return SharedCodebookEnsembleTarget.trained_shared(
        trained_model, 3, train.images[:200], train.labels[:200], rng=11
    )


def _outcome_key(outcome):
    return (
        outcome.success,
        outcome.iterations,
        outcome.reference_label,
        None
        if outcome.example is None
        else (
            outcome.example.adversarial_label,
            tuple(np.asarray(outcome.example.adversarial).ravel()),
        ),
    )


def _keys(result):
    return [_outcome_key(outcome) for outcome in result.outcomes]


def _run_sharded(target, inputs, *, transport="shm", telemetry=None, **kwargs):
    executor = MemberShardedExecutor(batch_size=3, transport=transport)
    try:
        return executor.run(
            target, "gauss", inputs, config=CONFIG,
            telemetry=telemetry, **kwargs,
        )
    finally:
        executor.close()


class TestBitIdentity:
    @pytest.mark.parametrize("target_kind", ["independent", "shared"])
    @pytest.mark.parametrize(
        "oracle_factory",
        [CrossModelOracle, lambda: MajorityOracle(10)],
        ids=["cross", "majority"],
    )
    def test_matches_batched(
        self, target_kind, oracle_factory, independent_target, shared_target,
        test_images,
    ):
        target = (
            independent_target if target_kind == "independent" else shared_target
        )
        inputs = list(test_images[:5])
        batched = BatchedExecutor(batch_size=3).run(
            target, "gauss", inputs, config=CONFIG,
            oracle=oracle_factory(), rng=7,
        )
        sharded = _run_sharded(target, inputs, oracle=oracle_factory(), rng=7)
        assert _keys(batched) == _keys(sharded)
        assert sharded.executor == "member-sharded"
        assert sharded.n_members == 3

    def test_matches_serial_and_batched_unguided(
        self, independent_target, test_images
    ):
        inputs = list(test_images[:4])
        config = HDTestConfig(iter_times=4, guided=False)
        serial = SerialExecutor().run(
            independent_target, "gauss", inputs, config=config, rng=3
        )
        batched = BatchedExecutor(batch_size=4).run(
            independent_target, "gauss", inputs, config=config, rng=3
        )
        executor = MemberShardedExecutor(transport="pickle")
        try:
            sharded = executor.run(
                independent_target, "gauss", inputs, config=config, rng=3
            )
        finally:
            executor.close()
        # Byte-exact against the batched schedule it mirrors; serial may
        # surface a different (equally valid) successful child, so the
        # serial comparison checks the campaign-level outcome only.
        assert _keys(batched) == _keys(sharded)
        coarse = lambda r: [  # noqa: E731
            (o.success, o.iterations, o.reference_label) for o in r.outcomes
        ]
        assert coarse(serial) == coarse(sharded)
        assert not sharded.guided

    def test_pickle_transport_matches_shm(self, shared_target, test_images):
        inputs = list(test_images[:4])
        via_shm = _run_sharded(shared_target, inputs, rng=2)
        via_pickle = _run_sharded(shared_target, inputs, transport="pickle", rng=2)
        assert _keys(via_shm) == _keys(via_pickle)

    def test_scratch_encode_path_matches_delta(
        self, independent_target, test_images
    ):
        """Forcing workers off the delta path must not change outcomes."""

        class ScratchOnly(MemberShardedHDTest):
            def _member_delta_allowed(self):
                return False

        inputs = list(test_images[:4])
        probe = BatchedHDTest(independent_target, "gauss", config=CONFIG)
        reference = BatchedHDTest(
            independent_target, "gauss", config=CONFIG, rng=1
        ).fuzz(inputs)
        with MemberWorkerGroup(
            independent_target.member_shards(), probe.domain, probe.config
        ) as group:
            scratch = ScratchOnly(
                independent_target, "gauss", group=group, config=CONFIG, rng=1
            ).fuzz(inputs)
        assert _keys(reference) == _keys(scratch)


class TestTelemetry:
    @pytest.mark.parametrize("target_kind", ["independent", "shared"])
    def test_engine_counters_match_batched(
        self, target_kind, independent_target, shared_target, test_images
    ):
        target = (
            independent_target if target_kind == "independent" else shared_target
        )
        inputs = list(test_images[:5])
        obs_batched, obs_sharded = CampaignTelemetry(), CampaignTelemetry()
        BatchedExecutor(batch_size=3).run(
            target, "gauss", inputs, config=CONFIG, rng=7, telemetry=obs_batched
        )
        _run_sharded(target, inputs, rng=7, telemetry=obs_sharded)
        batched = obs_batched.snapshot()["counters"]
        sharded = obs_sharded.snapshot()["counters"]
        for name in INVARIANT_COUNTERS:
            assert batched.get(name, 0) == sharded.get(name, 0), name

    def test_ipc_phases_and_bytes_recorded(self, independent_target, test_images):
        obs = CampaignTelemetry()
        result = _run_sharded(
            independent_target, list(test_images[:4]), rng=7, telemetry=obs
        )
        counters = result.telemetry["counters"]
        phases = result.telemetry["phase_seconds"]
        assert counters["broadcast_bytes"] > 0
        assert phases["broadcast"] > 0
        assert phases["gather"] > 0
        assert result.telemetry["busy_seconds"] > 0

    def test_shm_broadcast_is_smaller_on_the_wire(
        self, shared_target, test_images
    ):
        """Steady-state traffic: shm ships handles, pickle ships arrays."""
        inputs = list(test_images[:4])
        per_iteration = {}
        for transport in ("shm", "pickle"):
            executor = MemberShardedExecutor(batch_size=4, transport=transport)
            try:
                # First run builds the group (and counts the one-off
                # member broadcast); the second reuses it, so its
                # counter is pure per-iteration traffic.
                executor.run(shared_target, "gauss", inputs, config=CONFIG, rng=2)
                if transport == "shm":
                    assert executor._group.transport == "shm"
                obs = CampaignTelemetry()
                executor.run(
                    shared_target, "gauss", inputs, config=CONFIG, rng=2,
                    telemetry=obs,
                )
            finally:
                executor.close()
            per_iteration[transport] = obs.snapshot()["counters"]["broadcast_bytes"]
        assert per_iteration["pickle"] >= 5 * per_iteration["shm"]


class TestGroupLifecycle:
    def test_group_reused_across_same_spec_runs(
        self, independent_target, test_images
    ):
        inputs = list(test_images[:4])
        executor = MemberShardedExecutor(batch_size=4)
        try:
            first = executor.run(
                independent_target, "gauss", inputs, config=CONFIG, rng=7
            )
            group = executor._group
            assert group is not None and group.alive
            second = executor.run(
                independent_target, "gauss", inputs, config=CONFIG, rng=7
            )
            assert executor._group is group  # reused, not rebuilt
            # Telemetry toggling must not rebuild either (it never
            # crosses into the workers).
            executor.run(
                independent_target, "gauss", inputs, config=CONFIG, rng=7,
                telemetry=CampaignTelemetry(),
            )
            assert executor._group is group
            assert _keys(first) == _keys(second)
        finally:
            executor.close()
        assert executor._group is None

    def test_spec_change_rebuilds_group(self, independent_target, test_images):
        inputs = list(test_images[:4])
        executor = MemberShardedExecutor(batch_size=4)
        try:
            executor.run(independent_target, "gauss", inputs, config=CONFIG, rng=7)
            group = executor._group
            executor.run(
                independent_target, "gauss", inputs,
                config=HDTestConfig(iter_times=3), rng=7,
            )
            assert executor._group is not group
            assert not group.alive
        finally:
            executor.close()

    def test_close_is_graceful(self, independent_target, test_images):
        """Workers exit via the stop message, not SIGTERM."""
        executor = MemberShardedExecutor(batch_size=4)
        try:
            executor.run(
                independent_target, "gauss", list(test_images[:4]),
                config=CONFIG, rng=7,
            )
            group = executor._group
        finally:
            executor.close()
        assert not group.alive
        assert group.worker_exitcodes() == [0, 0, 0]

    def test_leaves_no_shm_segments(self, shared_target, test_images, tmp_path):
        import pathlib

        shm_dir = pathlib.Path("/dev/shm")
        if not shm_dir.is_dir():
            pytest.skip("no /dev/shm on this platform")
        before = {p.name for p in shm_dir.iterdir()}
        _run_sharded(shared_target, list(test_images[:4]), rng=2)
        assert {p.name for p in shm_dir.iterdir()} == before


class TestValidation:
    def test_single_model_rejected(self, trained_model, test_images):
        executor = MemberShardedExecutor()
        with pytest.raises(ConfigurationError, match=">= 2 members"):
            executor.run(
                trained_model, "gauss", list(test_images[:2]), config=CONFIG
            )

    def test_group_needs_two_shards(self, independent_target):
        probe = BatchedHDTest(independent_target, "gauss", config=CONFIG)
        shard = independent_target.member_shards()[0]
        with pytest.raises(ConfigurationError, match=">= 2 members"):
            MemberWorkerGroup([shard], probe.domain, probe.config)

    def test_invalid_transport_rejected(self, independent_target):
        probe = BatchedHDTest(independent_target, "gauss", config=CONFIG)
        with pytest.raises(ConfigurationError, match="transport"):
            MemberWorkerGroup(
                independent_target.member_shards(), probe.domain, probe.config,
                transport="carrier-pigeon",
            )

    def test_engine_requires_matching_group(self, independent_target):
        probe = BatchedHDTest(independent_target, "gauss", config=CONFIG)
        with MemberWorkerGroup(
            independent_target.member_shards()[:2], probe.domain, probe.config
        ) as group:
            with pytest.raises(ConfigurationError, match="members"):
                MemberShardedHDTest(
                    independent_target, "gauss", group=group, config=CONFIG
                )

    def test_n_workers_knob_rejected(self):
        with pytest.raises(ConfigurationError, match="does not apply"):
            create_executor("member-sharded", n_workers=2)

    def test_uniform_knob_bundle_accepted(self):
        executor = create_executor(
            "member-sharded", batch_size=4, n_workers=None
        )
        assert executor.batch_size == 4


class TestEngineSelection:
    def test_shared_codebook_gets_vote_gather_proxy(
        self, shared_target, trained_model
    ):
        probe = BatchedHDTest(shared_target, "gauss", config=CONFIG)
        with MemberWorkerGroup(
            shared_target.member_shards(), probe.domain, probe.config
        ) as group:
            assert not group.encodes_locally
            engine = create_member_engine(
                group, shared_target, "gauss", config=CONFIG, rng=0
            )
            assert isinstance(engine, BatchedHDTest)
            assert not isinstance(engine, MemberShardedHDTest)

    def test_independent_members_get_sharded_engine(self, independent_target):
        probe = BatchedHDTest(independent_target, "gauss", config=CONFIG)
        with MemberWorkerGroup(
            independent_target.member_shards(), probe.domain, probe.config
        ) as group:
            assert group.encodes_locally
            engine = create_member_engine(
                group, independent_target, "gauss", config=CONFIG, rng=0
            )
            assert isinstance(engine, MemberShardedHDTest)
