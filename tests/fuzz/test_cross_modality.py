"""Cross-modality engine equivalence (the Sec. V-E generality claim).

The load-bearing property of the domain layer: for text and record
campaigns — exactly as for images — sequential :meth:`HDTest.fuzz_one`,
the lock-step :class:`BatchedHDTest`, and the executor schedules
(batched chunks, process shards) produce **bit-identical per-input
outcomes** under the shared RNG discipline, and the n-gram delta
encoder matches scratch encoding exactly.
"""

import numpy as np
import pytest

from repro.datasets import make_language_dataset, make_voice_dataset
from repro.fuzz import (
    BatchedExecutor,
    BatchedHDTest,
    HDTest,
    HDTestConfig,
    ProcessExecutor,
)
from repro.hdc import HDCClassifier, NgramEncoder
from repro.hdc.encoders.record import RecordEncoder
from repro.utils.rng import spawn

DIM = 1024


@pytest.fixture(scope="module")
def text_setup():
    """A trained n-gram language model plus a pool of test strings."""
    data = make_language_dataset(n_per_class=24, n_languages=3, length=48, seed=11)
    train, test = data.split(0.8, rng=0)
    encoder = NgramEncoder(n=3, dimension=DIM, rng=11)
    model = HDCClassifier(encoder, n_classes=3).fit(list(train.texts), train.labels)
    return model, list(test.texts)


@pytest.fixture(scope="module")
def record_setup():
    """A trained record (voice) model plus a pool of test records."""
    data = make_voice_dataset(n_per_class=20, n_classes=4, n_features=32, seed=11)
    train, test = data.split(0.8, rng=0)
    encoder = RecordEncoder(n_features=32, levels=32, dimension=DIM, rng=11)
    model = HDCClassifier(encoder, n_classes=4).fit(train.records, train.labels)
    return model, list(test.records)


def _assert_outcomes_equal(expected, actual, *, text=False):
    assert len(expected) == len(actual)
    for a, b in zip(expected, actual):
        assert a.success == b.success
        assert a.iterations == b.iterations
        assert a.reference_label == b.reference_label
        if a.success:
            assert a.example.adversarial_label == b.example.adversarial_label
            assert a.example.metrics == b.example.metrics
            if text:
                assert a.example.adversarial == b.example.adversarial
                assert isinstance(b.example.adversarial, str)
            else:
                np.testing.assert_array_equal(
                    a.example.adversarial, b.example.adversarial
                )


class TestTextEquivalence:
    @pytest.mark.parametrize("strategy", ["char_sub", "char_swap"])
    def test_sequential_matches_batched(self, text_setup, strategy):
        model, texts = text_setup
        inputs = texts[:6]
        cfg = HDTestConfig(iter_times=8)
        generators = spawn(314, len(inputs))
        sequential = [
            HDTest(model, strategy, config=cfg).fuzz_one(t, rng=g)
            for t, g in zip(inputs, generators)
        ]
        batched = BatchedHDTest(model, strategy, config=cfg).fuzz_outcomes(
            inputs, rng=314
        )
        _assert_outcomes_equal(sequential, batched, text=True)
        assert any(o.success for o in batched)  # the test has teeth

    def test_batched_matches_executors(self, text_setup):
        model, texts = text_setup
        inputs = texts[:6]
        cfg = HDTestConfig(iter_times=8)
        direct = BatchedHDTest(model, "char_sub", config=cfg).fuzz_outcomes(
            inputs, generators=spawn(9, len(inputs))
        )
        via_batched = BatchedExecutor(batch_size=2).run(
            model, "char_sub", inputs, config=cfg, rng=9
        )
        _assert_outcomes_equal(direct, via_batched.outcomes, text=True)
        with ProcessExecutor(n_workers=2, batch_size=2) as executor:
            via_process = executor.run(model, "char_sub", inputs, config=cfg, rng=9)
        _assert_outcomes_equal(direct, via_process.outcomes, text=True)

    def test_delta_matches_scratch_engine(self, text_setup):
        """The whole campaign, delta vs forced-scratch: bit-identical."""
        model, texts = text_setup
        inputs = texts[:5]
        cfg = HDTestConfig(iter_times=8)
        fast = BatchedHDTest(model, "char_sub", config=cfg).fuzz_outcomes(
            inputs, rng=21
        )
        scratch_engine = BatchedHDTest(model, "char_sub", config=cfg)
        scratch_engine._delta_encoder = lambda: None  # noqa: SLF001 - test hook
        scratch = scratch_engine.fuzz_outcomes(inputs, rng=21)
        _assert_outcomes_equal(fast, scratch, text=True)

    def test_unguided_matches(self, text_setup):
        model, texts = text_setup
        inputs = texts[:5]
        cfg = HDTestConfig(iter_times=8, guided=False)
        generators = spawn(77, len(inputs))
        sequential = [
            HDTest(model, "char_sub", config=cfg).fuzz_one(t, rng=g)
            for t, g in zip(inputs, generators)
        ]
        batched = BatchedHDTest(model, "char_sub", config=cfg).fuzz_outcomes(
            inputs, rng=77
        )
        _assert_outcomes_equal(sequential, batched, text=True)

    def test_without_dedupe_matches(self, text_setup):
        model, texts = text_setup
        inputs = texts[:4]
        cfg = HDTestConfig(iter_times=6, dedupe=False)
        generators = spawn(5, len(inputs))
        sequential = [
            HDTest(model, "char_swap", config=cfg).fuzz_one(t, rng=g)
            for t, g in zip(inputs, generators)
        ]
        batched = BatchedHDTest(model, "char_swap", config=cfg).fuzz_outcomes(
            inputs, rng=5
        )
        _assert_outcomes_equal(sequential, batched, text=True)

    def test_adversarial_example_flips_model(self, text_setup):
        model, texts = text_setup
        result = BatchedHDTest(
            model, "char_sub", config=HDTestConfig(iter_times=15)
        ).fuzz(texts[:6], rng=1)
        assert result.n_success > 0
        for example in result.examples:
            assert isinstance(example.original, str)
            assert isinstance(example.adversarial, str)
            assert len(example.original) == len(example.adversarial)
            assert model.predict_one(example.adversarial) == example.adversarial_label
            assert model.predict_one(example.original) == example.reference_label
            assert example.metrics["edits"] <= 30  # default TextConstraint budget


class TestRecordEquivalence:
    @pytest.mark.parametrize(
        "strategy", ["record_gauss", "record_rand", "record_shift"]
    )
    def test_sequential_matches_batched(self, record_setup, strategy):
        model, records = record_setup
        inputs = records[:6]
        cfg = HDTestConfig(iter_times=8)
        generators = spawn(2718, len(inputs))
        sequential = [
            HDTest(model, strategy, config=cfg).fuzz_one(r, rng=g)
            for r, g in zip(inputs, generators)
        ]
        batched = BatchedHDTest(model, strategy, config=cfg).fuzz_outcomes(
            inputs, rng=2718
        )
        _assert_outcomes_equal(sequential, batched)

    def test_batched_matches_executors(self, record_setup):
        model, records = record_setup
        inputs = records[:6]
        cfg = HDTestConfig(iter_times=8)
        direct = BatchedHDTest(model, "record_gauss", config=cfg).fuzz_outcomes(
            inputs, generators=spawn(9, len(inputs))
        )
        via_batched = BatchedExecutor(batch_size=2).run(
            model, "record_gauss", inputs, config=cfg, rng=9
        )
        _assert_outcomes_equal(direct, via_batched.outcomes)
        with ProcessExecutor(n_workers=2, batch_size=2) as executor:
            via_process = executor.run(
                model, "record_gauss", inputs, config=cfg, rng=9
            )
        _assert_outcomes_equal(direct, via_process.outcomes)

    def test_record_delta_encoder_detected(self, record_setup):
        """The record encoder now exposes the incremental surface."""
        model, _ = record_setup
        engine = BatchedHDTest(model, "record_gauss")
        assert engine._delta_encoder() is model.encoder  # noqa: SLF001

    def test_record_delta_matches_scratch_engine(self, record_setup):
        """The whole record campaign, delta vs forced-scratch: bit-identical."""
        model, records = record_setup
        inputs = records[:8]
        cfg = HDTestConfig(iter_times=25)
        fast = BatchedHDTest(model, "record_gauss", config=cfg).fuzz_outcomes(
            inputs, rng=21
        )
        scratch_engine = BatchedHDTest(model, "record_gauss", config=cfg)
        scratch_engine._delta_encoder = lambda: None  # noqa: SLF001 - test hook
        scratch = scratch_engine.fuzz_outcomes(inputs, rng=21)
        _assert_outcomes_equal(fast, scratch)
        assert any(o.success for o in fast)  # the comparison has teeth


class TestNgramDeltaParity:
    """Delta n-gram accumulators equal scratch on substitution chains."""

    def test_randomized_substitution_chains(self):
        rng = np.random.default_rng(0)
        encoder = NgramEncoder(n=3, alphabet="abcdef ", dimension=256, rng=0)
        n_symbols = len(encoder.alphabet)
        for length in (3, 4, 9, 40):
            current = rng.integers(0, n_symbols, size=length).astype(np.int64)
            acc = encoder.accumulate_batch(current[None])[0]
            for _ in range(15):
                child = current.copy()
                k = int(rng.integers(1, min(5, length) + 1))
                positions = rng.choice(length, size=k, replace=False)
                child[positions] = rng.integers(0, n_symbols, size=k)
                delta = encoder.accumulate_delta(
                    child[None], current[None], acc[None]
                )[0]
                scratch = encoder.accumulate_batch(child[None])[0]
                np.testing.assert_array_equal(delta, scratch)
                # Chain: the child becomes the next parent, so errors
                # would compound rather than hide.
                current, acc = child, delta

    def test_higher_order_grams(self):
        rng = np.random.default_rng(3)
        encoder = NgramEncoder(n=5, alphabet="abcd", dimension=128, rng=1)
        parent = rng.integers(0, 4, size=20).astype(np.int64)
        acc = encoder.accumulate_batch(parent[None])
        children = np.repeat(parent[None], 6, axis=0)
        for i in range(6):
            pos = rng.choice(20, size=2, replace=False)
            children[i, pos] = rng.integers(0, 4, size=2)
        delta = encoder.accumulate_delta(
            children, np.repeat(parent[None], 6, axis=0), np.repeat(acc, 6, axis=0)
        )
        np.testing.assert_array_equal(delta, encoder.accumulate_batch(children))

    def test_identical_child_is_free(self):
        encoder = NgramEncoder(n=3, alphabet="abc", dimension=64, rng=2)
        parent = np.array([0, 1, 2, 0, 1], dtype=np.int64)
        acc = encoder.accumulate_batch(parent[None])
        delta = encoder.accumulate_delta(parent[None], parent[None], acc)
        np.testing.assert_array_equal(delta, acc)
