"""Tests for perturbation constraints (the Sec. IV distance budget)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ConstraintError
from repro.fuzz.constraints import ImageConstraint, NullConstraint, TextConstraint


@pytest.fixture()
def original():
    return np.full((28, 28), 100.0)


class TestImageConstraint:
    def test_paper_default_budget(self):
        assert ImageConstraint().max_l2 == 1.0

    def test_accept_within_l2(self, original):
        candidate = original.copy()
        candidate[0, 0] += 100.0  # L2 = 100/255 ≈ 0.39
        mask = ImageConstraint(max_l2=1.0).accept(original, candidate[None])
        assert mask.tolist() == [True]

    def test_reject_beyond_l2(self, original):
        candidate = original + 20.0  # L2 = sqrt(784)*(20/255) ≈ 2.2
        mask = ImageConstraint(max_l2=1.0).accept(original, candidate[None])
        assert mask.tolist() == [False]

    def test_boundary_is_inclusive(self, original):
        candidate = original.copy()
        candidate[0, 0] += 255.0  # exactly L2 = 1 after clipping... use raw
        candidate = np.clip(candidate, 0, 255)
        mask = ImageConstraint(max_l2=(155.0 / 255.0)).accept(original, candidate[None])
        assert mask.tolist() == [True]

    def test_l1_budget(self, original):
        c = ImageConstraint(max_l2=None, max_l1=1.0)
        near = original.copy()
        near[0, 0] += 200.0
        far = original + 1.0  # L1 = 784/255 ≈ 3.1
        mask = c.accept(original, np.stack([near, far]))
        assert mask.tolist() == [True, False]

    def test_linf_budget(self, original):
        c = ImageConstraint(max_l2=None, max_linf=0.1)
        small = original + 20.0  # per-pixel 0.078
        big = original.copy()
        big[0, 0] += 50.0  # 0.196
        mask = c.accept(original, np.stack([small, big]))
        assert mask.tolist() == [True, False]

    def test_single_image_promoted(self, original):
        mask = ImageConstraint().accept(original, original.copy())
        assert mask.shape == (1,)

    def test_clip(self):
        out = ImageConstraint().clip(np.array([[-5.0, 300.0]]))
        np.testing.assert_array_equal(out, [[0.0, 255.0]])

    def test_measure_keys(self, original):
        metrics = ImageConstraint().measure(original, original + 1.0)
        assert set(metrics) == {"l1", "l2", "linf", "l0"}

    def test_shape_mismatch_rejected(self, original):
        with pytest.raises(ConstraintError):
            ImageConstraint().accept(original, np.zeros((1, 5, 5)))

    def test_all_none_budgets_rejected(self):
        with pytest.raises(ConstraintError, match="NullConstraint"):
            ImageConstraint(max_l2=None)

    def test_negative_budget_rejected(self):
        with pytest.raises(Exception):
            ImageConstraint(max_l2=-0.5)


class TestTextConstraint:
    def test_accept_within_edits(self):
        c = TextConstraint(max_edits=2)
        mask = c.accept("abcd", ["abcx", "xxcd", "xxxd"])
        assert mask.tolist() == [True, True, False]

    def test_length_change_raises(self):
        # Regression: unequal-length pairs are a configuration bug (text
        # mutation is length-preserving by contract), not a rejectable
        # mutant — no silent inf-edit scoring or implicit broadcasting.
        c = TextConstraint(max_edits=100)
        with pytest.raises(ConfigurationError, match="preserve length"):
            c.accept("abc", ["abcd"])
        with pytest.raises(ConfigurationError, match="preserve length"):
            c.measure("abc", "abcd")

    def test_length_change_raises_on_code_arrays(self):
        c = TextConstraint(max_edits=100)
        with pytest.raises(ConfigurationError, match="preserve length"):
            c.accept(np.zeros(3, dtype=np.uint8), np.zeros((2, 4), dtype=np.uint8))

    def test_measure(self):
        assert TextConstraint().measure("abc", "axc") == {"edits": 1.0}

    def test_code_array_accept_matches_strings(self):
        c = TextConstraint(max_edits=2)
        original = np.array([0, 1, 2, 3], dtype=np.uint8)
        candidates = np.array(
            [[0, 1, 2, 9], [9, 9, 2, 3], [9, 9, 9, 3]], dtype=np.uint8
        )
        assert c.accept(original, candidates).tolist() == [True, True, False]
        assert c.measure(original, candidates[0]) == {"edits": 1.0}

    def test_clip_is_identity(self):
        texts = ["a", "b"]
        assert TextConstraint().clip(texts) is texts

    def test_invalid_budget(self):
        with pytest.raises(ConstraintError):
            TextConstraint(max_edits=0)


class TestNullConstraint:
    def test_accepts_everything(self, original):
        wild = original + 255.0
        mask = NullConstraint().accept(original, np.clip(wild, 0, 255)[None])
        assert mask.tolist() == [True]

    def test_clips_images(self):
        out = NullConstraint().clip(np.array([[-1.0, 999.0]]))
        np.testing.assert_array_equal(out, [[0.0, 255.0]])

    def test_passes_text_through(self):
        texts = ["x"]
        assert NullConstraint().clip(texts) is texts
        assert NullConstraint().accept("x", texts).tolist() == [True]

    def test_measure_images(self, original):
        assert "l2" in NullConstraint().measure(original, original + 1.0)

    def test_measure_text_empty(self):
        assert NullConstraint().measure("a", "b") == {}
