"""The adaptive campaign driver: reproducibility, schedules, accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, FuzzingError
from repro.fuzz import (
    BatchedExecutor,
    ImageConstraint,
    ProcessExecutor,
    generate_adversarial_set,
    run_adaptive_campaign,
)
from repro.fuzz.adaptive.driver import DEFAULT_ARMS, SCHEDULES
from repro.fuzz.fuzzer import HDTestConfig
from repro.obs import CampaignTelemetry


@pytest.fixture(scope="module")
def pool(digit_data):
    _, test = digit_data
    inputs = [test.images[i].astype(np.float64) for i in range(12)]
    labels = [int(test.labels[i]) for i in range(12)]
    return inputs, labels


def _run(model, pool, *, rng=11, executor="batched", **kw):
    inputs, labels = pool
    kw.setdefault("strategies", ("gauss", "shift"))
    kw.setdefault("config", HDTestConfig(iter_times=6))
    kw.setdefault("strict", False)
    return run_adaptive_campaign(
        model, inputs, 8, true_labels=labels, rng=rng, executor=executor, **kw,
    )


class TestValidation:
    def test_unknown_schedule_rejected(self, trained_model, pool):
        with pytest.raises(ConfigurationError):
            _run(trained_model, pool, schedule="greedy")

    def test_empty_strategies_rejected(self, trained_model, pool):
        with pytest.raises(ConfigurationError):
            _run(trained_model, pool, strategies=())

    def test_duplicate_strategies_rejected(self, trained_model, pool):
        with pytest.raises(ConfigurationError):
            _run(trained_model, pool, strategies=("gauss", "gauss"))

    def test_mixed_domains_rejected(self, trained_model, pool):
        with pytest.raises(ConfigurationError):
            _run(trained_model, pool, strategies=("gauss", "char_swap"))

    def test_exports(self):
        assert "thompson" in SCHEDULES and "gauss" in DEFAULT_ARMS


class TestCampaign:
    def test_finds_target_and_reports_accounting(self, trained_model, pool):
        result = _run(trained_model, pool)
        assert result.n_examples == 8
        assert result.n_found >= 8
        assert result.attempts > 0
        assert result.encodes > 0
        assert 0 < result.discrepancies_per_encode <= 1
        assert result.schedule == "thompson"
        assert set(result.arms) == {"gauss", "shift"}
        assert result.best_arm() in result.arms
        # Allocation trace covers every scheduled input once.
        sched = sum(n for w in result.allocation for n in w["scheduled"].values())
        assert sched == result.attempts
        assert set(result.corpus) >= {"size", "seeds", "adversarial", "near_miss"}

    def test_true_labels_threaded_through(self, trained_model, pool):
        result = _run(trained_model, pool)
        assert all(e.true_label is not None for e in result.examples)

    def test_uniform_schedule_round_robins(self, trained_model, pool):
        result = _run(trained_model, pool, schedule="uniform")
        scheduled = {}
        for wave in result.allocation:
            for arm, n in wave["scheduled"].items():
                scheduled[arm] = scheduled.get(arm, 0) + n
        assert set(scheduled) == {"gauss", "shift"}

    def test_static_corpus_never_grows(self, trained_model, pool):
        result = _run(trained_model, pool, evolve_corpus=False)
        assert result.corpus["size"] == len(pool[0])
        assert result.corpus["adversarial"] == 0

    def test_strict_budget_raises_and_non_strict_returns_partial(
        self, trained_model, pool
    ):
        # An unflippable campaign: shift alone at a tiny budget never
        # yields a child inside the constraint.
        kw = dict(
            strategies=("shift",),
            constraint=ImageConstraint(max_l2=1e-6),
            max_attempts_factor=2,
        )
        with pytest.raises(FuzzingError):
            _run(trained_model, pool, strict=True, **kw)
        partial = _run(trained_model, pool, **kw)
        assert partial.n_examples < 8
        assert partial.attempts == 2 * 8

    def test_telemetry_by_arm_recorded(self, trained_model, pool):
        obs = CampaignTelemetry(label="adaptive-test")
        result = _run(trained_model, pool, telemetry=obs)
        assert obs.by_arm  # sink saw the arm blocks
        by_arm = result.telemetry["by_arm"]
        assert sum(s["scheduled"] for s in by_arm.values()) == result.attempts
        assert sum(s["retired"] for s in by_arm.values()) == result.n_found


class TestReproducibility:
    def test_bit_identical_across_executors_and_batch_sizes(
        self, trained_model, pool
    ):
        def campaign(executor):
            return _run(
                trained_model, pool, executor=executor,
                constraint=ImageConstraint(max_l2=0.6),
            )

        base = campaign(BatchedExecutor(batch_size=4))
        for executor in (BatchedExecutor(batch_size=32), ProcessExecutor(n_workers=2)):
            other = campaign(executor)
            assert other.allocation == base.allocation
            assert other.bandit == base.bandit
            assert other.n_found == base.n_found
            for a, b in zip(base.examples, other.examples):
                np.testing.assert_array_equal(a.adversarial, b.adversarial)
                assert a.iterations == b.iterations
                assert a.reference_label == b.reference_label

    def test_same_seed_same_campaign(self, trained_model, pool):
        first = _run(trained_model, pool)
        second = _run(trained_model, pool)
        assert first.allocation == second.allocation
        for a, b in zip(first.examples, second.examples):
            np.testing.assert_array_equal(a.adversarial, b.adversarial)

    def test_telemetry_sink_does_not_perturb_outcomes(self, trained_model, pool):
        silent = _run(trained_model, pool)
        observed = _run(trained_model, pool, telemetry=CampaignTelemetry())
        assert silent.allocation == observed.allocation
        for a, b in zip(silent.examples, observed.examples):
            np.testing.assert_array_equal(a.adversarial, b.adversarial)


class TestFixedCampaignsUntouched:
    def test_fixed_campaign_identical_before_and_after_adaptive(
        self, trained_model, test_images
    ):
        """Running an adaptive campaign must not perturb the seed
        engines: a fixed-strategy campaign re-run with the same seed is
        bit-identical."""
        inputs = [test_images[i] for i in range(6)]

        def fixed():
            examples, _elapsed = generate_adversarial_set(
                trained_model, inputs, 4, strategy="gauss",
                config=HDTestConfig(iter_times=6), rng=5, executor="batched",
            )
            return examples

        before = fixed()
        _run(trained_model, (inputs, [0] * 6))
        after = fixed()
        assert len(before) == len(after)
        for a, b in zip(before, after):
            np.testing.assert_array_equal(a.adversarial, b.adversarial)
            assert a.iterations == b.iterations
