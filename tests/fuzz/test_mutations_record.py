"""Tests for record-domain mutation strategies and the record constraint."""

import numpy as np
import pytest

from repro.errors import ConstraintError, MutationError
from repro.fuzz.constraints import RecordConstraint
from repro.fuzz.mutations.record import (
    RecordBandNoise,
    RecordGaussianNoise,
    RecordRandomNoise,
    RecordShift,
)


@pytest.fixture()
def record():
    return np.random.default_rng(0).uniform(0.1, 0.9, size=48)


class TestRecordGaussianNoise:
    def test_shape_and_clipping(self, record):
        out = RecordGaussianNoise(sigma=0.5).mutate(record, 4, rng=0)
        assert out.shape == (4, 48)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_touches_most_features(self, record):
        out = RecordGaussianNoise(sigma=0.05).mutate(record, 1, rng=0)
        assert (np.abs(out[0] - record) > 1e-12).mean() > 0.9

    def test_original_untouched(self, record):
        snap = record.copy()
        RecordGaussianNoise().mutate(record, 2, rng=0)
        np.testing.assert_array_equal(record, snap)

    def test_rejects_2d(self):
        with pytest.raises(MutationError):
            RecordGaussianNoise().mutate(np.zeros((2, 4)), 1, rng=0)

    def test_custom_value_range(self):
        rec = np.full(8, 5.0)
        out = RecordGaussianNoise(sigma=100.0, value_range=(0.0, 10.0)).mutate(rec, 3, rng=0)
        assert out.min() >= 0.0 and out.max() <= 10.0


class TestRecordRandomNoise:
    def test_locality(self, record):
        out = RecordRandomNoise(amplitude=0.3, features_per_step=3).mutate(record, 5, rng=0)
        for child in out:
            assert (np.abs(child - record) > 1e-12).sum() <= 3

    def test_too_many_features_rejected(self):
        with pytest.raises(MutationError, match="exceeds"):
            RecordRandomNoise(features_per_step=100).mutate(np.zeros(8), 1, rng=0)

    def test_deterministic(self, record):
        a = RecordRandomNoise().mutate(record, 3, rng=5)
        b = RecordRandomNoise().mutate(record, 3, rng=5)
        np.testing.assert_array_equal(a, b)


class TestRecordBandNoise:
    def test_contiguous_band(self, record):
        out = RecordBandNoise(amplitude=0.3, band_width=6).mutate(record, 5, rng=0)
        for child in out:
            idx = np.nonzero(np.abs(child - record) > 1e-12)[0]
            if idx.size:
                assert idx.max() - idx.min() < 6

    def test_band_wider_than_record(self):
        rec = np.full(4, 0.5)
        out = RecordBandNoise(band_width=100).mutate(rec, 2, rng=0)
        assert out.shape == (2, 4)


class TestRecordShift:
    def test_fill_with_range_minimum(self):
        rec = np.linspace(0.2, 0.9, 10)
        out = RecordShift(max_step=1).mutate(rec, 8, rng=0)
        for child in out:
            assert child.min() >= 0.0
            # One end must hold the fill value.
            assert child[0] == 0.0 or child[-1] == 0.0

    def test_values_preserved_modulo_fill(self):
        rec = np.linspace(0.2, 0.9, 10)
        original_values = set(np.round(rec, 9)) | {0.0}
        out = RecordShift().mutate(rec, 6, rng=0)
        for child in out:
            assert set(np.round(child, 9)).issubset(original_values)

    def test_empty_record_rejected(self):
        with pytest.raises(MutationError):
            RecordShift().mutate(np.array([]), 1, rng=0)


class TestRecordConstraint:
    def test_accept_and_reject(self, record):
        constraint = RecordConstraint(max_l2=0.1)
        near = record.copy()
        near[0] += 0.05
        far = np.clip(record + 0.2, 0, 1)
        mask = constraint.accept(record, np.stack([near, far]))
        assert mask.tolist() == [True, False]

    def test_measure_keys(self, record):
        metrics = RecordConstraint().measure(record, np.clip(record + 0.01, 0, 1))
        assert set(metrics) == {"l1", "l2", "linf", "l0"}

    def test_value_range_scaling(self):
        # The same absolute change is twice as large in a half-size range.
        base = np.full(4, 1.0)
        cand = base.copy()
        cand[0] = 1.5
        wide = RecordConstraint(value_range=(0.0, 2.0)).measure(base, cand)["l2"]
        narrow = RecordConstraint(value_range=(0.0, 1.0)).measure(
            base / 2, cand / 2
        )["l2"]
        assert narrow == pytest.approx(wide * 2 / 2)  # both 0.25 vs 0.25... sanity
        assert wide == pytest.approx(0.25)

    def test_clip(self):
        out = RecordConstraint().clip(np.array([[-0.5, 1.5]]))
        np.testing.assert_array_equal(out, [[0.0, 1.0]])

    def test_all_none_budgets_rejected(self):
        with pytest.raises(ConstraintError):
            RecordConstraint(max_l2=None, max_l1=None)

    def test_bad_value_range(self):
        with pytest.raises(ConstraintError):
            RecordConstraint(value_range=(1.0, 0.0))

    def test_shape_mismatch(self, record):
        with pytest.raises(ConstraintError):
            RecordConstraint().accept(record, np.zeros((1, 5)))


class TestRecordFuzzingEndToEnd:
    def test_voice_pipeline(self):
        from repro.datasets import make_voice_dataset
        from repro.fuzz import HDTest, HDTestConfig
        from repro.hdc import HDCClassifier, RecordEncoder

        data = make_voice_dataset(20, n_classes=4, n_features=32, seed=0)
        train, test = data.split(0.7, rng=1)
        encoder = RecordEncoder(
            32, levels=32, level_encoding="random", dimension=2048, rng=2
        )
        model = HDCClassifier(encoder, n_classes=4).fit(train.records, train.labels)
        assert model.score(test.records, test.labels) > 0.7
        fuzzer = HDTest(
            model,
            "record_gauss",
            constraint=RecordConstraint(max_l2=1.0),
            config=HDTestConfig(iter_times=30),
            rng=3,
        )
        result = fuzzer.fuzz([test.records[i] for i in range(4)])
        assert result.n_inputs == 4
        for ex in result.examples:
            assert model.predict_one(ex.adversarial) == ex.adversarial_label
            assert ex.metrics["l2"] <= 1.0 + 1e-9
