"""Property-based tests (hypothesis) for mutation strategies and budgets.

Invariants every image strategy must uphold regardless of parameters:
children stay in [0, 255], the original is untouched, shapes are
preserved, and each strategy's locality contract (how many pixels may
change) holds for arbitrary images.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ConfigurationError
from repro.fuzz.constraints import ImageConstraint, TextConstraint
from repro.fuzz.mutations.noise import GaussianNoise, RandomNoise
from repro.fuzz.mutations.rowcol import RowColRandom
from repro.fuzz.mutations.shift import Shift

SHAPE = (12, 12)

images = arrays(
    dtype=np.float64,
    shape=SHAPE,
    elements=st.floats(min_value=0.0, max_value=255.0, allow_nan=False),
)
seeds = st.integers(min_value=0, max_value=2**31 - 1)
counts = st.integers(min_value=1, max_value=6)


@given(image=images, seed=seeds, n=counts)
@settings(max_examples=25, deadline=None)
def test_gauss_children_valid(image, seed, n):
    out = GaussianNoise(sigma=5.0).mutate(image, n, rng=seed)
    assert out.shape == (n, *SHAPE)
    assert out.min() >= 0.0 and out.max() <= 255.0


@given(image=images, seed=seeds, n=counts)
@settings(max_examples=25, deadline=None)
def test_rand_locality_contract(image, seed, n):
    k = 4
    out = RandomNoise(amplitude=20.0, pixels_per_step=k).mutate(image, n, rng=seed)
    for child in out:
        assert (np.abs(child - image) > 1e-12).sum() <= k
        assert child.min() >= 0.0 and child.max() <= 255.0


@given(image=images, seed=seeds, n=counts)
@settings(max_examples=25, deadline=None)
def test_rowcol_touches_single_line(image, seed, n):
    out = RowColRandom(amplitude=50.0).mutate(image, n, rng=seed)
    for child in out:
        rows, cols = np.nonzero(np.abs(child - image) > 1e-12)
        if rows.size == 0:
            continue  # clipping may cancel every change on a dark line
        assert len(np.unique(rows)) == 1 or len(np.unique(cols)) == 1


@given(image=images, seed=seeds, n=counts)
@settings(max_examples=25, deadline=None)
def test_shift_preserves_or_zeroes_values(image, seed, n):
    out = Shift().mutate(image, n, rng=seed)
    original_values = set(np.round(image.ravel(), 9)) | {0.0}
    for child in out:
        assert set(np.round(child.ravel(), 9)).issubset(original_values)


@given(image=images, seed=seeds)
@settings(max_examples=25, deadline=None)
def test_mutation_never_modifies_original(image, seed):
    snapshot = image.copy()
    for strategy in (GaussianNoise(), RandomNoise(), RowColRandom(), Shift()):
        strategy.mutate(image, 2, rng=seed)
    np.testing.assert_array_equal(image, snapshot)


@given(image=images, other=images)
@settings(max_examples=25, deadline=None)
def test_image_constraint_accept_consistent_with_measure(image, other):
    constraint = ImageConstraint(max_l2=1.0)
    accepted = bool(constraint.accept(image, other[None])[0])
    measured = constraint.measure(image, other)["l2"]
    assert accepted == (measured <= 1.0)


@given(image=images)
@settings(max_examples=25, deadline=None)
def test_image_constraint_accepts_identity(image):
    assert ImageConstraint(max_l2=1e-12).accept(image, image[None])[0]


texts = st.text(alphabet="abcdefgh ", min_size=3, max_size=30)


@given(text=texts, other=texts)
@settings(max_examples=50, deadline=None)
def test_text_constraint_symmetric(text, other):
    constraint = TextConstraint(max_edits=5)
    if len(text) != len(other):
        # Length-preserving contract: unequal pairs are a configuration
        # bug and must raise rather than broadcast or score silently.
        with pytest.raises(ConfigurationError):
            constraint.measure(text, other)
        return
    a = constraint.measure(text, other)["edits"]
    b = constraint.measure(other, text)["edits"]
    assert a == b


@given(text=texts)
@settings(max_examples=50, deadline=None)
def test_text_constraint_identity_zero_edits(text):
    assert TextConstraint().measure(text, text)["edits"] == 0.0
