"""Direct property tests for the discrepancy oracles.

The engines exercise the oracles indirectly on every fuzzing run; these
tests pin the vectorized contracts on their own — empty batches, target
== reference degeneracy, dtype coercion, and the cross-model voting
rules — so an oracle regression fails here with a readable message
instead of surfacing as a mysteriously different campaign outcome.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ConfigurationError
from repro.fuzz import (
    CrossModelOracle,
    DifferentialOracle,
    MajorityOracle,
    TargetedOracle,
    majority_vote,
)

label_arrays = arrays(
    dtype=np.int64,
    shape=st.integers(min_value=0, max_value=40),
    elements=st.integers(min_value=0, max_value=9),
)


class TestDifferentialOracle:
    @given(labels=label_arrays, reference=st.integers(min_value=0, max_value=9))
    @settings(max_examples=50, deadline=None)
    def test_mask_matches_elementwise_definition(self, labels, reference):
        mask = DifferentialOracle().discrepancies(reference, labels)
        assert mask.dtype == bool and mask.shape == labels.shape
        np.testing.assert_array_equal(mask, labels != reference)

    def test_empty_batch(self):
        mask = DifferentialOracle().discrepancies(3, np.array([], dtype=np.int64))
        assert mask.shape == (0,) and mask.dtype == bool

    def test_dtype_coercion(self):
        # Lists, int32, and numpy reference scalars all coerce.
        oracle = DifferentialOracle()
        np.testing.assert_array_equal(
            oracle.discrepancies(np.int32(2), [2, 3, 2]), [False, True, False]
        )
        np.testing.assert_array_equal(
            oracle.discrepancies(2, np.array([2, 1], dtype=np.int16)), [False, True]
        )

    def test_is_adversarial_scalar_form(self):
        oracle = DifferentialOracle()
        assert oracle.is_adversarial(1, 2)
        assert not oracle.is_adversarial(np.int64(5), np.int64(5))

    def test_no_reference_discrepancy_single_model(self):
        assert not DifferentialOracle().reference_discrepancy(np.array([4]))

    def test_ensemble_form_rejected(self):
        with pytest.raises(ConfigurationError, match="cross-model"):
            DifferentialOracle().discrepancies_ensemble(
                np.array([1, 1]), np.ones((2, 3), dtype=np.int64)
            )


class TestTargetedOracle:
    @given(labels=label_arrays,
           reference=st.integers(min_value=0, max_value=9),
           target=st.integers(min_value=0, max_value=9))
    @settings(max_examples=50, deadline=None)
    def test_only_target_flips_count(self, labels, reference, target):
        mask = TargetedOracle(target).discrepancies(reference, labels)
        if target == reference:
            assert not mask.any()  # flips to the reference are impossible
        else:
            np.testing.assert_array_equal(mask, labels == target)

    def test_target_equals_reference_empty_batch(self):
        mask = TargetedOracle(5).discrepancies(5, np.array([], dtype=np.int64))
        assert mask.shape == (0,) and not mask.any()

    def test_negative_target_rejected(self):
        with pytest.raises(ConfigurationError):
            TargetedOracle(-1)

    def test_dtype_coercion(self):
        np.testing.assert_array_equal(
            TargetedOracle(3).discrepancies(1, [3.0, 1.0, 3.0]),
            [True, False, True],
        )


member_blocks = arrays(
    dtype=np.int64,
    shape=st.tuples(
        st.integers(min_value=1, max_value=5),   # K members
        st.integers(min_value=0, max_value=20),  # n children
    ),
    elements=st.integers(min_value=0, max_value=4),
)


class TestCrossModelOracle:
    @given(block=member_blocks)
    @settings(max_examples=50, deadline=None)
    def test_flags_exactly_non_unanimous_columns(self, block):
        mask = CrossModelOracle().discrepancies_ensemble(block[:, :1], block)
        expected = np.array(
            [len(set(block[:, j])) > 1 for j in range(block.shape[1])], dtype=bool
        )
        np.testing.assert_array_equal(mask, expected)

    def test_reference_discrepancy_iff_votes_split(self):
        oracle = CrossModelOracle()
        assert not oracle.reference_discrepancy(np.array([3, 3, 3]))
        assert oracle.reference_discrepancy(np.array([3, 3, 1]))

    def test_single_model_form_rejected(self):
        with pytest.raises(ConfigurationError, match="ModelEnsembleTarget"):
            CrossModelOracle().discrepancies(0, np.array([1, 2]))

    def test_unanimous_flip_is_invisible(self):
        # Every member moves to the same wrong class: no pairwise
        # disagreement, so the cross-model oracle stays silent (the
        # documented blind spot the majority oracle covers).
        votes = np.array([0, 0, 0])
        children = np.full((3, 4), 7, dtype=np.int64)
        assert not CrossModelOracle().discrepancies_ensemble(votes, children).any()


class TestMajorityOracle:
    @given(block=member_blocks)
    @settings(max_examples=50, deadline=None)
    def test_flags_exactly_majority_flips(self, block):
        votes = block[:, 0] if block.shape[1] else np.zeros(
            block.shape[0], dtype=np.int64
        )
        oracle = MajorityOracle(5)
        mask = oracle.discrepancies_ensemble(votes, block)
        reference = majority_vote(votes[:, None], 5)[0]
        expected = majority_vote(block, 5) != reference
        np.testing.assert_array_equal(mask, expected)

    def test_majority_tie_breaks_deterministically_low(self):
        oracle = MajorityOracle(4)
        votes = np.array([0, 0])
        children = np.array([[1], [3]])  # 1-1 tie → label 1 wins, flip
        np.testing.assert_array_equal(
            oracle.discrepancies_ensemble(votes, children), [True]
        )

    def test_lone_dissenter_cannot_flip_the_vote(self):
        oracle = MajorityOracle(10)
        votes = np.array([2, 2, 2])
        children = np.array([[2, 2], [2, 2], [2, 9]])
        np.testing.assert_array_equal(
            oracle.discrepancies_ensemble(votes, children), [False, False]
        )

    def test_no_reference_discrepancy(self):
        assert not MajorityOracle(3).reference_discrepancy(np.array([0, 1, 2]))

    def test_invalid_n_classes_rejected(self):
        with pytest.raises(ConfigurationError):
            MajorityOracle(0)

    def test_empty_batch(self):
        mask = MajorityOracle(3).discrepancies_ensemble(
            np.array([1, 1]), np.zeros((2, 0), dtype=np.int64)
        )
        assert mask.shape == (0,)
