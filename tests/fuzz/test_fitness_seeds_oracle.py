"""Tests for fitness functions, the seed pool, and the oracles."""

import numpy as np
import pytest

from repro.errors import FuzzingError
from repro.fuzz.fitness import DistanceGuidedFitness, MarginFitness, RandomFitness
from repro.fuzz.oracle import DifferentialOracle, TargetedOracle
from repro.fuzz.seeds import Seed, SeedPool
from repro.hdc.similarity import cosine
from repro.hdc.spaces import BipolarSpace

SPACE = BipolarSpace(1024)


class TestDistanceGuidedFitness:
    def test_matches_paper_formula(self):
        ref = SPACE.random(rng=0)
        queries = SPACE.random(5, rng=1)
        scores = DistanceGuidedFitness().scores(ref, queries)
        for i in range(5):
            assert scores[i] == pytest.approx(1.0 - cosine(ref, queries[i]))

    def test_identical_query_scores_zero(self):
        ref = SPACE.random(rng=2)
        scores = DistanceGuidedFitness().scores(ref, ref[None])
        assert scores[0] == pytest.approx(0.0)

    def test_negated_query_scores_two(self):
        ref = SPACE.random(rng=3)
        scores = DistanceGuidedFitness().scores(ref, (-ref)[None])
        assert scores[0] == pytest.approx(2.0)

    def test_guided_flag(self):
        assert DistanceGuidedFitness().guided is True


class TestRandomFitness:
    def test_unguided_flag(self):
        assert RandomFitness(rng=0).guided is False

    def test_scores_shape_and_range(self):
        scores = RandomFitness(rng=0).scores(SPACE.random(rng=0), SPACE.random(7, rng=1))
        assert scores.shape == (7,)
        assert (scores >= 0).all() and (scores < 1).all()

    def test_ignores_hv_content(self):
        f = RandomFitness(rng=0)
        a = f.scores(SPACE.random(rng=0), SPACE.random(3, rng=1))
        g = RandomFitness(rng=0)
        b = g.scores(SPACE.random(rng=5), SPACE.random(3, rng=6))
        np.testing.assert_array_equal(a, b)


class TestMarginFitness:
    def test_prefers_queries_near_other_classes(self):
        class_hvs = SPACE.random(3, rng=0)
        fitness = MarginFitness(class_hvs, reference_label=0)
        near_ref = class_hvs[0][None]
        near_other = class_hvs[1][None]
        s_ref = fitness.scores(class_hvs[0], near_ref)[0]
        s_other = fitness.scores(class_hvs[0], near_other)[0]
        assert s_other > s_ref

    def test_positive_for_adversarial_query(self):
        class_hvs = SPACE.random(2, rng=1)
        fitness = MarginFitness(class_hvs, reference_label=0)
        assert fitness.scores(class_hvs[0], class_hvs[1][None])[0] > 0


class TestSeedPool:
    def test_reset_installs_original(self):
        pool = SeedPool(3)
        pool.reset("original")
        assert len(pool) == 1
        assert pool.best().data == "original"
        assert pool.best().generation == 0

    def test_update_keeps_top_n(self):
        pool = SeedPool(2)
        pool.reset("x")
        pool.update(["a", "b", "c"], [0.1, 0.9, 0.5], generation=1)
        assert [s.data for s in pool] == ["b", "c"]
        assert all(s.generation == 1 for s in pool)

    def test_update_replaces_previous_generation(self):
        pool = SeedPool(2)
        pool.reset("x")
        pool.update(["a", "b"], [0.9, 0.8], generation=1)
        pool.update(["c", "d"], [0.1, 0.2], generation=2)
        assert {s.data for s in pool} == {"c", "d"}

    def test_empty_update_retains_seeds(self):
        pool = SeedPool(2)
        pool.reset("x")
        pool.update([], [], generation=1)
        assert pool.best().data == "x"

    def test_stable_order_for_ties(self):
        pool = SeedPool(2)
        pool.reset("x")
        pool.update(["a", "b", "c"], [0.5, 0.5, 0.5], generation=1)
        assert [s.data for s in pool] == ["a", "b"]

    def test_mismatched_lengths_rejected(self):
        pool = SeedPool(2)
        with pytest.raises(FuzzingError):
            pool.update(["a"], [0.1, 0.2], generation=1)

    def test_best_on_empty_pool_rejected(self):
        with pytest.raises(FuzzingError):
            SeedPool(2).best()

    def test_fewer_candidates_than_capacity(self):
        pool = SeedPool(5)
        pool.reset("x")
        pool.update(["a"], [1.0], generation=1)
        assert len(pool) == 1

    def test_seed_dataclass_frozen(self):
        seed = Seed("data", 0.5, 1)
        with pytest.raises(AttributeError):
            seed.fitness = 0.9  # type: ignore[misc]


class TestOracles:
    def test_differential_flags_any_flip(self):
        oracle = DifferentialOracle()
        mask = oracle.discrepancies(3, np.array([3, 4, 3, 0]))
        assert mask.tolist() == [False, True, False, True]

    def test_differential_single(self):
        oracle = DifferentialOracle()
        assert oracle.is_adversarial(1, 2)
        assert not oracle.is_adversarial(1, 1)

    def test_targeted_only_counts_target(self):
        oracle = TargetedOracle(target_label=5)
        mask = oracle.discrepancies(3, np.array([5, 4, 3, 5]))
        assert mask.tolist() == [True, False, False, True]

    def test_targeted_same_as_reference_never_fires(self):
        oracle = TargetedOracle(target_label=3)
        mask = oracle.discrepancies(3, np.array([3, 3]))
        assert mask.tolist() == [False, False]

    def test_targeted_negative_label_rejected(self):
        with pytest.raises(Exception):
            TargetedOracle(-1)
