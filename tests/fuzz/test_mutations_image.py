"""Tests for the image mutation strategies (Table I semantics)."""

import numpy as np
import pytest

from repro.errors import MutationError
from repro.fuzz.mutations.noise import GaussianNoise, RandomNoise
from repro.fuzz.mutations.rowcol import ColRandom, RowColRandom, RowRandom
from repro.fuzz.mutations.shift import Shift


@pytest.fixture()
def image():
    return np.random.default_rng(0).uniform(30, 220, size=(28, 28))


class TestGaussianNoise:
    def test_shape(self, image):
        out = GaussianNoise().mutate(image, 5, rng=0)
        assert out.shape == (5, 28, 28)

    def test_original_untouched(self, image):
        before = image.copy()
        GaussianNoise().mutate(image, 3, rng=0)
        np.testing.assert_array_equal(image, before)

    def test_values_clipped(self):
        bright = np.full((8, 8), 254.0)
        out = GaussianNoise(sigma=50.0).mutate(bright, 10, rng=0)
        assert out.max() <= 255.0 and out.min() >= 0.0

    def test_touches_most_pixels(self, image):
        out = GaussianNoise(sigma=5.0).mutate(image, 1, rng=0)
        changed = (np.abs(out[0] - image) > 1e-9).mean()
        assert changed > 0.95

    def test_deterministic(self, image):
        a = GaussianNoise().mutate(image, 2, rng=7)
        b = GaussianNoise().mutate(image, 2, rng=7)
        np.testing.assert_array_equal(a, b)

    def test_children_differ(self, image):
        out = GaussianNoise().mutate(image, 2, rng=0)
        assert not np.array_equal(out[0], out[1])

    def test_sigma_validated(self):
        with pytest.raises(Exception):
            GaussianNoise(sigma=-1.0)

    def test_rejects_batch_input(self):
        with pytest.raises(MutationError):
            GaussianNoise().mutate(np.zeros((2, 4, 4)), 1, rng=0)


class TestRandomNoise:
    def test_touches_exactly_k_pixels(self, image):
        strat = RandomNoise(amplitude=50.0, pixels_per_step=5)
        out = strat.mutate(image, 4, rng=0)
        for child in out:
            changed = int((np.abs(child - image) > 1e-9).sum())
            assert changed <= 5  # clipping can mask a change, never add one

    def test_sparse_relative_to_gauss(self, image):
        rand_child = RandomNoise(pixels_per_step=8).mutate(image, 1, rng=0)[0]
        gauss_child = GaussianNoise().mutate(image, 1, rng=0)[0]
        rand_changed = (np.abs(rand_child - image) > 1e-9).sum()
        gauss_changed = (np.abs(gauss_child - image) > 1e-9).sum()
        assert rand_changed < gauss_changed / 10

    def test_amplitude_bounds_change(self, image):
        out = RandomNoise(amplitude=3.0, pixels_per_step=10).mutate(image, 3, rng=1)
        assert np.abs(out - image[None]).max() <= 3.0 + 1e-9

    def test_pixels_per_step_exceeding_image_rejected(self):
        strat = RandomNoise(pixels_per_step=100)
        with pytest.raises(MutationError, match="exceeds"):
            strat.mutate(np.zeros((8, 8)), 1, rng=0)

    def test_deterministic(self, image):
        a = RandomNoise().mutate(image, 3, rng=9)
        b = RandomNoise().mutate(image, 3, rng=9)
        np.testing.assert_array_equal(a, b)


class TestRowCol:
    def test_row_rand_touches_single_row(self, image):
        out = RowRandom(amplitude=40.0).mutate(image, 3, rng=0)
        for child in out:
            changed_rows = np.unique(np.nonzero(np.abs(child - image) > 1e-9)[0])
            assert len(changed_rows) == 1

    def test_col_rand_touches_single_col(self, image):
        out = ColRandom(amplitude=40.0).mutate(image, 3, rng=0)
        for child in out:
            changed_cols = np.unique(np.nonzero(np.abs(child - image) > 1e-9)[1])
            assert len(changed_cols) == 1

    def test_row_col_rand_mixes_axes(self, image):
        out = RowColRandom(amplitude=40.0).mutate(image, 32, rng=0)
        row_hits = 0
        col_hits = 0
        for child in out:
            rows = np.unique(np.nonzero(np.abs(child - image) > 1e-9)[0])
            cols = np.unique(np.nonzero(np.abs(child - image) > 1e-9)[1])
            if len(rows) == 1:
                row_hits += 1
            if len(cols) == 1:
                col_hits += 1
        assert row_hits > 0 and col_hits > 0

    def test_clipped(self):
        dark = np.zeros((8, 8))
        out = RowRandom(amplitude=100.0).mutate(dark, 5, rng=0)
        assert out.min() >= 0.0


class TestShift:
    def test_shift_moves_content(self):
        img = np.zeros((8, 8))
        img[4, 4] = 200.0
        out = Shift().mutate(img, 16, rng=0)
        for child in out:
            assert child.sum() in (0.0, 200.0)  # moved or slid out
            if child.sum() > 0:
                r, c = np.nonzero(child)
                assert (abs(int(r[0]) - 4) + abs(int(c[0]) - 4)) == 1

    def test_fill_mode_zeroes_vacated_edge(self):
        img = np.full((4, 4), 100.0)
        child = Shift(mode="fill").shift_once(img, axis=1, delta=1)
        np.testing.assert_array_equal(child[:, 0], np.zeros(4))
        np.testing.assert_array_equal(child[:, 1:], np.full((4, 3), 100.0))

    def test_wrap_mode_preserves_mass(self):
        img = np.random.default_rng(0).uniform(0, 255, size=(8, 8))
        child = Shift(mode="wrap").shift_once(img, axis=0, delta=3)
        assert child.sum() == pytest.approx(img.sum())

    def test_negative_delta(self):
        img = np.zeros((4, 4))
        img[0, 0] = 50.0
        child = Shift(mode="fill").shift_once(img, axis=0, delta=-1)
        assert child.sum() == 0.0  # slid off the top

    def test_pixel_values_never_invented(self):
        img = np.random.default_rng(1).uniform(0, 255, size=(8, 8))
        out = Shift().mutate(img, 8, rng=0)
        original_values = set(np.round(img.ravel(), 6)) | {0.0}
        for child in out:
            assert set(np.round(child.ravel(), 6)).issubset(original_values)

    def test_max_step_respected(self):
        img = np.zeros((9, 9))
        img[4, 4] = 10.0
        out = Shift(max_step=3).mutate(img, 20, rng=0)
        for child in out:
            if child.sum() > 0:
                r, c = np.nonzero(child)
                assert abs(int(r[0]) - 4) <= 3 and abs(int(c[0]) - 4) <= 3

    def test_invalid_axis(self):
        with pytest.raises(MutationError):
            Shift().shift_once(np.zeros((4, 4)), axis=2, delta=1)

    def test_invalid_mode(self):
        with pytest.raises(Exception):
            Shift(mode="extend")
