"""SharedCodebookEnsembleTarget: construction, persistence, equivalence.

The encode-once target's unit surface; the conformance suite
(tests/hdc/backends/test_conformance.py) covers the rematerialized
codebook semantics themselves, and bench_shared_codebook.py pins the
performance bars.
"""

import numpy as np
import pytest

from repro.datasets import load_digits
from repro.errors import ConfigurationError
from repro.fuzz import (
    BatchedHDTest,
    CrossModelOracle,
    HDTestConfig,
    ModelEnsembleTarget,
    SharedCodebookEnsembleTarget,
)
from repro.hdc import (
    BinaryHDCClassifier,
    BinaryPixelEncoder,
    HDCClassifier,
    PixelEncoder,
)

DIM = 768
SEED = 5


@pytest.fixture(scope="module")
def data():
    return load_digits(n_train=150, n_test=12, seed=SEED)


@pytest.fixture(scope="module", params=["materialized", "rematerialized"])
def shared(request, data):
    train, _ = data
    model = HDCClassifier(
        PixelEncoder(dimension=DIM, rng=SEED, codebook=request.param), 10
    ).fit(train.images, train.labels)
    return SharedCodebookEnsembleTarget.trained_shared(
        model, 3, train.images, train.labels, rng=SEED + 1
    )


class TestConstruction:
    def test_members_share_one_encoder_object(self, shared):
        encoders = {id(m.encoder) for m in shared.members}
        assert len(encoders) == 1
        assert shared.n_members == 3
        assert shared.n_encode_blocks == 1

    def test_distinct_encoders_rejected(self, data):
        train, _ = data
        members = [
            HDCClassifier(PixelEncoder(dimension=DIM, rng=s), 10).fit(
                train.images, train.labels
            )
            for s in (0, 0)  # same seed, still distinct objects
        ]
        with pytest.raises(ConfigurationError, match="share one"):
            SharedCodebookEnsembleTarget(*members)

    def test_bagged_members_diverge_from_primary(self, shared):
        primary_am = shared.primary.associative_memory.state_dict()
        bagged_am = shared.members[1].associative_memory.state_dict()
        assert any(
            not np.array_equal(primary_am[k], bagged_am[k]) for k in primary_am
        )

    def test_copy_keeps_the_shared_encoder(self, shared, data):
        _, test = data
        clone = shared.copy()
        assert clone.primary.encoder is clone.members[1].encoder
        np.testing.assert_array_equal(
            clone.predict(list(test.images)), shared.predict(list(test.images))
        )


class TestEncodeOnceEquivalence:
    """Encode-once is a pure optimisation of the independent target."""

    def test_predict_and_similarities(self, shared, data):
        _, test = data
        independent = ModelEnsembleTarget(*shared.members)
        inputs = list(test.images)
        np.testing.assert_array_equal(
            shared.predict(inputs), independent.predict(inputs)
        )
        np.testing.assert_array_equal(
            shared.similarities(inputs), independent.similarities(inputs)
        )

    def test_campaign_outcomes(self, shared, data):
        _, test = data
        independent = ModelEnsembleTarget(*shared.members)
        inputs = list(test.images[:4])
        config = HDTestConfig(iter_times=6)
        keys = {}
        for name, target in (("shared", shared), ("independent", independent)):
            outcomes = BatchedHDTest(
                target, "gauss", config=config, oracle=CrossModelOracle()
            ).fuzz_outcomes(inputs, rng=2)
            keys[name] = [
                (o.success, o.iterations, o.reference_label) for o in outcomes
            ]
        assert keys["shared"] == keys["independent"]


class TestPersistence:
    def test_round_trip(self, shared, data, tmp_path):
        _, test = data
        path = tmp_path / "ensemble.npz"
        shared.save(path)
        loaded = SharedCodebookEnsembleTarget.load(path)
        assert loaded.n_members == shared.n_members
        assert loaded.primary.encoder is loaded.members[1].encoder
        assert loaded.primary.encoder.codebook == shared.primary.encoder.codebook
        np.testing.assert_array_equal(
            loaded.predict(list(test.images)), shared.predict(list(test.images))
        )

    def test_file_doubles_as_primary_checkpoint(self, shared, data, tmp_path):
        _, test = data
        path = tmp_path / "ensemble.npz"
        shared.save(path)
        single = HDCClassifier.load(path)
        np.testing.assert_array_equal(
            single.predict(test.images), shared.primary.predict(test.images)
        )

    def test_codebook_stored_once(self, shared, tmp_path):
        path = tmp_path / "ensemble.npz"
        shared.save(path)
        single_path = tmp_path / "single.npz"
        shared.primary.save(single_path)
        with np.load(path) as data:
            # One codebook (or seed) regardless of K: exactly the keys a
            # single model stores, plus AM deltas and the size tag.
            codebook_keys = [
                k for k in data.files if "position" in k or "value" in k
            ]
            with np.load(single_path) as single:
                single_codebook = [
                    k for k in single.files if "position" in k or "value" in k
                ]
            assert sorted(codebook_keys) == sorted(single_codebook)
        # K-1 AMs' worth of arrays, never K full checkpoints.
        assert path.stat().st_size < shared.n_members * single_path.stat().st_size

    def test_single_model_file_rejected(self, shared, tmp_path):
        path = tmp_path / "single.npz"
        shared.primary.save(path)
        with pytest.raises(ConfigurationError, match="ensemble"):
            SharedCodebookEnsembleTarget.load(path)

    def test_binary_family_round_trip(self, data, tmp_path):
        train, test = data
        model = BinaryHDCClassifier(
            BinaryPixelEncoder(dimension=DIM, rng=SEED, codebook="rematerialized"),
            10,
        ).fit(train.images, train.labels)
        target = SharedCodebookEnsembleTarget.trained_shared(
            model, 3, train.images, train.labels, rng=1
        )
        path = tmp_path / "binary-ensemble.npz"
        target.save(path)
        loaded = SharedCodebookEnsembleTarget.load(path)
        assert isinstance(loaded.primary, BinaryHDCClassifier)
        np.testing.assert_array_equal(
            loaded.predict(list(test.images)), target.predict(list(test.images))
        )
