"""Edge-case and invariant tests for the fuzzing loop.

These complement tests/fuzz/test_fuzzer.py with scenarios at the
boundaries of Alg. 1's behaviour: degenerate inputs, budget corner
cases, and cross-run invariants the paper's metrics rely on.
"""

import numpy as np
import pytest

from repro.fuzz import (
    HDTest,
    HDTestConfig,
    ImageConstraint,
    NullConstraint,
    compare_strategies,
)
from repro.fuzz.mutations.noise import GaussianNoise


class TestDegenerateInputs:
    def test_all_black_image_fuzzes(self, trained_model):
        # An all-zero image still encodes (background-only) and can be
        # mutated; the loop must not crash on it.
        outcome = HDTest(trained_model, "gauss", rng=0).fuzz_one(np.zeros((28, 28)))
        assert outcome.iterations >= 1

    def test_all_white_image_fuzzes(self, trained_model):
        outcome = HDTest(trained_model, "gauss", rng=1).fuzz_one(
            np.full((28, 28), 255.0)
        )
        assert outcome.iterations >= 1

    def test_uint8_input_accepted(self, trained_model, digit_data):
        _, test = digit_data
        outcome = HDTest(trained_model, "gauss", rng=2).fuzz_one(test.images[0])
        assert outcome.reference_label == trained_model.predict_one(test.images[0])


class TestBudgetCorners:
    def test_one_iteration_budget(self, trained_model, test_images):
        cfg = HDTestConfig(iter_times=1)
        outcome = HDTest(trained_model, "gauss", config=cfg, rng=3).fuzz_one(
            test_images[0]
        )
        assert outcome.iterations == 1

    def test_single_child_per_seed(self, trained_model, test_images):
        cfg = HDTestConfig(children_per_seed=1, top_n=1, iter_times=10)
        outcome = HDTest(trained_model, "gauss", config=cfg, rng=4).fuzz_one(
            test_images[1]
        )
        assert 1 <= outcome.iterations <= 10

    def test_huge_budget_equivalent_to_null(self, trained_model, test_images):
        generous = HDTest(
            trained_model, "gauss", constraint=ImageConstraint(max_l2=1e6), rng=5
        ).fuzz_one(test_images[2])
        unconstrained = HDTest(
            trained_model, "gauss", constraint=NullConstraint(), rng=5
        ).fuzz_one(test_images[2])
        assert generous.success == unconstrained.success
        assert generous.iterations == unconstrained.iterations


class TestMetricInvariants:
    def test_iterations_never_exceed_budget(self, trained_model, test_images):
        cfg = HDTestConfig(iter_times=7)
        result = HDTest(trained_model, "rand", config=cfg, rng=6).fuzz(test_images[:5])
        assert all(o.iterations <= 7 for o in result.outcomes)

    def test_success_iterations_match_examples(self, trained_model, test_images):
        result = HDTest(trained_model, "gauss", rng=7).fuzz(test_images[:5])
        for outcome in result.outcomes:
            if outcome.success:
                assert outcome.example.iterations == outcome.iterations

    def test_elapsed_accumulates_across_inputs(self, trained_model, test_images):
        one = HDTest(trained_model, "gauss", rng=8).fuzz(test_images[:1])
        many = HDTest(trained_model, "gauss", rng=8).fuzz(test_images[:4])
        assert many.elapsed_seconds > one.elapsed_seconds * 0.5

    def test_reference_labels_are_model_predictions(self, trained_model, test_images):
        result = HDTest(trained_model, "gauss", rng=9).fuzz(test_images[:4])
        predictions = trained_model.predict(test_images[:4])
        np.testing.assert_array_equal(
            [o.reference_label for o in result.outcomes], predictions
        )


class TestStrategyStateIsolation:
    def test_strategy_instance_reusable_across_fuzzers(self, trained_model, test_images):
        strategy = GaussianNoise(sigma=2.5)
        a = HDTest(trained_model, strategy, rng=10).fuzz_one(test_images[0])
        b = HDTest(trained_model, strategy, rng=10).fuzz_one(test_images[0])
        assert a.success == b.success
        assert a.iterations == b.iterations

    def test_compare_strategies_does_not_mutate_inputs(self, trained_model, test_images):
        pool = test_images[:3].copy()
        compare_strategies(trained_model, pool, ("gauss", "shift"), rng=11)
        np.testing.assert_array_equal(pool, test_images[:3])
