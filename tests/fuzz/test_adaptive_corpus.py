"""Corpus dedup, cycling, absorption, and L1-minimisation units."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fuzz.adaptive import Corpus, CorpusEntry, content_key, minimize_l1
from repro.fuzz.results import AdversarialExample


def _example(original, adversarial, *, true_label=None, iterations=3):
    return AdversarialExample(
        original=original,
        adversarial=adversarial,
        reference_label=0,
        adversarial_label=1,
        iterations=iterations,
        metrics={},
        strategy="gauss",
        true_label=true_label,
    )


class TestContentKey:
    def test_identical_arrays_collide(self):
        a = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert content_key(a) == content_key(a.copy())

    def test_dtype_and_shape_distinguish(self):
        a = np.zeros(6, dtype=np.float64)
        assert content_key(a) != content_key(a.astype(np.float32))
        assert content_key(a) != content_key(a.reshape(2, 3))

    def test_value_changes_distinguish(self):
        a = np.zeros(6)
        b = a.copy()
        b[3] = 1e-12
        assert content_key(a) != content_key(b)

    def test_non_array_payloads(self):
        assert content_key("abc") == content_key("abc")
        assert content_key("abc") != content_key(b"abc")
        assert content_key({"f": 1}) == content_key({"f": 1})


class TestCorpusDedup:
    def test_seed_duplicates_rejected_at_init(self):
        img = np.ones((4, 4))
        corpus = Corpus([img, img.copy(), np.zeros((4, 4))])
        assert len(corpus) == 2
        assert corpus.n_duplicates == 1

    def test_add_rejects_byte_identical(self):
        corpus = Corpus([np.zeros(4)])
        assert corpus.add(np.ones(4), origin="adversarial") is True
        assert corpus.add(np.ones(4), origin="adversarial") is False
        assert corpus.snapshot()["duplicates_rejected"] == 1

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            Corpus([])

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Corpus([np.zeros(4)], true_labels=[1, 2])

    def test_bad_origin_rejected(self):
        with pytest.raises(ConfigurationError):
            CorpusEntry(payload=np.zeros(2), origin="mystery")


class TestBatchCycling:
    def test_cycles_in_insertion_order(self):
        corpus = Corpus([np.full(2, v) for v in (0.0, 1.0, 2.0)])
        values = [e.payload[0] for e in corpus.batch(5)]
        assert values == [0.0, 1.0, 2.0, 0.0, 1.0]
        assert [e.payload[0] for e in corpus.batch(2)] == [2.0, 0.0]

    def test_absorbed_entries_join_rotation(self):
        corpus = Corpus([np.zeros(2)])
        corpus.add(np.ones(2), origin="adversarial")
        values = [e.payload[0] for e in corpus.batch(4)]
        assert values == [0.0, 1.0, 0.0, 1.0]


class TestAbsorb:
    def test_admits_adversarial_and_near_miss(self):
        original = np.zeros(4)
        adversarial = np.full(4, 8.0)
        corpus = Corpus([original])
        admitted = corpus.absorb(_example(original, adversarial, true_label=7))
        assert admitted == 2
        snap = corpus.snapshot()
        assert snap["adversarial"] == 1 and snap["near_miss"] == 1
        near = [e for e in corpus.entries if e.origin == "near_miss"][0]
        np.testing.assert_allclose(near.payload, np.full(4, 4.0))
        assert all(
            e.true_label == 7 for e in corpus.entries if e.origin != "seed"
        )

    def test_minimises_through_predicate(self):
        original = np.zeros(8)
        adversarial = np.full(8, 16.0)
        corpus = Corpus([original])
        # Any perturbation with L1 >= 8 is "still a discrepancy".
        predicate = lambda c: float(np.abs(c - original).sum()) >= 8.0
        corpus.absorb(_example(original, adversarial), predicate=predicate)
        entry = [e for e in corpus.entries if e.origin == "adversarial"][0]
        minimised_l1 = float(np.abs(entry.payload - original).sum())
        assert minimised_l1 < np.abs(adversarial - original).sum()
        assert minimised_l1 >= 8.0


class TestMinimizeL1:
    def test_deterministic_and_shrinking(self):
        rng = np.random.default_rng(0)
        original = rng.uniform(0, 255, size=64)
        adversarial = original + rng.uniform(-30, 30, size=64)
        predicate = lambda c: float(np.abs(c - original).sum()) >= 100.0
        first, q1 = minimize_l1(original, adversarial, predicate)
        second, q2 = minimize_l1(original, adversarial, predicate)
        np.testing.assert_array_equal(first, second)
        assert q1 == q2 <= 16
        assert np.abs(first - original).sum() < np.abs(adversarial - original).sum()
        assert predicate(first)

    def test_never_returns_non_discrepancy(self):
        original = np.zeros(16)
        adversarial = np.full(16, 4.0)
        calls = []

        def predicate(candidate):
            ok = float(np.abs(candidate).sum()) >= 20.0
            calls.append(ok)
            return ok

        best, queries = minimize_l1(original, adversarial, predicate)
        assert predicate(best)
        assert queries == len(calls) - 1  # the assert above re-queried

    def test_query_budget_respected(self):
        original = np.zeros(32)
        adversarial = np.ones(32)
        counter = {"n": 0}

        def predicate(candidate):
            counter["n"] += 1
            return bool(np.any(candidate))

        minimize_l1(original, adversarial, predicate, max_queries=5)
        assert counter["n"] <= 5

    def test_zero_delta_short_circuits(self):
        original = np.ones(4)
        best, queries = minimize_l1(original, original.copy(), lambda c: True)
        assert queries == 0
        np.testing.assert_array_equal(best, original)

    def test_irreducible_adversarial_returned_unchanged(self):
        original = np.zeros(8)
        adversarial = np.full(8, 2.0)
        exact = adversarial.tobytes()
        best, _ = minimize_l1(
            original, adversarial, lambda c: c.tobytes() == exact
        )
        np.testing.assert_array_equal(best, adversarial)
