"""Tests for campaign JSON persistence."""

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fuzz.results import AdversarialExample, CampaignResult, InputOutcome
from repro.fuzz.serialization import (
    campaign_to_dict,
    load_campaigns_json,
    save_campaigns_json,
)


def _campaign():
    img = np.zeros((4, 4))
    ex = AdversarialExample(
        original=img, adversarial=img + 1, reference_label=2,
        adversarial_label=5, iterations=3,
        metrics={"l1": 1.0, "l2": 0.2, "linf": 0.1, "l0": 4.0},
        strategy="gauss", true_label=2,
    )
    outcomes = [
        InputOutcome(True, 3, 2, ex),
        InputOutcome(False, 30, 7),
    ]
    return CampaignResult("gauss", outcomes, elapsed_seconds=2.5)


class TestCampaignToDict:
    def test_structure(self):
        record = campaign_to_dict(_campaign())
        assert record["strategy"] == "gauss"
        assert record["elapsed_seconds"] == 2.5
        assert len(record["outcomes"]) == 2

    def test_success_outcome_carries_example(self):
        record = campaign_to_dict(_campaign())
        example = record["outcomes"][0]["example"]
        assert example["adversarial_label"] == 5
        assert example["metrics"]["l2"] == pytest.approx(0.2)
        assert example["true_label"] == 2

    def test_failure_outcome_has_no_example(self):
        record = campaign_to_dict(_campaign())
        assert "example" not in record["outcomes"][1]

    def test_no_image_payloads(self):
        record = campaign_to_dict(_campaign())
        assert "original" not in json.dumps(record)

    def test_nan_summary_values_become_null(self):
        empty = CampaignResult("rand", [], elapsed_seconds=0.0)
        record = campaign_to_dict(empty)
        assert record["summary"]["avg_l1"] is None

    def test_json_serializable(self):
        json.dumps(campaign_to_dict(_campaign()))


class TestRoundtrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "campaigns.json"
        save_campaigns_json(path, {"gauss": _campaign()})
        loaded = load_campaigns_json(path)
        assert set(loaded) == {"gauss"}
        assert loaded["gauss"]["summary"]["n_success"] == 1

    def test_empty_results_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_campaigns_json(tmp_path / "x.json", {})

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_campaigns_json(tmp_path / "nope.json")

    def test_schema_version_checked(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"gauss": {"schema_version": 99}}))
        with pytest.raises(ConfigurationError, match="schema"):
            load_campaigns_json(path)


class TestEnsembleRecords:
    """Schema v2: ensemble member counts and disagreement provenance."""

    def test_v1_records_still_load(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"gauss": {"schema_version": 1, "outcomes": []}}))
        loaded = load_campaigns_json(path)
        assert loaded["gauss"]["schema_version"] == 1

    def test_ensemble_fields_round_trip(self, tmp_path):
        example = AdversarialExample(
            original=None,
            adversarial=None,
            reference_label=2,
            adversarial_label=7,
            iterations=0,
            metrics={"l2": 0.0},
            strategy="gauss",
            disagreed_members=(0, 2),
        )
        result = CampaignResult(
            strategy="gauss",
            outcomes=[
                InputOutcome(
                    success=True, iterations=0, reference_label=2, example=example
                )
            ],
            elapsed_seconds=0.5,
            n_members=3,
        )
        path = tmp_path / "ensemble.json"
        save_campaigns_json(path, {"gauss": result})
        record = load_campaigns_json(path)["gauss"]
        assert record["schema_version"] == 3
        assert record["n_members"] == 3
        assert record["summary"]["n_members"] == 3
        stored = record["outcomes"][0]["example"]
        assert stored["disagreed_members"] == [0, 2]
        assert stored["iterations"] == 0

    def test_single_model_records_mark_no_members(self, trained_model, test_images, tmp_path):
        from repro.fuzz import HDTest, HDTestConfig

        result = HDTest(trained_model, "gauss", config=HDTestConfig(iter_times=5),
                        rng=0).fuzz(list(test_images[:3]))
        path = tmp_path / "single.json"
        save_campaigns_json(path, {"gauss": result})
        record = load_campaigns_json(path)["gauss"]
        assert record["n_members"] == 1
        for outcome in record["outcomes"]:
            if "example" in outcome:
                assert outcome["example"]["disagreed_members"] is None
