"""Tests for the pluggable campaign executors."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.fuzz import (
    BatchedExecutor,
    HDTest,
    HDTestConfig,
    ProcessExecutor,
    SerialExecutor,
    compare_strategies,
    create_executor,
    executor_names,
    generate_adversarial_set,
)

CFG = HDTestConfig(iter_times=6)


def _outcome_key(result):
    return [
        (o.success, o.iterations, o.reference_label,
         None if o.example is None else o.example.adversarial_label)
        for o in result.outcomes
    ]


class TestRegistry:
    def test_names(self):
        assert executor_names() == [
            "batched", "member-sharded", "process", "serial"
        ]

    def test_create_each(self):
        assert isinstance(create_executor("serial"), SerialExecutor)
        assert isinstance(create_executor("batched", batch_size=8), BatchedExecutor)
        executor = create_executor("process", batch_size=8, n_workers=2)
        assert isinstance(executor, ProcessExecutor)
        assert executor.n_workers == 2

    def test_unset_sizing_params_tolerated(self):
        # The CLI passes one uniform bundle; None means "not requested".
        assert isinstance(
            create_executor("serial", batch_size=None, n_workers=None), SerialExecutor
        )
        assert isinstance(
            create_executor("batched", batch_size=8, n_workers=None), BatchedExecutor
        )

    def test_inapplicable_explicit_param_rejected(self):
        with pytest.raises(ConfigurationError, match="does not apply"):
            create_executor("batched", n_workers=8)
        with pytest.raises(ConfigurationError, match="does not apply"):
            create_executor("serial", batch_size=8)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown executor"):
            create_executor("gpu")

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            BatchedExecutor(batch_size=0)
        with pytest.raises(ConfigurationError):
            ProcessExecutor(n_workers=0)


class TestSerialExecutor:
    def test_matches_direct_fuzz(self, trained_model, test_images):
        inputs = list(test_images[:4])
        direct = HDTest(trained_model, "gauss", config=CFG, rng=8).fuzz(inputs)
        via_executor = SerialExecutor().run(
            trained_model, "gauss", inputs, config=CFG, rng=8
        )
        assert _outcome_key(direct) == _outcome_key(via_executor)
        assert via_executor.executor == "serial"


class TestBatchedExecutor:
    def test_unguided_batch_size_invariance(self, trained_model, test_images):
        """Satellite: per-input fitness streams make the unguided
        baseline invariant to chunking, like guided runs."""
        inputs = list(test_images[:6])
        cfg = HDTestConfig(iter_times=5, guided=False)
        small = BatchedExecutor(batch_size=2).run(
            trained_model, "gauss", inputs, config=cfg, rng=9
        )
        large = BatchedExecutor(batch_size=64).run(
            trained_model, "gauss", inputs, config=cfg, rng=9
        )
        assert _outcome_key(small) == _outcome_key(large)

    def test_batch_size_invariance(self, trained_model, test_images):
        inputs = list(test_images[:7])
        small = BatchedExecutor(batch_size=2).run(
            trained_model, "rand", inputs, config=CFG, rng=17
        )
        large = BatchedExecutor(batch_size=64).run(
            trained_model, "rand", inputs, config=CFG, rng=17
        )
        assert _outcome_key(small) == _outcome_key(large)
        assert small.executor == "batched"

    def test_matches_sequential_fuzz_one_under_spawn(self, trained_model, test_images):
        from repro.utils.rng import spawn

        inputs = list(test_images[:5])
        generators = spawn(55, len(inputs))
        sequential = [
            HDTest(trained_model, "gauss", config=CFG).fuzz_one(x, rng=g)
            for x, g in zip(inputs, generators)
        ]
        result = BatchedExecutor(batch_size=3).run(
            trained_model, "gauss", inputs, config=CFG, rng=55
        )
        assert _outcome_key(result) == [
            (o.success, o.iterations, o.reference_label,
             None if o.example is None else o.example.adversarial_label)
            for o in sequential
        ]


class TestProcessExecutor:
    def test_matches_batched(self, trained_model, test_images):
        inputs = list(test_images[:6])
        batched = BatchedExecutor(batch_size=4).run(
            trained_model, "rand", inputs, config=CFG, rng=23
        )
        process = ProcessExecutor(n_workers=2, batch_size=4).run(
            trained_model, "rand", inputs, config=CFG, rng=23
        )
        assert _outcome_key(batched) == _outcome_key(process)
        assert process.executor == "process"

    def test_unguided_reproducible_per_seed(self, trained_model, test_images):
        """Regression: worker RandomFitness must derive from the root seed.

        Workers used to build their engine without any rng, seeding the
        unguided baseline from per-worker OS entropy — two runs with the
        same seed disagreed.
        """
        inputs = list(test_images[:4])
        cfg = HDTestConfig(iter_times=4, guided=False)
        executor = ProcessExecutor(n_workers=2, batch_size=2)
        first = executor.run(trained_model, "rand", inputs, config=cfg, rng=31)
        second = executor.run(trained_model, "rand", inputs, config=cfg, rng=31)
        assert _outcome_key(first) == _outcome_key(second)

    def test_unguided_matches_batched_executor(self, trained_model, test_images):
        """Satellite: unguided outcomes are executor-invariant too."""
        inputs = list(test_images[:4])
        cfg = HDTestConfig(iter_times=4, guided=False)
        batched = BatchedExecutor(batch_size=2).run(
            trained_model, "rand", inputs, config=cfg, rng=44
        )
        with ProcessExecutor(n_workers=2, batch_size=2) as executor:
            process = executor.run(trained_model, "rand", inputs, config=cfg, rng=44)
        assert _outcome_key(batched) == _outcome_key(process)

    def test_more_workers_than_inputs(self, trained_model, test_images):
        inputs = list(test_images[:2])
        result = ProcessExecutor(n_workers=4, batch_size=8).run(
            trained_model, "gauss", inputs, config=CFG, rng=2
        )
        assert result.n_inputs == 2

    def test_pool_persists_across_runs(self, trained_model, test_images):
        """Satellite: an unchanged spec reuses the worker pool; close()
        and spec changes rebuild it."""
        inputs = list(test_images[:2])
        executor = ProcessExecutor(n_workers=1, batch_size=4)
        try:
            first = executor.run(trained_model, "gauss", inputs, config=CFG, rng=7)
            pool = executor._pool
            assert pool is not None
            second = executor.run(trained_model, "gauss", inputs, config=CFG, rng=7)
            assert executor._pool is pool  # same pool, no re-broadcast
            assert _outcome_key(first) == _outcome_key(second)
            # A different strategy is a different spec — pool rebuilt.
            executor.run(trained_model, "rand", inputs, config=CFG, rng=7)
            assert executor._pool is not pool
        finally:
            executor.close()
        assert executor._pool is None

    def test_pool_sized_to_shards_and_grows(self, trained_model, test_images):
        """The pool forks one process per shard, growing on demand."""
        executor = ProcessExecutor(n_workers=4, batch_size=8)
        try:
            executor.run(trained_model, "gauss", list(test_images[:1]), config=CFG, rng=1)
            assert executor._pool_processes == 1  # not 4 idle broadcasts
            small_pool = executor._pool
            executor.run(trained_model, "gauss", list(test_images[:4]), config=CFG, rng=1)
            assert executor._pool is not small_pool  # grew by rebuild
            assert executor._pool_processes == 4
            executor.run(trained_model, "gauss", list(test_images[:2]), config=CFG, rng=1)
            assert executor._pool_processes == 4  # bigger pool reused
        finally:
            executor.close()

    def test_stateful_fitness_disables_pool_reuse(self, trained_model, test_images):
        """A worker-side CoverageGuidedFitness accumulates visited cells,
        so identical runs must get a fresh pool (and fresh fitness)."""
        from repro.fuzz import CoverageGuidedFitness, CoverageMap

        inputs = list(test_images[:2])
        fitness = CoverageGuidedFitness(
            CoverageMap(trained_model.dimension, n_bits=4, rng=1)
        )
        executor = ProcessExecutor(n_workers=1, batch_size=4)
        try:
            first = executor.run(
                trained_model, "gauss", inputs, config=CFG, fitness=fitness, rng=7
            )
            pool = executor._pool
            second = executor.run(
                trained_model, "gauss", inputs, config=CFG, fitness=fitness, rng=7
            )
            assert executor._pool is not pool  # rebuilt, not reused
            assert _outcome_key(first) == _outcome_key(second)  # reproducible
        finally:
            executor.close()

    def test_retrained_model_rebuilds_pool(self, trained_model, test_images, digit_data):
        """Training-count changes invalidate the broadcast model."""
        train, _ = digit_data
        model = trained_model.copy()
        inputs = list(test_images[:2])
        executor = ProcessExecutor(n_workers=1, batch_size=4)
        try:
            executor.run(model, "gauss", inputs, config=CFG, rng=1)
            pool = executor._pool
            model.retrain(train.images[:5], train.labels[:5], mode="additive")
            executor.run(model, "gauss", inputs, config=CFG, rng=1)
            assert executor._pool is not pool
        finally:
            executor.close()


class TestCampaignWiring:
    def test_compare_strategies_accepts_executor_name(self, trained_model, test_images):
        results = compare_strategies(
            trained_model, test_images[:3], ("gauss",),
            config=CFG, rng=0, executor="batched",
        )
        assert results["gauss"].executor == "batched"
        assert results["gauss"].n_inputs == 3

    def test_compare_strategies_executor_instance(self, trained_model, test_images):
        results = compare_strategies(
            trained_model, test_images[:3], ("gauss", "shift"),
            config=CFG, rng=0, executor=BatchedExecutor(batch_size=2),
        )
        assert set(results) == {"gauss", "shift"}

    def test_compare_strategies_invalid_executor(self, trained_model, test_images):
        with pytest.raises(ConfigurationError):
            compare_strategies(
                trained_model, test_images[:2], ("gauss",), rng=0, executor=3.5
            )

    def test_generate_adversarial_set_batched(self, trained_model, digit_data, test_images):
        _, test = digit_data
        examples, elapsed = generate_adversarial_set(
            trained_model,
            test_images[:10],
            6,
            strategy="gauss",
            true_labels=test.labels[:10],
            rng=4,
            executor="batched",
        )
        assert len(examples) == 6
        assert elapsed > 0
        assert all(e.true_label is not None for e in examples)

    def test_generate_adversarial_set_recycles_with_executor(
        self, trained_model, test_images
    ):
        examples, _ = generate_adversarial_set(
            trained_model, test_images[:2], 5, strategy="gauss",
            rng=1, executor=BatchedExecutor(batch_size=4),
        )
        assert len(examples) == 5

    def test_generate_adversarial_set_cap_with_executor(self, trained_model, test_images):
        from repro.errors import FuzzingError
        from repro.fuzz import ImageConstraint

        with pytest.raises(FuzzingError, match="attempts"):
            generate_adversarial_set(
                trained_model, test_images[:2], 3,
                strategy="gauss",
                constraint=ImageConstraint(max_l2=1e-12),
                config=HDTestConfig(iter_times=1),
                max_attempts_factor=2,
                rng=0,
                executor="batched",
            )


class TestDefaultWorkerPolicy:
    """`n_workers=None` → all cores but one, with a documented override."""

    def test_default_leaves_one_core(self, monkeypatch):
        import repro.fuzz.executor as executor_module

        monkeypatch.delenv(executor_module.WORKER_COUNT_ENV, raising=False)
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 8)
        assert executor_module.default_worker_count() == 7
        pool = ProcessExecutor()
        try:
            assert pool.n_workers == 7
        finally:
            pool.close()

    def test_single_core_machine_floors_at_one(self, monkeypatch):
        import repro.fuzz.executor as executor_module

        monkeypatch.delenv(executor_module.WORKER_COUNT_ENV, raising=False)
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 1)
        assert executor_module.default_worker_count() == 1
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: None)
        assert executor_module.default_worker_count() == 1

    def test_env_override_wins(self, monkeypatch):
        import repro.fuzz.executor as executor_module

        monkeypatch.setenv(executor_module.WORKER_COUNT_ENV, "3")
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 16)
        assert executor_module.default_worker_count() == 3
        pool = ProcessExecutor()
        try:
            assert pool.n_workers == 3
        finally:
            pool.close()

    def test_explicit_argument_beats_everything(self, monkeypatch):
        import repro.fuzz.executor as executor_module

        monkeypatch.setenv(executor_module.WORKER_COUNT_ENV, "3")
        pool = ProcessExecutor(n_workers=5)
        try:
            assert pool.n_workers == 5
        finally:
            pool.close()

    def test_bad_env_value_rejected(self, monkeypatch):
        import repro.fuzz.executor as executor_module

        monkeypatch.setenv(executor_module.WORKER_COUNT_ENV, "lots")
        with pytest.raises(ConfigurationError):
            executor_module.default_worker_count()
        monkeypatch.setenv(executor_module.WORKER_COUNT_ENV, "0")
        with pytest.raises(ConfigurationError):
            executor_module.default_worker_count()


class TestDefaultPoolPolicy:
    """Input-aware (n_workers, batch_size) sizing for process campaigns."""

    def test_small_campaigns_get_small_pools(self, monkeypatch):
        import repro.fuzz.executor as executor_module

        monkeypatch.delenv(executor_module.WORKER_COUNT_ENV, raising=False)
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 17)
        min_per = executor_module.MIN_INPUTS_PER_WORKER
        # Below one worker's amortisation floor: a single process.
        workers, batch = executor_module.default_pool_policy(min_per - 1)
        assert workers == 1
        assert batch == min_per - 1  # one lock-step chunk for the lot
        # Exactly two floors' worth: two processes.
        workers, _ = executor_module.default_pool_policy(2 * min_per)
        assert workers == 2

    def test_large_campaigns_cap_at_core_default(self, monkeypatch):
        import repro.fuzz.executor as executor_module

        monkeypatch.delenv(executor_module.WORKER_COUNT_ENV, raising=False)
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 9)
        workers, batch = executor_module.default_pool_policy(10_000)
        assert workers == 8  # cores − 1, not 10_000 // MIN_INPUTS_PER_WORKER
        assert batch == executor_module.DEFAULT_BATCH_SIZE

    def test_explicit_knobs_pass_through(self):
        import repro.fuzz.executor as executor_module

        workers, batch = executor_module.default_pool_policy(
            4, n_workers=6, batch_size=128
        )
        assert (workers, batch) == (6, 128)

    def test_batch_never_exceeds_shard(self, monkeypatch):
        import repro.fuzz.executor as executor_module

        monkeypatch.delenv(executor_module.WORKER_COUNT_ENV, raising=False)
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 3)
        # 20 inputs over 2 workers → 10-input shards → 10-input chunks.
        workers, batch = executor_module.default_pool_policy(20)
        assert workers == 2
        assert batch == 10

    def test_degenerate_inputs_floor_at_one(self):
        import repro.fuzz.executor as executor_module

        workers, batch = executor_module.default_pool_policy(0)
        assert workers >= 1 and batch >= 1

    def test_invalid_explicit_values_rejected(self):
        import repro.fuzz.executor as executor_module

        with pytest.raises(ConfigurationError):
            executor_module.default_pool_policy(10, n_workers=0)
        with pytest.raises(ConfigurationError):
            executor_module.default_pool_policy(10, batch_size=-1)

    def test_process_outcomes_invariant_to_policy(
        self, trained_model, test_images, monkeypatch
    ):
        """The policy tunes throughput only: a policy-sized run equals an
        explicitly-sized run input for input."""
        inputs = list(test_images[:5])
        policy_sized = ProcessExecutor().run(
            trained_model, "gauss", inputs, config=CFG, rng=11
        )
        explicit = ProcessExecutor(n_workers=2, batch_size=2).run(
            trained_model, "gauss", inputs, config=CFG, rng=11
        )
        assert _outcome_key(policy_sized) == _outcome_key(explicit)


class TestGracefulShutdown:
    """Satellite: close() drains the pool with close+join, not SIGTERM.

    Terminating mid-flush can lose worker-side atexit handlers and —
    on slow filesystems — interleave badly with the resource tracker;
    a drained pool exits every worker with code 0.
    """

    def test_process_pool_workers_exit_cleanly(self, trained_model, test_images):
        executor = ProcessExecutor(n_workers=2, batch_size=2)
        try:
            executor.run(
                trained_model, "gauss", list(test_images[:4]), config=CFG, rng=1
            )
            workers = list(executor._pool._pool)  # noqa: SLF001
            assert all(process.is_alive() for process in workers)
        finally:
            executor.close()
        assert [process.exitcode for process in workers] == [0, 0]

    def test_close_without_pool_is_a_noop(self):
        ProcessExecutor(n_workers=2).close()  # nothing to drain


class TestScheduleSelectionPolicy:
    """default_schedule_policy: batched vs process vs member-sharded."""

    def _policy(self, monkeypatch, cores):
        import repro.fuzz.executor as executor_module

        monkeypatch.delenv(executor_module.WORKER_COUNT_ENV, raising=False)
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: cores)
        return executor_module.default_schedule_policy

    def test_single_core_always_batched(self, monkeypatch):
        policy = self._policy(monkeypatch, 1)
        assert policy(1000) == "batched"
        assert policy(4, n_members=8, member_nbytes=2**30) == "batched"

    def test_worker_env_cannot_force_processes_on_one_core(self, monkeypatch):
        # REPRO_FUZZ_WORKERS requests a pool, but a one-core host has
        # nothing to run it on: every schedule must stay in-process.
        import repro.fuzz.executor as executor_module

        monkeypatch.setenv(executor_module.WORKER_COUNT_ENV, "8")
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 1)
        policy = executor_module.default_schedule_policy
        assert policy(1000) == "batched"
        assert policy(8, n_members=5) == "batched"
        assert policy(64, n_members=5, member_nbytes=2**30) == "batched"
        # The env override still sizes pools on real multi-core hosts.
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 8)
        assert policy(1000) == "process"

    def test_single_models_shard_by_input(self, monkeypatch):
        policy = self._policy(monkeypatch, 8)
        assert policy(64) == "process"
        assert policy(8) == "batched"  # one shard: pool start-up wasted

    def test_small_ensemble_campaigns_shard_by_member(self, monkeypatch):
        policy = self._policy(monkeypatch, 8)
        # Too few inputs for two input shards, but K workers still help.
        assert policy(8, n_members=5) == "member-sharded"
        assert policy(64, n_members=5) == "process"

    def test_heavy_members_shard_by_member(self, monkeypatch):
        import repro.fuzz.executor as executor_module

        policy = self._policy(monkeypatch, 8)
        heavy = executor_module.MEMBER_FOOTPRINT_LIMIT // 4
        assert policy(64, n_members=5, member_nbytes=heavy) == "member-sharded"
        assert policy(64, n_members=5, member_nbytes=1024) == "process"

    def test_telemetry_compute_bound_prefers_member_sharding(self, monkeypatch):
        policy = self._policy(monkeypatch, 8)
        compute_bound = {
            "phase_seconds": {
                "encode": 4.0, "query": 2.0, "broadcast": 0.5, "gather": 0.5,
            }
        }
        assert policy(64, n_members=3, telemetry=compute_bound) == "member-sharded"

    def test_telemetry_ipc_bound_falls_back_to_input_sharding(self, monkeypatch):
        policy = self._policy(monkeypatch, 8)
        ipc_bound = {
            "phase_seconds": {
                "encode": 0.2, "query": 0.2, "broadcast": 3.0, "gather": 2.0,
            }
        }
        assert policy(64, n_members=3, telemetry=ipc_bound) == "process"
        assert policy(8, n_members=3, telemetry=ipc_bound) == "batched"

    def test_telemetry_recorder_accepted(self, monkeypatch):
        import time

        from repro.obs import CampaignTelemetry

        policy = self._policy(monkeypatch, 8)
        obs = CampaignTelemetry()
        with obs.phase("encode"):
            time.sleep(0.002)
        assert policy(64, n_members=3, telemetry=obs) == "member-sharded"

    def test_empty_telemetry_falls_back_to_shape_rules(self, monkeypatch):
        policy = self._policy(monkeypatch, 8)
        assert policy(64, n_members=3, telemetry={}) == "process"
        assert policy(8, n_members=3, telemetry={}) == "member-sharded"
