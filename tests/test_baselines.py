"""Tests for the random-attack baseline."""

import numpy as np
import pytest

from repro.baselines import RandomAttackResult, random_attack
from repro.errors import ConfigurationError
from repro.metrics.distances import normalized_l2


class TestRandomAttackResult:
    def test_success_rate(self):
        assert RandomAttackResult(10, 3, 5).success_rate == pytest.approx(0.3)

    def test_empty_is_nan(self):
        assert np.isnan(RandomAttackResult(0, 0, 5).success_rate)


class TestRandomAttack:
    def test_runs_and_reports(self, trained_model, test_images):
        result = random_attack(
            trained_model, test_images[:5], max_l2=1.0, attempts_per_input=3, rng=0
        )
        assert result.n_inputs == 5
        assert 0 <= result.n_success <= 5
        assert result.attempts_per_input == 3

    def test_tiny_budget_rarely_succeeds(self, trained_model, test_images):
        result = random_attack(
            trained_model, test_images[:5], max_l2=0.005, attempts_per_input=3, rng=1
        )
        # A perturbation of ~1 grey level spread over the whole image
        # moves almost no quantised pixel, so flips are essentially
        # impossible.
        assert result.n_success <= 1

    def test_respects_budget(self, trained_model, test_images):
        # Re-implement one attempt to confirm the scaling stays in budget.
        image = test_images[0]
        rng = np.random.default_rng(0)
        noise = rng.normal(size=image.shape)
        perturbed = np.clip(
            image + noise / np.linalg.norm(noise) * 0.7 * 255.0, 0, 255
        )
        assert normalized_l2(image, perturbed) <= 0.7 + 1e-9

    def test_deterministic(self, trained_model, test_images):
        a = random_attack(trained_model, test_images[:4], attempts_per_input=2, rng=7)
        b = random_attack(trained_model, test_images[:4], attempts_per_input=2, rng=7)
        assert a.n_success == b.n_success

    def test_invalid_budget(self, trained_model, test_images):
        with pytest.raises(ConfigurationError):
            random_attack(trained_model, test_images[:1], max_l2=0.0)

    def test_invalid_attempts(self, trained_model, test_images):
        with pytest.raises(ConfigurationError):
            random_attack(trained_model, test_images[:1], attempts_per_input=0)
