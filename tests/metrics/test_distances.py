"""Tests for normalized perturbation distances (Sec. V-A definitions)."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError
from repro.metrics.distances import (
    l0_pixels,
    normalized_l1,
    normalized_l2,
    normalized_linf,
    perturbation_metrics,
)


class TestKnownValues:
    def test_identical_images_zero(self):
        img = np.full((28, 28), 100.0)
        assert normalized_l1(img, img) == 0.0
        assert normalized_l2(img, img) == 0.0
        assert normalized_linf(img, img) == 0.0
        assert l0_pixels(img, img) == 0

    def test_single_pixel_full_swing(self):
        a = np.zeros((28, 28))
        b = a.copy()
        b[3, 4] = 255.0
        assert normalized_l1(a, b) == pytest.approx(1.0)
        assert normalized_l2(a, b) == pytest.approx(1.0)
        assert normalized_linf(a, b) == pytest.approx(1.0)
        assert l0_pixels(a, b) == 1

    def test_two_half_swings(self):
        a = np.zeros((4, 4))
        b = a.copy()
        b[0, 0] = 127.5
        b[1, 1] = 127.5
        assert normalized_l1(a, b) == pytest.approx(1.0)
        assert normalized_l2(a, b) == pytest.approx(np.sqrt(0.5))
        assert normalized_linf(a, b) == pytest.approx(0.5)
        assert l0_pixels(a, b) == 2

    def test_l1_upper_bounds_l2(self):
        rng = np.random.default_rng(0)
        a = rng.uniform(0, 255, size=(28, 28))
        b = rng.uniform(0, 255, size=(28, 28))
        assert normalized_l1(a, b) >= normalized_l2(a, b)

    def test_l2_upper_bounds_linf(self):
        rng = np.random.default_rng(1)
        a = rng.uniform(0, 255, size=(8, 8))
        b = rng.uniform(0, 255, size=(8, 8))
        assert normalized_l2(a, b) >= normalized_linf(a, b)

    def test_symmetry(self):
        rng = np.random.default_rng(2)
        a = rng.uniform(0, 255, size=(8, 8))
        b = rng.uniform(0, 255, size=(8, 8))
        assert normalized_l1(a, b) == normalized_l1(b, a)
        assert normalized_l2(a, b) == normalized_l2(b, a)

    def test_l0_tolerance(self):
        a = np.zeros((4, 4))
        b = a.copy()
        b[0, 0] = 0.4  # below default tol of 0.5 grey levels
        b[0, 1] = 2.0
        assert l0_pixels(a, b) == 1
        assert l0_pixels(a, b, tol=0.1) == 2


class TestPerturbationMetrics:
    def test_all_keys_present(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 10.0)
        metrics = perturbation_metrics(a, b)
        assert set(metrics) == {"l1", "l2", "linf", "l0"}
        assert metrics["l0"] == 16.0

    def test_shape_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            normalized_l1(np.zeros((4, 4)), np.zeros((5, 5)))
        with pytest.raises(DimensionMismatchError):
            l0_pixels(np.zeros((4, 4)), np.zeros((5, 5)))
