"""Tests for aggregation helpers and timing utilities."""

import time

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.metrics.stats import SummaryStats, group_means, summarize
from repro.metrics.timing import Stopwatch, per_minute, per_thousand


class TestSummarize:
    def test_known_sample(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.count == 3
        assert s.std == pytest.approx(np.std([1, 2, 3]))

    def test_empty_sample_gives_nans(self):
        s = summarize([])
        assert np.isnan(s.mean)
        assert s.count == 0

    def test_str_contains_mean(self):
        assert "2" in str(summarize([2.0, 2.0]))

    def test_accepts_generator(self):
        s = summarize(float(x) for x in range(5))
        assert s.count == 5


class TestGroupMeans:
    def test_basic_grouping(self):
        out = group_means([1.0, 3.0, 5.0, 7.0], [0, 0, 1, 1])
        np.testing.assert_allclose(out, [2.0, 6.0])

    def test_empty_group_nan(self):
        out = group_means([1.0], [2], n_groups=4)
        assert np.isnan(out[0]) and np.isnan(out[1]) and np.isnan(out[3])
        assert out[2] == 1.0

    def test_n_groups_inferred(self):
        assert group_means([1.0, 2.0], [0, 5]).shape == (6,)

    def test_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            group_means([1.0, 2.0], [0])

    def test_empty_inputs(self):
        assert group_means([], []).shape == (0,)


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.009

    def test_live_reading_while_running(self):
        with Stopwatch() as sw:
            first = sw.elapsed
            time.sleep(0.005)
            assert sw.elapsed >= first

    def test_frozen_after_exit(self):
        with Stopwatch() as sw:
            pass
        frozen = sw.elapsed
        time.sleep(0.005)
        assert sw.elapsed == frozen


class TestRates:
    def test_per_thousand(self):
        assert per_thousand(10.0, 100) == pytest.approx(100.0)

    def test_per_minute(self):
        assert per_minute(30.0, 200) == pytest.approx(400.0)

    def test_paper_rate_sanity(self):
        # "HDTest can generate around 400 adversarial inputs within one
        # minute" — i.e. 1000 images in ~150 s.
        assert per_minute(150.0, 1000) == pytest.approx(400.0)

    def test_per_thousand_rejects_zero_count(self):
        with pytest.raises(ConfigurationError):
            per_thousand(1.0, 0)

    def test_per_minute_rejects_zero_elapsed(self):
        with pytest.raises(ConfigurationError):
            per_minute(0.0, 5)

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ConfigurationError):
            per_thousand(-1.0, 5)
