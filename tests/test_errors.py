"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    ConfigurationError,
    ConstraintError,
    DatasetError,
    DimensionMismatchError,
    EncodingError,
    FuzzingError,
    MutationError,
    NotTrainedError,
    ReproError,
)

ALL_ERRORS = [
    ConfigurationError,
    ConstraintError,
    DatasetError,
    DimensionMismatchError,
    EncodingError,
    FuzzingError,
    MutationError,
    NotTrainedError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_errors_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_value_like_errors_are_value_errors():
    for exc in (ConfigurationError, DimensionMismatchError, EncodingError,
                DatasetError, MutationError, ConstraintError):
        assert issubclass(exc, ValueError)


def test_runtime_like_errors_are_runtime_errors():
    assert issubclass(NotTrainedError, RuntimeError)
    assert issubclass(FuzzingError, RuntimeError)


def test_catching_base_catches_subclasses():
    with pytest.raises(ReproError):
        raise EncodingError("bad image")
