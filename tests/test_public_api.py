"""Release-quality checks on the public API surface.

Every name exported through ``__all__`` must resolve and carry a
docstring; the package-level quickstart doctest must hold.  These tests
catch export drift that unit tests (which import concrete modules)
never would.
"""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.hdc",
    "repro.hdc.encoders",
    "repro.datasets",
    "repro.fuzz",
    "repro.fuzz.domains",
    "repro.fuzz.mutations",
    "repro.defense",
    "repro.obs",
    "repro.metrics",
    "repro.analysis",
    "repro.baselines",
    "repro.utils",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} has no __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} is exported but missing"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert not undocumented, f"{module_name}: undocumented exports {undocumented}"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert (module.__doc__ or "").strip(), f"{module_name} has no module docstring"


def test_all_lists_sorted_reasonably():
    # Keep __all__ deduplicated everywhere (sortedness is style; dupes are bugs).
    for module_name in PUBLIC_MODULES:
        module = importlib.import_module(module_name)
        assert len(set(module.__all__)) == len(module.__all__), (
            f"{module_name}.__all__ contains duplicates"
        )


def test_version_is_pep440_like():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) >= 2
    assert all(p.isdigit() for p in parts[:2])


def test_package_quickstart_doctest():
    """The quickstart in repro's module docstring must actually run."""
    import doctest

    import repro

    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
