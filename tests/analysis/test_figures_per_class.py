"""Tests for ASCII figures, PGM export, and per-class analysis."""

import numpy as np
import pytest

from repro.analysis.figures import (
    adversarial_triptych,
    ascii_bar_chart,
    ascii_image,
    diff_mask,
    save_examples_npz,
    save_pgm,
)
from repro.analysis.per_class import (
    hardest_classes,
    per_class_series,
    per_class_table,
)
from repro.errors import ConfigurationError
from repro.fuzz.results import AdversarialExample, CampaignResult, InputOutcome


def _example(cls=0, iters=2):
    img = np.zeros((28, 28))
    adv = img.copy()
    adv[5, 5] = 200.0
    return AdversarialExample(
        original=img, adversarial=adv, reference_label=cls,
        adversarial_label=(cls + 1) % 10, iterations=iters,
        metrics={"l1": 0.8, "l2": 0.8, "linf": 0.8, "l0": 1.0},
        strategy="gauss",
    )


def _campaign(classes=(0, 1, 1)):
    outcomes = [
        InputOutcome(True, 2 + i, c, _example(c, 2 + i)) for i, c in enumerate(classes)
    ]
    return CampaignResult("gauss", outcomes, elapsed_seconds=1.0)


class TestAsciiImage:
    def test_dimensions_halved_vertically(self):
        art = ascii_image(np.zeros((28, 28)))
        lines = art.splitlines()
        assert len(lines) == 14
        assert all(len(l) == 28 for l in lines)

    def test_intensity_mapping(self):
        art = ascii_image(np.array([[0.0, 255.0]]))
        assert art[0] == " " and art[1] == "@"

    def test_downsample(self):
        art = ascii_image(np.zeros((28, 28)), downsample=2)
        assert len(art.splitlines()) == 7

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            ascii_image(np.zeros((2, 2, 2)))
        with pytest.raises(ConfigurationError):
            ascii_image(np.zeros((4, 4)), downsample=0)


class TestDiffMaskAndTriptych:
    def test_diff_mask_marks_changes(self):
        a = np.zeros((4, 4))
        b = a.copy()
        b[1, 2] = 10.0
        mask = diff_mask(a, b)
        assert mask[1, 2] == 255
        assert mask.sum() == 255

    def test_diff_mask_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            diff_mask(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_triptych_contains_labels_and_panels(self):
        out = adversarial_triptych(_example(cls=3))
        assert "original → 3" in out
        assert "mutated pixels" in out
        assert "adversarial → 4" in out
        assert " | " in out


class TestBarChart:
    def test_rows_and_values(self):
        out = ascii_bar_chart(["a", "b"], [1.0, 2.0])
        lines = out.splitlines()
        assert len(lines) == 2
        assert "2.00" in lines[1]
        assert lines[1].count("█") > lines[0].count("█")

    def test_nan_rendered(self):
        out = ascii_bar_chart(["a"], [float("nan")])
        assert "n/a" in out

    def test_title(self):
        out = ascii_bar_chart(["a"], [1.0], title="T")
        assert out.splitlines()[0] == "T"

    def test_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_all_zero_values(self):
        out = ascii_bar_chart(["a"], [0.0])
        assert "0.00" in out


class TestPersistence:
    def test_save_pgm_roundtrip_header(self, tmp_path):
        img = np.random.default_rng(0).integers(0, 256, size=(8, 6)).astype(np.uint8)
        path = tmp_path / "img.pgm"
        save_pgm(path, img)
        raw = path.read_bytes()
        assert raw.startswith(b"P5\n6 8\n255\n")
        payload = raw.split(b"255\n", 1)[1]
        np.testing.assert_array_equal(
            np.frombuffer(payload, dtype=np.uint8).reshape(8, 6), img
        )

    def test_save_pgm_rejects_3d(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_pgm(tmp_path / "x.pgm", np.zeros((2, 2, 2)))

    def test_save_examples_npz(self, tmp_path):
        path = tmp_path / "adv.npz"
        save_examples_npz(path, [_example(0), _example(1)])
        with np.load(path, allow_pickle=False) as data:
            assert data["originals"].shape == (2, 28, 28)
            assert data["adversarials"].shape == (2, 28, 28)
            np.testing.assert_array_equal(data["reference_labels"], [0, 1])
            assert data["strategies"].shape == (2,)

    def test_save_examples_empty_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_examples_npz(tmp_path / "x.npz", [])


class TestPerClass:
    def test_series_from_single_campaign(self):
        series = per_class_series(_campaign(classes=(0, 1, 1)), n_classes=10)
        assert series.n_classes == 10
        assert series.iterations[0] == pytest.approx(2.0)
        assert series.iterations[1] == pytest.approx(3.5)
        assert np.isnan(series.iterations[5])

    def test_series_pools_multiple_campaigns(self):
        results = {"a": _campaign((0,)), "b": _campaign((0,))}
        series = per_class_series(results, n_classes=10)
        assert series.iterations[0] == pytest.approx(2.0)

    def test_series_from_sequence(self):
        series = per_class_series([_campaign((2,))], n_classes=5)
        assert series.iterations[2] == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            per_class_series([], n_classes=10)

    def test_table_rendering(self):
        series = per_class_series(_campaign(), n_classes=3)
        out = per_class_table(series)
        assert "Class" in out and "Avg #Iter" in out

    def test_hardest_classes_orders_by_iterations(self):
        series = per_class_series(_campaign(classes=(0, 1, 1, 1)), n_classes=3)
        ranking = hardest_classes(series)
        assert ranking[0] == 1  # saw iters 3,4,5 → mean 4 > class 0's 2
        assert ranking[-1] == 2  # NaN class sorts last
