"""Tests for table rendering and markdown report emitters."""

import numpy as np
import pytest

from repro.analysis.report import (
    defense_markdown,
    markdown_table,
    per_class_markdown,
    table2_markdown,
)
from repro.analysis.tables import PAPER_TABLE2, format_table, table2
from repro.defense.retrain import DefenseReport
from repro.errors import ConfigurationError
from repro.fuzz.results import AdversarialExample, CampaignResult, InputOutcome


def _campaign(strategy="gauss", l1=2.0, l2=0.3, iters=2):
    img = np.zeros((4, 4))
    ex = AdversarialExample(
        original=img, adversarial=img + 1, reference_label=0,
        adversarial_label=1, iterations=iters,
        metrics={"l1": l1, "l2": l2, "linf": 0.1, "l0": 4.0},
        strategy=strategy,
    )
    outcome = InputOutcome(True, iters, 0, ex)
    return CampaignResult(strategy, [outcome], elapsed_seconds=1.0)


class TestFormatTable:
    def test_alignment_and_rule(self):
        out = format_table(["A", "Metric"], [["x", 1.5], ["longer", 2.0]])
        lines = out.splitlines()
        assert lines[0].startswith("A")
        assert set(lines[1]) == {"-"}
        assert len(lines) == 4

    def test_title_prepended(self):
        out = format_table(["A"], [["x"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_nan_rendered_as_dash(self):
        out = format_table(["A"], [[float("nan")]])
        assert "—" in out

    def test_empty_headers_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table([], [])

    def test_ragged_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            format_table(["A", "B"], [["only-one"]])


class TestTable2:
    def test_contains_all_metrics_and_strategies(self):
        results = {"gauss": _campaign("gauss"), "shift": _campaign("shift")}
        out = table2(results)
        for token in ("gauss", "shift", "L1", "L2", "Avg. #Iter.", "Per-1K"):
            assert token in out

    def test_paper_rows_included_by_default(self):
        out = table2({"gauss": _campaign("gauss")})
        assert "(paper)" in out
        assert "2.91" in out  # paper's gauss L1

    def test_paper_rows_omittable(self):
        out = table2({"gauss": _campaign("gauss")}, include_paper=False)
        assert "(paper)" not in out

    def test_empty_results_rejected(self):
        with pytest.raises(ConfigurationError):
            table2({})

    def test_paper_constants_sane(self):
        assert PAPER_TABLE2["rand"]["l1"] < PAPER_TABLE2["gauss"]["l1"]
        assert PAPER_TABLE2["shift"]["time_per_1k"] < PAPER_TABLE2["rand"]["time_per_1k"]


class TestMarkdown:
    def test_markdown_table_structure(self):
        out = markdown_table(["A", "B"], [[1.0, "x"]])
        lines = out.splitlines()
        assert lines[0] == "| A | B |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | x |"

    def test_markdown_nan_dash(self):
        assert "—" in markdown_table(["A"], [[float("nan")]])

    def test_markdown_ragged_rejected(self):
        with pytest.raises(ConfigurationError):
            markdown_table(["A", "B"], [["x"]])

    def test_table2_markdown(self):
        out = table2_markdown({"gauss": _campaign("gauss")})
        assert "| gauss |" in out
        assert "2.91" in out

    def test_per_class_markdown(self):
        from repro.analysis.per_class import per_class_series

        series = per_class_series(_campaign(), n_classes=3)
        out = per_class_markdown(series)
        assert out.count("\n") == 4  # header + rule + 3 classes

    def test_defense_markdown(self):
        out = defense_markdown(DefenseReport(1.0, 0.6, 5, 5))
        assert "attack_rate_before" in out
        assert "0.4" in out  # rate drop
