"""Tests for the one-call experiment suite and its markdown report."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    ExperimentSuiteResult,
    render_report,
    run_experiment_suite,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def suite_result(trained_model, digit_data):
    _, test = digit_data
    return run_experiment_suite(
        trained_model,
        test.images,
        test.labels,
        n_fuzz=6,
        n_adversarial=12,
        rng=0,
    )


class TestRunExperimentSuite:
    def test_all_sections_present(self, suite_result):
        assert 0.0 <= suite_result.accuracy <= 1.0
        assert set(suite_result.table2) == {"gauss", "rand", "row_col_rand", "shift"}
        assert suite_result.per_class.n_classes == 10
        assert suite_result.guided.guided and not suite_result.unguided.guided
        assert suite_result.defense.n_retrain + suite_result.defense.n_attack == 12
        assert suite_result.images_per_minute > 0

    def test_guided_speedup_computable(self, suite_result):
        assert -2.0 < suite_result.guided_speedup <= 1.0

    def test_too_few_images_rejected(self, trained_model, digit_data):
        _, test = digit_data
        with pytest.raises(ConfigurationError):
            run_experiment_suite(
                trained_model, test.images[:3], test.labels[:3], n_fuzz=10
            )


class TestRenderReport:
    def test_contains_every_section(self, suite_result):
        report = render_report(suite_result)
        for heading in (
            "# HDTest experiment report",
            "## Model accuracy",
            "## Table II",
            "## Fig. 7",
            "## Guided vs unguided",
            "## Defense case study",
            "## Throughput",
        ):
            assert heading in report

    def test_quotes_paper_values(self, suite_result):
        report = render_report(suite_result)
        assert "≈0.90" in report
        assert ">20 %" in report
        assert "≈400" in report

    def test_valid_markdown_tables(self, suite_result):
        report = render_report(suite_result)
        # Every table row line must balance pipes.
        for line in report.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")
