"""Tests for the ``hdtest`` command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_args(self):
        args = build_parser().parse_args(
            ["train", "--out", "m.npz", "--n-train", "10", "--dimension", "512"]
        )
        assert args.command == "train"
        assert args.n_train == 10
        assert args.dimension == 512

    def test_fuzz_defaults(self):
        args = build_parser().parse_args(["fuzz", "--model", "m.npz"])
        assert args.strategies is None  # resolved to the domain default
        assert args.domain == "image"
        assert args.top_n == 3
        assert args.executor == "serial"
        assert args.batch_size is None
        assert args.workers is None

    def test_domain_flags(self):
        args = build_parser().parse_args(
            ["fuzz", "--model", "m.npz", "--domain", "text"]
        )
        assert args.domain == "text"
        args = build_parser().parse_args(
            ["train", "--out", "m.npz", "--domain", "voice"]
        )
        assert args.domain == "voice"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--model", "m.npz", "--domain", "audio"])

    def test_executor_flags(self):
        args = build_parser().parse_args(
            ["fuzz", "--model", "m.npz", "--executor", "batched",
             "--batch-size", "16"]
        )
        assert args.executor == "batched"
        assert args.batch_size == 16
        args = build_parser().parse_args(
            ["defend", "--model", "m.npz", "--executor", "process",
             "--workers", "2"]
        )
        assert args.executor == "process"
        assert args.workers == 2

    def test_family_and_backend_flags(self):
        args = build_parser().parse_args(
            ["train", "--out", "m.npz", "--family", "binary"]
        )
        assert args.family == "binary"
        args = build_parser().parse_args(
            ["fuzz", "--model", "m.npz", "--backend", "packed"]
        )
        assert args.backend == "packed"
        args = build_parser().parse_args(
            ["fuzz", "--model", "m.npz", "--backend", "packed-bipolar"]
        )
        assert args.backend == "packed-bipolar"
        args = build_parser().parse_args(["defend", "--model", "m.npz"])
        assert args.backend == "dense"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fuzz", "--model", "m.npz", "--backend", "gpu"])

    def test_unknown_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["fuzz", "--model", "m.npz", "--executor", "gpu"]
            )

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--version"])
        assert "hdtest" in capsys.readouterr().out


class TestStrategiesCommand:
    def test_lists_domains(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        assert "image:" in out and "text:" in out and "record:" in out
        assert "gauss" in out and "char_sub" in out and "record_gauss" in out


@pytest.mark.slow
class TestEndToEnd:
    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "model.npz"
        code = main(
            [
                "train",
                "--out", str(path),
                "--n-train", "300",
                "--n-test", "60",
                "--dimension", "1024",
                "--seed", "7",
            ]
        )
        assert code == 0
        return path

    @pytest.fixture(scope="class")
    def binary_model_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-binary") / "binary.npz"
        code = main(
            [
                "train",
                "--out", str(path),
                "--family", "binary",
                "--n-train", "200",
                "--n-test", "40",
                "--dimension", "512",
                "--seed", "7",
            ]
        )
        assert code == 0
        return path

    def test_train_reports_accuracy(self, model_path, capsys):
        assert model_path.exists()

    def test_fuzz_binary_with_packed_backend(self, binary_model_path, capsys):
        code = main(
            [
                "fuzz",
                "--model", str(binary_model_path),
                "--strategies", "gauss",
                "--n-images", "3",
                "--iter-times", "10",
                "--executor", "batched",
                "--backend", "packed",
                "--seed", "0",
            ]
        )
        assert code == 0
        assert "gauss" in capsys.readouterr().out

    def test_fuzz_bipolar_with_packed_bipolar_backend(self, model_path, capsys):
        code = main(
            [
                "fuzz",
                "--model", str(model_path),
                "--strategies", "gauss",
                "--n-images", "3",
                "--iter-times", "10",
                "--executor", "batched",
                "--backend", "packed-bipolar",
                "--seed", "0",
            ]
        )
        assert code == 0
        assert "gauss" in capsys.readouterr().out

    def test_packed_bipolar_backend_rejected_for_binary(self, binary_model_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="bipolar model"):
            main(
                [
                    "fuzz",
                    "--model", str(binary_model_path),
                    "--strategies", "gauss",
                    "--n-images", "2",
                    "--backend", "packed-bipolar",
                ]
            )

    def test_packed_backend_rejected_for_bipolar(self, model_path, capsys):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="dense-binary"):
            main(
                [
                    "fuzz",
                    "--model", str(model_path),
                    "--strategies", "gauss",
                    "--n-images", "2",
                    "--backend", "packed",
                ]
            )

    def test_fuzz_prints_table2(self, model_path, capsys):
        code = main(
            [
                "fuzz",
                "--model", str(model_path),
                "--strategies", "gauss",
                "--n-images", "5",
                "--seed", "0",
                "--per-class",
                "--show-example",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "gauss" in out
        assert "Fig. 7" in out

    def test_fuzz_batched_executor(self, model_path, capsys):
        code = main(
            [
                "fuzz",
                "--model", str(model_path),
                "--strategies", "gauss",
                "--n-images", "5",
                "--seed", "0",
                "--executor", "batched",
                "--batch-size", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "gauss" in out

    def test_defend_prints_report(self, model_path, capsys):
        code = main(
            [
                "defend",
                "--model", str(model_path),
                "--n-adversarial", "20",
                "--seed", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "attack_rate_before" in out
        assert "attack-rate drop" in out

    def test_report_writes_markdown(self, model_path, tmp_path, capsys):
        out_path = tmp_path / "report.md"
        code = main(
            [
                "report",
                "--model", str(model_path),
                "--out", str(out_path),
                "--n-fuzz", "4",
                "--n-adversarial", "8",
                "--n-images", "60",
                "--seed", "0",
            ]
        )
        assert code == 0
        report = out_path.read_text()
        assert "# HDTest experiment report" in report
        assert "## Table II" in report


class TestDomainEndToEnd:
    """`hdtest train/fuzz --domain text|voice` work end to end."""

    @pytest.fixture(scope="class")
    def text_model_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-text") / "text.npz"
        code = main(
            [
                "train",
                "--out", str(path),
                "--domain", "text",
                "--n-train", "60",
                "--n-test", "20",
                "--dimension", "1024",
                "--seed", "3",
            ]
        )
        assert code == 0
        return path

    @pytest.fixture(scope="class")
    def voice_model_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-voice") / "voice.npz"
        code = main(
            [
                "train",
                "--out", str(path),
                "--domain", "voice",
                "--n-train", "60",
                "--n-test", "30",
                "--dimension", "1024",
                "--seed", "3",
            ]
        )
        assert code == 0
        return path

    def test_binary_family_image_only(self, tmp_path, capsys):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="image domain"):
            main(
                ["train", "--out", str(tmp_path / "x.npz"),
                 "--domain", "text", "--family", "binary"]
            )

    def test_text_fuzz_batched(self, text_model_path, capsys):
        code = main(
            [
                "fuzz",
                "--model", str(text_model_path),
                "--domain", "text",
                "--n-images", "5",
                "--iter-times", "10",
                "--executor", "batched",
                "--show-example",
                "--seed", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "char_sub" in out  # the text domain's default strategy
        assert "Success rate" in out

    def test_text_fuzz_explicit_strategies(self, text_model_path, capsys):
        code = main(
            [
                "fuzz",
                "--model", str(text_model_path),
                "--domain", "text",
                "--strategies", "char_sub", "char_swap",
                "--n-images", "4",
                "--iter-times", "6",
                "--seed", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "char_swap" in out

    def test_voice_fuzz(self, voice_model_path, capsys):
        code = main(
            [
                "fuzz",
                "--model", str(voice_model_path),
                "--domain", "voice",
                "--n-images", "4",
                "--iter-times", "10",
                "--executor", "batched",
                "--seed", "5",
            ]
        )
        assert code == 0
        assert "record_gauss" in capsys.readouterr().out

    def test_wrong_namespace_rejected(self, text_model_path, capsys):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="namespace"):
            main(
                [
                    "fuzz",
                    "--model", str(text_model_path),
                    "--domain", "text",
                    "--strategies", "gauss",
                ]
            )


class TestAdaptiveCLI:
    """`hdtest fuzz --adaptive` end to end, plus its parser surface."""

    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-adaptive") / "model.npz"
        code = main(
            [
                "train",
                "--out", str(path),
                "--n-train", "300",
                "--n-test", "60",
                "--dimension", "1024",
                "--seed", "7",
            ]
        )
        assert code == 0
        return path

    def test_parser_defaults(self):
        args = build_parser().parse_args(
            ["fuzz", "--model", "m.npz", "--adaptive"]
        )
        assert args.adaptive is True
        assert args.n_adversarial == 20
        assert args.schedule == "thompson"
        assert args.block_size == 16
        assert args.static_corpus is False
        assert args.no_minimize is False

    def test_comma_separated_strategies(self):
        args = build_parser().parse_args(
            ["fuzz", "--model", "m.npz", "--adaptive",
             "--strategies", "gauss,rand,shift"]
        )
        assert args.strategies == ["gauss,rand,shift"]

    def test_adaptive_fuzz_end_to_end(self, model_path, tmp_path, capsys):
        stream = tmp_path / "events.jsonl"
        code = main(
            [
                "fuzz",
                "--model", str(model_path),
                "--adaptive",
                "--strategies", "gauss,shift",
                "--n-images", "10",
                "--n-adversarial", "8",
                "--iter-times", "6",
                "--seed", "3",
                "--executor", "batched",
                "--telemetry", str(stream),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adaptive campaign: schedule=thompson" in out
        assert "arms=gauss,shift" in out
        assert "discrepancies" in out and "best arm" in out
        assert "corpus:" in out
        # The stream renders the per-arm allocation table.
        report = main(["report", str(stream)])
        assert report == 0
        rendered = capsys.readouterr().out
        assert "Adaptive allocation by arm" in rendered

    def test_adaptive_uniform_static(self, model_path, capsys):
        code = main(
            [
                "fuzz",
                "--model", str(model_path),
                "--adaptive",
                "--strategies", "gauss",
                "--schedule", "uniform",
                "--static-corpus",
                "--no-minimize",
                "--n-images", "10",
                "--n-adversarial", "6",
                "--iter-times", "6",
                "--seed", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "schedule=uniform" in out
        assert "0 adversarial" in out  # static corpus never grew

    def test_executor_flag_honoured(self, model_path, capsys):
        # _executor_from_args returns None for the plain serial path;
        # the adaptive driver must still run the requested executor
        # rather than falling back to its own "batched" default.
        code = main(
            [
                "fuzz",
                "--model", str(model_path),
                "--adaptive",
                "--strategies", "gauss",
                "--n-images", "6",
                "--n-adversarial", "4",
                "--iter-times", "6",
                "--seed", "3",
                "--executor", "serial",
            ]
        )
        assert code == 0
        assert "executor=serial" in capsys.readouterr().out


class TestEnsembleCLI:
    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-ensemble") / "model.npz"
        assert main([
            "train", "--out", str(path), "--n-train", "300", "--n-test", "60",
            "--dimension", "1024", "--seed", "7",
        ]) == 0
        return path

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fuzz", "--model", "m.npz"])
        assert args.ensemble == 1
        assert args.ensemble_train == 500
        assert args.oracle == "cross-model"

    def test_cross_model_fuzz(self, model_path, capsys):
        code = main([
            "fuzz", "--model", str(model_path), "--strategies", "gauss",
            "--n-images", "5", "--iter-times", "6",
            "--ensemble", "3", "--ensemble-train", "150",
            "--executor", "batched", "--seed", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "cross-model differential: 3 independent members" in out
        assert "Table II" in out

    def test_majority_oracle_and_packed_backend(self, model_path, capsys):
        code = main([
            "fuzz", "--model", str(model_path), "--strategies", "gauss",
            "--n-images", "4", "--iter-times", "6",
            "--ensemble", "2", "--ensemble-train", "150",
            "--oracle", "majority", "--backend", "packed-bipolar",
            "--executor", "batched", "--seed", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "majority oracle" in out

    def test_ensemble_one_is_the_single_model_path(self, model_path, capsys):
        base = main([
            "fuzz", "--model", str(model_path), "--strategies", "gauss",
            "--n-images", "4", "--iter-times", "6", "--seed", "3",
        ])
        single_out = capsys.readouterr().out
        ens = main([
            "fuzz", "--model", str(model_path), "--strategies", "gauss",
            "--n-images", "4", "--iter-times", "6", "--seed", "3",
            "--ensemble", "1",
        ])
        ensemble_out = capsys.readouterr().out
        assert base == ens == 0

        def stable_lines(text):
            # Everything except the wall-clock row is deterministic.
            return [l for l in text.splitlines() if "Time Per-1K" not in l]

        assert stable_lines(single_out) == stable_lines(ensemble_out)

    def test_invalid_ensemble_size_rejected(self, model_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="--ensemble"):
            main([
                "fuzz", "--model", str(model_path), "--ensemble", "0",
                "--n-images", "2",
            ])


class TestCodebookCLI:
    @pytest.fixture(scope="class")
    def remat_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-codebook") / "remat.npz"
        assert main([
            "train", "--out", str(path), "--n-train", "300", "--n-test", "60",
            "--dimension", "1024", "--seed", "7", "--codebook", "rematerialized",
        ]) == 0
        return path

    def test_train_stores_only_seeds(self, remat_path):
        import numpy as np

        with np.load(remat_path) as data:
            assert "position_seed" in data.files
            assert "value_seed" in data.files
            assert not any(k.endswith("_vectors") for k in data.files)

    def test_shared_codebook_fuzz(self, remat_path, capsys):
        code = main([
            "fuzz", "--model", str(remat_path), "--strategies", "gauss",
            "--n-images", "4", "--iter-times", "6",
            "--ensemble", "3", "--ensemble-train", "150",
            "--executor", "batched", "--seed", "0",
            "--codebook", "rematerialized", "--shared-codebook",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "3 shared-codebook members" in out

    def test_codebook_mismatch_rejected(self, remat_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="rematerialized model"):
            main([
                "fuzz", "--model", str(remat_path), "--n-images", "2",
                "--codebook", "materialized",
            ])

    def test_shared_codebook_needs_an_ensemble(self, remat_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="--shared-codebook"):
            main([
                "fuzz", "--model", str(remat_path), "--n-images", "2",
                "--shared-codebook",
            ])
