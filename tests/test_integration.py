"""End-to-end pipeline tests: the paper's workflows in miniature."""

import numpy as np
import pytest

from repro.analysis import per_class_series, table2
from repro.datasets import load_digits, make_language_dataset
from repro.defense import run_defense
from repro.fuzz import (
    HDTest,
    HDTestConfig,
    TextConstraint,
    compare_strategies,
    generate_adversarial_set,
)
from repro.hdc import HDCClassifier, NgramEncoder, PixelEncoder


class TestImagePipeline:
    """Train → fuzz (all Table II strategies) → analyse → defend."""

    def test_full_paper_workflow(self, trained_model, digit_data):
        _, test = digit_data
        images = test.images[:6].astype(np.float64)

        # Sec. V-B: strategy comparison.
        results = compare_strategies(
            trained_model, images, ("gauss", "rand", "shift"), rng=0
        )
        rendered = table2(results)
        assert "gauss" in rendered

        # Sec. V-C: per-class series exists for every class index.
        series = per_class_series(results, n_classes=10)
        assert series.n_classes == 10

        # Sec. V-D: defense on the pooled adversarials.
        examples = [e for r in results.values() for e in r.examples]
        if len(examples) >= 4:
            report, _ = run_defense(trained_model, examples, rng=0)
            assert 0.0 <= report.attack_rate_after <= 1.0

    def test_differential_oracle_needs_no_labels(self, trained_model, test_images):
        # The whole pipeline runs on unlabeled inputs.
        result = HDTest(trained_model, "gauss", rng=1).fuzz(test_images[:3])
        for outcome in result.outcomes:
            assert outcome.reference_label in range(10)

    def test_rand_less_visible_than_gauss(self, trained_model, test_images):
        # Table II's headline shape on a small sample.
        results = compare_strategies(
            trained_model, test_images[:8], ("gauss", "rand"), rng=2
        )
        if results["rand"].n_success >= 3 and results["gauss"].n_success >= 3:
            assert results["rand"].avg_l1 < results["gauss"].avg_l1
            assert results["rand"].avg_iterations > results["gauss"].avg_iterations

    def test_whole_pipeline_reproducible(self, digit_data):
        train, test = digit_data

        def run():
            enc = PixelEncoder(dimension=512, rng=99)
            model = HDCClassifier(enc, 10).fit(train.images[:200], train.labels[:200])
            result = HDTest(model, "gauss", rng=123).fuzz(
                test.images[:3].astype(np.float64)
            )
            return [
                (o.success, o.iterations, o.reference_label) for o in result.outcomes
            ]

        assert run() == run()


class TestTextPipeline:
    """Sec. V-E: the same fuzzer on a language-identification model."""

    @pytest.fixture(scope="class")
    def text_setup(self):
        data = make_language_dataset(25, n_languages=3, length=90, seed=0)
        train, test = data.split(0.7, rng=1)
        encoder = NgramEncoder(n=3, dimension=2048, rng=2)
        model = HDCClassifier(encoder, n_classes=3).fit(list(train.texts), train.labels)
        return model, test

    def test_language_model_learns(self, text_setup):
        model, test = text_setup
        assert model.score(list(test.texts), test.labels) > 0.8

    def test_fuzzing_texts_finds_adversarials(self, text_setup):
        model, test = text_setup
        fuzzer = HDTest(
            model,
            "char_sub",
            constraint=TextConstraint(max_edits=40),
            config=HDTestConfig(iter_times=40),
            rng=3,
        )
        result = fuzzer.fuzz(list(test.texts)[:5])
        assert result.success_rate > 0.5
        for ex in result.examples:
            assert isinstance(ex.adversarial, str)
            assert len(ex.adversarial) == len(ex.original)
            assert ex.metrics["edits"] <= 40

    def test_text_adversarial_flips_model(self, text_setup):
        model, test = text_setup
        fuzzer = HDTest(
            model, "char_sub", constraint=TextConstraint(max_edits=40), rng=4
        )
        outcome = fuzzer.fuzz_one(test.texts[0])
        if outcome.success:
            ex = outcome.example
            assert model.predict_one(ex.adversarial) == ex.adversarial_label
            assert ex.adversarial_label != ex.reference_label


class TestGenerateAndPersist:
    def test_generate_set_and_reuse(self, trained_model, digit_data, tmp_path):
        from repro.analysis import save_examples_npz

        _, test = digit_data
        examples, _ = generate_adversarial_set(
            trained_model,
            test.images[:10].astype(np.float64),
            5,
            strategy="gauss",
            true_labels=test.labels[:10],
            rng=5,
        )
        path = tmp_path / "examples.npz"
        save_examples_npz(path, examples)
        with np.load(path, allow_pickle=False) as data:
            assert data["adversarials"].shape[0] == 5
