"""Tests for the retraining defense (Sec. V-D / Fig. 8)."""

import numpy as np
import pytest

from repro.defense.retrain import DefenseReport, attack_success_rate, run_defense
from repro.errors import ConfigurationError
from repro.fuzz.campaign import generate_adversarial_set
from repro.fuzz.results import AdversarialExample


@pytest.fixture(scope="module")
def adversarial_examples(trained_model, digit_data):
    _, test = digit_data
    examples, _ = generate_adversarial_set(
        trained_model,
        test.images.astype(np.float64),
        40,
        strategy="gauss",
        true_labels=test.labels,
        rng=3,
    )
    return examples


class TestAttackSuccessRate:
    def test_fresh_adversarials_fool_generator_model(
        self, trained_model, adversarial_examples
    ):
        rate = attack_success_rate(trained_model, adversarial_examples)
        # Adversarials were minted against this very model; when the
        # true label equals the reference label the attack succeeds by
        # construction, so the rate should be near 1.
        assert rate > 0.8

    def test_empty_examples_rejected(self, trained_model):
        with pytest.raises(ConfigurationError):
            attack_success_rate(trained_model, [])


class TestRunDefense:
    def test_report_structure_and_rate_drop(
        self, trained_model, adversarial_examples, digit_data
    ):
        _, test = digit_data
        report, hardened = run_defense(
            trained_model,
            adversarial_examples,
            clean_inputs=test.images,
            clean_labels=test.labels,
            rng=0,
        )
        assert report.n_retrain + report.n_attack == len(adversarial_examples)
        assert 0.0 <= report.attack_rate_after <= report.attack_rate_before <= 1.0
        assert report.rate_drop >= 0.0
        # Retraining must not destroy the model (paper keeps using it).
        assert report.clean_accuracy_after > report.clean_accuracy_before - 0.15

    def test_retraining_reduces_attack_rate(self, trained_model, adversarial_examples):
        report, _ = run_defense(trained_model, adversarial_examples, rng=1)
        assert report.rate_drop > 0.05

    def test_original_model_untouched(self, trained_model, adversarial_examples):
        before = trained_model.associative_memory.accumulators.copy()
        run_defense(trained_model, adversarial_examples, rng=2)
        np.testing.assert_array_equal(
            trained_model.associative_memory.accumulators, before
        )

    def test_split_fraction_controls_sizes(self, trained_model, adversarial_examples):
        report, _ = run_defense(
            trained_model, adversarial_examples, retrain_fraction=0.25, rng=0
        )
        assert report.n_retrain == round(0.25 * len(adversarial_examples))

    def test_additive_mode_runs(self, trained_model, adversarial_examples):
        report, _ = run_defense(
            trained_model, adversarial_examples, mode="additive", rng=0
        )
        assert 0.0 <= report.attack_rate_after <= 1.0

    def test_invalid_fraction_rejected(self, trained_model, adversarial_examples):
        with pytest.raises(ConfigurationError):
            run_defense(trained_model, adversarial_examples, retrain_fraction=1.0)

    def test_too_few_examples_rejected(self, trained_model, adversarial_examples):
        with pytest.raises(ConfigurationError):
            run_defense(trained_model, adversarial_examples[:1])

    def test_summary_keys(self):
        report = DefenseReport(1.0, 0.7, 10, 10)
        summary = report.summary()
        assert summary["rate_drop"] == pytest.approx(0.3)
        assert "attack_rate_before" in summary

    def test_uses_reference_label_without_ground_truth(self, trained_model, test_images):
        from repro.fuzz.fuzzer import HDTest

        result = HDTest(trained_model, "gauss", rng=9).fuzz(test_images[:6])
        examples = result.examples
        if len(examples) < 2:
            pytest.skip("not enough adversarials")
        report, _ = run_defense(trained_model, examples, rng=0)
        assert report.attack_rate_before > 0.9  # reference label == prediction


class TestEnsembleDebugging:
    """The HDXplore-style cross-model debugging loop."""

    @pytest.fixture(scope="class")
    def ensemble(self, trained_model, digit_data):
        from repro.fuzz import ModelEnsembleTarget

        train, _ = digit_data
        return ModelEnsembleTarget.trained_like(
            trained_model, 3, train.images, train.labels, rng=0
        )

    @pytest.fixture(scope="class")
    def debug_run(self, ensemble, digit_data):
        from repro.defense import debug_ensemble
        from repro.fuzz import HDTestConfig

        _, test = digit_data
        images = test.images.astype(np.float64)
        return debug_ensemble(
            ensemble,
            images[:40],
            images[40:],
            config=HDTestConfig(iter_times=8),
            rng=1,
            clean_inputs=test.images,
            clean_labels=test.labels,
        )

    def test_resolves_heldout_disagreements(self, debug_run, ensemble, digit_data):
        report, hardened = debug_run
        assert report.n_discrepancies > 0
        assert report.n_holdout_disagreements > 0
        # The headline claim: some held-out inputs the original members
        # disagreed on — never seen by retraining — now agree.
        assert report.resolved_rate > 0.0
        assert 1 <= report.rounds_run <= 3
        assert len(report.per_round) == report.rounds_run
        assert not np.isnan(report.clean_accuracy_after)

    def test_original_target_untouched(self, debug_run, ensemble, digit_data):
        _, hardened = debug_run
        assert hardened is not ensemble
        # ensemble's member AMs still carry only the original training.
        counts = ensemble.members[0].associative_memory.counts
        assert counts.sum() == 400  # the module fixture's n_train

    def test_agreement_helpers_consistent(self, ensemble, digit_data):
        from repro.defense import ensemble_agreement

        _, test = digit_data
        images = test.images.astype(np.float64)[:20]
        value = ensemble_agreement(ensemble, images)
        labels = ensemble.predict(images)
        assert value == pytest.approx(
            float(np.mean((labels == labels[0]).all(axis=0)))
        )
        assert value == pytest.approx(ensemble.agreement(images))

    def test_true_labels_length_checked(self, ensemble, digit_data):
        from repro.defense import debug_ensemble

        _, test = digit_data
        images = test.images.astype(np.float64)
        with pytest.raises(ConfigurationError, match="true_labels"):
            debug_ensemble(ensemble, images[:10], images[10:], true_labels=[1, 2])

    def test_requires_ensemble_target(self, trained_model, digit_data):
        from repro.defense import debug_ensemble

        _, test = digit_data
        images = test.images.astype(np.float64)
        with pytest.raises(ConfigurationError, match="ModelEnsembleTarget"):
            debug_ensemble(trained_model, images[:5], images[5:])

    def test_invalid_rounds_and_empty_pools_rejected(self, ensemble, digit_data):
        from repro.defense import debug_ensemble

        _, test = digit_data
        images = test.images.astype(np.float64)
        with pytest.raises(ConfigurationError, match="rounds"):
            debug_ensemble(ensemble, images[:5], images[5:], rounds=0)
        with pytest.raises(ConfigurationError, match="non-empty"):
            debug_ensemble(ensemble, images[:0], images[5:])
