"""Tests for the retraining defense (Sec. V-D / Fig. 8)."""

import numpy as np
import pytest

from repro.defense.retrain import DefenseReport, attack_success_rate, run_defense
from repro.errors import ConfigurationError
from repro.fuzz.campaign import generate_adversarial_set
from repro.fuzz.results import AdversarialExample


@pytest.fixture(scope="module")
def adversarial_examples(trained_model, digit_data):
    _, test = digit_data
    examples, _ = generate_adversarial_set(
        trained_model,
        test.images.astype(np.float64),
        40,
        strategy="gauss",
        true_labels=test.labels,
        rng=3,
    )
    return examples


class TestAttackSuccessRate:
    def test_fresh_adversarials_fool_generator_model(
        self, trained_model, adversarial_examples
    ):
        rate = attack_success_rate(trained_model, adversarial_examples)
        # Adversarials were minted against this very model; when the
        # true label equals the reference label the attack succeeds by
        # construction, so the rate should be near 1.
        assert rate > 0.8

    def test_empty_examples_rejected(self, trained_model):
        with pytest.raises(ConfigurationError):
            attack_success_rate(trained_model, [])


class TestRunDefense:
    def test_report_structure_and_rate_drop(
        self, trained_model, adversarial_examples, digit_data
    ):
        _, test = digit_data
        report, hardened = run_defense(
            trained_model,
            adversarial_examples,
            clean_inputs=test.images,
            clean_labels=test.labels,
            rng=0,
        )
        assert report.n_retrain + report.n_attack == len(adversarial_examples)
        assert 0.0 <= report.attack_rate_after <= report.attack_rate_before <= 1.0
        assert report.rate_drop >= 0.0
        # Retraining must not destroy the model (paper keeps using it).
        assert report.clean_accuracy_after > report.clean_accuracy_before - 0.15

    def test_retraining_reduces_attack_rate(self, trained_model, adversarial_examples):
        report, _ = run_defense(trained_model, adversarial_examples, rng=1)
        assert report.rate_drop > 0.05

    def test_original_model_untouched(self, trained_model, adversarial_examples):
        before = trained_model.associative_memory.accumulators.copy()
        run_defense(trained_model, adversarial_examples, rng=2)
        np.testing.assert_array_equal(
            trained_model.associative_memory.accumulators, before
        )

    def test_split_fraction_controls_sizes(self, trained_model, adversarial_examples):
        report, _ = run_defense(
            trained_model, adversarial_examples, retrain_fraction=0.25, rng=0
        )
        assert report.n_retrain == round(0.25 * len(adversarial_examples))

    def test_additive_mode_runs(self, trained_model, adversarial_examples):
        report, _ = run_defense(
            trained_model, adversarial_examples, mode="additive", rng=0
        )
        assert 0.0 <= report.attack_rate_after <= 1.0

    def test_invalid_fraction_rejected(self, trained_model, adversarial_examples):
        with pytest.raises(ConfigurationError):
            run_defense(trained_model, adversarial_examples, retrain_fraction=1.0)

    def test_too_few_examples_rejected(self, trained_model, adversarial_examples):
        with pytest.raises(ConfigurationError):
            run_defense(trained_model, adversarial_examples[:1])

    def test_summary_keys(self):
        report = DefenseReport(1.0, 0.7, 10, 10)
        summary = report.summary()
        assert summary["rate_drop"] == pytest.approx(0.3)
        assert "attack_rate_before" in summary

    def test_uses_reference_label_without_ground_truth(self, trained_model, test_images):
        from repro.fuzz.fuzzer import HDTest

        result = HDTest(trained_model, "gauss", rng=9).fuzz(test_images[:6])
        examples = result.examples
        if len(examples) < 2:
            pytest.skip("not enough adversarials")
        report, _ = run_defense(trained_model, examples, rng=0)
        assert report.attack_rate_before > 0.9  # reference label == prediction
