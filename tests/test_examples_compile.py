"""Sanity checks on the example scripts.

Running every example in CI would cost minutes, so the suite checks the
cheap invariants instead: each example compiles, is documented, guards
its entry point, and imports only the installed public API (verified by
executing the import statements).
"""

import ast
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_PATHS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLE_PATHS}
    assert "quickstart.py" in names
    assert len(EXAMPLE_PATHS) >= 3  # the deliverable's minimum


@pytest.mark.parametrize("path", EXAMPLE_PATHS, ids=lambda p: p.name)
def test_example_compiles(path):
    compile(path.read_text(), str(path), "exec")


@pytest.mark.parametrize("path", EXAMPLE_PATHS, ids=lambda p: p.name)
def test_example_has_module_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} lacks a docstring"


@pytest.mark.parametrize("path", EXAMPLE_PATHS, ids=lambda p: p.name)
def test_example_guards_main(path):
    source = path.read_text()
    assert 'if __name__ == "__main__":' in source, (
        f"{path.name} must guard its entry point"
    )


@pytest.mark.parametrize("path", EXAMPLE_PATHS, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Execute only the example's import statements."""
    tree = ast.parse(path.read_text())
    import_nodes = [
        node for node in tree.body
        if isinstance(node, (ast.Import, ast.ImportFrom))
    ]
    module = ast.Module(body=import_nodes, type_ignores=[])
    exec(compile(module, str(path), "exec"), {})


@pytest.mark.parametrize("path", EXAMPLE_PATHS, ids=lambda p: p.name)
def test_example_is_seeded(path):
    """Examples must be reproducible: every one pins a SEED constant."""
    assert "SEED" in path.read_text(), f"{path.name} has no SEED"
