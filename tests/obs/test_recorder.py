"""Unit tests for the telemetry recorder core (`repro.obs.recorder`)."""

from __future__ import annotations

import time

import pytest

from repro.obs import NULL_TELEMETRY, PHASES, CampaignTelemetry, NullTelemetry, Stopwatch


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.elapsed >= 0.01

    def test_reexported_from_metrics(self):
        from repro.metrics.timing import Stopwatch as MetricsStopwatch

        assert MetricsStopwatch is Stopwatch


class TestNullTelemetry:
    def test_disabled_and_inert(self):
        null = NULL_TELEMETRY
        assert isinstance(null, NullTelemetry)
        assert null.enabled is False
        null.count("encodes", 5)
        null.count_strategy("gauss", 3)
        null.record_success(4, (0, 1))
        null.heartbeat()
        with null.phase("encode"):
            pass
        assert null.marker() is None
        assert null.since(None) is None

    def test_phase_context_is_shared_singleton(self):
        # The disabled hot path must not allocate per call.
        assert NULL_TELEMETRY.phase("encode") is NULL_TELEMETRY.phase("query")


class TestCounters:
    def test_count_accumulates(self):
        obs = CampaignTelemetry()
        obs.count("encodes", 3)
        obs.count("encodes")
        assert obs.counters["encodes"] == 4

    def test_strategy_breakdown(self):
        obs = CampaignTelemetry()
        obs.count_strategy("gauss", 8)
        obs.count_strategy("shift", 2)
        obs.count_strategy("gauss", 1)
        assert obs.by_strategy == {"gauss": 9, "shift": 2}

    def test_record_success_attributes_members_and_iteration(self):
        obs = CampaignTelemetry()
        obs.record_success(0, (0, 2))
        obs.record_success(5, (2,))
        obs.record_success(3, None)
        assert obs.counters["retired"] == 3
        assert obs.counters["seed_discrepancies"] == 1
        assert obs.retired_at == [0, 5, 3]
        assert obs.by_member == {0: 1, 2: 2}

    def test_cache_hits_derived(self):
        obs = CampaignTelemetry()
        obs.count("encode_requests", 10)
        obs.count("encoded_children", 7)
        assert obs.cache_hits == 3
        assert obs.cache_hit_rate == pytest.approx(0.3)

    def test_cache_hit_rate_nan_before_requests(self):
        import math

        assert math.isnan(CampaignTelemetry().cache_hit_rate)


class TestPhases:
    def test_phase_accumulates_time(self):
        obs = CampaignTelemetry()
        with obs.phase("encode"):
            time.sleep(0.005)
        with obs.phase("encode"):
            time.sleep(0.005)
        assert obs.phase_seconds["encode"] >= 0.01
        assert set(obs.phase_seconds) <= set(PHASES) | {"encode"}

    def test_phase_timer_cached_per_name(self):
        obs = CampaignTelemetry()
        assert obs.phase("query") is obs.phase("query")
        assert obs.phase("query") is not obs.phase("mutate")


class TestSnapshotMarkerSince:
    def test_snapshot_is_json_ready(self):
        import json

        obs = CampaignTelemetry(label="gauss", meta={"oracle": "CrossModelOracle"})
        obs.count("encodes", 4)
        obs.record_success(2, (1,))
        snap = obs.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["label"] == "gauss"
        assert snap["counters"]["encodes"] == 4
        assert snap["by_member"] == {"1": 1}

    def test_since_subtracts_marker(self):
        obs = CampaignTelemetry()
        obs.count("encodes", 10)
        obs.record_success(1, None)
        mark = obs.marker()
        obs.count("encodes", 5)
        obs.record_success(3, (0,))
        delta = obs.since(mark)
        assert delta["counters"]["encodes"] == 5
        assert delta["counters"]["retired"] == 1
        assert delta["retired_at"] == [3]
        assert delta["by_member"] == {"0": 1}

    def test_since_drops_zero_counters(self):
        obs = CampaignTelemetry()
        obs.count("encodes", 10)
        mark = obs.marker()
        obs.count("am_queries", 2)
        delta = obs.since(mark)
        assert "encodes" not in delta["counters"]
        assert delta["counters"]["am_queries"] == 2


class TestMerge:
    def _worker(self, encodes, retired_at, members):
        obs = CampaignTelemetry()
        obs.count("encodes", encodes)
        obs.count("encode_requests", encodes)
        obs.count("encoded_children", encodes)
        for iteration, member in zip(retired_at, members):
            obs.record_success(iteration, (member,))
        return obs

    def test_merge_sums_everything(self):
        parent = CampaignTelemetry()
        parent.merge(self._worker(10, [2, 4], [0, 1]).snapshot())
        parent.merge(self._worker(5, [1], [0]).snapshot())
        assert parent.counters["encodes"] == 15
        assert parent.counters["retired"] == 3
        assert parent.retired_at == [1, 2, 4]  # merged sorted
        assert parent.by_member == {0: 2, 1: 1}

    def test_merge_is_order_invariant(self):
        shards = [
            self._worker(7, [3], [2]).snapshot(),
            self._worker(2, [0, 5], [1, 2]).snapshot(),
            self._worker(4, [], []).snapshot(),
        ]
        forward = CampaignTelemetry()
        for shard in shards:
            forward.merge(shard)
        backward = CampaignTelemetry()
        for shard in reversed(shards):
            backward.merge(shard)
        assert forward.counters == backward.counters
        assert forward.retired_at == backward.retired_at
        assert forward.by_member == backward.by_member
        assert forward.by_strategy == backward.by_strategy

    def test_merge_rejects_non_snapshots(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CampaignTelemetry().merge(None)

    def test_merge_accumulates_busy_seconds(self):
        worker = CampaignTelemetry()
        with worker.phase("encode"):
            time.sleep(0.005)
        parent = CampaignTelemetry()
        parent.merge(worker.snapshot())
        assert parent.busy_seconds > 0


class TestByArm:
    def test_record_arm_block_accumulates(self):
        obs = CampaignTelemetry()
        obs.record_arm_block("gauss", scheduled=16, retired=5)
        obs.record_arm_block("gauss", scheduled=16, retired=3)
        obs.record_arm_block("shift", scheduled=8, retired=0)
        snap = obs.snapshot()
        assert snap["by_arm"]["gauss"] == {
            "blocks": 2,
            "scheduled": 32,
            "retired": 8,
        }
        assert snap["by_arm"]["shift"]["blocks"] == 1

    def test_since_deltas_by_arm_and_drops_untouched(self):
        obs = CampaignTelemetry()
        obs.record_arm_block("gauss", scheduled=16, retired=5)
        obs.record_arm_block("rand", scheduled=16, retired=1)
        mark = obs.marker()
        obs.record_arm_block("gauss", scheduled=4, retired=2)
        delta = obs.since(mark)
        assert delta["by_arm"] == {
            "gauss": {"blocks": 1, "scheduled": 4, "retired": 2}
        }

    def test_merge_sums_by_arm(self):
        left = CampaignTelemetry()
        left.record_arm_block("gauss", scheduled=16, retired=4)
        right = CampaignTelemetry()
        right.record_arm_block("gauss", scheduled=8, retired=1)
        right.record_arm_block("rand", scheduled=8, retired=0)
        parent = CampaignTelemetry()
        parent.merge(left.snapshot())
        parent.merge(right.snapshot())
        assert parent.by_arm["gauss"] == {
            "blocks": 2,
            "scheduled": 24,
            "retired": 5,
        }
        assert parent.by_arm["rand"]["scheduled"] == 8

    def test_null_telemetry_accepts_arm_blocks(self):
        from repro.obs import NULL_TELEMETRY

        NULL_TELEMETRY.record_arm_block("gauss", scheduled=4, retired=1)
