"""End-to-end CLI observability: `hdtest fuzz --telemetry` → `hdtest report`.

The acceptance workflow from the ISSUE: an instrumented ensemble
campaign writes a JSONL stream, and ``hdtest report`` renders the
HDXplore-style discrepancies-over-iterations and per-member
disagreement views from it — no re-running the fuzzer.
"""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigurationError
from repro.obs import read_events


class TestParser:
    def test_fuzz_obs_flags(self):
        args = build_parser().parse_args(
            ["fuzz", "--model", "m.npz", "--telemetry", "t.jsonl",
             "--progress", "--profile"]
        )
        assert str(args.telemetry) == "t.jsonl"
        assert args.progress is True
        assert args.profile is True

    def test_obs_flags_default_off(self):
        args = build_parser().parse_args(["fuzz", "--model", "m.npz"])
        assert args.telemetry is None
        assert args.progress is False
        assert args.profile is False

    def test_report_takes_optional_source(self):
        args = build_parser().parse_args(["report", "t.jsonl"])
        assert str(args.source) == "t.jsonl"
        assert args.model is None


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-obs") / "model.npz"
        code = main(
            [
                "train",
                "--out", str(path),
                "--n-train", "300",
                "--n-test", "60",
                "--dimension", "1024",
                "--seed", "7",
            ]
        )
        assert code == 0
        return path

    @pytest.fixture(scope="class")
    def telemetry_path(self, model_path, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-obs-stream") / "telemetry.jsonl"
        code = main(
            [
                "fuzz",
                "--model", str(model_path),
                "--strategies", "gauss",
                "--n-images", "4",
                "--iter-times", "8",
                "--ensemble", "3",
                "--ensemble-train", "200",
                "--executor", "batched",
                "--telemetry", str(path),
                "--seed", "7",
            ]
        )
        assert code == 0
        return path

    def test_fuzz_writes_event_stream(self, telemetry_path):
        events = read_events(telemetry_path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "campaign_start"
        assert kinds[-1] == "campaign_end"
        end = events[-1]
        telemetry = end["telemetry"]
        assert telemetry["counters"]["inputs"] == 4
        # Ensemble accounting: 3 independent members -> 3 HV blocks per child.
        assert (
            telemetry["counters"]["encodes"]
            == telemetry["counters"]["encoded_children"] * 3
        )
        assert end["summary"]["n_inputs"] == 4

    def test_report_renders_hdxplore_views(self, telemetry_path, capsys):
        assert main(["report", str(telemetry_path)]) == 0
        out = capsys.readouterr().out
        assert "## Cumulative discrepancies over iterations" in out
        assert "## Per-member disagreements" in out
        assert "## Phase time split" in out
        assert "CrossModelOracle" in out

    def test_report_out_file(self, telemetry_path, tmp_path):
        out = tmp_path / "report.md"
        assert main(["report", str(telemetry_path), "--out", str(out)]) == 0
        assert "## Yield" in out.read_text()

    def test_progress_line_on_stderr(self, model_path, tmp_path, capsys):
        code = main(
            [
                "fuzz",
                "--model", str(model_path),
                "--strategies", "gauss",
                "--n-images", "2",
                "--iter-times", "4",
                "--progress",
                "--seed", "7",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "[gauss]" in err

    def test_profile_prints_hotspots(self, model_path, tmp_path, capsys):
        stream = tmp_path / "profiled.jsonl"
        code = main(
            [
                "fuzz",
                "--model", str(model_path),
                "--strategies", "gauss",
                "--n-images", "2",
                "--iter-times", "4",
                "--profile",
                "--telemetry", str(stream),
                "--seed", "7",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cumtime" in out
        profile_events = [
            e for e in read_events(stream) if e["event"] == "profile"
        ]
        assert len(profile_events) == 1
        assert profile_events[0]["hotspots"]

    def test_report_requires_exactly_one_source(self, telemetry_path, model_path):
        with pytest.raises(ConfigurationError, match="exactly one"):
            main(["report"])
        with pytest.raises(ConfigurationError, match="exactly one"):
            main(["report", str(telemetry_path), "--model", str(model_path)])

    def test_telemetry_does_not_change_table2(self, model_path, tmp_path, capsys):
        base_args = [
            "fuzz",
            "--model", str(model_path),
            "--strategies", "gauss",
            "--n-images", "3",
            "--iter-times", "6",
            "--seed", "7",
        ]
        assert main(base_args) == 0
        plain = capsys.readouterr().out
        stream = tmp_path / "t.jsonl"
        assert main(base_args + ["--telemetry", str(stream)]) == 0
        instrumented = capsys.readouterr().out

        def _stable(text):
            # Drop the wall-clock row; everything else must match exactly.
            return [
                line for line in text.splitlines()
                if not line.startswith(("Time Per-1K", "telemetry stream"))
            ]

        assert _stable(plain) == _stable(instrumented)
        assert "telemetry stream written to" in instrumented
