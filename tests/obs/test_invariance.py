"""Telemetry must observe, never perturb.

The acceptance property of the observability layer: a campaign run with
telemetry enabled is bit-identical to the same campaign with telemetry
off — across the sequential engine, the batched engine, and the process
pool — and the counters it reports obey the conservation laws the
recorder's docstring promises (requests = hits + encodes, blocks =
children × ``n_encode_blocks``, sequential ≡ batched counter streams).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fuzz import HDTestConfig, compare_strategies
from repro.fuzz.batch import BatchedHDTest
from repro.fuzz.executor import BatchedExecutor, ProcessExecutor, SerialExecutor
from repro.fuzz.fuzzer import HDTest
from repro.fuzz.targets import ModelEnsembleTarget
from repro.obs import CampaignTelemetry

CONFIG = HDTestConfig(iter_times=6, children_per_seed=4)


def _outcome_key(outcome):
    return (
        outcome.success,
        outcome.iterations,
        outcome.reference_label,
        None
        if outcome.example is None
        else (
            outcome.example.adversarial_label,
            tuple(np.asarray(outcome.example.adversarial).ravel()),
        ),
    )


def _assert_same_outcomes(a, b):
    assert len(a.outcomes) == len(b.outcomes)
    for left, right in zip(a.outcomes, b.outcomes):
        assert _outcome_key(left) == _outcome_key(right)


class TestBitIdentity:
    """Telemetry on == telemetry off, engine by engine."""

    def test_sequential_engine(self, trained_model, test_images):
        inputs = list(test_images[:5])
        plain = HDTest(trained_model, "gauss", config=CONFIG, rng=0).fuzz(inputs)
        instrumented = HDTest(
            trained_model, "gauss", config=CONFIG, rng=0,
            telemetry=CampaignTelemetry(),
        ).fuzz(inputs)
        _assert_same_outcomes(plain, instrumented)
        assert plain.telemetry is None
        assert instrumented.telemetry is not None

    def test_batched_engine(self, trained_model, test_images):
        inputs = list(test_images[:5])
        plain = BatchedHDTest(trained_model, "gauss", config=CONFIG, rng=0).fuzz(inputs)
        instrumented = BatchedHDTest(
            trained_model, "gauss", config=CONFIG, rng=0,
            telemetry=CampaignTelemetry(),
        ).fuzz(inputs)
        _assert_same_outcomes(plain, instrumented)

    @pytest.mark.parametrize(
        "make_executor",
        [
            lambda: SerialExecutor(),
            lambda: BatchedExecutor(batch_size=3),
            lambda: ProcessExecutor(n_workers=2, batch_size=3),
        ],
        ids=["serial", "batched", "process"],
    )
    def test_executors(self, trained_model, test_images, make_executor):
        inputs = list(test_images[:6])
        plain_exec, obs_exec = make_executor(), make_executor()
        try:
            plain = plain_exec.run(
                trained_model, "gauss", inputs, config=CONFIG, rng=0
            )
            instrumented = obs_exec.run(
                trained_model, "gauss", inputs, config=CONFIG, rng=0,
                telemetry=CampaignTelemetry(),
            )
        finally:
            plain_exec.close()
            obs_exec.close()
        _assert_same_outcomes(plain, instrumented)
        assert instrumented.telemetry is not None

    def test_compare_strategies_session(self, trained_model, test_images, tmp_path):
        from repro.obs import TelemetrySession

        inputs = list(test_images[:4])
        plain = compare_strategies(
            trained_model, inputs, ["gauss", "shift"], config=CONFIG, rng=1
        )
        with TelemetrySession(tmp_path / "t.jsonl") as session:
            instrumented = compare_strategies(
                trained_model, inputs, ["gauss", "shift"], config=CONFIG,
                rng=1, telemetry=session,
            )
        for name in plain:
            _assert_same_outcomes(plain[name], instrumented[name])


class TestCounterConservation:
    def _run(self, trained_model, inputs, **kwargs):
        obs = CampaignTelemetry()
        result = HDTest(
            trained_model, "gauss", config=CONFIG, rng=0, telemetry=obs, **kwargs
        ).fuzz(inputs)
        return result, result.telemetry["counters"]

    def test_requests_split_into_hits_and_encodes(self, trained_model, test_images):
        result, counters = self._run(trained_model, list(test_images[:5]))
        cache_hits = result.telemetry["cache_hits"]
        assert counters["encode_requests"] == cache_hits + counters.get(
            "encoded_children", 0
        )
        assert counters["children_in_budget"] == counters["encode_requests"]
        assert counters.get("children", 0) >= counters["children_in_budget"]

    def test_retired_plus_exhausted_is_inputs(self, trained_model, test_images):
        _, counters = self._run(trained_model, list(test_images[:6]))
        assert counters.get("retired", 0) + counters.get("exhausted", 0) == counters[
            "inputs"
        ]

    def test_encode_blocks_scale_with_ensemble(self, trained_model, digit_data):
        train, test = digit_data
        target = ModelEnsembleTarget.trained_like(
            trained_model, 3, train.images[:200], train.labels[:200], rng=5
        )
        obs = CampaignTelemetry()
        result = HDTest(
            target, "gauss", config=CONFIG, rng=0, telemetry=obs
        ).fuzz(list(test.images[:3].astype(np.float64)))
        counters = result.telemetry["counters"]
        assert counters["encodes"] == counters["encoded_children"] * 3

    def test_sequential_equals_batched_counters(self, trained_model, test_images):
        inputs = list(test_images[:6])
        _, seq = self._run(trained_model, inputs)
        obs = CampaignTelemetry()
        batched = BatchedHDTest(
            trained_model, "gauss", config=CONFIG, rng=0, telemetry=obs
        ).fuzz(inputs)
        assert seq == batched.telemetry["counters"]

    def test_process_merge_matches_serial_counters(self, trained_model, test_images):
        inputs = list(test_images[:6])
        _, serial = self._run(trained_model, inputs)
        executor = ProcessExecutor(n_workers=2, batch_size=2)
        try:
            result = executor.run(
                trained_model, "gauss", inputs, config=CONFIG, rng=0,
                telemetry=CampaignTelemetry(),
            )
        finally:
            executor.close()
        merged = dict(result.telemetry["counters"])
        # The executor adds its own IPC accounting on top of the engine
        # counters; those never appear in a single-process run.
        broadcast_bytes = merged.pop("broadcast_bytes", 0)
        assert broadcast_bytes > 0
        assert merged == serial
        assert result.telemetry["busy_seconds"] > 0
        assert result.telemetry["retired_at"] == sorted(result.telemetry["retired_at"])
