"""JSONL event stream: session emission, rate limiting, and the reader."""

from __future__ import annotations

import io
import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import CampaignTelemetry, TelemetrySession, read_events


class TestSessionStream:
    def test_campaign_lifecycle_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetrySession(path) as session:
            obs = session.campaign("gauss", oracle="CrossModelOracle", n_inputs=4)
            obs.count("encodes", 10)
            obs.record_success(2, (0,))
            session.finish(obs, summary={"success_rate": 0.5})
        events = read_events(path)
        assert [e["event"] for e in events] == ["campaign_start", "campaign_end"]
        start, end = events
        assert start["label"] == "gauss"
        assert start["meta"] == {"oracle": "CrossModelOracle", "n_inputs": 4}
        assert end["summary"] == {"success_rate": 0.5}
        assert end["telemetry"]["counters"]["encodes"] == 10
        assert end["telemetry"]["retired_at"] == [2]

    def test_heartbeat_rate_limited(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetrySession(path, snapshot_interval=3600.0) as session:
            obs = session.campaign("gauss")
            for _ in range(50):
                obs.heartbeat()
            session.finish(obs)
        snapshots = [e for e in read_events(path) if e["event"] == "snapshot"]
        assert len(snapshots) == 1  # first fires, the rest are dropped

    def test_zero_interval_emits_every_heartbeat(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetrySession(path, snapshot_interval=0.0) as session:
            obs = session.campaign("gauss")
            for _ in range(5):
                obs.heartbeat()
            session.finish(obs)
        snapshots = [e for e in read_events(path) if e["event"] == "snapshot"]
        assert len(snapshots) == 5

    def test_nan_summary_sanitized(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetrySession(path) as session:
            obs = session.campaign("gauss")
            session.finish(obs, summary={"avg_l1": float("nan"), "n": 3})
        end = read_events(path)[-1]
        assert end["summary"] == {"avg_l1": None, "n": 3}

    def test_no_file_counts_events(self):
        session = TelemetrySession(None)
        obs = session.campaign("gauss")
        session.finish(obs)
        assert session.events_emitted == 2

    def test_progress_renders_to_stream(self, tmp_path):
        stream = io.StringIO()
        with TelemetrySession(
            tmp_path / "e.jsonl", progress=True, stream=stream,
            snapshot_interval=0.0,
        ) as session:
            obs = session.campaign("gauss", n_inputs=4)
            obs.count("inputs", 4)
            obs.count("encodes", 38200)
            obs.record_success(1, None)
            obs.heartbeat()
        text = stream.getvalue()
        assert "gauss" in text
        assert "disc 1" in text
        assert "38.2k" in text

    def test_negative_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            TelemetrySession(snapshot_interval=-1.0)


def _reject_constants(name):
    raise AssertionError(f"bare JSON constant {name!r} leaked into the stream")


class TestStrictJsonStream:
    """Regression: the stream must stay strict JSON at every depth."""

    def test_nested_non_finite_sanitized(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with TelemetrySession(path) as session:
            obs = session.campaign("gauss")
            session.finish(
                obs,
                summary={
                    "avg_l1": float("nan"),
                    "per_member": {"0": float("inf"), "1": 3.0},
                    "series": [1.0, float("-inf"), {"deep": float("nan")}],
                },
            )
        # parse_constant fires on NaN/Infinity literals; a strict stream
        # never reaches it.
        for line in path.read_text().splitlines():
            record = json.loads(line, parse_constant=_reject_constants)
            assert isinstance(record, dict)
        end = read_events(path)[-1]
        assert end["summary"] == {
            "avg_l1": None,
            "per_member": {"0": None, "1": 3.0},
            "series": [1.0, None, {"deep": None}],
        }

    def test_non_finite_in_any_event_kind(self, tmp_path):
        # emit() is the single chokepoint: arbitrary records (snapshots,
        # profile events, custom emits) are sanitised too.
        path = tmp_path / "events.jsonl"
        with TelemetrySession(path) as session:
            session.emit(
                {"event": "profile", "hotspots": [{"cum": float("inf")}]}
            )
        record = json.loads(
            path.read_text().splitlines()[0], parse_constant=_reject_constants
        )
        assert record["hotspots"] == [{"cum": None}]


class TestReuseAfterClose:
    """Regression: a post-close emit must append, not truncate."""

    def test_close_emit_round_trip_keeps_events(self, tmp_path):
        path = tmp_path / "events.jsonl"
        session = TelemetrySession(path)
        obs = session.campaign("gauss")
        obs.count("encodes", 5)
        session.finish(obs, summary={"n": 1})
        session.close()
        # A late consumer (e.g. a profile event emitted after the
        # campaign block closed the session) reopens the stream lazily —
        # previously in "w" mode, destroying every flushed event.
        session.emit({"event": "profile", "hotspots": []})
        session.close()
        events = read_events(path)
        assert [e["event"] for e in events] == [
            "campaign_start", "campaign_end", "profile",
        ]
        assert events[1]["telemetry"]["counters"]["encodes"] == 5

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "events.jsonl"
        session = TelemetrySession(path)
        session.emit({"event": "profile"})
        session.close()
        session.close()
        assert len(read_events(path)) == 1


class TestReadEvents:
    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"event":"campaign_start"}\n\n{"event":"campaign_end"}\n')
        assert len(read_events(path)) == 2

    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ConfigurationError, match="lineno|:1:"):
            read_events(path)

    def test_rejects_records_without_event_key(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text(json.dumps({"label": "gauss"}) + "\n")
        with pytest.raises(ConfigurationError, match="event"):
            read_events(path)
