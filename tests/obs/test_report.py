"""`hdtest report` rendering from JSONL streams and campaigns JSON."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    CampaignTelemetry,
    TelemetrySession,
    load_campaign_records,
    render_report,
)


def _write_stream(path, *, snapshots=0):
    with TelemetrySession(path, snapshot_interval=0.0) as session:
        obs = session.campaign("gauss", oracle="CrossModelOracle", n_inputs=4)
        obs.count("inputs", 4)
        obs.count("encode_requests", 100)
        obs.count("encoded_children", 80)
        obs.count("encodes", 240)
        obs.count("am_queries", 260)
        obs.record_success(0, (0, 2))
        obs.record_success(3, (2,))
        for _ in range(snapshots):
            obs.heartbeat()
        session.finish(obs, summary={"success_rate": 0.5})


class TestLoadRecords:
    def test_jsonl_grouped_by_campaign(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_stream(path, snapshots=2)
        records = load_campaign_records(path)
        assert len(records) == 1
        record = records[0]
        assert record["label"] == "gauss"
        assert record["meta"]["oracle"] == "CrossModelOracle"
        assert record["telemetry"]["counters"]["encodes"] == 240
        assert len(record["snapshots"]) == 2

    def test_single_line_jsonl_not_mistaken_for_campaigns(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"event": "campaign_start", "label": "gauss", "meta": {}})
            + "\n"
        )
        records = load_campaign_records(path)
        assert records[0]["label"] == "gauss"

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no telemetry"):
            load_campaign_records(tmp_path / "nope.jsonl")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(ConfigurationError, match="empty"):
            load_campaign_records(path)


class TestRenderFromJsonl:
    def test_all_sections_present(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_stream(path, snapshots=2)
        report = render_report(path)
        for section in (
            "## Campaigns",
            "## Phase time split",
            "## Yield",
            "## Cumulative discrepancies over iterations",
            "## Per-member disagreements",
            "## Throughput over time",
        ):
            assert section in report
        assert "20.0%" in report  # cache-hit rate: 20/100 requests
        assert "8.33" in report  # 2 discrepancies per 240 encodes * 1000

    def test_member_attribution_rows(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_stream(path)
        report = render_report(path)
        member_section = report.split("## Per-member disagreements")[1]
        lines = [l.split() for l in member_section.strip().splitlines()[2:]]
        assert [l[0] for l in lines] == ["0", "2"]
        assert [l[1] for l in lines] == ["1", "2"]

    def test_iterations_cumulative(self, tmp_path):
        path = tmp_path / "t.jsonl"
        _write_stream(path)
        report = render_report(path)
        section = report.split("## Cumulative discrepancies over iterations")[1]
        rows = [l.split() for l in section.strip().splitlines()[2:6]]
        # retirements at iterations 0 and 3 -> cumulative 1,1,1,2
        assert [r[1] for r in rows] == ["1", "1", "1", "2"]


class TestRenderFromCampaignsJson:
    def test_v3_instrumented_results(self, trained_model, test_images, tmp_path):
        from repro.fuzz import HDTest, HDTestConfig
        from repro.fuzz.serialization import save_campaigns_json

        result = HDTest(
            trained_model, "gauss", config=HDTestConfig(iter_times=5), rng=0,
            telemetry=CampaignTelemetry(),
        ).fuzz(list(test_images[:4]))
        path = tmp_path / "campaigns.json"
        save_campaigns_json(path, {"gauss": result})
        report = render_report(path)
        assert "## Phase time split" in report
        records = load_campaign_records(path)
        assert records[0]["telemetry"]["counters"]["inputs"] == 4

    def test_pre_v3_records_synthesize_telemetry(self, tmp_path):
        path = tmp_path / "campaigns.json"
        record = {
            "schema_version": 2,
            "strategy": "gauss",
            "guided": True,
            "n_members": 3,
            "elapsed_seconds": 1.5,
            "summary": {"n_inputs": 2, "n_success": 2},
            "outcomes": [
                {
                    "success": True,
                    "iterations": 2,
                    "reference_label": 1,
                    "example": {
                        "reference_label": 1,
                        "adversarial_label": 7,
                        "iterations": 2,
                        "metrics": {},
                        "strategy": "gauss",
                        "true_label": None,
                        "disagreed_members": [0, 1],
                    },
                },
                {"success": False, "iterations": 5, "reference_label": 3},
            ],
        }
        path.write_text(json.dumps({"gauss": record}))
        records = load_campaign_records(path)
        telemetry = records[0]["telemetry"]
        assert telemetry["retired_at"] == [2]
        assert telemetry["by_member"] == {"0": 1, "1": 1}
        report = render_report(path)
        assert "## Per-member disagreements" in report


class TestArmTable:
    def _write_adaptive_stream(self, path):
        with TelemetrySession(path, snapshot_interval=0.0) as session:
            obs = session.campaign("adaptive", schedule="thompson")
            obs.count("encodes", 500)
            obs.record_arm_block("gauss", scheduled=48, retired=24)
            obs.record_arm_block("rand", scheduled=16, retired=1)
            session.finish(obs, summary={})

    def test_arm_section_rendered_with_share_and_yield(self, tmp_path):
        path = tmp_path / "adaptive.jsonl"
        self._write_adaptive_stream(path)
        report = render_report(path)
        assert "## Adaptive allocation by arm" in report
        lines = [line for line in report.splitlines() if " gauss " in line]
        assert len(lines) == 1
        assert "75%" in lines[0]  # 48 of 64 scheduled
        assert "0.500" in lines[0]  # 24 / 48 retired
        rand_line = [line for line in report.splitlines() if " rand " in line][0]
        assert "25%" in rand_line and "0.062" in rand_line

    def test_fixed_campaigns_render_no_arm_section(self, tmp_path):
        path = tmp_path / "fixed.jsonl"
        _write_stream(path)
        assert "Adaptive allocation" not in render_report(path)
