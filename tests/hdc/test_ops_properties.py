"""Property-based tests (hypothesis) for HDC arithmetic invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.hdc.ops import (
    bind,
    bind_xor,
    bipolarize,
    bundle,
    bundle_majority,
    permute,
)

DIM = 64

bipolar_vectors = arrays(
    dtype=np.int8,
    shape=DIM,
    elements=st.sampled_from([-1, 1]),
)
binary_vectors = arrays(
    dtype=np.int8,
    shape=DIM,
    elements=st.sampled_from([0, 1]),
)
accumulators = arrays(
    dtype=np.int64,
    shape=DIM,
    elements=st.integers(min_value=-100, max_value=100),
)
shifts = st.integers(min_value=-3 * DIM, max_value=3 * DIM)


@given(a=bipolar_vectors, b=bipolar_vectors)
def test_bind_is_self_inverse(a, b):
    np.testing.assert_array_equal(bind(bind(a, b), b), a)


@given(a=bipolar_vectors, b=bipolar_vectors)
def test_bind_commutes(a, b):
    np.testing.assert_array_equal(bind(a, b), bind(b, a))


@given(a=bipolar_vectors, b=bipolar_vectors, c=bipolar_vectors)
def test_bind_associates(a, b, c):
    np.testing.assert_array_equal(bind(bind(a, b), c), bind(a, bind(b, c)))


@given(a=bipolar_vectors, b=bipolar_vectors)
def test_bind_preserves_bipolarity(a, b):
    assert set(np.unique(bind(a, b))).issubset({-1, 1})


@given(a=bipolar_vectors, b=bipolar_vectors)
def test_bundle_commutes(a, b):
    np.testing.assert_array_equal(bundle(a, b), bundle(b, a))


@given(a=bipolar_vectors, b=bipolar_vectors, c=bipolar_vectors)
def test_bind_distributes_over_bundle(a, b, c):
    left = bind(a, b) + bind(a, c)
    right = a * (bundle(b, c))
    np.testing.assert_array_equal(left, right)


@given(hv=bipolar_vectors, k=shifts)
def test_permute_roundtrip(hv, k):
    np.testing.assert_array_equal(permute(permute(hv, k), -k), hv)


@given(hv=bipolar_vectors, k=shifts)
def test_permute_preserves_multiset(hv, k):
    assert sorted(permute(hv, k).tolist()) == sorted(hv.tolist())


@given(hv=bipolar_vectors, j=shifts, k=shifts)
def test_permute_composes_additively(hv, j, k):
    np.testing.assert_array_equal(permute(permute(hv, j), k), permute(hv, j + k))


@given(acc=accumulators)
def test_bipolarize_output_alphabet(acc):
    out = bipolarize(acc, rng=0)
    assert set(np.unique(out)).issubset({-1, 1})


@given(acc=accumulators)
def test_bipolarize_respects_nonzero_signs(acc):
    out = bipolarize(acc, rng=0)
    nonzero = acc != 0
    np.testing.assert_array_equal(out[nonzero], np.sign(acc[nonzero]).astype(np.int8))


@given(hv=bipolar_vectors)
def test_bipolarize_idempotent_on_bipolar(hv):
    np.testing.assert_array_equal(bipolarize(hv, rng=0), hv)


@given(a=binary_vectors, b=binary_vectors)
def test_xor_self_inverse(a, b):
    np.testing.assert_array_equal(bind_xor(bind_xor(a, b), b), a)


@given(a=binary_vectors)
def test_xor_identity_is_zero(a):
    np.testing.assert_array_equal(bind_xor(a, np.zeros(DIM, dtype=np.int8)), a)


@given(
    stack=arrays(
        dtype=np.int8,
        shape=(5, DIM),
        elements=st.sampled_from([0, 1]),
    )
)
def test_majority_of_odd_stack_is_deterministic_and_binary(stack):
    out = bundle_majority(stack)
    assert set(np.unique(out)).issubset({0, 1})
    counts = stack.sum(axis=0)
    np.testing.assert_array_equal(out, (counts * 2 > 5).astype(np.int8))


@given(hv=binary_vectors)
def test_majority_of_identical_copies_is_identity(hv):
    stack = np.stack([hv, hv, hv])
    np.testing.assert_array_equal(bundle_majority(stack), hv)
