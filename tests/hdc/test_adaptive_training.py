"""Tests for adaptive (retraining-style) model fitting."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hdc import HDCClassifier, PixelEncoder

DIM = 1024


class TestFitAdaptive:
    def test_history_starts_with_one_shot_accuracy(self, digit_data):
        train, _ = digit_data
        model = HDCClassifier(PixelEncoder(dimension=DIM, rng=0), 10)
        history = model.fit_adaptive(
            train.images[:200], train.labels[:200], epochs=3
        )
        assert len(history) >= 1
        assert all(0.0 <= acc <= 1.0 for acc in history)

    def test_adaptive_epochs_improve_training_accuracy(self, digit_data):
        train, _ = digit_data
        one_shot = HDCClassifier(PixelEncoder(dimension=DIM, rng=1), 10)
        one_shot.fit(train.images[:300], train.labels[:300])
        base = one_shot.score(train.images[:300], train.labels[:300])

        adaptive = HDCClassifier(PixelEncoder(dimension=DIM, rng=1), 10)
        history = adaptive.fit_adaptive(
            train.images[:300], train.labels[:300], epochs=8
        )
        assert history[-1] >= base - 1e-9
        assert max(history) >= history[0]

    def test_generalization_not_destroyed(self, digit_data):
        train, test = digit_data
        model = HDCClassifier(PixelEncoder(dimension=DIM, rng=2), 10)
        model.fit_adaptive(train.images[:300], train.labels[:300], epochs=5)
        assert model.score(test.images, test.labels) > 0.5

    def test_early_stop_on_perfect_fit(self, digit_data):
        # A trivially separable two-image problem converges instantly.
        train, _ = digit_data
        model = HDCClassifier(PixelEncoder(dimension=DIM, rng=3), 10)
        history = model.fit_adaptive(
            train.images[:2], train.labels[:2], epochs=50
        )
        assert len(history) < 10

    def test_invalid_epochs(self, digit_data):
        train, _ = digit_data
        model = HDCClassifier(PixelEncoder(dimension=DIM, rng=4), 10)
        with pytest.raises(ConfigurationError):
            model.fit_adaptive(train.images[:5], train.labels[:5], epochs=0)

    def test_label_range_checked(self, digit_data):
        train, _ = digit_data
        model = HDCClassifier(PixelEncoder(dimension=DIM, rng=5), n_classes=5)
        with pytest.raises(ConfigurationError):
            model.fit_adaptive(train.images[:5], train.labels[:5] + 6)
