"""Tests for item memories (codebooks) and level memories."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DimensionMismatchError
from repro.hdc.item_memory import ItemMemory, LevelMemory
from repro.hdc.similarity import cosine
from repro.hdc.spaces import BinarySpace, BipolarSpace


class TestItemMemory:
    def test_shape_and_dtype(self):
        mem = ItemMemory(10, BipolarSpace(128), rng=0)
        assert mem.vectors.shape == (10, 128)
        assert mem.vectors.dtype == np.int8
        assert len(mem) == 10
        assert mem.dimension == 128

    def test_default_space_is_paper_dimension(self):
        mem = ItemMemory(3, rng=0)
        assert mem.dimension == 10_000

    def test_deterministic_given_seed(self):
        a = ItemMemory(5, BipolarSpace(64), rng=3)
        b = ItemMemory(5, BipolarSpace(64), rng=3)
        np.testing.assert_array_equal(a.vectors, b.vectors)

    def test_rows_mutually_pseudo_orthogonal(self):
        mem = ItemMemory(4, BipolarSpace(4096), rng=1)
        for i in range(4):
            for j in range(i + 1, 4):
                assert abs(cosine(mem[i], mem[j])) < 5 / np.sqrt(4096)

    def test_scalar_lookup(self):
        mem = ItemMemory(4, BipolarSpace(32), rng=2)
        np.testing.assert_array_equal(mem.lookup(2), mem.vectors[2])

    def test_array_lookup_gathers(self):
        mem = ItemMemory(4, BipolarSpace(32), rng=2)
        out = mem.lookup(np.array([0, 0, 3]))
        assert out.shape == (3, 32)
        np.testing.assert_array_equal(out[0], out[1])

    def test_2d_index_lookup(self):
        mem = ItemMemory(4, BipolarSpace(16), rng=2)
        out = mem.lookup(np.zeros((2, 3), dtype=np.int64))
        assert out.shape == (2, 3, 16)

    def test_out_of_range_rejected(self):
        mem = ItemMemory(4, BipolarSpace(16), rng=0)
        with pytest.raises(ConfigurationError, match="out of range"):
            mem.lookup(4)
        with pytest.raises(ConfigurationError):
            mem.lookup(-1)

    def test_non_integer_index_rejected(self):
        mem = ItemMemory(4, BipolarSpace(16), rng=0)
        with pytest.raises(ConfigurationError):
            mem.lookup(np.array([0.5]))

    def test_vectors_view_is_read_only(self):
        mem = ItemMemory(2, BipolarSpace(8), rng=0)
        with pytest.raises(ValueError):
            mem.vectors[0, 0] = 5

    def test_from_vectors_roundtrip(self):
        original = ItemMemory(3, BipolarSpace(16), rng=4)
        rebuilt = ItemMemory.from_vectors(original.vectors)
        np.testing.assert_array_equal(rebuilt.vectors, original.vectors)
        assert rebuilt.dimension == 16

    def test_from_vectors_validates_alphabet(self):
        with pytest.raises(ConfigurationError):
            ItemMemory.from_vectors(np.zeros((2, 8), dtype=np.int8), BipolarSpace(8))

    def test_from_vectors_rejects_1d(self):
        with pytest.raises(DimensionMismatchError):
            ItemMemory.from_vectors(np.ones(8, dtype=np.int8))

    def test_binary_space_memory(self):
        mem = ItemMemory(4, BinarySpace(32), rng=0)
        assert set(np.unique(mem.vectors)).issubset({0, 1})


class TestLevelMemory:
    def test_endpoints_are_pseudo_orthogonal(self):
        mem = LevelMemory(16, BipolarSpace(4096), rng=0)
        sim = cosine(mem[0], mem[15])
        assert abs(sim) < 0.1

    def test_adjacent_levels_highly_similar(self):
        mem = LevelMemory(16, BipolarSpace(4096), rng=1)
        assert cosine(mem[7], mem[8]) > 0.8

    def test_similarity_decays_monotonically(self):
        mem = LevelMemory(8, BipolarSpace(8192), rng=2)
        sims = [cosine(mem[0], mem[k]) for k in range(8)]
        assert all(sims[i] >= sims[i + 1] - 0.02 for i in range(7))

    def test_linear_decay_shape(self):
        mem = LevelMemory(11, BipolarSpace(10_000), rng=3)
        # cosine(level0, levelk) = 1 - k / (size - 1)
        for k in (2, 5, 8, 10):
            expected = 1 - k / 10
            assert cosine(mem[0], mem[k]) == pytest.approx(expected, abs=0.05)

    def test_single_level_allowed(self):
        mem = LevelMemory(1, BipolarSpace(64), rng=0)
        assert mem.size == 1

    def test_rows_stay_bipolar(self):
        mem = LevelMemory(5, BipolarSpace(256), rng=4)
        assert set(np.unique(mem.vectors)).issubset({-1, 1})

    def test_rejects_binary_space(self):
        with pytest.raises(ConfigurationError):
            LevelMemory(4, BinarySpace(64), rng=0)

    def test_deterministic(self):
        a = LevelMemory(6, BipolarSpace(64), rng=5)
        b = LevelMemory(6, BipolarSpace(64), rng=5)
        np.testing.assert_array_equal(a.vectors, b.vectors)
