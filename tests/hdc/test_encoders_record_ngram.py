"""Tests for the record and n-gram encoders."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, EncodingError
from repro.hdc.encoders.ngram import DEFAULT_ALPHABET, NgramEncoder
from repro.hdc.encoders.record import RecordEncoder
from repro.hdc.ops import permute
from repro.hdc.similarity import cosine

DIM = 1024


class TestRecordEncoder:
    def test_output_shape_and_alphabet(self):
        enc = RecordEncoder(10, dimension=DIM, rng=0)
        hv = enc.encode(np.linspace(0, 1, 10))
        assert hv.shape == (DIM,)
        assert set(np.unique(hv)).issubset({-1, 1})

    def test_batch_shape(self):
        enc = RecordEncoder(6, dimension=DIM, rng=0)
        out = enc.encode_batch(np.random.default_rng(0).random((4, 6)))
        assert out.shape == (4, DIM)

    def test_quantize_clips_to_range(self):
        enc = RecordEncoder(3, levels=8, value_range=(0.0, 1.0), dimension=DIM, rng=0)
        levels = enc.quantize(np.array([-5.0, 0.5, 5.0]))
        np.testing.assert_array_equal(levels, [0, 4, 7])

    def test_linear_levels_give_smooth_similarity(self):
        enc = RecordEncoder(
            16, levels=32, level_encoding="linear", dimension=8192, rng=1
        )
        base = np.full(16, 0.5)
        near = enc.encode(base + 0.02)
        far = enc.encode(np.full(16, 0.95))
        ref = enc.encode(base)
        assert cosine(ref, near) > cosine(ref, far)

    def test_random_levels_are_brittle(self):
        # With the paper's random value memory, a one-level nudge on
        # every feature destroys similarity far more than with linear
        # levels — the effect HDTest's `rand` strategy exploits.
        kwargs = dict(n_features=32, levels=64, dimension=8192)
        lin = RecordEncoder(level_encoding="linear", rng=2, **kwargs)
        rnd = RecordEncoder(level_encoding="random", rng=2, **kwargs)
        base = np.full(32, 16.0 / 63.0)  # exactly level 16
        nudged = np.full(32, 18.0 / 63.0)  # exactly level 18
        assert lin.quantize(base[0:1])[0] != lin.quantize(nudged[0:1])[0]
        sim_lin = cosine(lin.encode(base), lin.encode(nudged))
        sim_rnd = cosine(rnd.encode(base), rnd.encode(nudged))
        assert sim_lin > sim_rnd + 0.2

    def test_invalid_level_encoding(self):
        with pytest.raises(ConfigurationError):
            RecordEncoder(4, level_encoding="cubic", dimension=DIM)

    def test_invalid_value_range(self):
        with pytest.raises(ConfigurationError):
            RecordEncoder(4, value_range=(1.0, 0.0), dimension=DIM)

    def test_wrong_record_length_rejected(self):
        enc = RecordEncoder(4, dimension=DIM, rng=0)
        with pytest.raises(EncodingError):
            enc.encode(np.zeros(5))

    def test_nan_rejected(self):
        enc = RecordEncoder(4, dimension=DIM, rng=0)
        with pytest.raises(EncodingError):
            enc.encode(np.array([0.0, np.nan, 0.0, 0.0]))

    def test_2d_single_rejected_by_encode(self):
        enc = RecordEncoder(4, dimension=DIM, rng=0)
        with pytest.raises(EncodingError):
            enc.encode(np.zeros((2, 4)))

    def test_deterministic(self):
        a = RecordEncoder(5, dimension=DIM, rng=3)
        b = RecordEncoder(5, dimension=DIM, rng=3)
        rec = np.linspace(0, 1, 5)
        np.testing.assert_array_equal(a.encode(rec), b.encode(rec))


class TestNgramEncoder:
    def test_output_shape(self):
        enc = NgramEncoder(n=3, dimension=DIM, rng=0)
        hv = enc.encode("hello world")
        assert hv.shape == (DIM,)
        assert set(np.unique(hv)).issubset({-1, 1})

    def test_deterministic(self):
        a = NgramEncoder(n=3, dimension=DIM, rng=1)
        b = NgramEncoder(n=3, dimension=DIM, rng=1)
        np.testing.assert_array_equal(a.encode("abcdef"), b.encode("abcdef"))

    def test_trigram_matches_manual_binding(self):
        enc = NgramEncoder(n=3, dimension=DIM, rng=2)
        hv = enc.encode("abc")
        mem = enc.item_memory
        a, b, c = (mem[enc.indices("abc")[i]] for i in range(3))
        manual = permute(a, 2) * permute(b, 1) * c
        np.testing.assert_array_equal(hv, manual.astype(np.int8))

    def test_order_sensitivity(self):
        enc = NgramEncoder(n=3, dimension=8192, rng=3)
        fwd = enc.encode("abcdefgh" * 4)
        rev = enc.encode(("abcdefgh" * 4)[::-1])
        assert cosine(fwd, rev) < 0.3

    def test_shared_ngrams_raise_similarity(self):
        enc = NgramEncoder(n=3, dimension=8192, rng=4)
        a = enc.encode("the quick brown fox jumps")
        b = enc.encode("the quick brown fox sleeps")
        c = enc.encode("zzzzyyyyxxxxwwwwvvvvuuuu")
        assert cosine(a, b) > cosine(a, c)

    def test_too_short_text_rejected(self):
        enc = NgramEncoder(n=4, dimension=DIM, rng=0)
        with pytest.raises(EncodingError, match="at least"):
            enc.encode("abc")

    def test_unknown_char_raise_policy(self):
        enc = NgramEncoder(n=2, dimension=DIM, rng=0)
        with pytest.raises(EncodingError, match="not in alphabet"):
            enc.encode("ab!cd")

    def test_unknown_char_skip_policy(self):
        enc = NgramEncoder(n=2, dimension=DIM, rng=0, unknown_policy="skip")
        clean = NgramEncoder(n=2, dimension=DIM, rng=0)
        np.testing.assert_array_equal(enc.encode("ab!cd"), clean.encode("abcd"))

    def test_unknown_char_map_policy(self):
        enc = NgramEncoder(n=2, dimension=DIM, rng=0, unknown_policy="map")
        mapped = enc.indices("a!")
        assert mapped[1] == len(DEFAULT_ALPHABET) - 1

    def test_duplicate_alphabet_rejected(self):
        with pytest.raises(ConfigurationError):
            NgramEncoder(alphabet="aab", dimension=DIM)

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ConfigurationError):
            NgramEncoder(alphabet="", dimension=DIM)

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            NgramEncoder(dimension=DIM, unknown_policy="ignore")

    def test_non_string_rejected(self):
        enc = NgramEncoder(dimension=DIM, rng=0)
        with pytest.raises(EncodingError):
            enc.encode(123)  # type: ignore[arg-type]


class TestNgramDeltaSurface:
    """The delta-encoder API the fuzzing engines consume (PR 3)."""

    def test_levels_is_alphabet_size(self):
        enc = NgramEncoder(alphabet="abc ", dimension=DIM, rng=0)
        assert enc.levels == 4

    def test_quantize_strings_matches_indices(self):
        enc = NgramEncoder(alphabet="abc", dimension=DIM, rng=0)
        rows = enc.quantize(["abc", "cba"])
        np.testing.assert_array_equal(rows[0], enc.indices("abc"))
        np.testing.assert_array_equal(rows[1], enc.indices("cba"))

    def test_quantize_codes_pass_through(self):
        enc = NgramEncoder(alphabet="abc", dimension=DIM, rng=0)
        codes = np.array([[0, 1, 2], [2, 2, 2]], dtype=np.uint8)
        out = enc.quantize(codes)
        assert out.dtype == np.int64
        np.testing.assert_array_equal(out, codes)

    def test_quantize_rejects_ragged_strings(self):
        enc = NgramEncoder(alphabet="abc", dimension=DIM, rng=0)
        with pytest.raises(EncodingError, match="length"):
            enc.quantize(["abc", "abcc"])

    def test_out_of_range_codes_rejected(self):
        enc = NgramEncoder(alphabet="abc", dimension=DIM, rng=0)
        with pytest.raises(EncodingError, match="codes"):
            enc.encode(np.array([0, 1, 7], dtype=np.int64))

    def test_encode_batch_codes_match_strings(self):
        enc = NgramEncoder(alphabet="abcd", dimension=DIM, rng=1)
        texts = ["abcdab", "ddccba"]
        codes = enc.quantize(texts)
        np.testing.assert_array_equal(enc.encode_batch(texts), enc.encode_batch(codes))

    def test_hvs_from_accumulators_matches_encode(self):
        enc = NgramEncoder(alphabet="abcd", dimension=DIM, rng=1)
        accs = enc.accumulate_batch(["abcdab"])
        np.testing.assert_array_equal(
            enc.hvs_from_accumulators(accs)[0], enc.encode("abcdab")
        )

    def test_accumulate_delta_shape_validation(self):
        enc = NgramEncoder(alphabet="abc", dimension=DIM, rng=0)
        levels = np.zeros((2, 5), dtype=np.int64)
        accs = np.zeros((2, DIM), dtype=np.int64)
        with pytest.raises(EncodingError):
            enc.accumulate_delta(levels, np.zeros((2, 4), dtype=np.int64), accs)
        with pytest.raises(EncodingError):
            enc.accumulate_delta(levels, levels, np.zeros((1, DIM), dtype=np.int64))
        with pytest.raises(EncodingError):
            enc.accumulate_delta(
                np.zeros((1, 2), dtype=np.int64),
                np.zeros((1, 2), dtype=np.int64),
                np.zeros((1, DIM), dtype=np.int64),
            )
