"""Cross-family differential conformance suite (HDXplore on ourselves).

One parametrized matrix runs the model/AM/encoder equivalence
properties across *all* model families — dense bipolar, dense binary,
packed binary, packed bipolar, each with materialized and
rematerialized (seed-only) codebooks.  Two kinds of checks:

* **pairwise equivalence** — each packed family against its dense
  counterpart, built from the same seed: encodings, class HVs,
  similarities, predictions, margins, retraining, save/load
  round-trips, and copies must agree bit for bit (packing is pure
  representation);
* **per-family self-consistency** — every family round-trips through
  its accumulator surface, its persistence format, and ``copy()``
  without drifting.

A final HDXplore-style differential check trains all four families on
one dataset and asserts the two *semantic* classes (bipolar, binary)
agree internally while every family clears the same accuracy floor —
cross-semantics disagreement is the expected differential signal, not
a bug.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotTrainedError
from repro.hdc import (
    BinaryHDCClassifier,
    BinaryPixelEncoder,
    BinarySpace,
    BipolarSpace,
    HDCClassifier,
    PackedBinaryHDCClassifier,
    PackedBinarySpace,
    PackedBipolarAssociativeMemory,
    PackedBipolarEncoder,
    PackedBipolarHDCClassifier,
    PackedBipolarSpace,
    PackedPixelEncoder,
    PixelEncoder,
)

DIM = 520  # deliberately not a multiple of 64 (tail-word masking live)
SHAPE = (8, 8)
LEVELS = 16
SEED = 4
N_CLASSES = 3


def _dense_bipolar(codebook="materialized"):
    return HDCClassifier(
        PixelEncoder(
            shape=SHAPE, levels=LEVELS, dimension=DIM, rng=SEED, codebook=codebook
        ),
        N_CLASSES,
    )


def _packed_bipolar(codebook="materialized"):
    return PackedBipolarHDCClassifier(
        PackedBipolarEncoder(
            shape=SHAPE, levels=LEVELS, dimension=DIM, rng=SEED, codebook=codebook
        ),
        N_CLASSES,
    )


def _dense_binary(codebook="materialized"):
    return BinaryHDCClassifier(
        BinaryPixelEncoder(
            shape=SHAPE, levels=LEVELS, dimension=DIM, rng=SEED, codebook=codebook
        ),
        N_CLASSES,
    )


def _packed_binary(codebook="materialized"):
    return PackedBinaryHDCClassifier(
        PackedPixelEncoder(
            shape=SHAPE, levels=LEVELS, dimension=DIM, rng=SEED, codebook=codebook
        ),
        N_CLASSES,
    )


def _remat(builder):
    return lambda: builder(codebook="rematerialized")


def _identity(model, hvs):
    return np.asarray(hvs)


def _unpack_encoder(model, hvs):
    return model.encoder.unpack(hvs)


#: name → (builder, hvs-to-dense canonicaliser, semantic class, loader)
#:
#: The ``remat-*`` rows run the whole matrix again with rematerialized
#: (seed-only, PRF-backed) codebooks.  At a shared ``rng`` the dense and
#: packed remat encoders draw the *same* codebook seeds, so each remat
#: pair is bit-identical exactly like the materialized pairs — but a
#: remat family's codebook *content* differs from its materialized
#: sibling's (a 64-bit seed draw replaces the space's row draws), which
#: is why the cross-semantics check groups by codebook kind too.
FAMILIES = {
    "dense-bipolar": (_dense_bipolar, _identity, "bipolar", HDCClassifier.load),
    "packed-bipolar": (_packed_bipolar, _unpack_encoder, "bipolar", HDCClassifier.load),
    "dense-binary": (_dense_binary, _identity, "binary", BinaryHDCClassifier.load),
    "packed-binary": (
        _packed_binary,
        _unpack_encoder,
        "binary",
        BinaryHDCClassifier.load,
    ),
    "remat-bipolar": (
        _remat(_dense_bipolar),
        _identity,
        "bipolar",
        HDCClassifier.load,
    ),
    "remat-packed-bipolar": (
        _remat(_packed_bipolar),
        _unpack_encoder,
        "bipolar",
        HDCClassifier.load,
    ),
    "remat-binary": (
        _remat(_dense_binary),
        _identity,
        "binary",
        BinaryHDCClassifier.load,
    ),
    "remat-packed-binary": (
        _remat(_packed_binary),
        _unpack_encoder,
        "binary",
        BinaryHDCClassifier.load,
    ),
}

#: (dense, packed) pairs sharing one semantic class — the equivalence axes.
PAIRS = [
    ("dense-bipolar", "packed-bipolar"),
    ("dense-binary", "packed-binary"),
    ("remat-bipolar", "remat-packed-bipolar"),
    ("remat-binary", "remat-packed-binary"),
]


@pytest.fixture(scope="module")
def images():
    return np.random.default_rng(9).integers(0, 256, size=(12,) + SHAPE).astype(float)


@pytest.fixture(scope="module")
def labels():
    return np.arange(12) % N_CLASSES


@pytest.fixture(scope="module")
def trained(images, labels):
    """All four families trained identically on one dataset."""
    return {
        name: spec[0]().fit(images, labels) for name, spec in FAMILIES.items()
    }


def _canonical(name, model, hvs):
    return FAMILIES[name][1](model, hvs)


class TestPairwiseEquivalence:
    """Packed vs dense, same seed: bit-identical everywhere it counts."""

    @pytest.mark.parametrize("dense_name,packed_name", PAIRS)
    def test_encoders_emit_equal_components(self, trained, images, dense_name, packed_name):
        dense, packed = trained[dense_name], trained[packed_name]
        np.testing.assert_array_equal(
            _canonical(packed_name, packed, packed.encode_batch(images)),
            dense.encode_batch(images),
        )

    @pytest.mark.parametrize("dense_name,packed_name", PAIRS)
    def test_predictions_similarities_margins(self, trained, images, dense_name, packed_name):
        dense, packed = trained[dense_name], trained[packed_name]
        np.testing.assert_array_equal(dense.predict(images), packed.predict(images))
        np.testing.assert_array_equal(
            dense.similarities(images), packed.similarities(images)
        )
        np.testing.assert_array_equal(dense.margins(images), packed.margins(images))
        assert dense.score(images, packed.predict(images)) == 1.0

    @pytest.mark.parametrize("dense_name,packed_name", PAIRS)
    def test_reference_hvs_match(self, trained, images, dense_name, packed_name):
        dense, packed = trained[dense_name], trained[packed_name]
        for label in range(N_CLASSES):
            np.testing.assert_array_equal(
                _canonical(packed_name, packed, packed.reference_hv(label)),
                dense.reference_hv(label),
            )

    @pytest.mark.parametrize("dense_name,packed_name", PAIRS)
    @pytest.mark.parametrize("mode", ["additive", "adaptive"])
    def test_retrain_agreement(self, trained, images, labels, dense_name, packed_name, mode):
        dense, packed = trained[dense_name], trained[packed_name]
        flipped = (labels + 1) % N_CLASSES
        hardened_d = dense.copy().retrain(images, flipped, mode=mode, epochs=2)
        hardened_p = packed.copy().retrain(images, flipped, mode=mode, epochs=2)
        np.testing.assert_array_equal(
            hardened_d.predict(images), hardened_p.predict(images)
        )
        # Retraining the copies never leaks back into the originals.
        np.testing.assert_array_equal(dense.predict(images), packed.predict(images))

    @pytest.mark.parametrize("dense_name,packed_name", PAIRS)
    def test_save_load_crosses_representations(
        self, trained, images, tmp_path, dense_name, packed_name
    ):
        """Either family saves; the loaded dense model repackages exactly."""
        dense, packed = trained[dense_name], trained[packed_name]
        loader = FAMILIES[dense_name][3]
        repackage = type(trained[packed_name])
        convert = (
            repackage.from_dense
            if hasattr(repackage, "from_dense")
            else repackage.from_binary
        )
        for source in (dense, packed):
            path = tmp_path / f"{dense_name}-{type(source).__name__}.npz"
            source.save(path)
            loaded = loader(path)
            np.testing.assert_array_equal(
                loaded.predict(images), dense.predict(images)
            )
            np.testing.assert_array_equal(
                convert(loaded).predict(images), packed.predict(images)
            )

    @pytest.mark.parametrize("dense_name,packed_name", PAIRS)
    def test_round_trip_conversions(self, trained, images, dense_name, packed_name):
        """packed → dense → packed is the identity on behaviour."""
        packed = trained[packed_name]
        to_dense = getattr(packed, "to_dense", None) or packed.to_binary
        dense_view = to_dense()
        np.testing.assert_array_equal(
            dense_view.predict(images), packed.predict(images)
        )
        repackage = type(packed)
        convert = (
            repackage.from_dense
            if hasattr(repackage, "from_dense")
            else repackage.from_binary
        )
        np.testing.assert_array_equal(
            convert(dense_view).predict(images), packed.predict(images)
        )


class TestPerFamilyConsistency:
    """Each family alone: accumulator surface, persistence, copies."""

    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_encode_batch_equals_accumulator_path(self, trained, images, name):
        model = trained[name]
        encoder = model.encoder
        np.testing.assert_array_equal(
            encoder.hvs_from_accumulators(encoder.accumulate_batch(images)),
            model.encode_batch(images),
        )

    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_accumulate_delta_matches_scratch(self, trained, images, name):
        encoder = trained[name].encoder
        rng = np.random.default_rng(31)
        children = np.clip(images + rng.normal(0, 40, images.shape), 0, 255)
        levels_c = encoder.quantize(children).reshape(len(images), -1)
        levels_p = encoder.quantize(images).reshape(len(images), -1)
        got = encoder.accumulate_delta(
            levels_c, levels_p, encoder.accumulate_batch(images)
        )
        np.testing.assert_array_equal(got, encoder.accumulate_batch(children))

    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_save_load_roundtrip(self, trained, images, tmp_path, name):
        model = trained[name]
        loader = FAMILIES[name][3]
        path = tmp_path / f"{name}.npz"
        model.save(path)
        np.testing.assert_array_equal(
            loader(path).predict(images), model.predict(images)
        )

    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_copy_is_independent(self, trained, images, labels, name):
        model = trained[name]
        before = model.predict(images)
        clone = model.copy()
        clone.retrain(images, (labels + 1) % N_CLASSES, epochs=3)
        np.testing.assert_array_equal(model.predict(images), before)
        assert type(clone) is type(model)

    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_untrained_model_raises(self, name):
        model = FAMILIES[name][0]()
        assert not model.is_trained
        with pytest.raises(NotTrainedError):
            model.predict(np.zeros((1,) + SHAPE))


class TestPackedSpacesDrawDenseBitStreams:
    """Packed spaces must emit exactly the dense spaces' draws, packed."""

    @pytest.mark.parametrize("dim", [1, 63, 64, 65, DIM])
    def test_bipolar_random_matches_dense_seed_for_seed(self, dim):
        space = PackedBipolarSpace(dim)
        dense = BipolarSpace(dim).random(5, rng=3)
        np.testing.assert_array_equal(
            space.unpack(space.random(5, rng=3)), dense
        )
        # Single-vector form follows the same stream.
        np.testing.assert_array_equal(
            space.unpack(space.random(rng=3)), BipolarSpace(dim).random(rng=3)
        )

    @pytest.mark.parametrize("dim", [1, 63, 64, 65, DIM])
    def test_binary_random_matches_dense_seed_for_seed(self, dim):
        space = PackedBinarySpace(dim)
        np.testing.assert_array_equal(
            space.unpack(space.random(5, rng=3)), BinarySpace(dim).random(5, rng=3)
        )


class TestCrossSemanticsDifferential:
    """HDXplore-style: compare the two semantic classes on shared inputs."""

    def test_semantic_classes_agree_internally(self, trained, images):
        # Group by (semantic class, codebook kind): remat and materialized
        # codebooks hold *different* random rows at the same rng, so only
        # families sharing both axes are predicted to agree bit for bit.
        by_class = {}
        for name, model in trained.items():
            key = (FAMILIES[name][2], model.encoder.codebook)
            by_class.setdefault(key, []).append(model.predict(images))
        assert len(by_class) == 4  # {bipolar, binary} × {materialized, remat}
        for (semantic, kind), predictions in by_class.items():
            assert len(predictions) == 2
            np.testing.assert_array_equal(
                predictions[0], predictions[1],
                err_msg=f"{semantic}/{kind} families diverged on identical seeds",
            )

    def test_all_families_clear_the_training_floor(self, trained, images, labels):
        # Training accuracy — deterministic, and high at this easy scale.
        for name, model in trained.items():
            assert model.score(images, labels) >= 0.9, name

    def test_bipolar_ablation_has_no_packed_form(self):
        am_state = {
            "accumulators": np.zeros((2, DIM), dtype=np.int64),
            "counts": np.zeros(2, dtype=np.int64),
            "bipolar": np.asarray(False),
        }
        with pytest.raises(ConfigurationError, match="no packed"):
            PackedBipolarAssociativeMemory.from_state_dict(am_state)
        dense = HDCClassifier(
            PixelEncoder(shape=SHAPE, levels=LEVELS, dimension=DIM, rng=0),
            N_CLASSES,
            bipolar_am=False,
        )
        with pytest.raises(ConfigurationError, match="no.*packed"):
            PackedBipolarHDCClassifier.from_dense(dense)


class TestWordLevelAMUpdates:
    """`add`/`subtract` stay word-level (bit-sliced) yet exactly dense.

    Duplicate labels inside one update batch are the sharp edge: the
    dense memories accumulate them row by row (`np.add.at` semantics),
    the packed memories now group rows per class and column-sum each
    group with the bit-sliced carry-save kernel — the results must be
    identical, including the binary family's clamp at zero.
    """

    DIMS = (1, 63, 64, 65, 520)

    @pytest.mark.parametrize("dimension", DIMS)
    def test_packed_binary_matches_dense_updates(self, dimension):
        from repro.hdc.backends.binary import PackedAssociativeMemory
        from repro.hdc.backends.packed import pack_bits
        from repro.hdc.binary_model import BinaryAssociativeMemory

        rng = np.random.default_rng(9)
        bits = rng.integers(0, 2, size=(12, dimension)).astype(np.int8)
        labels = rng.integers(0, 3, size=12)
        packed = PackedAssociativeMemory(3, dimension)
        dense = BinaryAssociativeMemory(3, dimension)
        packed.add(pack_bits(bits), labels)
        dense.add(bits, labels)
        np.testing.assert_array_equal(
            packed.state_dict()["ones"], dense.state_dict()["ones"]
        )
        # Over-subtract one class so the zero clamp is exercised.
        packed.subtract(pack_bits(bits), labels)
        dense.subtract(bits, labels)
        extra = np.ones((2, dimension), dtype=np.int8)
        packed.subtract(pack_bits(extra), [0, 0])
        dense.subtract(extra, [0, 0])
        np.testing.assert_array_equal(
            packed.state_dict()["ones"], dense.state_dict()["ones"]
        )
        assert packed.state_dict()["ones"].min() >= 0

    @pytest.mark.parametrize("dimension", DIMS)
    def test_packed_bipolar_matches_dense_updates(self, dimension):
        from repro.hdc.associative_memory import AssociativeMemory
        from repro.hdc.backends.packed import pack_signs

        rng = np.random.default_rng(11)
        signs = (2 * rng.integers(0, 2, size=(12, dimension)) - 1).astype(np.int8)
        labels = rng.integers(0, 3, size=12)
        packed = PackedBipolarAssociativeMemory(3, dimension)
        dense = AssociativeMemory(3, dimension, bipolar=True)
        packed.add(pack_signs(signs), labels)
        dense.add(signs, labels)
        np.testing.assert_array_equal(
            packed.state_dict()["accumulators"], dense.state_dict()["accumulators"]
        )
        packed.subtract(pack_signs(signs[:5]), labels[:5])
        dense.subtract(signs[:5], labels[:5])
        np.testing.assert_array_equal(
            packed.state_dict()["accumulators"], dense.state_dict()["accumulators"]
        )

    def test_single_row_and_empty_batches(self):
        from repro.hdc.backends.binary import PackedAssociativeMemory
        from repro.hdc.backends.packed import pack_bits

        am = PackedAssociativeMemory(2, 70)
        one = pack_bits(np.ones((1, 70), dtype=np.int8))
        am.add(one[0], [1])  # 1-D single-vector form
        assert am.state_dict()["ones"][1].sum() == 70
        am.add(one[:0], np.zeros(0, dtype=np.int64))  # empty batch no-op
        assert am.state_dict()["ones"][0].sum() == 0


REMAT_NAMES = sorted(name for name in FAMILIES if name.startswith("remat-"))

#: remat family → its materialized sibling (same semantics and packing).
REMAT_SIBLING = {
    "remat-bipolar": "dense-bipolar",
    "remat-packed-bipolar": "packed-bipolar",
    "remat-binary": "dense-binary",
    "remat-packed-binary": "packed-binary",
}


class TestRematerializedCodebooks:
    """Seed-only codebooks: rows from a PRF, behaviour from nowhere else.

    The remat rows already run the full matrix above; these tests pin
    the properties unique to rematerialization — a ``materialize()``d
    twin is bit-identical, persistence stores the 64-bit seed instead of
    ``(n, D)`` rows, the PRF's packed words *are* the packed dense rows,
    and the shared-codebook ensemble target is a pure optimisation of
    the independent one over the same members.
    """

    @pytest.mark.parametrize("name", REMAT_NAMES)
    def test_materialize_twin_is_bit_identical(self, trained, images, labels, name):
        """Injecting materialize()d memories reproduces the remat model."""
        model = trained[name]
        enc = model.encoder
        assert enc.codebook == "rematerialized"
        twin_encoder = type(enc)(
            shape=SHAPE,
            levels=LEVELS,
            dimension=DIM,
            rng=SEED,
            position_memory=enc.position_memory.materialize(),
            value_memory=enc.value_memory.materialize(),
        )
        assert twin_encoder.codebook == "materialized"
        twin = type(model)(twin_encoder, N_CLASSES).fit(images, labels)
        np.testing.assert_array_equal(
            twin.encode_batch(images), model.encode_batch(images)
        )
        np.testing.assert_array_equal(
            twin.similarities(images), model.similarities(images)
        )
        np.testing.assert_array_equal(twin.predict(images), model.predict(images))

    @pytest.mark.parametrize("name", REMAT_NAMES)
    def test_persistence_stores_only_the_seed(self, trained, images, tmp_path, name):
        from repro.hdc.item_memory import RematerializedItemMemory

        model = trained[name]
        path = tmp_path / f"{name}.npz"
        model.save(path)
        with np.load(path) as data:
            assert "position_seed" in data.files
            assert "value_seed" in data.files
            assert "position_vectors" not in data.files
            assert "value_vectors" not in data.files
        sibling_path = tmp_path / f"{name}-sibling.npz"
        trained[REMAT_SIBLING[name]].save(sibling_path)
        assert path.stat().st_size < sibling_path.stat().st_size

        loaded = FAMILIES[name][3](path)
        assert isinstance(
            loaded.encoder.position_memory, RematerializedItemMemory
        )
        assert loaded.encoder.codebook == "rematerialized"
        np.testing.assert_array_equal(
            loaded.predict(images), model.predict(images)
        )

    def test_prf_words_are_the_packed_dense_rows(self, trained):
        """``take_words`` must equal packing ``take``'s dense rows."""
        from repro.hdc.backends.packed import pack_bits, pack_signs

        idx = np.arange(SHAPE[0] * SHAPE[1])
        bipolar = trained["remat-packed-bipolar"].encoder.position_memory
        np.testing.assert_array_equal(
            bipolar.take_words(idx), pack_signs(bipolar.take(idx))
        )
        binary = trained["remat-packed-binary"].encoder.position_memory
        np.testing.assert_array_equal(
            binary.take_words(idx), pack_bits(binary.take(idx))
        )

    def test_remat_encoder_state_is_near_zero(self, trained):
        """No (n, D) arrays hide inside a remat model's encoder."""
        for name in REMAT_NAMES:
            enc = trained[name].encoder
            for memory in (enc.position_memory, enc.value_memory):
                retained = sum(
                    v.nbytes
                    for v in vars(memory).values()
                    if isinstance(v, np.ndarray)
                )
                assert retained == 0, f"{name} retains {retained} codebook bytes"

    @pytest.mark.parametrize("name", ["remat-bipolar", "remat-packed-binary"])
    def test_shared_ensemble_is_pure_optimisation(self, trained, images, labels, name):
        """Shared-codebook target == independent target over the same members."""
        from repro.fuzz import (
            BatchedHDTest,
            CrossModelOracle,
            HDTestConfig,
            ModelEnsembleTarget,
            SharedCodebookEnsembleTarget,
        )

        shared = SharedCodebookEnsembleTarget.trained_shared(
            trained[name], 3, images, labels, rng=7
        )
        independent = ModelEnsembleTarget(*shared.members)
        inputs = list(images[:4])
        np.testing.assert_array_equal(
            shared.predict(inputs), independent.predict(inputs)
        )

        config = HDTestConfig(iter_times=8)
        outcomes = {}
        for label, target in (("shared", shared), ("independent", independent)):
            engine = BatchedHDTest(
                target, "gauss", config=config, oracle=CrossModelOracle()
            )
            outcomes[label] = [
                (o.success, o.iterations, o.reference_label)
                for o in engine.fuzz_outcomes(inputs, rng=11)
            ]
        assert outcomes["shared"] == outcomes["independent"]
