"""Equivalence tests for the packed binary model family.

Every packed component must match its unpacked counterpart bit for bit
when built from the same seed (or converted from it): codebooks, image
HVs, class HVs, similarities, predictions, margins.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotTrainedError
from repro.hdc import (
    BinaryHDCClassifier,
    BinaryPixelEncoder,
    BinarySpace,
    PackedAssociativeMemory,
    PackedBinaryHDCClassifier,
    PackedBinarySpace,
    PackedPixelEncoder,
)
from repro.hdc.backends.packed import pack_bits, packed_words
from repro.hdc.binary_model import BinaryAssociativeMemory

DIM = 520  # deliberately not a multiple of 64
SHAPE = (8, 8)


@pytest.fixture(scope="module")
def images():
    return np.random.default_rng(9).integers(0, 256, size=(12,) + SHAPE).astype(float)


@pytest.fixture(scope="module")
def pair(images):
    """(binary, packed) classifiers trained identically from one seed."""
    labels = np.arange(12) % 3
    binary = BinaryHDCClassifier(
        BinaryPixelEncoder(shape=SHAPE, levels=16, dimension=DIM, rng=4), 3
    ).fit(images, labels)
    packed = PackedBinaryHDCClassifier(
        PackedPixelEncoder(shape=SHAPE, levels=16, dimension=DIM, rng=4), 3
    ).fit(images, labels)
    return binary, packed


class TestPackedBinarySpace:
    def test_same_bits_as_binary_space(self):
        unpacked = BinarySpace(DIM).random(5, rng=3)
        packed = PackedBinarySpace(DIM).random(5, rng=3)
        np.testing.assert_array_equal(packed, pack_bits(unpacked))

    def test_n_words(self):
        assert PackedBinarySpace(DIM).n_words == packed_words(DIM)

    def test_check_member(self):
        space = PackedBinarySpace(DIM)
        space.check_member(space.random(3, rng=0))
        with pytest.raises(ConfigurationError):
            space.check_member(np.ones((3, space.n_words), dtype=np.int64))

    def test_pack_unpack_roundtrip(self):
        space = PackedBinarySpace(DIM)
        bits = BinarySpace(DIM).random(4, rng=1)
        np.testing.assert_array_equal(space.unpack(space.pack(bits)), bits)


class TestPackedPixelEncoder:
    def test_encode_matches_binary_bitwise(self, images):
        binary = BinaryPixelEncoder(shape=SHAPE, levels=16, dimension=DIM, rng=4)
        packed = PackedPixelEncoder(shape=SHAPE, levels=16, dimension=DIM, rng=4)
        np.testing.assert_array_equal(
            packed.encode_batch(images), pack_bits(binary.encode_batch(images))
        )
        np.testing.assert_array_equal(
            packed.unpack(packed.encode(images[0])), binary.encode(images[0])
        )

    def test_from_binary_shares_codebooks(self, images):
        binary = BinaryPixelEncoder(shape=SHAPE, levels=16, dimension=DIM, rng=11)
        packed = PackedPixelEncoder.from_binary(binary)
        assert packed.position_memory is binary.position_memory
        np.testing.assert_array_equal(
            packed.encode_batch(images), pack_bits(binary.encode_batch(images))
        )

    def test_accumulate_delta_matches_scratch(self, images, rng):
        packed = PackedPixelEncoder(shape=SHAPE, levels=16, dimension=DIM, rng=4)
        children = np.clip(images + rng.normal(0, 40, images.shape), 0, 255)
        levels_c = packed.quantize(children).reshape(len(images), -1)
        levels_p = packed.quantize(images).reshape(len(images), -1)
        got = packed.accumulate_delta(
            levels_c, levels_p, packed.accumulate_batch(images)
        )
        np.testing.assert_array_equal(got, packed.accumulate_batch(children))

    def test_hvs_from_accumulators_accepts_compact_dtype(self, images):
        packed = PackedPixelEncoder(shape=SHAPE, levels=16, dimension=DIM, rng=4)
        accs = packed.accumulate_batch(images)
        np.testing.assert_array_equal(
            packed.hvs_from_accumulators(accs.astype(np.int16)),
            packed.encode_batch(images),
        )

    def test_binary_encoder_delta_surface_matches(self, images, rng):
        """The unpacked binary encoder grew the same incremental API."""
        binary = BinaryPixelEncoder(shape=SHAPE, levels=16, dimension=DIM, rng=4)
        children = np.clip(images + rng.normal(0, 25, images.shape), 0, 255)
        levels_c = binary.quantize(children).reshape(len(images), -1)
        levels_p = binary.quantize(images).reshape(len(images), -1)
        got = binary.accumulate_delta(
            levels_c, levels_p, binary.accumulate_batch(images)
        )
        np.testing.assert_array_equal(got, binary.accumulate_batch(children))
        np.testing.assert_array_equal(
            binary.hvs_from_accumulators(got), binary.encode_batch(children)
        )


class TestPackedAssociativeMemory:
    def _trained_pair(self, rng):
        bits = BinarySpace(DIM).random(9, rng=rng)
        labels = np.arange(9) % 3
        unpacked = BinaryAssociativeMemory(3, DIM)
        unpacked.add(bits, labels)
        packed = PackedAssociativeMemory(3, DIM)
        packed.add(pack_bits(bits), labels)
        return unpacked, packed, bits

    def test_class_hvs_match(self):
        unpacked, packed, _ = self._trained_pair(0)
        np.testing.assert_array_equal(packed.class_hvs, pack_bits(unpacked.class_hvs))
        np.testing.assert_array_equal(packed.class_hvs_bits, unpacked.class_hvs)

    def test_similarities_bit_identical(self):
        unpacked, packed, bits = self._trained_pair(1)
        np.testing.assert_array_equal(
            packed.similarities(pack_bits(bits)), unpacked.similarities(bits)
        )

    def test_predict_and_margins_match(self):
        unpacked, packed, bits = self._trained_pair(2)
        np.testing.assert_array_equal(
            packed.predict(pack_bits(bits)), unpacked.predict(bits)
        )
        np.testing.assert_array_equal(
            packed.margins(pack_bits(bits)), unpacked.margins(bits)
        )

    def test_subtract_clamps_like_unpacked(self):
        unpacked, packed, bits = self._trained_pair(3)
        unpacked.subtract(bits[:2], [0, 1])
        packed.subtract(pack_bits(bits[:2]), [0, 1])
        np.testing.assert_array_equal(packed.class_hvs, pack_bits(unpacked.class_hvs))

    def test_roundtrips(self):
        _, packed, _ = self._trained_pair(4)
        rebuilt = PackedAssociativeMemory.from_state_dict(packed.state_dict())
        np.testing.assert_array_equal(rebuilt.class_hvs, packed.class_hvs)
        np.testing.assert_array_equal(packed.copy().class_hvs, packed.class_hvs)
        np.testing.assert_array_equal(
            PackedAssociativeMemory.from_binary(packed.to_binary()).class_hvs,
            packed.class_hvs,
        )

    def test_untrained_raises(self):
        am = PackedAssociativeMemory(2, DIM)
        with pytest.raises(NotTrainedError):
            am.predict(np.zeros((1, am.n_words), dtype=np.uint64))

    def test_rejects_unpacked_input(self):
        am = PackedAssociativeMemory(2, DIM)
        with pytest.raises(ConfigurationError):
            am.add(np.ones((1, DIM), dtype=np.int8), [0])


class TestPackedClassifier:
    def test_same_seed_matches_binary(self, pair, images):
        binary, packed = pair
        np.testing.assert_array_equal(binary.predict(images), packed.predict(images))
        np.testing.assert_array_equal(
            binary.similarities(images), packed.similarities(images)
        )
        np.testing.assert_array_equal(binary.margins(images), packed.margins(images))
        assert binary.score(images, binary.predict(images)) == 1.0
        assert packed.predict_one(images[0]) == binary.predict_one(images[0])

    def test_from_binary_and_back(self, pair, images):
        binary, _ = pair
        packed = PackedBinaryHDCClassifier.from_binary(binary)
        np.testing.assert_array_equal(binary.predict(images), packed.predict(images))
        back = packed.to_binary()
        np.testing.assert_array_equal(
            back.associative_memory.class_hvs, binary.associative_memory.class_hvs
        )
        np.testing.assert_array_equal(back.predict(images), binary.predict(images))

    def test_reference_hv_is_packed(self, pair):
        binary, packed = pair
        label = int(binary.predict([np.zeros(SHAPE)])[0])
        np.testing.assert_array_equal(
            packed.reference_hv(label), pack_bits(binary.reference_hv(label))
        )

    def test_retrain_matches_binary(self, pair, images):
        binary, packed = pair
        labels = (np.arange(12) + 1) % 3
        hardened_b = binary.copy().retrain(images, labels, epochs=2)
        hardened_p = packed.copy().retrain(images, labels, epochs=2)
        np.testing.assert_array_equal(
            hardened_p.predict(images), hardened_b.predict(images)
        )
        # Originals untouched by the copies.
        np.testing.assert_array_equal(binary.predict(images), packed.predict(images))

    def test_memory_footprint_ratio(self, pair, images):
        binary, packed = pair
        dense = binary.encode_batch(images)
        words = packed.encode_batch(images)
        # Exactly D bytes vs ceil(D/64) words of 8 bytes: 7.2x at this
        # deliberately awkward D=520, asymptotically 8x (7.96x at the
        # paper's D=10000 — asserted in benchmarks/bench_packed_backend).
        assert dense.nbytes / words.nbytes == DIM / (packed_words(DIM) * 8)
        assert dense.nbytes / words.nbytes > 7.0

    def test_rejects_non_encoder(self):
        with pytest.raises(ConfigurationError):
            PackedBinaryHDCClassifier(object(), 10)  # type: ignore[arg-type]


class TestBinarySaveLoad:
    def test_roundtrip(self, pair, images, tmp_path):
        binary, _ = pair
        path = tmp_path / "binary.npz"
        binary.save(path)
        loaded = BinaryHDCClassifier.load(path)
        np.testing.assert_array_equal(loaded.predict(images), binary.predict(images))
        # And the loaded model repackages exactly.
        packed = PackedBinaryHDCClassifier.from_binary(loaded)
        np.testing.assert_array_equal(packed.predict(images), binary.predict(images))

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez_compressed(path, kind=np.asarray("pixel-hdc"))
        with pytest.raises(ConfigurationError):
            BinaryHDCClassifier.load(path)
