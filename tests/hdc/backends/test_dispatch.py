"""Tests for kernel-backend selection and campaign-level model dispatch."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hdc import (
    BinaryHDCClassifier,
    BinaryPixelEncoder,
    HDCClassifier,
    NgramEncoder,
    PackedBinaryHDCClassifier,
    PackedBipolarHDCClassifier,
    PixelEncoder,
    backend_names,
    get_backend,
    resolve_model_backend,
)
from repro.hdc.backends.dispatch import NumpyKernelBackend
from repro.hdc.backends.torch_backend import TorchKernelBackend

SHAPE = (6, 6)


def _binary_model():
    images = np.random.default_rng(0).integers(0, 256, size=(6,) + SHAPE).astype(float)
    model = BinaryHDCClassifier(
        BinaryPixelEncoder(shape=SHAPE, levels=8, dimension=256, rng=1), 3
    )
    return model.fit(images, np.arange(6) % 3), images


class TestGetBackend:
    def test_names(self):
        assert backend_names() == ["numpy", "torch"]

    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert isinstance(get_backend(), NumpyKernelBackend)

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert isinstance(get_backend(), NumpyKernelBackend)

    def test_instance_passthrough(self):
        backend = NumpyKernelBackend()
        assert get_backend(backend) is backend

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            get_backend("tpu")

    def test_torch_degrades_to_numpy_when_missing(self):
        if TorchKernelBackend.available():  # pragma: no cover - torch machines
            assert get_backend("torch").name == "torch"
            return
        with pytest.warns(RuntimeWarning, match="falling back"):
            backend = get_backend("torch")
        assert isinstance(backend, NumpyKernelBackend)

    def test_torch_constructor_raises_when_missing(self):
        if TorchKernelBackend.available():  # pragma: no cover - torch machines
            pytest.skip("torch installed")
        with pytest.raises(ConfigurationError, match="torch is not installed"):
            TorchKernelBackend()


class TestResolveModelBackend:
    def test_dense_passthrough(self):
        model, _ = _binary_model()
        assert resolve_model_backend(model, None) is model
        assert resolve_model_backend(model, "dense") is model

    def test_packed_converts_binary(self):
        model, images = _binary_model()
        packed = resolve_model_backend(model, "packed")
        assert isinstance(packed, PackedBinaryHDCClassifier)
        np.testing.assert_array_equal(packed.predict(images), model.predict(images))

    def test_packed_model_rebinds(self):
        model, _ = _binary_model()
        packed = resolve_model_backend(model, "packed")
        again = resolve_model_backend(packed, "packed")
        assert isinstance(again, PackedBinaryHDCClassifier)
        assert again.backend.name == "numpy"

    def test_bipolar_rejected(self):
        model = HDCClassifier(PixelEncoder(shape=SHAPE, dimension=128, rng=0), 3)
        with pytest.raises(ConfigurationError, match="dense-binary"):
            resolve_model_backend(model, "packed")

    def test_unknown_backend_rejected(self):
        model, _ = _binary_model()
        with pytest.raises(ConfigurationError, match="unknown model backend"):
            resolve_model_backend(model, "gpu")

    def _bipolar_model(self):
        images = (
            np.random.default_rng(0).integers(0, 256, size=(6,) + SHAPE).astype(float)
        )
        model = HDCClassifier(PixelEncoder(shape=SHAPE, dimension=256, rng=1), 3)
        return model.fit(images, np.arange(6) % 3), images

    def test_packed_bipolar_converts_dense(self):
        model, images = self._bipolar_model()
        packed = resolve_model_backend(model, "packed-bipolar")
        assert isinstance(packed, PackedBipolarHDCClassifier)
        np.testing.assert_array_equal(packed.predict(images), model.predict(images))

    def test_packed_bipolar_model_rebinds(self):
        model, _ = self._bipolar_model()
        packed = resolve_model_backend(model, "packed-bipolar")
        again = resolve_model_backend(packed, "packed-bipolar")
        assert isinstance(again, PackedBipolarHDCClassifier)
        assert again.backend.name == "numpy"

    def test_packed_bipolar_rejects_binary_family(self):
        model, _ = _binary_model()
        with pytest.raises(ConfigurationError, match="bipolar model"):
            resolve_model_backend(model, "packed-bipolar")

    def test_packed_bipolar_rejects_non_pixel_encoder(self):
        model = HDCClassifier(NgramEncoder(n=2, dimension=128, rng=0), 3)
        with pytest.raises(ConfigurationError, match="PixelEncoder"):
            resolve_model_backend(model, "packed-bipolar")


class TestKernelBackendSurface:
    def test_numpy_backend_roundtrip(self, rng):
        backend = NumpyKernelBackend()
        bits = rng.integers(0, 2, size=(3, 100)).astype(np.int8)
        words = backend.pack(bits)
        np.testing.assert_array_equal(backend.unpack(words, 100), bits)
        np.testing.assert_array_equal(
            backend.popcount(words), np.bitwise_count(words)
            if hasattr(np, "bitwise_count")
            else backend.popcount(words),
        )
        counts = backend.hamming_counts(words, words)
        assert counts.shape == (3, 3)
        assert (np.diag(counts) == 0).all()
        sims = backend.cosine_matrix(words, words)
        np.testing.assert_allclose(np.diag(sims), 1.0)
