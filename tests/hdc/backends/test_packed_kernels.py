"""Property tests for the packed uint64 kernels.

The load-bearing contract: packing is lossless and every kernel is
bit-identical to the corresponding computation on the unpacked {0, 1}
(or {-1, +1}) arrays — for every dimension, including ones that do not
divide 64.  ``TAIL_DIMS`` pins the masking edge cases (D = 1, one bit
in one word; 63/65 straddling a word boundary; 64 exactly one word;
10000, the paper scale with a 16-bit tail) across *every* kernel, and
the ``popcount_path`` fixture runs the popcount-consuming kernels under
both the hardware ``np.bitwise_count`` ufunc and the SWAR fallback
(what ``REPRO_NO_BITWISE_COUNT`` / numpy < 2.0 select).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DimensionMismatchError
from repro.hdc.backends import packed as pk
from repro.hdc.similarity import cosine_matrix, hamming_distance

DIMS = [1, 7, 63, 64, 65, 128, 200, 1000, 10000]
#: The masking edge-case matrix every packed kernel is pinned over.
TAIL_DIMS = [1, 63, 64, 65, 10000]


def _bits(rng, n, dim):
    return rng.integers(0, 2, size=(n, dim)).astype(np.int8)


def _signs(rng, n, dim):
    return (_bits(rng, n, dim) * 2 - 1).astype(np.int8)


@pytest.fixture(params=["hardware", "swar"])
def popcount_path(request, monkeypatch):
    """Run the test under both popcount implementations.

    ``hardware`` is skipped when numpy lacks ``bitwise_count`` (or the
    ``REPRO_NO_BITWISE_COUNT`` CI leg disabled it at import); ``swar``
    always runs, pinning the fallback the env var selects.
    """
    if request.param == "swar":
        monkeypatch.setattr(pk, "_HAVE_BITWISE_COUNT", False)
    elif not pk._HAVE_BITWISE_COUNT:
        pytest.skip("hardware popcount unavailable on this interpreter")
    return request.param


class TestPackRoundtrip:
    @pytest.mark.parametrize("dim", DIMS)
    def test_roundtrip(self, rng, dim):
        bits = _bits(rng, 5, dim)
        words = pk.pack_bits(bits)
        assert words.dtype == np.uint64
        assert words.shape == (5, pk.packed_words(dim))
        np.testing.assert_array_equal(pk.unpack_bits(words, dim), bits)

    def test_single_vector(self, rng):
        bits = _bits(rng, 1, 100)[0]
        words = pk.pack_bits(bits)
        assert words.shape == (pk.packed_words(100),)
        np.testing.assert_array_equal(pk.unpack_bits(words, 100), bits)

    def test_tail_bits_zero(self, rng):
        words = pk.pack_bits(np.ones((3, 70), dtype=np.int8))
        # Components 70..127 of the second word must be zero.
        assert (words[:, 1] >> np.uint64(6) == 0).all()
        pk.check_packed(words, 70)

    def test_memory_is_eightfold_smaller(self, rng):
        bits = _bits(rng, 4, 1024)
        assert bits.nbytes == 8 * pk.pack_bits(bits).nbytes

    def test_empty_batch(self):
        words = pk.pack_bits(np.zeros((0, 100), dtype=np.int8))
        assert words.shape == (0, pk.packed_words(100))
        assert pk.unpack_bits(words, 100).shape == (0, 100)

    def test_non_binary_rejected(self):
        with pytest.raises(ConfigurationError):
            pk.pack_bits(np.array([0, 1, 2]))

    def test_word_count_mismatch_rejected(self, rng):
        with pytest.raises(DimensionMismatchError):
            pk.unpack_bits(pk.pack_bits(_bits(rng, 2, 128)), 200)

    def test_check_packed_flags_dirty_tail(self):
        words = pk.pack_bits(np.zeros((1, 70), dtype=np.int8))
        words[0, 1] |= np.uint64(1) << np.uint64(63)  # beyond component 70
        with pytest.raises(ConfigurationError, match="beyond"):
            pk.check_packed(words, 70)

    def test_check_packed_rejects_wrong_dtype(self):
        with pytest.raises(ConfigurationError, match="uint64"):
            pk.check_packed(np.zeros((1, 2), dtype=np.int64), 128)


class TestPopcount:
    def test_known_values(self):
        words = np.array([0, 1, 0xFF, 2**64 - 1], dtype=np.uint64)
        np.testing.assert_array_equal(pk.popcount(words), [0, 1, 8, 64])

    def test_fallbacks_match_production(self, rng):
        """SWAR fallback, LUT reference, and popcount() all agree."""
        words = rng.integers(0, 2**63, size=(6, 9), dtype=np.int64).astype(np.uint64)
        expected = pk.popcount(words)
        np.testing.assert_array_equal(pk._popcount_swar(words), expected)
        np.testing.assert_array_equal(pk._popcount_lut(words), expected)

    def test_fallback_extremes(self):
        words = np.array([0, 1, 2**64 - 1, 2**63], dtype=np.uint64)
        np.testing.assert_array_equal(pk._popcount_swar(words), [0, 1, 64, 1])
        np.testing.assert_array_equal(pk._popcount_lut(words), [0, 1, 64, 1])

    def test_lut_fallback_empty(self):
        assert pk._popcount_lut(np.zeros((0, 3), dtype=np.uint64)).shape == (0, 3)
        assert pk._popcount_swar(np.zeros((0, 3), dtype=np.uint64)).shape == (0, 3)

    def test_env_gate_reported(self):
        # Whatever the environment says, the flag and behaviour agree.
        import numpy as _np

        expected = hasattr(_np, "bitwise_count") and pk._HAVE_BITWISE_COUNT
        assert pk.using_hardware_popcount() == expected


class TestBindAndBundle:
    @pytest.mark.parametrize("dim", TAIL_DIMS)
    def test_xor_matches_unpacked(self, rng, dim):
        a, b = _bits(rng, 4, dim), _bits(rng, 4, dim)
        got = pk.bind_xor_packed(pk.pack_bits(a), pk.pack_bits(b))
        np.testing.assert_array_equal(got, pk.pack_bits(np.bitwise_xor(a, b)))

    @pytest.mark.parametrize("dim", TAIL_DIMS)
    def test_bit_counts_match_column_sums(self, rng, dim):
        bits = _bits(rng, 9, dim)
        np.testing.assert_array_equal(
            pk.bit_counts(pk.pack_bits(bits), dim), bits.sum(axis=0)
        )

    def test_bit_counts_empty_stack(self):
        np.testing.assert_array_equal(
            pk.bit_counts(np.zeros((0, 2), dtype=np.uint64), 100), np.zeros(100)
        )

    @pytest.mark.parametrize("dim", TAIL_DIMS)
    @pytest.mark.parametrize("n", [1, 4, 5])
    def test_majority_matches_threshold(self, rng, n, dim):
        bits = _bits(rng, n, dim)
        got = pk.unpack_bits(pk.bundle_majority_packed(pk.pack_bits(bits), dim), dim)
        expected = (2 * bits.sum(axis=0) >= n).astype(np.int8)  # ties -> 1
        np.testing.assert_array_equal(got, expected)

    def test_majority_empty_stack_rejected(self):
        with pytest.raises(DimensionMismatchError):
            pk.bundle_majority_packed(np.zeros((0, 2), dtype=np.uint64), 100)


class TestHammingKernels:
    @pytest.mark.parametrize("dim", TAIL_DIMS)
    def test_counts_match_unpacked(self, rng, dim, popcount_path):
        q, r = _bits(rng, 5, dim), _bits(rng, 3, dim)
        got = pk.hamming_counts(pk.pack_bits(q), pk.pack_bits(r))
        expected = (q[:, None, :] != r[None, :, :]).sum(axis=2)
        np.testing.assert_array_equal(got, expected)

    def test_counts_empty_queries(self, rng):
        refs = pk.pack_bits(_bits(rng, 3, 100))
        got = pk.hamming_counts(np.zeros((0, refs.shape[1]), dtype=np.uint64), refs)
        assert got.shape == (0, 3)

    @pytest.mark.parametrize("dim", TAIL_DIMS)
    def test_distance_matches_similarity_module(self, rng, dim):
        a, b = _bits(rng, 4, dim), _bits(rng, 4, dim)
        got = pk.hamming_distance_packed(pk.pack_bits(a), pk.pack_bits(b), dim)
        np.testing.assert_allclose(got, hamming_distance(a, b))
        # Single-vector form returns a float, like the unpacked API.
        single = pk.hamming_distance_packed(pk.pack_bits(a)[0], pk.pack_bits(b)[0], dim)
        assert isinstance(single, float)
        assert single == hamming_distance(a[0], b[0])

    def test_similarity_complement(self, rng):
        a, b = _bits(rng, 2, 130), _bits(rng, 2, 130)
        dist = pk.hamming_distance_packed(pk.pack_bits(a), pk.pack_bits(b), 130)
        sim = pk.hamming_similarity_packed(pk.pack_bits(a), pk.pack_bits(b), 130)
        np.testing.assert_allclose(sim + dist, 1.0)

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(DimensionMismatchError):
            pk.hamming_distance_packed(
                pk.pack_bits(_bits(rng, 2, 128)), pk.pack_bits(_bits(rng, 3, 128)), 128
            )


class TestCosinePacked:
    @pytest.mark.parametrize("dim", TAIL_DIMS)
    def test_bit_identical_to_unpacked(self, rng, dim, popcount_path):
        q, r = _bits(rng, 6, dim), _bits(rng, 4, dim)
        got = pk.cosine_matrix_packed(pk.pack_bits(q), pk.pack_bits(r))
        # Bit-identical, not merely close: the fitness ranking depends
        # on exact float equality with the unpacked computation.
        np.testing.assert_array_equal(got, cosine_matrix(q, r))

    def test_zero_vector_gives_zero(self, rng):
        q = np.zeros((1, 100), dtype=np.int8)
        r = _bits(rng, 2, 100)
        np.testing.assert_array_equal(
            pk.cosine_matrix_packed(pk.pack_bits(q), pk.pack_bits(r)),
            np.zeros((1, 2)),
        )


class TestSignPacking:
    @pytest.mark.parametrize("dim", TAIL_DIMS)
    def test_roundtrip(self, rng, dim):
        values = _signs(rng, 5, dim)
        words = pk.pack_signs(values)
        assert words.dtype == np.uint64
        assert words.shape == (5, pk.packed_words(dim))
        pk.check_packed(words, dim)  # tail bits stay zeroed
        np.testing.assert_array_equal(pk.unpack_signs(words, dim), values)

    def test_sign_convention(self):
        # bit 1 ⇔ −1, little bit order: [-1, +1, -1] → 0b101 = 5.
        words = pk.pack_signs(np.array([-1, 1, -1], dtype=np.int8))
        assert words[0] == np.uint64(5)

    @pytest.mark.parametrize("dim", TAIL_DIMS)
    def test_xor_is_the_hadamard_bind(self, rng, dim):
        a, b = _signs(rng, 4, dim), _signs(rng, 4, dim)
        bound = pk.bind_xor_packed(pk.pack_signs(a), pk.pack_signs(b))
        np.testing.assert_array_equal(pk.unpack_signs(bound, dim), a * b)

    def test_non_bipolar_rejected(self):
        with pytest.raises(ConfigurationError):
            pk.pack_signs(np.array([0, 1, -1]))

    @pytest.mark.parametrize("dim", TAIL_DIMS)
    @pytest.mark.parametrize("n", [1, 4, 5])
    def test_bundle_sign_matches_threshold(self, rng, n, dim):
        values = _signs(rng, n, dim)
        got = pk.unpack_signs(pk.bundle_sign_packed(pk.pack_signs(values), dim), dim)
        expected = np.where(values.sum(axis=0) >= 0, 1, -1)  # ties -> +1
        np.testing.assert_array_equal(got, expected)

    def test_bundle_sign_empty_stack_rejected(self):
        with pytest.raises(DimensionMismatchError):
            pk.bundle_sign_packed(np.zeros((0, 2), dtype=np.uint64), 100)


class TestBitSlicedCounts:
    """The word-level training kernel vs the unpack-and-sum reference."""

    @pytest.mark.parametrize("dim", TAIL_DIMS)
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 64, 101])
    def test_matches_column_sums(self, rng, dim, n, popcount_path):
        bits = _bits(rng, n, dim)
        words = pk.pack_bits(bits)
        got = pk.bit_sliced_counts(words, dim)
        assert got.dtype == np.int64
        np.testing.assert_array_equal(got, bits.sum(axis=0))
        np.testing.assert_array_equal(got, pk.bit_counts(words, dim))

    @pytest.mark.parametrize("dim", [1, 63, 65])
    def test_batched_leading_axes(self, rng, dim):
        bits = _bits(rng, 4 * 17, dim).reshape(4, 17, dim)
        got = pk.bit_sliced_counts(pk.pack_bits(bits), dim)
        assert got.shape == (4, dim)
        np.testing.assert_array_equal(got, bits.sum(axis=1))

    def test_all_ones_saturates(self):
        # Every counter plane carries: the worst ripple/carry case.
        words = pk.pack_bits(np.ones((300, 130), dtype=np.int8))
        np.testing.assert_array_equal(
            pk.bit_sliced_counts(words, 130), np.full(130, 300)
        )

    def test_empty_stack(self):
        got = pk.bit_sliced_counts(np.zeros((0, 3), dtype=np.uint64), 130)
        np.testing.assert_array_equal(got, np.zeros(130, dtype=np.int64))

    def test_word_count_mismatch_rejected(self, rng):
        with pytest.raises(DimensionMismatchError):
            pk.bit_sliced_counts(pk.pack_bits(_bits(rng, 3, 128)), 200)

    def test_single_vector_rejected(self, rng):
        with pytest.raises(DimensionMismatchError):
            pk.bit_sliced_counts(pk.pack_bits(_bits(rng, 1, 64))[0], 64)


class TestCosineBipolar:
    @pytest.mark.parametrize("dim", TAIL_DIMS)
    def test_bit_identical_to_dense(self, rng, dim, popcount_path):
        q, r = _signs(rng, 6, dim), _signs(rng, 4, dim)
        got = pk.cosine_matrix_packed_bipolar(
            pk.pack_signs(q), pk.pack_signs(r), dim
        )
        # Exact float equality — the guided fitness ranks by these.
        np.testing.assert_array_equal(got, cosine_matrix(q, r))

    def test_self_similarity_is_one(self, rng):
        q = pk.pack_signs(_signs(rng, 3, 10000))
        np.testing.assert_array_equal(
            np.diag(pk.cosine_matrix_packed_bipolar(q, q, 10000)), np.ones(3)
        )

    def test_opposite_is_minus_one(self):
        # D = 64: √64² is exact, so the endpoint value is exactly −1.
        values = np.ones((1, 64), dtype=np.int8)
        got = pk.cosine_matrix_packed_bipolar(
            pk.pack_signs(values), pk.pack_signs(-values), 64
        )
        np.testing.assert_array_equal(got, [[-1.0]])
        # At D = 65 the float dance (√65·√65 ≠ 65) matches dense exactly.
        odd = np.ones((1, 65), dtype=np.int8)
        np.testing.assert_array_equal(
            pk.cosine_matrix_packed_bipolar(pk.pack_signs(odd), pk.pack_signs(-odd), 65),
            cosine_matrix(odd, -odd),
        )

    def test_bad_dimension_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            pk.cosine_matrix_packed_bipolar(
                np.zeros((1, 1), dtype=np.uint64),
                np.zeros((1, 1), dtype=np.uint64),
                0,
            )
