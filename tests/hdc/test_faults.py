"""Tests for hardware-fault injection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hdc.associative_memory import AssociativeMemory
from repro.hdc.faults import accuracy_under_faults, flip_components, inject_am_faults
from repro.hdc.spaces import BipolarSpace

SPACE = BipolarSpace(4096)


class TestFlipComponents:
    def test_zero_rate_is_identity(self):
        hv = SPACE.random(rng=0)
        np.testing.assert_array_equal(flip_components(hv, 0.0, rng=1), hv)

    def test_rate_one_negates(self):
        hv = SPACE.random(rng=0)
        np.testing.assert_array_equal(flip_components(hv, 1.0, rng=1), -hv)

    def test_flip_fraction_near_rate(self):
        hv = SPACE.random(rng=2)
        flipped = flip_components(hv, 0.2, rng=3)
        fraction = float((flipped != hv).mean())
        assert 0.15 < fraction < 0.25

    def test_original_untouched(self):
        hv = SPACE.random(rng=4)
        snap = hv.copy()
        flip_components(hv, 0.5, rng=5)
        np.testing.assert_array_equal(hv, snap)

    def test_batch_support(self):
        batch = SPACE.random(3, rng=6)
        out = flip_components(batch, 0.1, rng=7)
        assert out.shape == batch.shape

    def test_rejects_non_bipolar(self):
        with pytest.raises(ConfigurationError):
            flip_components(np.zeros(8, dtype=np.int8), 0.1)

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            flip_components(SPACE.random(rng=0), 1.5)

    def test_deterministic(self):
        hv = SPACE.random(rng=8)
        a = flip_components(hv, 0.3, rng=9)
        b = flip_components(hv, 0.3, rng=9)
        np.testing.assert_array_equal(a, b)


class TestInjectAmFaults:
    def _trained_am(self):
        am = AssociativeMemory(3, SPACE.dimension)
        am.add(SPACE.random(3, rng=0), [0, 1, 2])
        return am

    def test_returns_copy_with_flips(self):
        am = self._trained_am()
        faulted = inject_am_faults(am, 0.2, rng=1)
        assert faulted is not am
        assert (faulted.class_hvs != am.class_hvs).mean() > 0.1

    def test_original_untouched(self):
        am = self._trained_am()
        before = am.class_hvs.copy()
        inject_am_faults(am, 0.5, rng=2)
        np.testing.assert_array_equal(am.class_hvs, before)

    def test_zero_rate_preserves_predictions(self):
        am = self._trained_am()
        queries = SPACE.random(5, rng=3)
        faulted = inject_am_faults(am, 0.0, rng=4)
        np.testing.assert_array_equal(faulted.predict(queries), am.predict(queries))

    def test_rejects_non_bipolar_am(self):
        am = AssociativeMemory(2, 64, bipolar=False)
        am.add(BipolarSpace(64).random(2, rng=0), [0, 1])
        with pytest.raises(ConfigurationError):
            inject_am_faults(am, 0.1)


class TestAccuracyUnderFaults:
    def test_sweep_on_real_model(self, trained_model, digit_data):
        _, test = digit_data
        curve = accuracy_under_faults(
            trained_model, test.images[:60], test.labels[:60],
            rates=(0.0, 0.1, 0.45), rng=0,
        )
        assert set(curve) == {0.0, 0.1, 0.45}
        # Clean accuracy matches score(); light faults degrade gracefully.
        assert curve[0.0] == pytest.approx(
            trained_model.score(test.images[:60], test.labels[:60])
        )
        assert curve[0.1] > curve[0.0] - 0.15
        assert curve[0.45] <= curve[0.0]

    def test_empty_rates_rejected(self, trained_model, digit_data):
        _, test = digit_data
        with pytest.raises(ConfigurationError):
            accuracy_under_faults(trained_model, test.images[:5], test.labels[:5], rates=())
