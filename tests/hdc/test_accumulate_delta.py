"""Property tests for the incremental (delta) encoding path.

The batched fuzzing engine encodes mutants from their parent's
accumulator; these tests pin the contract that makes that safe:
``accumulate_delta`` is *bit-identical* to ``accumulate_batch`` on the
children, for any mix of changed pixels — and, since the record encoder
grew the same surface, for any mix of changed feature slots.
"""

import numpy as np
import pytest

from repro.errors import EncodingError
from repro.hdc import PixelEncoder, RecordEncoder

SHAPE = (8, 8)
DIM = 256


@pytest.fixture(scope="module")
def encoder():
    return PixelEncoder(shape=SHAPE, dimension=DIM, rng=5)


def _levels(encoder, images):
    return encoder.quantize(images).reshape(len(images), -1)


class TestAccumulateDelta:
    def test_matches_full_encode(self, encoder, rng):
        parents = rng.integers(0, 256, size=(6,) + SHAPE).astype(np.float64)
        children = parents.copy()
        # Perturb a random subset of pixels per child.
        for i in range(len(children)):
            k = int(rng.integers(0, SHAPE[0] * SHAPE[1]))
            idx = rng.choice(SHAPE[0] * SHAPE[1], size=k, replace=False)
            flat = children[i].reshape(-1)
            flat[idx] = rng.integers(0, 256, size=k)
        got = encoder.accumulate_delta(
            _levels(encoder, children),
            _levels(encoder, parents),
            encoder.accumulate_batch(parents),
        )
        np.testing.assert_array_equal(got, encoder.accumulate_batch(children))

    def test_identical_child_copies_parent_accumulator(self, encoder, rng):
        parents = rng.integers(0, 256, size=(3,) + SHAPE).astype(np.float64)
        accs = encoder.accumulate_batch(parents)
        got = encoder.accumulate_delta(
            _levels(encoder, parents), _levels(encoder, parents), accs
        )
        np.testing.assert_array_equal(got, accs)

    def test_every_pixel_changed(self, encoder, rng):
        parents = np.zeros((2,) + SHAPE)
        children = np.full((2,) + SHAPE, 255.0)
        got = encoder.accumulate_delta(
            _levels(encoder, children),
            _levels(encoder, parents),
            encoder.accumulate_batch(parents),
        )
        np.testing.assert_array_equal(got, encoder.accumulate_batch(children))

    def test_exact_beyond_int16_change_counts(self, rng):
        """Regression: >16383 changed pixels must not wrap the partial sum.

        The fast path accumulates corrections in int16 (exact for
        paper-sized images); larger encoder shapes must widen instead of
        silently overflowing.
        """
        big = PixelEncoder(shape=(150, 150), dimension=32, rng=1)
        parents = np.zeros((1, 150, 150))
        children = rng.integers(1, 256, size=(1, 150, 150)).astype(np.float64)
        got = big.accumulate_delta(
            big.quantize(children).reshape(1, -1),
            big.quantize(parents).reshape(1, -1),
            big.accumulate_batch(parents),
        )
        np.testing.assert_array_equal(got, big.accumulate_batch(children))

    def test_accepts_compact_dtypes(self, encoder, rng):
        """int16 levels/accumulators (the engine's storage) work unchanged."""
        parents = rng.integers(0, 256, size=(4,) + SHAPE).astype(np.float64)
        children = np.clip(parents + rng.normal(0, 30, parents.shape), 0, 255)
        got = encoder.accumulate_delta(
            _levels(encoder, children).astype(np.int16),
            _levels(encoder, parents).astype(np.int16),
            encoder.accumulate_batch(parents).astype(np.int16),
        )
        assert got.dtype == np.int64
        np.testing.assert_array_equal(got, encoder.accumulate_batch(children))

    def test_does_not_mutate_parent_accumulators(self, encoder, rng):
        parents = rng.integers(0, 256, size=(2,) + SHAPE).astype(np.float64)
        children = np.clip(parents + 40, 0, 255)
        accs = encoder.accumulate_batch(parents)
        before = accs.copy()
        encoder.accumulate_delta(_levels(encoder, children), _levels(encoder, parents), accs)
        np.testing.assert_array_equal(accs, before)

    def test_shape_mismatch_rejected(self, encoder):
        levels = np.zeros((2, SHAPE[0] * SHAPE[1]), dtype=np.int64)
        with pytest.raises(EncodingError):
            encoder.accumulate_delta(levels, levels[:, :-1], np.zeros((2, DIM)))

    def test_wrong_pixel_count_rejected(self, encoder):
        levels = np.zeros((2, 10), dtype=np.int64)
        with pytest.raises(EncodingError):
            encoder.accumulate_delta(levels, levels, np.zeros((2, DIM)))

    def test_wrong_accumulator_shape_rejected(self, encoder):
        levels = np.zeros((2, SHAPE[0] * SHAPE[1]), dtype=np.int64)
        with pytest.raises(EncodingError):
            encoder.accumulate_delta(levels, levels, np.zeros((2, DIM - 1)))


class TestRecordAccumulateDelta:
    """The record encoder's delta surface: exact over changed feature slots."""

    N_FEATURES = 24

    @pytest.fixture(scope="class", params=["linear", "random"])
    def record_encoder(self, request):
        return RecordEncoder(
            self.N_FEATURES, levels=32, dimension=DIM,
            level_encoding=request.param, rng=6,
        )

    def _levels(self, enc, records):
        return enc.quantize(np.asarray(records, dtype=np.float64))

    def test_randomized_mutation_chains(self, record_encoder):
        """delta == scratch along chains of random slot mutations.

        The child of each step becomes the next parent, so a single
        wrong correction would compound instead of hiding.
        """
        enc = record_encoder
        rng = np.random.default_rng(0)
        current = rng.random(self.N_FEATURES)
        acc = enc.accumulate_batch(current[None])[0]
        for _ in range(20):
            child = current.copy()
            k = int(rng.integers(1, 6))
            slots = rng.choice(self.N_FEATURES, size=k, replace=False)
            child[slots] = rng.random(k)
            delta = enc.accumulate_delta(
                self._levels(enc, child[None]),
                self._levels(enc, current[None]),
                acc[None],
            )[0]
            np.testing.assert_array_equal(delta, enc.accumulate_batch(child[None])[0])
            current, acc = child, delta

    def test_batch_of_children(self, record_encoder):
        enc = record_encoder
        rng = np.random.default_rng(2)
        parents = rng.random((6, self.N_FEATURES))
        children = parents + rng.normal(0, 0.2, parents.shape)
        got = enc.accumulate_delta(
            self._levels(enc, children),
            self._levels(enc, parents),
            enc.accumulate_batch(parents),
        )
        np.testing.assert_array_equal(got, enc.accumulate_batch(children))
        np.testing.assert_array_equal(
            enc.hvs_from_accumulators(got), enc.encode_batch(children)
        )

    def test_identical_child_copies_parent_accumulator(self, record_encoder):
        enc = record_encoder
        records = np.random.default_rng(3).random((3, self.N_FEATURES))
        accs = enc.accumulate_batch(records)
        levels = self._levels(enc, records)
        got = enc.accumulate_delta(levels, levels, accs)
        np.testing.assert_array_equal(got, accs)
        # And the parent accumulators are never written through.
        before = accs.copy()
        enc.accumulate_delta(levels, levels, accs)
        np.testing.assert_array_equal(accs, before)

    def test_compact_dtypes(self, record_encoder):
        """int16 levels/accumulators (the engines' storage) work unchanged."""
        enc = record_encoder
        rng = np.random.default_rng(4)
        parents = rng.random((4, self.N_FEATURES))
        children = np.clip(parents + rng.normal(0, 0.3, parents.shape), 0, 1)
        got = enc.accumulate_delta(
            self._levels(enc, children).astype(np.int16),
            self._levels(enc, parents).astype(np.int16),
            enc.accumulate_batch(parents).astype(np.int16),
        )
        assert got.dtype == np.int64
        np.testing.assert_array_equal(got, enc.accumulate_batch(children))

    def test_shape_validation(self, record_encoder):
        enc = record_encoder
        levels = np.zeros((2, self.N_FEATURES), dtype=np.int64)
        with pytest.raises(EncodingError):
            enc.accumulate_delta(levels, levels[:, :-1], np.zeros((2, DIM)))
        with pytest.raises(EncodingError):
            enc.accumulate_delta(levels[:, :-1], levels[:, :-1], np.zeros((2, DIM)))
        with pytest.raises(EncodingError):
            enc.accumulate_delta(levels, levels, np.zeros((2, DIM - 1)))
