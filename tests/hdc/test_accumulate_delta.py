"""Property tests for the incremental (delta) encoding path.

The batched fuzzing engine encodes mutants from their parent's
accumulator; these tests pin the contract that makes that safe:
``accumulate_delta`` is *bit-identical* to ``accumulate_batch`` on the
children, for any mix of changed pixels.
"""

import numpy as np
import pytest

from repro.errors import EncodingError
from repro.hdc import PixelEncoder

SHAPE = (8, 8)
DIM = 256


@pytest.fixture(scope="module")
def encoder():
    return PixelEncoder(shape=SHAPE, dimension=DIM, rng=5)


def _levels(encoder, images):
    return encoder.quantize(images).reshape(len(images), -1)


class TestAccumulateDelta:
    def test_matches_full_encode(self, encoder, rng):
        parents = rng.integers(0, 256, size=(6,) + SHAPE).astype(np.float64)
        children = parents.copy()
        # Perturb a random subset of pixels per child.
        for i in range(len(children)):
            k = int(rng.integers(0, SHAPE[0] * SHAPE[1]))
            idx = rng.choice(SHAPE[0] * SHAPE[1], size=k, replace=False)
            flat = children[i].reshape(-1)
            flat[idx] = rng.integers(0, 256, size=k)
        got = encoder.accumulate_delta(
            _levels(encoder, children),
            _levels(encoder, parents),
            encoder.accumulate_batch(parents),
        )
        np.testing.assert_array_equal(got, encoder.accumulate_batch(children))

    def test_identical_child_copies_parent_accumulator(self, encoder, rng):
        parents = rng.integers(0, 256, size=(3,) + SHAPE).astype(np.float64)
        accs = encoder.accumulate_batch(parents)
        got = encoder.accumulate_delta(
            _levels(encoder, parents), _levels(encoder, parents), accs
        )
        np.testing.assert_array_equal(got, accs)

    def test_every_pixel_changed(self, encoder, rng):
        parents = np.zeros((2,) + SHAPE)
        children = np.full((2,) + SHAPE, 255.0)
        got = encoder.accumulate_delta(
            _levels(encoder, children),
            _levels(encoder, parents),
            encoder.accumulate_batch(parents),
        )
        np.testing.assert_array_equal(got, encoder.accumulate_batch(children))

    def test_exact_beyond_int16_change_counts(self, rng):
        """Regression: >16383 changed pixels must not wrap the partial sum.

        The fast path accumulates corrections in int16 (exact for
        paper-sized images); larger encoder shapes must widen instead of
        silently overflowing.
        """
        big = PixelEncoder(shape=(150, 150), dimension=32, rng=1)
        parents = np.zeros((1, 150, 150))
        children = rng.integers(1, 256, size=(1, 150, 150)).astype(np.float64)
        got = big.accumulate_delta(
            big.quantize(children).reshape(1, -1),
            big.quantize(parents).reshape(1, -1),
            big.accumulate_batch(parents),
        )
        np.testing.assert_array_equal(got, big.accumulate_batch(children))

    def test_accepts_compact_dtypes(self, encoder, rng):
        """int16 levels/accumulators (the engine's storage) work unchanged."""
        parents = rng.integers(0, 256, size=(4,) + SHAPE).astype(np.float64)
        children = np.clip(parents + rng.normal(0, 30, parents.shape), 0, 255)
        got = encoder.accumulate_delta(
            _levels(encoder, children).astype(np.int16),
            _levels(encoder, parents).astype(np.int16),
            encoder.accumulate_batch(parents).astype(np.int16),
        )
        assert got.dtype == np.int64
        np.testing.assert_array_equal(got, encoder.accumulate_batch(children))

    def test_does_not_mutate_parent_accumulators(self, encoder, rng):
        parents = rng.integers(0, 256, size=(2,) + SHAPE).astype(np.float64)
        children = np.clip(parents + 40, 0, 255)
        accs = encoder.accumulate_batch(parents)
        before = accs.copy()
        encoder.accumulate_delta(_levels(encoder, children), _levels(encoder, parents), accs)
        np.testing.assert_array_equal(accs, before)

    def test_shape_mismatch_rejected(self, encoder):
        levels = np.zeros((2, SHAPE[0] * SHAPE[1]), dtype=np.int64)
        with pytest.raises(EncodingError):
            encoder.accumulate_delta(levels, levels[:, :-1], np.zeros((2, DIM)))

    def test_wrong_pixel_count_rejected(self, encoder):
        levels = np.zeros((2, 10), dtype=np.int64)
        with pytest.raises(EncodingError):
            encoder.accumulate_delta(levels, levels, np.zeros((2, DIM)))

    def test_wrong_accumulator_shape_rejected(self, encoder):
        levels = np.zeros((2, SHAPE[0] * SHAPE[1]), dtype=np.int64)
        with pytest.raises(EncodingError):
            encoder.accumulate_delta(levels, levels, np.zeros((2, DIM - 1)))
