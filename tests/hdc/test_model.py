"""Tests for the HDCClassifier facade (training, inference, persistence)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, NotTrainedError
from repro.hdc import HDCClassifier, NgramEncoder, PixelEncoder

DIM = 1024


@pytest.fixture(scope="module")
def small_model(digit_data):
    train, _ = digit_data
    enc = PixelEncoder(dimension=DIM, rng=11)
    return HDCClassifier(enc, n_classes=10).fit(train.images, train.labels)


class TestTraining:
    def test_fit_returns_self(self, digit_data):
        train, _ = digit_data
        model = HDCClassifier(PixelEncoder(dimension=DIM, rng=0), 10)
        assert model.fit(train.images[:50], train.labels[:50]) is model

    def test_accuracy_beats_chance_comfortably(self, small_model, digit_data):
        _, test = digit_data
        assert small_model.score(test.images, test.labels) > 0.6

    def test_untrained_predict_raises(self):
        model = HDCClassifier(PixelEncoder(dimension=DIM, rng=0), 10)
        with pytest.raises(NotTrainedError):
            model.predict(np.zeros((1, 28, 28)))

    def test_rejects_non_encoder(self):
        with pytest.raises(ConfigurationError):
            HDCClassifier(object(), 10)  # type: ignore[arg-type]

    def test_label_out_of_range_rejected(self, digit_data):
        train, _ = digit_data
        model = HDCClassifier(PixelEncoder(dimension=DIM, rng=0), n_classes=5)
        with pytest.raises(ConfigurationError):
            model.fit(train.images[:20], train.labels[:20] + 6)


class TestInference:
    def test_predict_shape_and_dtype(self, small_model, digit_data):
        _, test = digit_data
        preds = small_model.predict(test.images[:7])
        assert preds.shape == (7,)
        assert preds.dtype == np.int64

    def test_predict_one_matches_batch(self, small_model, digit_data):
        _, test = digit_data
        single = small_model.predict_one(test.images[0])
        batch = small_model.predict(test.images[:1])
        assert single == int(batch[0])

    def test_predict_hv_consistent_with_predict(self, small_model, digit_data):
        _, test = digit_data
        hvs = small_model.encode_batch(test.images[:5])
        np.testing.assert_array_equal(
            small_model.predict_hv(hvs), small_model.predict(test.images[:5])
        )

    def test_similarities_shape(self, small_model, digit_data):
        _, test = digit_data
        assert small_model.similarities(test.images[:4]).shape == (4, 10)

    def test_margins_non_negative(self, small_model, digit_data):
        _, test = digit_data
        assert (small_model.margins(test.images[:10]) >= 0).all()

    def test_reference_hv_shape(self, small_model):
        assert small_model.reference_hv(3).shape == (DIM,)


class TestRetraining:
    def test_adaptive_retrain_fixes_targeted_errors(self, small_model, digit_data):
        _, test = digit_data
        model = small_model.copy()
        preds = model.predict(test.images)
        wrong = np.nonzero(preds != test.labels)[0]
        if wrong.size == 0:
            pytest.skip("model already perfect on this split")
        fix_imgs = test.images[wrong]
        fix_labels = test.labels[wrong]
        before = model.score(fix_imgs, fix_labels)
        model.retrain(fix_imgs, fix_labels, mode="adaptive", epochs=5)
        after = model.score(fix_imgs, fix_labels)
        assert after > before

    def test_additive_retrain_updates_counts(self, small_model, digit_data):
        _, test = digit_data
        model = small_model.copy()
        before = model.associative_memory.counts.sum()
        model.retrain(test.images[:10], test.labels[:10], mode="additive")
        assert model.associative_memory.counts.sum() == before + 10

    def test_adaptive_noop_when_all_correct(self, small_model, digit_data):
        _, test = digit_data
        model = small_model.copy()
        preds = model.predict(test.images)
        right = np.nonzero(preds == test.labels)[0][:10]
        acc_before = model.associative_memory.accumulators.copy()
        model.retrain(test.images[right], test.labels[right], mode="adaptive")
        np.testing.assert_array_equal(
            model.associative_memory.accumulators, acc_before
        )

    def test_invalid_mode_rejected(self, small_model, digit_data):
        _, test = digit_data
        with pytest.raises(ConfigurationError):
            small_model.copy().retrain(test.images[:2], test.labels[:2], mode="magic")


class TestCopyAndPersistence:
    def test_copy_shares_encoder_but_not_am(self, small_model):
        clone = small_model.copy()
        assert clone.encoder is small_model.encoder
        assert clone.associative_memory is not small_model.associative_memory

    def test_save_load_roundtrip(self, small_model, digit_data, tmp_path):
        _, test = digit_data
        path = tmp_path / "model.npz"
        small_model.save(path)
        loaded = HDCClassifier.load(path)
        np.testing.assert_array_equal(
            loaded.predict(test.images[:20]), small_model.predict(test.images[:20])
        )
        assert loaded.dimension == small_model.dimension

    def test_save_rejects_unknown_encoder(self, tmp_path):
        from repro.hdc.encoders.base import Encoder

        class WeirdEncoder(Encoder):
            dimension = DIM

            def encode(self, item):  # pragma: no cover - never called
                return np.zeros(DIM, dtype=np.int8)

        model = HDCClassifier(WeirdEncoder(), 2)
        with pytest.raises(ConfigurationError):
            model.save(tmp_path / "m.npz")

    def test_ngram_model_round_trips(self, tmp_path):
        texts = ["abcabcabc", "cbacbacba", "aaabbbccc", "cccbbbaaa"]
        labels = np.array([0, 1, 0, 1])
        model = HDCClassifier(
            NgramEncoder(n=3, alphabet="abc", dimension=DIM, rng=0), 2
        ).fit(texts, labels)
        model.save(tmp_path / "ngram.npz")
        loaded = HDCClassifier.load(tmp_path / "ngram.npz")
        assert loaded.encoder.alphabet == "abc"
        assert loaded.encoder.n == 3
        np.testing.assert_array_equal(loaded.predict(texts), model.predict(texts))
        np.testing.assert_array_equal(
            loaded.encoder.encode(texts[0]), model.encoder.encode(texts[0])
        )

    def test_record_model_round_trips(self, tmp_path):
        from repro.hdc.encoders.record import RecordEncoder
        from repro.hdc.item_memory import LevelMemory

        rng = np.random.default_rng(5)
        records = rng.random((8, 12))
        labels = np.array([0, 1] * 4)
        model = HDCClassifier(
            RecordEncoder(n_features=12, levels=16, dimension=DIM, rng=1), 2
        ).fit(records, labels)
        model.save(tmp_path / "record.npz")
        loaded = HDCClassifier.load(tmp_path / "record.npz")
        assert loaded.encoder.n_features == 12
        assert isinstance(loaded.encoder.value_memory, LevelMemory)
        np.testing.assert_array_equal(loaded.predict(records), model.predict(records))

    def test_repr(self, small_model):
        assert "HDCClassifier" in repr(small_model)
