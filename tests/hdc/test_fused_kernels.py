"""Property tests at the fused encode kernels' exactness boundaries.

The blocked kernels in :mod:`repro.hdc.encoders._blocked` (and the
encoder methods built on them) pick compact ``int16`` partial-sum
dtypes whenever the block-wide change count guarantees exactness, and
widen to ``int64`` otherwise.  These tests pin the contract that makes
that choice invisible: on *any* block — empty deltas, everything
changed, blocks straddling the int16 safety bound, randomized mutation
chains — the fused result is bit-identical to the pre-fusion
one-``accumulate_delta``-call-per-child loop and to scratch
``accumulate_batch`` encoding, for every delta family and both
codebook kinds.
"""

import numpy as np
import pytest

from repro.hdc.binary_model import BinaryPixelEncoder
from repro.hdc.encoders.image import PixelEncoder
from repro.hdc.encoders.ngram import NgramEncoder
from repro.hdc.encoders.record import RecordEncoder

DIM = 96
CODEBOOKS = ["materialized", "rematerialized"]

# Largest per-child change count with exact int16 partial sums:
# bipolar corrections are ±2-bounded, binary corrections ±1-bounded.
BIPOLAR_INT16_SAFE = np.iinfo(np.int16).max // 2  # 16383
BINARY_INT16_SAFE = np.iinfo(np.int16).max  # 32767


def per_row_delta(encoder, levels, parents, accs):
    """The pre-fusion reference: one ``accumulate_delta`` call per child."""
    return np.concatenate(
        [
            encoder.accumulate_delta(
                levels[i : i + 1], parents[i : i + 1], accs[i : i + 1]
            )
            for i in range(levels.shape[0])
        ]
    )


def assert_delta_exact(encoder, levels, parents, parent_accs, scratch):
    fused = encoder.accumulate_delta(levels, parents, parent_accs)
    looped = per_row_delta(encoder, levels, parents, parent_accs)
    np.testing.assert_array_equal(fused, looped)
    np.testing.assert_array_equal(fused, scratch)
    return fused


# -- randomized mutation chains (engine-shaped workloads) -------------------
@pytest.mark.parametrize("codebook", CODEBOOKS)
@pytest.mark.parametrize("family", ["pixel", "binary"])
def test_image_families_fused_chain(family, codebook):
    cls = PixelEncoder if family == "pixel" else BinaryPixelEncoder
    enc = cls(shape=(9, 7), levels=16, dimension=DIM, rng=11, codebook=codebook)
    rng = np.random.default_rng(5)
    images = rng.integers(0, 256, (6, 9, 7)).astype(np.float64)
    accs = enc.accumulate_batch(images)
    for frac in (0.05, 0.4, 1.0):
        children = images.copy().reshape(6, -1)
        for i in range(6):
            k = max(1, int(frac * children.shape[1]))
            idx = rng.choice(children.shape[1], size=k, replace=False)
            children[i, idx] = rng.integers(0, 256, k)
        children = children.reshape(6, 9, 7)
        accs = assert_delta_exact(
            enc,
            enc.quantize(children).reshape(6, -1),
            enc.quantize(images).reshape(6, -1),
            accs,
            enc.accumulate_batch(children),
        )
        images = children


@pytest.mark.parametrize("codebook", CODEBOOKS)
def test_ngram_fused_chain(codebook):
    enc = NgramEncoder(
        3, alphabet="abcdefgh", dimension=DIM, rng=13, codebook=codebook
    )
    rng = np.random.default_rng(17)
    codes = rng.integers(0, 8, (5, 14))
    accs = enc.accumulate_batch(codes)
    for n_mut in (1, 4, 14):
        children = codes.copy()
        for i in range(5):
            idx = rng.choice(14, size=n_mut, replace=False)
            children[i, idx] = rng.integers(0, 8, n_mut)
        accs = assert_delta_exact(
            enc,
            enc.quantize(children),
            enc.quantize(codes),
            accs,
            enc.accumulate_batch(children),
        )
        codes = children


@pytest.mark.parametrize(
    "codebook,level_encoding",
    [("materialized", "linear"), ("rematerialized", "random")],
)
def test_record_fused_chain(codebook, level_encoding):
    enc = RecordEncoder(
        20,
        levels=12,
        level_encoding=level_encoding,
        dimension=DIM,
        rng=19,
        codebook=codebook,
    )
    rng = np.random.default_rng(23)
    records = rng.random((6, 20))
    accs = enc.accumulate_batch(records)
    for n_mut in (2, 20):
        children = records.copy()
        for i in range(6):
            idx = rng.choice(20, size=n_mut, replace=False)
            children[i, idx] = rng.random(n_mut)
        accs = assert_delta_exact(
            enc,
            enc.quantize(children),
            enc.quantize(records),
            accs,
            enc.accumulate_batch(children),
        )
        records = children


# -- degenerate blocks ------------------------------------------------------
@pytest.mark.parametrize("family", ["pixel", "binary"])
def test_empty_delta_block_returns_parent_accumulators(family):
    cls = PixelEncoder if family == "pixel" else BinaryPixelEncoder
    enc = cls(shape=(5, 5), levels=8, dimension=DIM, rng=3)
    rng = np.random.default_rng(29)
    images = rng.integers(0, 256, (4, 5, 5)).astype(np.float64)
    accs = enc.accumulate_batch(images)
    levels = enc.quantize(images).reshape(4, -1)
    fused = enc.accumulate_delta(levels, levels, accs)
    np.testing.assert_array_equal(fused, accs)
    assert fused is not accs  # fresh block, parents untouched


def test_mixed_empty_and_full_rows_in_one_block():
    enc = PixelEncoder(shape=(6, 6), levels=8, dimension=DIM, rng=7)
    rng = np.random.default_rng(31)
    images = rng.integers(0, 256, (3, 6, 6)).astype(np.float64)
    accs = enc.accumulate_batch(images)
    children = images.copy()
    # row 0: unchanged; row 1: one pixel; row 2: every pixel changed
    children[1, 2, 3] = (children[1, 2, 3] + 128.0) % 256.0
    children[2] = (children[2] + 64.0) % 256.0
    assert_delta_exact(
        enc,
        enc.quantize(children).reshape(3, -1),
        enc.quantize(images).reshape(3, -1),
        accs,
        enc.accumulate_batch(children),
    )


# -- int16 / int64 partial-sum crossover ------------------------------------
def _boundary_images(shape, ks):
    """All-zero parents plus children with exactly ``k`` changed pixels."""
    n_pixels = shape[0] * shape[1]
    parents = np.zeros((len(ks), n_pixels), dtype=np.float64)
    children = parents.copy()
    for i, k in enumerate(ks):
        children[i, :k] = 255.0
    return (
        parents.reshape(len(ks), *shape),
        children.reshape(len(ks), *shape),
    )


@pytest.mark.parametrize(
    "ks",
    [
        [BIPOLAR_INT16_SAFE - 1, BIPOLAR_INT16_SAFE],  # stays int16
        [BIPOLAR_INT16_SAFE, BIPOLAR_INT16_SAFE + 1],  # widens to int64
    ],
)
def test_bipolar_int16_crossover(ks):
    shape = (129, 128)  # 16512 pixels > int16-safe bound
    enc = PixelEncoder(shape=shape, levels=4, dimension=32, rng=41)
    parents, children = _boundary_images(shape, ks)
    assert_delta_exact(
        enc,
        enc.quantize(children).reshape(len(ks), -1),
        enc.quantize(parents).reshape(len(ks), -1),
        enc.accumulate_batch(parents),
        enc.accumulate_batch(children),
    )


@pytest.mark.parametrize(
    "ks",
    [
        [1, BINARY_INT16_SAFE],  # stays int16
        [1, BINARY_INT16_SAFE + 1],  # widens to int64
    ],
)
def test_binary_int16_crossover(ks):
    shape = (256, 129)  # 33024 pixels > int16-safe bound
    enc = BinaryPixelEncoder(shape=shape, levels=4, dimension=32, rng=43)
    parents, children = _boundary_images(shape, ks)
    assert_delta_exact(
        enc,
        enc.quantize(children).reshape(len(ks), -1),
        enc.quantize(parents).reshape(len(ks), -1),
        enc.accumulate_batch(parents),
        enc.accumulate_batch(children),
    )
