"""Tests for the permutation-based image encoder."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, EncodingError
from repro.hdc.encoders.permutation import PermutationImageEncoder
from repro.hdc.item_memory import ItemMemory
from repro.hdc.ops import permute
from repro.hdc.similarity import cosine
from repro.hdc.spaces import BipolarSpace

DIM = 1024


@pytest.fixture(scope="module")
def encoder():
    return PermutationImageEncoder(shape=(8, 8), levels=16, dimension=DIM, rng=0)


def _image(seed=0, shape=(8, 8)):
    return np.random.default_rng(seed).integers(0, 256, size=shape).astype(np.float64)


class TestConstruction:
    def test_single_value_codebook_only(self, encoder):
        assert encoder.value_memory.size == 16
        assert not hasattr(encoder, "position_memory")

    def test_dimension_must_cover_pixels(self):
        with pytest.raises(ConfigurationError, match="dimension"):
            PermutationImageEncoder(shape=(28, 28), dimension=512)

    def test_value_memory_size_checked(self):
        vm = ItemMemory(8, BipolarSpace(DIM), rng=0)
        with pytest.raises(ConfigurationError):
            PermutationImageEncoder(shape=(4, 4), levels=16, dimension=DIM, value_memory=vm)

    def test_bad_shape(self):
        with pytest.raises(ConfigurationError):
            PermutationImageEncoder(shape=(4,))  # type: ignore[arg-type]


class TestEncoding:
    def test_shape_and_alphabet(self, encoder):
        hv = encoder.encode(_image())
        assert hv.shape == (DIM,)
        assert set(np.unique(hv)).issubset({-1, 1})

    def test_deterministic(self, encoder):
        img = _image(seed=3)
        np.testing.assert_array_equal(encoder.encode(img), encoder.encode(img))

    def test_matches_manual_permutation_sum(self):
        enc = PermutationImageEncoder(shape=(2, 2), levels=4, dimension=64, rng=5)
        img = np.array([[0.0, 85.0], [170.0, 255.0]])
        levels = [0, 1, 2, 3]
        acc = np.zeros(64, dtype=np.int64)
        for p, level in enumerate(levels):
            acc += permute(enc.value_memory[level].astype(np.int64), p)
        expected = np.where(acc >= 0, 1, -1)
        np.testing.assert_array_equal(enc.encode(img), expected)

    def test_spatial_sensitivity(self, encoder):
        # The same pixel values at different positions must encode
        # differently (that is what the permutation provides).
        img_a = np.zeros((8, 8))
        img_a[0, 0] = 255.0
        img_b = np.zeros((8, 8))
        img_b[7, 7] = 255.0
        sim = cosine(encoder.encode(img_a), encoder.encode(img_b))
        assert sim < 0.9

    def test_similar_images_similar_hvs(self, encoder):
        img = _image(seed=4)
        tweaked = img.copy()
        tweaked[0, 0] = 255.0 - tweaked[0, 0]
        assert cosine(encoder.encode(img), encoder.encode(tweaked)) > 0.8

    def test_batch(self, encoder):
        out = encoder.encode_batch(np.stack([_image(seed=i) for i in range(3)]))
        assert out.shape == (3, DIM)

    def test_wrong_shape_rejected(self, encoder):
        with pytest.raises(EncodingError):
            encoder.encode(np.zeros((5, 5)))


class TestModelIntegration:
    def test_trains_and_fuzzes(self, digit_data):
        from repro.fuzz import HDTest, HDTestConfig
        from repro.hdc import HDCClassifier

        train, test = digit_data
        enc = PermutationImageEncoder(dimension=1024, rng=7)
        model = HDCClassifier(enc, n_classes=10).fit(
            train.images[:300], train.labels[:300]
        )
        assert model.score(test.images[:60], test.labels[:60]) > 0.4
        result = HDTest(
            model, "gauss", config=HDTestConfig(iter_times=20), rng=8
        ).fuzz(test.images[:3].astype(np.float64))
        assert result.n_inputs == 3
