"""Tests for similarity measures."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError
from repro.hdc.similarity import (
    cosine,
    cosine_matrix,
    dot,
    hamming_distance,
    hamming_similarity,
)
from repro.hdc.spaces import BipolarSpace

SPACE = BipolarSpace(2048)


class TestCosine:
    def test_self_similarity_is_one(self):
        hv = SPACE.random(rng=0)
        assert cosine(hv, hv) == pytest.approx(1.0)

    def test_negation_is_minus_one(self):
        hv = SPACE.random(rng=1)
        assert cosine(hv, -hv) == pytest.approx(-1.0)

    def test_random_pair_near_zero(self):
        a = SPACE.random(rng=2)
        b = SPACE.random(rng=3)
        assert abs(cosine(a, b)) < 5 / np.sqrt(SPACE.dimension)

    def test_zero_vector_gives_zero(self):
        hv = SPACE.random(rng=4)
        assert cosine(np.zeros(SPACE.dimension), hv) == 0.0

    def test_scale_invariant(self):
        a = SPACE.random(rng=5).astype(np.float64)
        b = SPACE.random(rng=6).astype(np.float64)
        assert cosine(3.5 * a, b) == pytest.approx(cosine(a, b))

    def test_shape_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            cosine(np.ones(4), np.ones(5))

    def test_known_value(self):
        assert cosine([1, 0], [1, 1]) == pytest.approx(1 / np.sqrt(2))


class TestCosineMatrix:
    def test_matches_scalar_cosine(self):
        queries = SPACE.random(3, rng=7)
        refs = SPACE.random(4, rng=8)
        mat = cosine_matrix(queries, refs)
        assert mat.shape == (3, 4)
        for i in range(3):
            for j in range(4):
                assert mat[i, j] == pytest.approx(cosine(queries[i], refs[j]))

    def test_1d_inputs_promoted(self):
        q = SPACE.random(rng=9)
        r = SPACE.random(rng=10)
        assert cosine_matrix(q, r).shape == (1, 1)

    def test_zero_rows_produce_zero(self):
        refs = SPACE.random(2, rng=11)
        queries = np.zeros((1, SPACE.dimension))
        np.testing.assert_array_equal(cosine_matrix(queries, refs), np.zeros((1, 2)))

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            cosine_matrix(np.ones((2, 4)), np.ones((2, 5)))

    def test_3d_rejected(self):
        with pytest.raises(DimensionMismatchError):
            cosine_matrix(np.ones((1, 2, 4)), np.ones((2, 4)))

    def test_values_in_unit_interval(self):
        mat = cosine_matrix(SPACE.random(5, rng=12), SPACE.random(5, rng=13))
        assert (mat <= 1.0 + 1e-12).all() and (mat >= -1.0 - 1e-12).all()


class TestDotAndHamming:
    def test_dot_known(self):
        assert dot([1, 2, 3], [4, 5, 6]) == pytest.approx(32.0)

    def test_dot_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            dot(np.ones(3), np.ones(4))

    def test_hamming_identical(self):
        hv = SPACE.random(rng=14)
        assert hamming_distance(hv, hv) == 0.0
        assert hamming_similarity(hv, hv) == 1.0

    def test_hamming_opposite(self):
        hv = SPACE.random(rng=15)
        assert hamming_distance(hv, -hv) == 1.0

    def test_hamming_known_fraction(self):
        a = np.array([1, 1, 1, 1])
        b = np.array([1, 1, -1, -1])
        assert hamming_distance(a, b) == pytest.approx(0.5)

    def test_hamming_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            hamming_distance(np.ones(3), np.ones(4))

    def test_bipolar_cosine_hamming_relation(self):
        # For bipolar HVs: cosine = 1 - 2 * hamming_distance.
        a = SPACE.random(rng=16)
        b = SPACE.random(rng=17)
        assert cosine(a, b) == pytest.approx(1 - 2 * hamming_distance(a, b))


class TestHammingBatchedAndPacked:
    """Satellite coverage: 2-D batches, degenerate shapes, packed parity."""

    def _pairs(self, n, dim, seed=0):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 2, size=(n, dim)).astype(np.int8)
        b = rng.integers(0, 2, size=(n, dim)).astype(np.int8)
        return a, b

    def test_2d_rowwise(self):
        a, b = self._pairs(5, 300)
        dist = hamming_distance(a, b)
        assert dist.shape == (5,)
        for i in range(5):
            assert dist[i] == hamming_distance(a[i], b[i])
        np.testing.assert_allclose(hamming_similarity(a, b), 1.0 - dist)

    def test_empty_batch(self):
        a = np.zeros((0, 128), dtype=np.int8)
        assert hamming_distance(a, a).shape == (0,)
        assert hamming_similarity(a, a).shape == (0,)

    def test_3d_rejected(self):
        with pytest.raises(DimensionMismatchError):
            hamming_distance(np.zeros((2, 2, 4)), np.zeros((2, 2, 4)))

    def test_2d_shape_mismatch_rejected(self):
        with pytest.raises(DimensionMismatchError):
            hamming_distance(np.zeros((2, 4)), np.zeros((3, 4)))

    @pytest.mark.parametrize("dim", [64, 100, 130])  # including D % 64 != 0
    def test_packed_matches_unpacked(self, dim):
        from repro.hdc.backends.packed import (
            hamming_distance_packed,
            hamming_similarity_packed,
            pack_bits,
        )

        a, b = self._pairs(4, dim, seed=dim)
        packed_dist = hamming_distance_packed(pack_bits(a), pack_bits(b), dim)
        np.testing.assert_array_equal(packed_dist, hamming_distance(a, b))
        np.testing.assert_array_equal(
            hamming_similarity_packed(pack_bits(a), pack_bits(b), dim),
            hamming_similarity(a, b),
        )

    def test_packed_empty_batch(self):
        from repro.hdc.backends.packed import hamming_distance_packed, pack_bits

        a = pack_bits(np.zeros((0, 100), dtype=np.int8))
        assert hamming_distance_packed(a, a, 100).shape == (0,)

    def test_packed_single_vector_returns_float(self):
        from repro.hdc.backends.packed import hamming_distance_packed, pack_bits

        a, b = self._pairs(1, 100, seed=3)
        got = hamming_distance_packed(pack_bits(a[0]), pack_bits(b[0]), 100)
        assert isinstance(got, float)
        assert got == hamming_distance(a[0], b[0])
