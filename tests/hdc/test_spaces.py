"""Tests for hypervector spaces."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DimensionMismatchError
from repro.hdc.spaces import DEFAULT_DIMENSION, BinarySpace, BipolarSpace


class TestBipolarSpace:
    def test_default_dimension_matches_paper(self):
        assert BipolarSpace().dimension == DEFAULT_DIMENSION == 10_000

    def test_single_vector_shape_and_dtype(self):
        hv = BipolarSpace(256).random(rng=0)
        assert hv.shape == (256,)
        assert hv.dtype == np.int8

    def test_batch_shape(self):
        batch = BipolarSpace(128).random(5, rng=0)
        assert batch.shape == (5, 128)

    def test_alphabet_respected(self):
        hv = BipolarSpace(512).random(rng=1)
        assert set(np.unique(hv)).issubset({-1, 1})

    def test_components_roughly_balanced(self):
        hv = BipolarSpace(10_000).random(rng=2)
        # i.i.d. ±1: mean within 5 sigma of zero (sigma = 1/sqrt(D)).
        assert abs(float(hv.mean())) < 5 / np.sqrt(10_000)

    def test_deterministic_given_seed(self):
        a = BipolarSpace(64).random(3, rng=9)
        b = BipolarSpace(64).random(3, rng=9)
        np.testing.assert_array_equal(a, b)

    def test_invalid_dimension(self):
        with pytest.raises(ConfigurationError):
            BipolarSpace(0)

    def test_check_member_accepts_valid(self):
        space = BipolarSpace(32)
        space.check_member(space.random(rng=0))

    def test_check_member_rejects_wrong_dimension(self):
        with pytest.raises(DimensionMismatchError):
            BipolarSpace(32).check_member(np.ones(33, dtype=np.int8))

    def test_check_member_rejects_wrong_alphabet(self):
        with pytest.raises(ConfigurationError):
            BipolarSpace(4).check_member(np.array([0, 1, -1, 1], dtype=np.int8))

    def test_check_member_rejects_3d(self):
        with pytest.raises(DimensionMismatchError):
            BipolarSpace(4).check_member(np.ones((2, 2, 4), dtype=np.int8))

    def test_equality_and_hash(self):
        assert BipolarSpace(64) == BipolarSpace(64)
        assert BipolarSpace(64) != BipolarSpace(128)
        assert BipolarSpace(64) != BinarySpace(64)
        assert hash(BipolarSpace(64)) == hash(BipolarSpace(64))

    def test_repr_mentions_dimension(self):
        assert "64" in repr(BipolarSpace(64))


class TestBinarySpace:
    def test_alphabet(self):
        hv = BinarySpace(512).random(rng=0)
        assert set(np.unique(hv)).issubset({0, 1})

    def test_batch(self):
        assert BinarySpace(16).random(4, rng=0).shape == (4, 16)

    def test_check_member_rejects_bipolar(self):
        with pytest.raises(ConfigurationError):
            BinarySpace(4).check_member(np.array([-1, 1, 1, -1], dtype=np.int8))
