"""Tests for the dense-binary HDC model family."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DimensionMismatchError, NotTrainedError
from repro.hdc.binary_model import (
    BinaryAssociativeMemory,
    BinaryHDCClassifier,
    BinaryPixelEncoder,
)
from repro.hdc.spaces import BinarySpace

DIM = 1024


class TestBinaryPixelEncoder:
    @pytest.fixture(scope="class")
    def encoder(self):
        return BinaryPixelEncoder(shape=(8, 8), levels=16, dimension=DIM, rng=0)

    def _image(self, seed=0):
        return np.random.default_rng(seed).integers(0, 256, size=(8, 8)).astype(float)

    def test_output_is_binary(self, encoder):
        hv = encoder.encode(self._image())
        assert set(np.unique(hv)).issubset({0, 1})
        assert hv.shape == (DIM,)

    def test_deterministic(self, encoder):
        img = self._image(3)
        np.testing.assert_array_equal(encoder.encode(img), encoder.encode(img))

    def test_single_pixel_is_xor(self):
        enc = BinaryPixelEncoder(shape=(1, 1), levels=4, dimension=DIM, rng=1)
        img = np.array([[255.0]])
        expected = np.bitwise_xor(enc.position_memory[0], enc.value_memory[3])
        np.testing.assert_array_equal(enc.encode(img), expected)

    def test_similar_images_similar_hvs(self, encoder):
        from repro.hdc.similarity import hamming_similarity

        img = self._image(4)
        tweaked = img.copy()
        tweaked[0, 0] = 255.0 - tweaked[0, 0]
        other = self._image(99)
        assert hamming_similarity(encoder.encode(img), encoder.encode(tweaked)) > \
            hamming_similarity(encoder.encode(img), encoder.encode(other))

    def test_bad_shape(self):
        with pytest.raises(ConfigurationError):
            BinaryPixelEncoder(shape=(8,))  # type: ignore[arg-type]


class TestBinaryAssociativeMemory:
    def _train(self, am, rng=0):
        space = BinarySpace(DIM)
        generator = np.random.default_rng(rng)
        prototypes = space.random(3, rng=generator)
        for label in range(3):
            noisy = np.repeat(prototypes[label][None], 15, axis=0).copy()
            flips = generator.random(noisy.shape) < 0.1
            noisy[flips] = 1 - noisy[flips]
            am.add(noisy, np.full(15, label))
        return prototypes

    def test_predict_recovers_prototypes(self):
        am = BinaryAssociativeMemory(3, DIM)
        prototypes = self._train(am)
        np.testing.assert_array_equal(am.predict(prototypes), [0, 1, 2])

    def test_class_hvs_binary(self):
        am = BinaryAssociativeMemory(3, DIM)
        self._train(am)
        assert set(np.unique(am.class_hvs)).issubset({0, 1})

    def test_similarity_range(self):
        am = BinaryAssociativeMemory(3, DIM)
        prototypes = self._train(am)
        sims = am.similarities(prototypes)
        assert (sims >= 0.0).all() and (sims <= 1.0).all()

    def test_untrained_raises(self):
        with pytest.raises(NotTrainedError):
            BinaryAssociativeMemory(2, DIM).predict(np.zeros((1, DIM), dtype=np.int8))

    def test_rejects_bipolar_input(self):
        am = BinaryAssociativeMemory(2, DIM)
        with pytest.raises(ConfigurationError):
            am.add(np.full((1, DIM), -1, dtype=np.int8), [0])

    def test_dimension_mismatch(self):
        am = BinaryAssociativeMemory(2, DIM)
        with pytest.raises(DimensionMismatchError):
            am.add(np.ones((1, DIM + 1), dtype=np.int8), [0])

    def test_state_dict_roundtrip(self):
        am = BinaryAssociativeMemory(3, DIM)
        self._train(am)
        rebuilt = BinaryAssociativeMemory.from_state_dict(am.state_dict())
        np.testing.assert_array_equal(rebuilt.class_hvs, am.class_hvs)

    def test_margins_shape(self):
        am = BinaryAssociativeMemory(3, DIM)
        prototypes = self._train(am)
        assert (am.margins(prototypes) > 0).all()


class TestBinaryClassifierEndToEnd:
    @pytest.fixture(scope="class")
    def binary_model(self, digit_data):
        train, _ = digit_data
        encoder = BinaryPixelEncoder(dimension=2048, rng=5)
        return BinaryHDCClassifier(encoder, n_classes=10).fit(
            train.images[:300], train.labels[:300]
        )

    def test_learns_above_chance(self, binary_model, digit_data):
        _, test = digit_data
        assert binary_model.score(test.images[:60], test.labels[:60]) > 0.4

    def test_fuzzable_by_hdtest(self, binary_model, digit_data):
        from repro.fuzz import HDTest, HDTestConfig

        _, test = digit_data
        fuzzer = HDTest(
            binary_model, "gauss", config=HDTestConfig(iter_times=25), rng=6
        )
        result = fuzzer.fuzz(test.images[:4].astype(np.float64))
        assert result.n_inputs == 4
        for ex in result.examples:
            assert binary_model.predict_one(ex.adversarial) == ex.adversarial_label

    def test_rejects_non_encoder(self):
        with pytest.raises(ConfigurationError):
            BinaryHDCClassifier(object(), 10)  # type: ignore[arg-type]
