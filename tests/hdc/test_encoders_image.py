"""Tests for the paper's pixel position/value image encoder."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, EncodingError
from repro.hdc.encoders.image import PixelEncoder
from repro.hdc.item_memory import ItemMemory, LevelMemory
from repro.hdc.similarity import cosine
from repro.hdc.spaces import BipolarSpace

DIM = 1024


@pytest.fixture(scope="module")
def encoder():
    return PixelEncoder(shape=(8, 8), levels=16, dimension=DIM, rng=0)


def _image(shape=(8, 8), seed=0):
    return np.random.default_rng(seed).integers(0, 256, size=shape).astype(np.float64)


class TestConstruction:
    def test_codebook_sizes_match_paper_layout(self):
        enc = PixelEncoder(shape=(28, 28), levels=256, dimension=DIM, rng=0)
        assert enc.position_memory.size == 784
        assert enc.value_memory.size == 256
        assert enc.dimension == DIM

    def test_deterministic_codebooks(self):
        a = PixelEncoder(shape=(4, 4), dimension=DIM, rng=9)
        b = PixelEncoder(shape=(4, 4), dimension=DIM, rng=9)
        np.testing.assert_array_equal(a.position_memory.vectors, b.position_memory.vectors)
        np.testing.assert_array_equal(a.value_memory.vectors, b.value_memory.vectors)

    def test_custom_value_memory(self):
        space = BipolarSpace(DIM)
        vm = LevelMemory(16, space, rng=1)
        enc = PixelEncoder(shape=(4, 4), levels=16, dimension=DIM, value_memory=vm, rng=0)
        assert enc.value_memory is vm

    def test_value_memory_size_mismatch_rejected(self):
        vm = ItemMemory(8, BipolarSpace(DIM), rng=0)
        with pytest.raises(ConfigurationError, match="rows"):
            PixelEncoder(shape=(4, 4), levels=16, dimension=DIM, value_memory=vm)

    def test_value_memory_dimension_mismatch_rejected(self):
        vm = ItemMemory(16, BipolarSpace(512), rng=0)
        with pytest.raises(ConfigurationError, match="dimension"):
            PixelEncoder(shape=(4, 4), levels=16, dimension=DIM, value_memory=vm)

    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            PixelEncoder(shape=(4, 4, 4))  # type: ignore[arg-type]


class TestQuantize:
    def test_identity_with_256_levels(self):
        enc = PixelEncoder(shape=(2, 2), levels=256, dimension=DIM, rng=0)
        img = np.array([[0.0, 255.0], [128.0, 7.0]])
        np.testing.assert_array_equal(enc.quantize(img)[0], [[0, 255], [128, 7]])

    def test_reduced_levels_scale(self):
        enc = PixelEncoder(shape=(2, 2), levels=16, dimension=DIM, rng=0)
        img = np.array([[0.0, 255.0], [127.5, 17.0]])
        levels = enc.quantize(img)[0]
        assert levels[0, 0] == 0
        assert levels[0, 1] == 15
        assert levels[1, 0] == 8  # 127.5/255*15 = 7.5 → rounds to 8

    def test_out_of_range_rejected(self):
        enc = PixelEncoder(shape=(2, 2), dimension=DIM, rng=0)
        with pytest.raises(EncodingError):
            enc.quantize(np.full((2, 2), 256.0))


class TestEncoding:
    def test_output_shape_and_alphabet(self, encoder):
        hv = encoder.encode(_image())
        assert hv.shape == (DIM,)
        assert set(np.unique(hv)).issubset({-1, 1})

    def test_batch_shape(self, encoder):
        batch = encoder.encode_batch(np.stack([_image(seed=i) for i in range(3)]))
        assert batch.shape == (3, DIM)

    def test_encode_deterministic(self, encoder):
        img = _image(seed=5)
        np.testing.assert_array_equal(encoder.encode(img), encoder.encode(img))

    def test_sparse_and_dense_paths_identical(self):
        kwargs = dict(shape=(8, 8), levels=16, dimension=DIM, rng=3)
        sparse = PixelEncoder(sparse_background=True, **kwargs)
        dense = PixelEncoder(sparse_background=False, **kwargs)
        imgs = np.stack([_image(seed=i) for i in range(4)])
        imgs[0] = 0.0  # all-background edge case
        np.testing.assert_array_equal(
            sparse.encode_batch(imgs), dense.encode_batch(imgs)
        )
        np.testing.assert_array_equal(
            sparse.accumulate_batch(imgs), dense.accumulate_batch(imgs)
        )

    def test_all_zero_image_encodes(self, encoder):
        hv = encoder.encode(np.zeros((8, 8)))
        assert hv.shape == (DIM,)

    def test_single_pixel_matches_manual_construction(self):
        enc = PixelEncoder(shape=(1, 1), levels=4, dimension=DIM, rng=7)
        img = np.array([[255.0]])
        hv = enc.encode(img)
        manual = enc.position_memory[0] * enc.value_memory[3]
        np.testing.assert_array_equal(hv, manual.astype(np.int8))

    def test_accumulator_matches_manual_sum(self):
        enc = PixelEncoder(shape=(2, 2), levels=4, dimension=DIM, rng=8)
        img = np.array([[0.0, 85.0], [170.0, 255.0]])
        levels = [0, 1, 2, 3]
        manual = sum(
            enc.position_memory[p].astype(np.int64) * enc.value_memory[l].astype(np.int64)
            for p, l in enumerate(levels)
        )
        np.testing.assert_array_equal(enc.accumulate_batch(img)[0], manual)

    def test_similar_images_similar_hvs(self, encoder):
        img = _image(seed=11)
        perturbed = img.copy()
        perturbed[0, 0] = 255.0 - perturbed[0, 0]
        sim_same = cosine(encoder.encode(img), encoder.encode(perturbed))
        other = _image(seed=99)
        sim_other = cosine(encoder.encode(img), encoder.encode(other))
        assert sim_same > 0.8
        assert sim_same > sim_other

    def test_wrong_shape_rejected(self, encoder):
        with pytest.raises(EncodingError):
            encoder.encode(np.zeros((5, 5)))

    def test_nan_rejected(self, encoder):
        img = _image()
        img[0, 0] = np.nan
        with pytest.raises(EncodingError):
            encoder.encode(img)

    def test_repr(self, encoder):
        assert "PixelEncoder" in repr(encoder)
