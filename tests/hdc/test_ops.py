"""Tests for HDC arithmetic (Sec. III-A semantics)."""

import numpy as np
import pytest

from repro.errors import DimensionMismatchError
from repro.hdc.ops import (
    bind,
    bind_xor,
    bipolarize,
    bundle,
    bundle_majority,
    bundle_many,
    invert,
    permute,
)
from repro.hdc.similarity import cosine
from repro.hdc.spaces import BinarySpace, BipolarSpace

SPACE = BipolarSpace(2048)


class TestBind:
    def test_self_inverse(self):
        a = SPACE.random(rng=0)
        b = SPACE.random(rng=1)
        np.testing.assert_array_equal(bind(bind(a, b), b), a)

    def test_result_orthogonal_to_operands(self):
        a = SPACE.random(rng=2)
        b = SPACE.random(rng=3)
        bound = bind(a, b)
        # pseudo-orthogonal: |cos| ~ 1/sqrt(D), allow 5 sigma.
        assert abs(cosine(bound, a)) < 5 / np.sqrt(SPACE.dimension)
        assert abs(cosine(bound, b)) < 5 / np.sqrt(SPACE.dimension)

    def test_commutative(self):
        a = SPACE.random(rng=4)
        b = SPACE.random(rng=5)
        np.testing.assert_array_equal(bind(a, b), bind(b, a))

    def test_stays_bipolar(self):
        a = SPACE.random(rng=6)
        b = SPACE.random(rng=7)
        assert set(np.unique(bind(a, b))).issubset({-1, 1})

    def test_batch_broadcast(self):
        batch = SPACE.random(4, rng=8)
        single = SPACE.random(rng=9)
        out = bind(batch, single)
        assert out.shape == (4, SPACE.dimension)

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            bind(np.ones(4, dtype=np.int8), np.ones(5, dtype=np.int8))


class TestBundle:
    def test_preserves_similarity_to_operands(self):
        a = SPACE.random(rng=10)
        b = SPACE.random(rng=11)
        summed = bipolarize(bundle(a, b), rng=0)
        # Bundling two random HVs preserves ~50% similarity to each.
        assert cosine(summed, a) > 0.3
        assert cosine(summed, b) > 0.3

    def test_returns_int64_accumulator(self):
        a = SPACE.random(rng=12)
        assert bundle(a, a).dtype == np.int64

    def test_bundle_many_equals_sum(self):
        stack = SPACE.random(7, rng=13)
        np.testing.assert_array_equal(bundle_many(stack), stack.sum(axis=0))

    def test_bundle_many_single_vector(self):
        hv = SPACE.random(rng=14)
        np.testing.assert_array_equal(bundle_many(hv), hv.astype(np.int64))

    def test_bundle_many_rejects_3d(self):
        with pytest.raises(DimensionMismatchError):
            bundle_many(np.zeros((2, 2, 4)))

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            bundle(np.ones(4), np.ones(6))


class TestPermute:
    def test_roundtrip(self):
        hv = SPACE.random(rng=15)
        np.testing.assert_array_equal(permute(permute(hv, 3), -3), hv)

    def test_shift_wraps(self):
        hv = np.arange(5)
        np.testing.assert_array_equal(permute(hv, 7), permute(hv, 2))

    def test_produces_orthogonal_vector(self):
        hv = SPACE.random(rng=16)
        assert abs(cosine(permute(hv, 1), hv)) < 5 / np.sqrt(SPACE.dimension)

    def test_batch_permutes_last_axis(self):
        batch = np.stack([np.arange(4), np.arange(4) + 10])
        out = permute(batch, 1)
        np.testing.assert_array_equal(out[0], [3, 0, 1, 2])
        np.testing.assert_array_equal(out[1], [13, 10, 11, 12])


class TestBipolarize:
    def test_eq1_signs(self):
        acc = np.array([-5, 3, -1, 7])
        np.testing.assert_array_equal(bipolarize(acc), [-1, 1, -1, 1])

    def test_zero_ties_randomised(self):
        acc = np.zeros(1000, dtype=np.int64)
        out = bipolarize(acc, rng=0)
        assert set(np.unique(out)) == {-1, 1}
        # fair coin: both signs occur in roughly half the slots.
        assert 350 < int((out == 1).sum()) < 650

    def test_zero_ties_deterministic_given_seed(self):
        acc = np.zeros(64, dtype=np.int64)
        np.testing.assert_array_equal(bipolarize(acc, rng=5), bipolarize(acc, rng=5))

    def test_idempotent_on_bipolar(self):
        hv = SPACE.random(rng=17)
        np.testing.assert_array_equal(bipolarize(hv), hv)

    def test_output_dtype_int8(self):
        assert bipolarize(np.array([2, -2])).dtype == np.int8


class TestInvert:
    def test_bipolar_self_inverse(self):
        hv = SPACE.random(rng=18)
        np.testing.assert_array_equal(bind(hv, invert(hv)), np.ones_like(hv))


class TestBinaryOps:
    def test_xor_self_inverse(self):
        space = BinarySpace(1024)
        a = space.random(rng=0)
        b = space.random(rng=1)
        np.testing.assert_array_equal(bind_xor(bind_xor(a, b), b), a)

    def test_xor_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            bind_xor(np.zeros(3, dtype=np.int8), np.zeros(4, dtype=np.int8))

    def test_majority_odd_count_exact(self):
        stack = np.array([[1, 0, 1], [1, 1, 0], [0, 1, 1]], dtype=np.int8)
        np.testing.assert_array_equal(bundle_majority(stack), [1, 1, 1])

    def test_majority_minority_loses(self):
        stack = np.array([[0, 0], [0, 1], [0, 1], [0, 0], [0, 0]], dtype=np.int8)
        np.testing.assert_array_equal(bundle_majority(stack), [0, 0])

    def test_majority_tie_break_is_binary(self):
        stack = np.array([[1, 0], [0, 1]], dtype=np.int8)
        out = bundle_majority(stack, rng=0)
        assert set(np.unique(out)).issubset({0, 1})

    def test_majority_single_vector(self):
        hv = np.array([1, 0, 1], dtype=np.int8)
        np.testing.assert_array_equal(bundle_majority(hv), hv)

    def test_majority_rejects_3d(self):
        with pytest.raises(DimensionMismatchError):
            bundle_majority(np.zeros((2, 2, 2), dtype=np.int8))
