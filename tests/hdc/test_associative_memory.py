"""Tests for the associative memory (Sec. III-B/C)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DimensionMismatchError, NotTrainedError
from repro.hdc.associative_memory import AssociativeMemory
from repro.hdc.spaces import BipolarSpace

DIM = 512
SPACE = BipolarSpace(DIM)


@pytest.fixture()
def am():
    return AssociativeMemory(3, DIM)


def _train_simple(am, rng=0):
    """Three well-separated classes from bundled noisy prototypes."""
    generator = np.random.default_rng(rng)
    prototypes = SPACE.random(3, rng=generator)
    for label in range(3):
        noisy = np.repeat(prototypes[label][None], 20, axis=0).copy()
        flips = generator.random(noisy.shape) < 0.1
        noisy[flips] = -noisy[flips]
        am.add(noisy, np.full(20, label))
    return prototypes


class TestUpdates:
    def test_add_accumulates(self, am):
        hv = SPACE.random(rng=0)
        am.add(hv, [1])
        am.add(hv, [1])
        np.testing.assert_array_equal(am.accumulators[1], 2 * hv.astype(np.int64))
        assert am.counts[1] == 2

    def test_single_vector_promoted(self, am):
        am.add(SPACE.random(rng=1), [0])
        assert am.counts[0] == 1

    def test_subtract_reverses_add(self, am):
        hv = SPACE.random(rng=2)
        am.add(hv, [2])
        am.subtract(hv, [2])
        np.testing.assert_array_equal(am.accumulators[2], np.zeros(DIM))

    def test_label_out_of_range(self, am):
        with pytest.raises(ConfigurationError):
            am.add(SPACE.random(rng=0), [3])

    def test_dimension_mismatch(self, am):
        with pytest.raises(DimensionMismatchError):
            am.add(np.ones((1, DIM + 1), dtype=np.int8), [0])

    def test_label_count_mismatch(self, am):
        with pytest.raises(ConfigurationError):
            am.add(SPACE.random(2, rng=0), [0])

    def test_is_trained_requires_all_classes(self, am):
        assert not am.is_trained
        am.add(SPACE.random(rng=0), [0])
        assert not am.is_trained
        am.add(SPACE.random(2, rng=1), [1, 2])
        assert am.is_trained


class TestQueries:
    def test_untrained_query_raises(self, am):
        with pytest.raises(NotTrainedError):
            am.predict(SPACE.random(rng=0))

    def test_predict_recovers_prototype_classes(self, am):
        prototypes = _train_simple(am)
        predictions = am.predict(prototypes)
        np.testing.assert_array_equal(predictions, [0, 1, 2])

    def test_similarities_shape_and_range(self, am):
        _train_simple(am)
        sims = am.similarities(SPACE.random(5, rng=1))
        assert sims.shape == (5, 3)
        assert (np.abs(sims) <= 1.0 + 1e-12).all()

    def test_class_hvs_bipolar_by_default(self, am):
        _train_simple(am)
        assert set(np.unique(am.class_hvs)).issubset({-1, 1})

    def test_non_bipolar_mode_keeps_accumulators(self):
        am = AssociativeMemory(2, DIM, bipolar=False)
        hv = SPACE.random(rng=3)
        am.add(hv, [0])
        am.add(SPACE.random(rng=4), [1])
        np.testing.assert_array_equal(am.class_hvs[0], hv.astype(np.int64))

    def test_margins_high_for_prototypes(self, am):
        prototypes = _train_simple(am)
        margins = am.margins(prototypes)
        assert (margins > 0.3).all()

    def test_margins_low_for_random_queries(self, am):
        _train_simple(am)
        margins = am.margins(SPACE.random(10, rng=5))
        assert margins.mean() < 0.2

    def test_reference_hv_matches_class_hvs(self, am):
        _train_simple(am)
        np.testing.assert_array_equal(am.reference_hv(1), am.class_hvs[1])

    def test_reference_hv_out_of_range(self, am):
        with pytest.raises(ConfigurationError):
            am.reference_hv(5)

    def test_cache_invalidated_on_update(self, am):
        _train_simple(am)
        before = am.class_hvs.copy()
        strong = np.repeat(-before[0][None], 50, axis=0)
        am.add(strong, np.zeros(50, dtype=int))
        assert not np.array_equal(am.class_hvs[0], before[0])


class TestPersistence:
    def test_state_dict_roundtrip(self, am):
        _train_simple(am)
        rebuilt = AssociativeMemory.from_state_dict(am.state_dict())
        np.testing.assert_array_equal(rebuilt.accumulators, am.accumulators)
        np.testing.assert_array_equal(rebuilt.class_hvs, am.class_hvs)
        assert rebuilt.bipolar == am.bipolar

    def test_copy_is_independent(self, am):
        _train_simple(am)
        clone = am.copy()
        clone.add(SPACE.random(rng=9), [0])
        assert clone.counts[0] == am.counts[0] + 1

    def test_from_state_dict_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            AssociativeMemory.from_state_dict(
                {"accumulators": np.zeros(4), "counts": np.zeros(1), "bipolar": True}
            )

    def test_repr(self, am):
        assert "AssociativeMemory" in repr(am)
