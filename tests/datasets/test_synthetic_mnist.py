"""Tests for the synthetic handwritten-digit generator."""

import numpy as np
import pytest

from repro.datasets.synthetic_mnist import (
    DIGIT_NAMES,
    DigitStyle,
    SyntheticDigitGenerator,
    glyph_strokes,
)
from repro.errors import ConfigurationError, DatasetError


class TestGlyphs:
    @pytest.mark.parametrize("digit", range(10))
    def test_strokes_exist_and_in_unit_box(self, digit):
        strokes = glyph_strokes(digit)
        assert strokes
        for stroke in strokes:
            assert stroke.ndim == 2 and stroke.shape[1] == 2
            assert stroke.shape[0] >= 2
            assert (stroke >= 0.0).all() and (stroke <= 1.0).all()

    def test_strokes_are_copies(self):
        a = glyph_strokes(3)
        a[0][0, 0] = 99.0
        b = glyph_strokes(3)
        assert b[0][0, 0] != 99.0

    def test_invalid_digit_rejected(self):
        with pytest.raises(ConfigurationError):
            glyph_strokes(10)

    def test_digit_names(self):
        assert DIGIT_NAMES == tuple(str(d) for d in range(10))


class TestRender:
    @pytest.fixture(scope="class")
    def gen(self):
        return SyntheticDigitGenerator()

    def test_shape_and_dtype(self, gen):
        img = gen.render(5, rng=0)
        assert img.shape == (28, 28)
        assert img.dtype == np.uint8

    def test_deterministic_given_seed(self, gen):
        np.testing.assert_array_equal(gen.render(7, rng=42), gen.render(7, rng=42))

    def test_different_seeds_vary(self, gen):
        assert not np.array_equal(gen.render(7, rng=1), gen.render(7, rng=2))

    @pytest.mark.parametrize("digit", range(10))
    def test_every_digit_has_ink(self, gen, digit):
        img = gen.render(digit, rng=3)
        ink = (img > 128).sum()
        assert 30 < ink < 500  # a stroke, not a blob or a blank

    def test_background_mostly_zero(self, gen):
        img = gen.render(0, rng=4)
        assert (img == 0).mean() > 0.5

    def test_custom_shape(self):
        gen = SyntheticDigitGenerator(DigitStyle(image_shape=(14, 14)))
        assert gen.render(1, rng=0).shape == (14, 14)


class TestBatchAndDataset:
    def test_batch_respects_labels(self):
        gen = SyntheticDigitGenerator()
        imgs = gen.batch([0, 1, 2], rng=0)
        assert imgs.shape == (3, 28, 28)

    def test_batch_rejects_2d_labels(self):
        with pytest.raises(DatasetError):
            SyntheticDigitGenerator().batch(np.zeros((2, 2), dtype=int), rng=0)

    def test_dataset_balanced(self):
        gen = SyntheticDigitGenerator()
        _, labels = gen.dataset(40, rng=0, balanced=True)
        counts = np.bincount(labels, minlength=10)
        assert counts.max() - counts.min() <= 1

    def test_dataset_unbalanced_mode(self):
        gen = SyntheticDigitGenerator()
        _, labels = gen.dataset(50, rng=0, balanced=False)
        assert labels.min() >= 0 and labels.max() <= 9

    def test_dataset_deterministic(self):
        gen = SyntheticDigitGenerator()
        imgs_a, labels_a = gen.dataset(20, rng=5)
        imgs_b, labels_b = gen.dataset(20, rng=5)
        np.testing.assert_array_equal(imgs_a, imgs_b)
        np.testing.assert_array_equal(labels_a, labels_b)

    def test_classes_are_visually_distinct(self):
        # Nearest-centroid classification on raw pixels should beat
        # chance by a wide margin if the classes are actually distinct.
        gen = SyntheticDigitGenerator()
        train_imgs, train_labels = gen.dataset(300, rng=0)
        test_imgs, test_labels = gen.dataset(100, rng=1)
        centroids = np.stack(
            [train_imgs[train_labels == d].mean(axis=0) for d in range(10)]
        )
        flat = test_imgs.reshape(len(test_imgs), -1).astype(np.float64)
        cent = centroids.reshape(10, -1)
        dists = ((flat[:, None, :] - cent[None, :, :]) ** 2).sum(axis=2)
        acc = (dists.argmin(axis=1) == test_labels).mean()
        assert acc > 0.6


class TestStyleValidation:
    def test_default_style_valid(self):
        DigitStyle().validate()

    def test_bad_thickness_range(self):
        with pytest.raises(ConfigurationError):
            DigitStyle(thickness_range=(0.06, 0.03)).validate()

    def test_zero_thickness(self):
        with pytest.raises(ConfigurationError):
            DigitStyle(thickness_range=(0.0, 0.01)).validate()

    def test_bad_falloff(self):
        with pytest.raises(ConfigurationError):
            DigitStyle(falloff=0.0).validate()

    def test_bad_speckle_prob(self):
        with pytest.raises(ConfigurationError):
            DigitStyle(speckle_prob=1.5).validate()

    def test_bad_image_shape(self):
        with pytest.raises(ConfigurationError):
            SyntheticDigitGenerator(DigitStyle(image_shape=(0, 28)))
