"""Tests for the Dataset container and load_digits entry point."""

import numpy as np
import pytest

from repro.datasets.idx import MNIST_FILES, write_idx
from repro.datasets.loaders import MNIST_DIR_ENV, Dataset, find_mnist_dir, load_digits
from repro.errors import ConfigurationError, DatasetError


def _dataset(n=20, seed=0):
    rng = np.random.default_rng(seed)
    images = rng.integers(0, 256, size=(n, 8, 8)).astype(np.uint8)
    labels = rng.integers(0, 10, size=n)
    return Dataset(images, labels, name="unit")


class TestDataset:
    def test_basic_properties(self):
        ds = _dataset(12)
        assert len(ds) == 12
        assert ds.image_shape == (8, 8)
        assert ds.n_classes >= 1

    def test_labels_coerced_int64(self):
        ds = Dataset(np.zeros((2, 4, 4), dtype=np.uint8), np.array([1.0, 2.0]))
        assert ds.labels.dtype == np.int64

    def test_float_images_in_range_coerced(self):
        ds = Dataset(np.full((1, 2, 2), 100.0), [0])
        assert ds.images.dtype == np.uint8

    def test_out_of_range_images_rejected(self):
        with pytest.raises(DatasetError):
            Dataset(np.full((1, 2, 2), 300.0), [0])

    def test_wrong_rank_rejected(self):
        with pytest.raises(DatasetError):
            Dataset(np.zeros((2, 2), dtype=np.uint8), [0, 1])

    def test_label_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Dataset(np.zeros((2, 2, 2), dtype=np.uint8), [0])

    def test_iteration_yields_pairs(self):
        ds = _dataset(3)
        items = list(ds)
        assert len(items) == 3
        image, label = items[0]
        assert image.shape == (8, 8)
        assert isinstance(label, int)

    def test_subset_preserves_order_and_duplicates(self):
        ds = _dataset(10)
        sub = ds.subset([3, 3, 1])
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.images[0], sub.images[1])

    def test_take(self):
        assert len(_dataset(10).take(4)) == 4
        assert len(_dataset(3).take(10)) == 3

    def test_filter_label(self):
        ds = _dataset(50)
        five = ds.filter_label(5)
        assert (five.labels == 5).all()

    def test_shuffled_is_permutation(self):
        ds = _dataset(20)
        shuffled = ds.shuffled(rng=0)
        assert sorted(shuffled.labels.tolist()) == sorted(ds.labels.tolist())

    def test_split_sizes(self):
        a, b = _dataset(20).split(0.25, rng=0)
        assert len(a) == 5 and len(b) == 15

    def test_split_disjoint_and_complete(self):
        ds = _dataset(20)
        a, b = ds.split(0.5, rng=1)
        merged = np.concatenate([a.images, b.images])
        assert merged.shape[0] == 20

    def test_split_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            _dataset().split(1.0)

    def test_class_counts(self):
        ds = Dataset(np.zeros((4, 2, 2), dtype=np.uint8), [0, 0, 2, 1])
        np.testing.assert_array_equal(ds.class_counts(), [2, 1, 1])

    def test_as_float_range(self):
        arr = _dataset().as_float()
        assert arr.dtype == np.float64
        assert arr.max() <= 255.0


class TestLoadDigits:
    def test_synthetic_fallback(self, monkeypatch):
        monkeypatch.delenv(MNIST_DIR_ENV, raising=False)
        train, test = load_digits(n_train=30, n_test=10, seed=0)
        assert train.name == "synthetic-digits"
        assert len(train) == 30 and len(test) == 10
        assert train.image_shape == (28, 28)

    def test_deterministic(self, monkeypatch):
        monkeypatch.delenv(MNIST_DIR_ENV, raising=False)
        a, _ = load_digits(n_train=15, n_test=5, seed=3)
        b, _ = load_digits(n_train=15, n_test=5, seed=3)
        np.testing.assert_array_equal(a.images, b.images)

    def test_train_test_differ(self, monkeypatch):
        monkeypatch.delenv(MNIST_DIR_ENV, raising=False)
        train, test = load_digits(n_train=10, n_test=10, seed=4)
        assert not np.array_equal(train.images, test.images)

    def _write_fake_mnist(self, directory, n_train=50, n_test=20):
        rng = np.random.default_rng(0)
        write_idx(directory / MNIST_FILES["train_images"],
                  rng.integers(0, 256, size=(n_train, 28, 28)).astype(np.uint8))
        write_idx(directory / MNIST_FILES["train_labels"],
                  rng.integers(0, 10, size=n_train).astype(np.uint8))
        write_idx(directory / MNIST_FILES["test_images"],
                  rng.integers(0, 256, size=(n_test, 28, 28)).astype(np.uint8))
        write_idx(directory / MNIST_FILES["test_labels"],
                  rng.integers(0, 10, size=n_test).astype(np.uint8))

    def test_real_mnist_dir_used(self, tmp_path, monkeypatch):
        monkeypatch.delenv(MNIST_DIR_ENV, raising=False)
        self._write_fake_mnist(tmp_path)
        train, test = load_digits(n_train=20, n_test=10, data_dir=tmp_path, seed=0)
        assert train.name == "mnist"
        assert len(train) == 20 and len(test) == 10

    def test_env_var_discovery(self, tmp_path, monkeypatch):
        self._write_fake_mnist(tmp_path)
        monkeypatch.setenv(MNIST_DIR_ENV, str(tmp_path))
        assert find_mnist_dir() == tmp_path
        train, _ = load_digits(n_train=5, n_test=5, seed=0)
        assert train.name == "mnist"

    def test_oversubscription_rejected(self, tmp_path, monkeypatch):
        monkeypatch.delenv(MNIST_DIR_ENV, raising=False)
        self._write_fake_mnist(tmp_path, n_train=10, n_test=5)
        with pytest.raises(DatasetError, match="provides"):
            load_digits(n_train=100, n_test=5, data_dir=tmp_path)

    def test_style_rejected_for_real_data(self, tmp_path, monkeypatch):
        from repro.datasets.synthetic_mnist import DigitStyle

        monkeypatch.delenv(MNIST_DIR_ENV, raising=False)
        self._write_fake_mnist(tmp_path)
        with pytest.raises(ConfigurationError):
            load_digits(n_train=5, n_test=5, data_dir=tmp_path, style=DigitStyle())

    def test_find_mnist_dir_incomplete(self, tmp_path, monkeypatch):
        monkeypatch.delenv(MNIST_DIR_ENV, raising=False)
        write_idx(tmp_path / MNIST_FILES["train_images"],
                  np.zeros((1, 28, 28), dtype=np.uint8))
        assert find_mnist_dir(tmp_path) is None


class TestSaveMnistDir:
    def test_roundtrip_through_real_mnist_path(self, tmp_path, monkeypatch):
        from repro.datasets.loaders import save_mnist_dir

        monkeypatch.delenv(MNIST_DIR_ENV, raising=False)
        train, test = load_digits(n_train=20, n_test=10, seed=3)
        out = save_mnist_dir(tmp_path / "export", train, test)
        assert find_mnist_dir(out) == out
        train2, test2 = load_digits(n_train=20, n_test=10, data_dir=out, seed=0)
        assert train2.name == "mnist"
        # Same underlying pool: every reloaded image exists in the export.
        assert sorted(train2.labels.tolist()) == sorted(train.labels.tolist())

    def test_gzip_variant(self, tmp_path, monkeypatch):
        from repro.datasets.loaders import save_mnist_dir

        monkeypatch.delenv(MNIST_DIR_ENV, raising=False)
        train, test = load_digits(n_train=6, n_test=4, seed=4)
        out = save_mnist_dir(tmp_path / "gz", train, test, gzip_files=True)
        assert find_mnist_dir(out) == out
        reloaded, _ = load_digits(n_train=6, n_test=4, data_dir=out, seed=0)
        assert reloaded.name == "mnist"

    def test_large_labels_rejected(self, tmp_path):
        from repro.datasets.loaders import save_mnist_dir
        from repro.errors import DatasetError

        images = np.zeros((2, 4, 4), dtype=np.uint8)
        big = Dataset(images, [0, 300])
        with pytest.raises(DatasetError, match="uint8"):
            save_mnist_dir(tmp_path / "bad", big, big)
