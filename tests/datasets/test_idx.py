"""Tests for the IDX (MNIST) file format reader/writer."""

import gzip
import struct

import numpy as np
import pytest

from repro.datasets.idx import read_idx, write_idx
from repro.errors import DatasetError


class TestRoundtrip:
    def test_uint8_3d(self, tmp_path):
        arr = np.random.default_rng(0).integers(0, 256, size=(5, 4, 3)).astype(np.uint8)
        path = tmp_path / "images-idx3-ubyte"
        write_idx(path, arr)
        np.testing.assert_array_equal(read_idx(path), arr)

    def test_uint8_1d_labels(self, tmp_path):
        arr = np.arange(10, dtype=np.uint8)
        path = tmp_path / "labels-idx1-ubyte"
        write_idx(path, arr)
        np.testing.assert_array_equal(read_idx(path), arr)

    def test_int32(self, tmp_path):
        arr = np.array([[1, -2], [3, 4]], dtype=np.int32)
        path = tmp_path / "data.idx"
        write_idx(path, arr)
        out = read_idx(path)
        np.testing.assert_array_equal(out, arr)

    def test_float32(self, tmp_path):
        arr = np.linspace(0, 1, 12, dtype=np.float32).reshape(3, 4)
        path = tmp_path / "f.idx"
        write_idx(path, arr)
        np.testing.assert_allclose(read_idx(path), arr)

    def test_float64(self, tmp_path):
        arr = np.random.default_rng(1).random((2, 2))
        path = tmp_path / "d.idx"
        write_idx(path, arr)
        np.testing.assert_allclose(read_idx(path), arr)

    def test_gzip_roundtrip(self, tmp_path):
        arr = np.random.default_rng(2).integers(0, 256, size=(3, 2, 2)).astype(np.uint8)
        path = tmp_path / "images-idx3-ubyte.gz"
        write_idx(path, arr)
        np.testing.assert_array_equal(read_idx(path), arr)

    def test_gzip_detected_by_magic_not_suffix(self, tmp_path):
        arr = np.arange(6, dtype=np.uint8)
        gz_path = tmp_path / "labels-idx1-ubyte.gz"
        write_idx(gz_path, arr)
        renamed = tmp_path / "labels-idx1-ubyte"
        renamed.write_bytes(gz_path.read_bytes())
        np.testing.assert_array_equal(read_idx(renamed), arr)

    def test_native_byte_order_output(self, tmp_path):
        arr = np.array([1, 2, 3], dtype=np.int32)
        path = tmp_path / "n.idx"
        write_idx(path, arr)
        assert read_idx(path).dtype.byteorder in ("=", "|", "<", ">")
        assert read_idx(path).dtype == np.dtype(np.int32).newbyteorder("=")


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError, match="not found"):
            read_idx(tmp_path / "nope.idx")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.idx"
        path.write_bytes(b"\x12\x34\x08\x01" + struct.pack(">I", 1) + b"\x00")
        with pytest.raises(DatasetError, match="magic"):
            read_idx(path)

    def test_unsupported_dtype_code(self, tmp_path):
        path = tmp_path / "bad.idx"
        path.write_bytes(b"\x00\x00\x77\x01" + struct.pack(">I", 1) + b"\x00")
        with pytest.raises(DatasetError, match="dtype"):
            read_idx(path)

    def test_truncated_dims(self, tmp_path):
        path = tmp_path / "t.idx"
        path.write_bytes(b"\x00\x00\x08\x02" + struct.pack(">I", 1))
        with pytest.raises(DatasetError, match="truncated"):
            read_idx(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "t.idx"
        path.write_bytes(b"\x00\x00\x08\x01" + struct.pack(">I", 10) + b"\x00\x01")
        with pytest.raises(DatasetError, match="payload"):
            read_idx(path)

    def test_unsupported_write_dtype(self, tmp_path):
        with pytest.raises(DatasetError, match="not representable"):
            write_idx(tmp_path / "c.idx", np.zeros(3, dtype=np.complex128))
