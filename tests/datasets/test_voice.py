"""Tests for the synthetic VoiceHD-style record dataset."""

import numpy as np
import pytest

from repro.datasets.voice import RecordDataset, make_voice_dataset
from repro.errors import ConfigurationError, DatasetError


class TestMakeVoiceDataset:
    def test_shapes_and_ranges(self):
        data = make_voice_dataset(10, n_classes=4, n_features=32, seed=0)
        assert len(data) == 40
        assert data.n_features == 32
        assert data.n_classes == 4
        assert data.records.min() >= 0.0 and data.records.max() <= 1.0

    def test_deterministic(self):
        a = make_voice_dataset(5, n_classes=2, n_features=16, seed=3)
        b = make_voice_dataset(5, n_classes=2, n_features=16, seed=3)
        np.testing.assert_array_equal(a.records, b.records)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_classes_balanced(self):
        data = make_voice_dataset(7, n_classes=3, seed=0)
        counts = np.bincount(data.labels)
        assert (counts == 7).all()

    def test_classes_separable_by_centroid(self):
        data = make_voice_dataset(30, n_classes=4, n_features=48, seed=1)
        centroids = np.stack(
            [data.records[data.labels == c].mean(axis=0) for c in range(4)]
        )
        dists = ((data.records[:, None, :] - centroids[None]) ** 2).sum(axis=2)
        accuracy = (dists.argmin(axis=1) == data.labels).mean()
        assert accuracy > 0.9

    def test_smoothness_of_samples(self):
        # Spectra should be smooth: adjacent-feature diffs are small
        # relative to the overall dynamic range.
        data = make_voice_dataset(5, n_classes=2, n_features=64, seed=2)
        diffs = np.abs(np.diff(data.records, axis=1)).mean()
        assert diffs < 0.15

    def test_invalid_noise_scale(self):
        with pytest.raises(ConfigurationError):
            make_voice_dataset(2, noise_scale=-0.1)


class TestRecordDataset:
    def test_split(self):
        data = make_voice_dataset(10, n_classes=2, seed=0)
        a, b = data.split(0.5, rng=0)
        assert len(a) + len(b) == len(data)

    def test_split_invalid_fraction(self):
        data = make_voice_dataset(4, n_classes=2, seed=0)
        with pytest.raises(ConfigurationError):
            data.split(1.5)

    def test_out_of_range_records_rejected(self):
        with pytest.raises(DatasetError):
            RecordDataset(np.full((2, 4), 1.5), np.array([0, 1]))

    def test_label_shape_checked(self):
        with pytest.raises(DatasetError):
            RecordDataset(np.zeros((2, 4)), np.array([0]))

    def test_rank_checked(self):
        with pytest.raises(DatasetError):
            RecordDataset(np.zeros(4), np.array([0]))
