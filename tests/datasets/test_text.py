"""Tests for the synthetic language corpus."""

import numpy as np
import pytest

from repro.datasets.text import LanguageModel, TextDataset, make_language_dataset
from repro.errors import ConfigurationError, DatasetError


class TestLanguageModel:
    def test_sample_length_and_alphabet(self):
        model = LanguageModel(rng=0)
        text = model.sample(50, rng=1)
        assert len(text) == 50
        assert set(text).issubset(set(model.alphabet))

    def test_deterministic(self):
        model = LanguageModel(rng=0)
        assert model.sample(30, rng=5) == model.sample(30, rng=5)

    def test_transition_rows_are_distributions(self):
        model = LanguageModel(rng=2)
        rows = model.transitions.sum(axis=1)
        np.testing.assert_allclose(rows, 1.0, atol=1e-9)

    def test_transitions_read_only(self):
        model = LanguageModel(rng=0)
        with pytest.raises(ValueError):
            model.transitions[0, 0] = 1.0

    def test_different_seeds_give_different_languages(self):
        a = LanguageModel(rng=0).transitions
        b = LanguageModel(rng=1).transitions
        assert not np.allclose(a, b)

    def test_short_alphabet_rejected(self):
        with pytest.raises(ConfigurationError):
            LanguageModel(alphabet="a")

    def test_bad_concentration_rejected(self):
        with pytest.raises(ConfigurationError):
            LanguageModel(concentration=0.0)


class TestMakeLanguageDataset:
    def test_sizes_and_labels(self):
        data = make_language_dataset(10, n_languages=3, length=40, seed=0)
        assert len(data) == 30
        assert data.n_classes == 3
        assert set(data.labels.tolist()) == {0, 1, 2}

    def test_deterministic(self):
        a = make_language_dataset(5, n_languages=2, length=30, seed=7)
        b = make_language_dataset(5, n_languages=2, length=30, seed=7)
        assert a.texts == b.texts

    def test_text_lengths(self):
        data = make_language_dataset(4, n_languages=2, length=25, seed=0)
        assert all(len(t) == 25 for t in data.texts)

    def test_language_names(self):
        data = make_language_dataset(2, n_languages=3, seed=0)
        assert data.language_names == ("lang-a", "lang-b", "lang-c")

    def test_languages_statistically_distinct(self):
        # Character-bigram distributions should separate the classes.
        data = make_language_dataset(20, n_languages=2, length=200, seed=1)
        alphabet = sorted(set("".join(data.texts)))
        index = {c: i for i, c in enumerate(alphabet)}

        def bigram_hist(text):
            hist = np.zeros((len(alphabet), len(alphabet)))
            for a, b in zip(text, text[1:]):
                hist[index[a], index[b]] += 1
            return hist.ravel() / max(hist.sum(), 1)

        h0 = np.mean([bigram_hist(t) for t, l in zip(data.texts, data.labels) if l == 0], axis=0)
        h1 = np.mean([bigram_hist(t) for t, l in zip(data.texts, data.labels) if l == 1], axis=0)
        assert np.abs(h0 - h1).sum() > 0.5


class TestTextDataset:
    def test_split(self):
        data = make_language_dataset(10, n_languages=2, seed=0)
        a, b = data.split(0.5, rng=0)
        assert len(a) + len(b) == len(data)
        assert set(a.texts).isdisjoint(set(b.texts)) or len(set(data.texts)) < len(data)

    def test_split_invalid_fraction(self):
        data = make_language_dataset(4, n_languages=2, seed=0)
        with pytest.raises(ConfigurationError):
            data.split(0.0)

    def test_label_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            TextDataset(("a", "b"), np.array([0]), ("x",))
