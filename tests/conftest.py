"""Shared fixtures: one small trained model reused across test modules.

Tests use a deliberately small hypervector dimension (1024) and dataset
so the whole suite stays fast; statistical assertions are calibrated
for that scale (bipolar HV cosine noise at D=1024 is ≈ 1/√1024 ≈ 0.03).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_digits
from repro.hdc import HDCClassifier, PixelEncoder

TEST_DIMENSION = 1024


@pytest.fixture(scope="session")
def digit_data():
    """Small synthetic digit train/test split (deterministic)."""
    return load_digits(n_train=400, n_test=80, seed=7)


@pytest.fixture(scope="session")
def trained_model(digit_data):
    """An HDC classifier trained on the small split (D=1024)."""
    train, _ = digit_data
    encoder = PixelEncoder(dimension=TEST_DIMENSION, rng=7)
    return HDCClassifier(encoder, n_classes=10).fit(train.images, train.labels)


@pytest.fixture(scope="session")
def test_images(digit_data):
    """Float64 test images in [0, 255] for fuzzing."""
    _, test = digit_data
    return test.images.astype(np.float64)


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)
