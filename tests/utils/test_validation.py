"""Tests for argument-validation helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DimensionMismatchError, EncodingError
from repro.utils.validation import (
    as_image_batch,
    as_single_image,
    check_in_choices,
    check_labels,
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
    check_same_shape,
)


class TestIntCheckers:
    def test_positive_accepts_one(self):
        assert check_positive_int(1, "x") == 1

    def test_positive_accepts_numpy_int(self):
        assert check_positive_int(np.int32(5), "x") == 5

    def test_positive_rejects_zero(self):
        with pytest.raises(ConfigurationError, match="x must be >= 1"):
            check_positive_int(0, "x")

    def test_positive_rejects_bool(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(True, "x")

    def test_positive_rejects_float(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(2.0, "x")

    def test_non_negative_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_non_negative_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_non_negative_int(-1, "x")


class TestFloatCheckers:
    def test_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_probability_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            check_probability(1.5, "p")

    def test_probability_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            check_probability(float("nan"), "p")

    def test_positive_float(self):
        assert check_positive_float(0.5, "x") == 0.5

    def test_positive_float_rejects_zero_by_default(self):
        with pytest.raises(ConfigurationError):
            check_positive_float(0.0, "x")

    def test_positive_float_allow_zero(self):
        assert check_positive_float(0.0, "x", allow_zero=True) == 0.0

    def test_positive_float_rejects_non_numeric(self):
        with pytest.raises(ConfigurationError):
            check_positive_float("a", "x")


class TestChoices:
    def test_accepts_member(self):
        assert check_in_choices("fill", "mode", ("fill", "wrap")) == "fill"

    def test_rejects_non_member(self):
        with pytest.raises(ConfigurationError, match="mode must be one of"):
            check_in_choices("pad", "mode", ("fill", "wrap"))


class TestImageCoercion:
    def test_single_image_promoted_to_batch(self):
        batch = as_image_batch(np.zeros((28, 28)))
        assert batch.shape == (1, 28, 28)

    def test_batch_passthrough(self):
        batch = as_image_batch(np.zeros((3, 28, 28)))
        assert batch.shape == (3, 28, 28)

    def test_dtype_is_float64(self):
        assert as_image_batch(np.zeros((2, 4, 4), dtype=np.uint8)).dtype == np.float64

    def test_wrong_rank_rejected(self):
        with pytest.raises(EncodingError, match="shape"):
            as_image_batch(np.zeros((2, 2, 2, 2)))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EncodingError):
            as_image_batch(np.zeros((5, 5)), shape=(28, 28))

    def test_nan_rejected(self):
        img = np.zeros((4, 4))
        img[0, 0] = np.nan
        with pytest.raises(EncodingError, match="NaN"):
            as_image_batch(img)

    def test_out_of_range_rejected(self):
        with pytest.raises(EncodingError, match="255"):
            as_image_batch(np.full((4, 4), 300.0))
        with pytest.raises(EncodingError):
            as_image_batch(np.full((4, 4), -1.0))

    def test_empty_rejected(self):
        with pytest.raises(EncodingError, match="empty"):
            as_image_batch(np.zeros((0, 4, 4)))

    def test_single_image_helper(self):
        img = as_single_image(np.ones((6, 6)))
        assert img.shape == (6, 6)

    def test_single_image_rejects_batch(self):
        with pytest.raises(EncodingError):
            as_single_image(np.zeros((2, 4, 4)))


class TestShapeAndLabels:
    def test_same_shape_ok(self):
        check_same_shape(np.zeros(3), np.ones(3))

    def test_same_shape_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            check_same_shape(np.zeros(3), np.zeros(4))

    def test_labels_coerced_to_int64(self):
        out = check_labels([0, 1, 2], 3)
        assert out.dtype == np.int64

    def test_labels_float_integers_accepted(self):
        out = check_labels(np.array([0.0, 2.0]), 2)
        np.testing.assert_array_equal(out, [0, 2])

    def test_labels_fractional_rejected(self):
        with pytest.raises(ConfigurationError):
            check_labels(np.array([0.5, 1.0]), 2)

    def test_labels_wrong_length(self):
        with pytest.raises(ConfigurationError):
            check_labels([0, 1], 3)

    def test_labels_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            check_labels([-1, 0], 2)
