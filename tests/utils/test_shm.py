"""ShmArena lifecycle: refcounts, scratch slots, cross-process attach.

The zero-copy broadcast layer under the member-sharded executor.  The
load-bearing properties: no ``/dev/shm`` entry outlives its arena
(close, GC, or refcount-zero all unlink), scratch slots grow by remap
instead of accumulating segments, and attaching from another process —
forked or freshly spawned — reads the same bytes without stealing
ownership (the attach suppresses CPython's resource-tracker
registration, python/cpython#82300).
"""

import multiprocessing as mp
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.shm import (
    SHM_REF_NBYTES,
    ShmArena,
    ShmRef,
    attach_array,
    detach_all,
    payload_nbytes,
)

SHM_DIR = Path("/dev/shm")

pytestmark = pytest.mark.skipif(
    not SHM_DIR.is_dir(), reason="no /dev/shm on this platform"
)


def _shm_entries() -> set:
    return {p.name for p in SHM_DIR.iterdir()}


@pytest.fixture()
def leak_check():
    """Assert the test leaves /dev/shm exactly as it found it."""
    before = _shm_entries()
    yield
    detach_all()
    assert _shm_entries() == before, "leaked shared-memory segments"


class TestShmRef:
    def test_roundtrips_through_pickle(self):
        ref = ShmRef("children", "psm_abc", (4, 8), "<f8")
        clone = pickle.loads(pickle.dumps(ref))
        assert (clone.key, clone.name, clone.shape, clone.dtype) == (
            "children", "psm_abc", (4, 8), "<f8"
        )
        assert clone.nbytes == 4 * 8 * 8

    def test_pickled_size_within_budget(self):
        ref = ShmRef("children", "psm_" + "x" * 12, (64, 28, 28), "<f8")
        assert len(pickle.dumps(ref)) <= SHM_REF_NBYTES


class TestArenaLifecycle:
    def test_share_and_attach_roundtrip(self, leak_check):
        with ShmArena() as arena:
            data = np.arange(24, dtype=np.float64).reshape(4, 6)
            ref = arena.share(data, key="block")
            view = attach_array(ref)
            np.testing.assert_array_equal(view, data)
            assert not view.flags.writeable
            assert arena.open_segments == 1

    def test_close_unlinks_everything(self, leak_check):
        arena = ShmArena()
        arena.share(np.zeros(16), key="a")
        arena.scratch_write("b", np.ones(16))
        assert arena.open_segments == 2
        arena.close()
        assert arena.open_segments == 0

    def test_gc_finalizer_unlinks(self, leak_check):
        arena = ShmArena()
        arena.share(np.zeros(512), key="a")
        del arena  # leak_check asserts the finalizer cleaned up

    def test_refcount_release_unlinks_at_zero(self, leak_check):
        with ShmArena() as arena:
            ref = arena.share(np.zeros(8), key="a")
            arena.retain(ref)
            arena.release(ref)
            assert arena.open_segments == 1  # one reference still held
            arena.release(ref)
            assert arena.open_segments == 0
            arena.release(ref)  # idempotent past zero

    def test_retain_foreign_ref_rejected(self, leak_check):
        with ShmArena() as arena:
            with pytest.raises(ConfigurationError, match="does not belong"):
                arena.retain(ShmRef("x", "psm_nonexistent", (1,), "<f8"))


class TestScratchSlots:
    def test_slot_reuse_keeps_one_segment(self, leak_check):
        with ShmArena() as arena:
            for value in range(5):
                ref = arena.scratch_write("children", np.full(32, value))
                np.testing.assert_array_equal(attach_array(ref), np.full(32, value))
            assert arena.open_segments == 1

    def test_growth_remaps_and_unlinks_old(self, leak_check):
        with ShmArena() as arena:
            small = arena.scratch_write("children", np.zeros(8))
            big = arena.scratch_write("children", np.arange(4096, dtype=np.float64))
            assert big.name != small.name
            assert arena.open_segments == 1  # old segment gone
            # A cached attach under the same key remaps transparently.
            np.testing.assert_array_equal(
                attach_array(big), np.arange(4096, dtype=np.float64)
            )

    def test_shrinking_payload_reuses_segment(self, leak_check):
        with ShmArena() as arena:
            big = arena.scratch_write("children", np.zeros(4096))
            small = arena.scratch_write("children", np.ones(8))
            assert small.name == big.name  # headroom reused, no new segment
            np.testing.assert_array_equal(attach_array(small), np.ones(8))

    def test_ref_for_names_the_live_slot(self, leak_check):
        with ShmArena() as arena:
            written = arena.scratch_write("hvs", np.zeros((3, 5)))
            ref = arena.ref_for("hvs", (3, 5), np.float64)
            assert ref.name == written.name
            with pytest.raises(ConfigurationError, match="no scratch slot"):
                arena.ref_for("missing", (1,), np.float64)


class TestAllocator:
    def test_pool_blocks_live_in_the_arena(self, leak_check):
        with ShmArena() as arena:
            allocate = arena.allocator("pool")
            block = allocate((4, 3, 8, 8), np.float64)
            assert block.shape == (4, 3, 8, 8)
            block[1, 0] = 7.0
            ref = arena.ref_for("pool.0", (4, 3, 8, 8), np.float64)
            np.testing.assert_array_equal(attach_array(ref)[1, 0], np.full((8, 8), 7.0))

    def test_fresh_allocators_rotate_slots(self, leak_check):
        """Per-run pool rebuilds replace segments instead of accumulating."""
        with ShmArena() as arena:
            for _ in range(4):  # four runs, two pool blocks each
                allocate = arena.allocator("pool")
                allocate((2, 2), np.float64)
                allocate((2, 4), np.int64)
                assert arena.open_segments == 2


class TestCrossProcessAttach:
    def test_forked_child_reads_without_unlinking(self, leak_check):
        with ShmArena() as arena:
            ref = arena.scratch_write("block", np.arange(64, dtype=np.int64))
            ctx = mp.get_context("fork")
            queue = ctx.Queue()
            process = ctx.Process(target=_fork_reader, args=(ref, queue))
            process.start()
            assert queue.get(timeout=30) == 2016  # sum(range(64))
            process.join(timeout=30)
            assert process.exitcode == 0
            # The child's exit must not have unlinked the parent's segment.
            np.testing.assert_array_equal(
                attach_array(ref), np.arange(64, dtype=np.int64)
            )

    def test_spawned_interpreter_reads_without_unlinking(self, leak_check):
        """A fresh interpreter (the spawn case) attaches by ref fields."""
        with ShmArena() as arena:
            ref = arena.scratch_write("block", np.arange(32, dtype=np.int64))
            script = (
                "import numpy as np\n"
                "from repro.utils.shm import ShmRef, attach_array\n"
                f"ref = ShmRef({ref.key!r}, {ref.name!r}, {ref.shape!r}, "
                f"{ref.dtype!r})\n"
                "print(int(attach_array(ref).sum()))\n"
            )
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, timeout=60,
                env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
                cwd=str(Path(__file__).resolve().parents[2]),
            )
            assert out.returncode == 0, out.stderr
            assert out.stdout.strip() == "496"  # sum(range(32))
            # Still mapped and intact after the attacher exited.
            np.testing.assert_array_equal(
                attach_array(ref), np.arange(32, dtype=np.int64)
            )

    def test_forked_child_cannot_create(self, leak_check):
        with ShmArena() as arena:
            ctx = mp.get_context("fork")
            queue = ctx.Queue()
            process = ctx.Process(target=_fork_creator, args=(arena, queue))
            process.start()
            assert queue.get(timeout=30) == "ConfigurationError"
            process.join(timeout=30)


def _fork_reader(ref, queue):
    queue.put(int(attach_array(ref).sum()))
    detach_all()


def _fork_creator(arena, queue):
    try:
        arena.share(np.zeros(4))
    except ConfigurationError:
        queue.put("ConfigurationError")
    else:  # pragma: no cover - failure path
        queue.put("created")


class TestPayloadNbytes:
    def test_arrays_count_buffers_refs_count_handles(self):
        array = np.zeros((64, 28, 28))
        assert payload_nbytes(array) == array.nbytes + 16
        assert payload_nbytes(ShmRef("k", "n", (64, 28, 28), "<f8")) == SHM_REF_NBYTES

    def test_containers_recurse(self):
        msg = ("predict", np.zeros(8), ((0, np.arange(3), 3),), True)
        total = payload_nbytes(msg)
        assert total > payload_nbytes(np.zeros(8))
        assert payload_nbytes(b"abcd") == 12
        assert payload_nbytes({"a": 1}) == 16 + (1 + 8) + 8

    def test_unknown_leaves_fall_back_to_pickle(self):
        leaf = complex(1.0, 2.0)  # no fast path — measured by pickling
        assert payload_nbytes(leaf) == len(pickle.dumps(leaf))
