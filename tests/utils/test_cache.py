"""Tests for the bounded LRU cache behind encode memoisation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.cache import LRUCache, resolve_with_cache


class TestLRUCache:
    def test_roundtrip(self):
        cache = LRUCache(4)
        cache.put(b"a", 1)
        assert cache.get(b"a") == 1
        assert b"a" in cache
        assert len(cache) == 1

    def test_miss_returns_none(self):
        cache = LRUCache(4)
        assert cache.get(b"nope") is None

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh + overwrite: "b" becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 10

    def test_capacity_never_exceeded(self):
        cache = LRUCache(3)
        for i in range(50):
            cache.put(i, i)
        assert len(cache) == 3
        assert all(cache.get(i) == i for i in (47, 48, 49))

    def test_hit_miss_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hits == 1
        assert cache.misses == 1

    def test_clear(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None

    def test_resize_shrinks_lru_first(self):
        cache = LRUCache(4)
        for key in "abcd":
            cache.put(key, key.upper())
        cache.get("a")  # refresh: "b" is now the LRU entry
        cache.resize(2)
        assert cache.max_entries == 2
        assert cache.get("a") == "A" and cache.get("d") == "D"
        assert cache.get("b") is None and cache.get("c") is None

    def test_resize_grow_keeps_entries(self):
        cache = LRUCache(1)
        cache.put("a", 1)
        cache.resize(3)
        assert cache.get("a") == 1
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 3

    @pytest.mark.parametrize("bad", [0, -1, "x"])
    def test_resize_invalid_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            LRUCache(2).resize(bad)

    def test_ndarray_values(self):
        cache = LRUCache(2)
        hv = np.ones(16, dtype=np.int8)
        cache.put(b"k", hv)
        assert np.array_equal(cache.get(b"k"), hv)

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "big"])
    def test_invalid_capacity_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            LRUCache(bad)

    def test_numpy_integer_capacity_accepted(self):
        # HDTestConfig validation admits numpy ints; the cache must too.
        cache = LRUCache(np.int64(2))
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.max_entries == 2


class TestResolveWithCache:
    def test_computes_each_distinct_key_once(self):
        cache = LRUCache(8)
        calls = []

        def compute(positions):
            calls.append(list(positions))
            return [f"v{p}" for p in positions]

        values = resolve_with_cache(cache, ["a", "b", "a", "c", "b"], compute)
        assert values == ["v0", "v1", "v0", "v3", "v1"]
        assert calls == [[0, 1, 3]]  # first occurrences only

    def test_uses_cache_hits(self):
        cache = LRUCache(8)
        cache.put("a", "cached")
        values = resolve_with_cache(cache, ["a", "b"], lambda ps: ["fresh"] * len(ps))
        assert values == ["cached", "fresh"]
        assert cache.get("b") == "fresh"

    def test_survives_eviction_within_one_call(self):
        # Capacity smaller than the batch: values used this call must be
        # pinned even though the cache evicts while filling.
        cache = LRUCache(1)
        keys = ["a", "b", "c", "a", "b"]
        values = resolve_with_cache(
            cache, keys, lambda ps: [keys[p].upper() for p in ps]
        )
        assert values == ["A", "B", "C", "A", "B"]
        assert len(cache) == 1

    def test_miscounting_compute_rejected(self):
        with pytest.raises(ConfigurationError, match="compute_missing"):
            resolve_with_cache(LRUCache(4), ["a", "b"], lambda ps: ["only-one"])

    def test_no_misses_no_compute_call(self):
        cache = LRUCache(4)
        cache.put("a", 1)

        def explode(_):
            raise AssertionError("should not be called")

        assert resolve_with_cache(cache, ["a", "a"], explode) == [1, 1]
