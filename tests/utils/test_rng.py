"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.rng import SeedSequenceFactory, derive_seed, ensure_rng, spawn


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=10)
        b = ensure_rng(42).integers(0, 1000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 2**31, size=20)
        b = ensure_rng(2).integers(0, 2**31, size=20)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        gen = ensure_rng(np.random.SeedSequence(5))
        assert isinstance(gen, np.random.Generator)

    def test_numpy_integer_accepted(self):
        gen = ensure_rng(np.int64(7))
        assert isinstance(gen, np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            ensure_rng(-1)

    def test_wrong_type_rejected(self):
        with pytest.raises(ConfigurationError, match="expected"):
            ensure_rng("seed")  # type: ignore[arg-type]


class TestSpawn:
    def test_children_count(self):
        assert len(spawn(0, 5)) == 5

    def test_zero_children(self):
        assert spawn(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            spawn(0, -1)

    def test_children_are_independent_streams(self):
        a, b = spawn(42, 2)
        assert not np.array_equal(
            a.integers(0, 2**31, size=50), b.integers(0, 2**31, size=50)
        )

    def test_spawn_deterministic_from_seed(self):
        first = [g.integers(0, 1000) for g in spawn(9, 3)]
        second = [g.integers(0, 1000) for g in spawn(9, 3)]
        assert first == second


class TestDeriveSeed:
    def test_range(self):
        seed = derive_seed(3)
        assert 0 <= seed < 2**63

    def test_deterministic(self):
        assert derive_seed(3) == derive_seed(3)


class TestSeedSequenceFactory:
    def test_same_name_same_stream(self):
        f = SeedSequenceFactory(10)
        a = f.get("codebooks").integers(0, 1000, size=5)
        b = SeedSequenceFactory(10).get("codebooks").integers(0, 1000, size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_names_differ(self):
        f = SeedSequenceFactory(10)
        a = f.get("alpha").integers(0, 2**31, size=20)
        b = f.get("beta").integers(0, 2**31, size=20)
        assert not np.array_equal(a, b)

    def test_order_independence(self):
        f1 = SeedSequenceFactory(10)
        _ = f1.get("first")
        late = f1.get("second").integers(0, 1000, size=5)
        f2 = SeedSequenceFactory(10)
        early = f2.get("second").integers(0, 1000, size=5)
        np.testing.assert_array_equal(late, early)

    def test_get_many(self):
        f = SeedSequenceFactory(0)
        gens = f.get_many(["a", "b"])
        assert set(gens) == {"a", "b"}

    def test_invalid_root_seed(self):
        with pytest.raises(ConfigurationError):
            SeedSequenceFactory(-2)

    def test_invalid_name(self):
        with pytest.raises(ConfigurationError):
            SeedSequenceFactory(0).get("")

    def test_root_seed_property(self):
        assert SeedSequenceFactory(77).root_seed == 77
