#!/usr/bin/env python
"""Mutation-strategy comparison — a miniature of the paper's Table II.

Fuzzes the same unlabeled test images with the four strategies Table II
evaluates (``gauss``, ``rand``, ``row_col_rand``, ``shift``), prints the
measured table next to the paper's numbers, and renders one sample
adversarial per strategy (the paper's Figs. 4–6).

The interesting part is the *shape* of the table (Sec. V-B):

* ``rand`` produces the least visible perturbations (smallest L1/L2)
  but needs by far the most iterations;
* ``gauss`` flips predictions in ~1–2 iterations at ~5× rand's
  distance;
* ``shift``'s distances are huge but meaningless (all pixels move);
  it is the fastest per generated image;
* ``row & col rand`` is dominated by gauss (the paper drops it from
  later experiments).

Run:  python examples/mutation_strategies.py
"""

from __future__ import annotations

import numpy as np

from repro import HDCClassifier, PixelEncoder, compare_strategies, load_digits
from repro.analysis import adversarial_triptych, table2
from repro.fuzz import HDTestConfig

SEED = 1
DIMENSION = 4096
N_IMAGES = 15


def main() -> None:
    train, test = load_digits(n_train=1000, n_test=100, seed=SEED)
    model = HDCClassifier(PixelEncoder(dimension=DIMENSION, rng=SEED), 10)
    model.fit(train.images, train.labels)
    print(f"model accuracy: {model.score(test.images, test.labels):.3f}\n")

    images = test.images[:N_IMAGES].astype(np.float64)
    results = compare_strategies(
        model,
        images,
        ("gauss", "rand", "row_col_rand", "shift"),
        config=HDTestConfig(iter_times=60),
        rng=SEED,
    )

    print(table2(results))
    print("\n(* shift distances are not meaningful — pixels move, Sec. V-B)")

    for name in ("gauss", "rand", "shift"):
        examples = results[name].examples
        if not examples:
            continue
        print(f"\n=== sample adversarial, strategy = {name} (Figs. 4–6) ===")
        print(adversarial_triptych(examples[0]))


if __name__ == "__main__":
    main()
