#!/usr/bin/env python
"""Pinpointing vulnerable cases and adversarial flip structure (Sec. V-B/C).

The paper highlights two security-relevant observations beyond the
headline tables:

* **Vulnerable cases** — some inputs flip with "only minor and even
  negligible perturbations"; "such images should be emphasized when
  defending attacks … and HDTest is able to pinpoint and highlight
  them."  This script pinpoints them two ways: post-hoc (few fuzzing
  iterations, tiny L2) and predictively (low similarity margins —
  no fuzzing needed).
* **Flip structure** — which classes flip into which (the paper's "8"
  → "3", "9" ≈ "8"/"3").  We print the adversarial flip matrix and the
  associative memory's class-similarity matrix that explains it.

Run:  python examples/vulnerable_cases.py
"""

from __future__ import annotations

import numpy as np

from repro import HDCClassifier, HDTest, PixelEncoder, load_digits
from repro.analysis import (
    class_confusability,
    dominant_flips,
    flip_matrix,
    flip_table,
    margin_iteration_correlation,
    rank_by_margin,
    vulnerable_cases,
)
from repro.fuzz import HDTestConfig

SEED = 5
DIMENSION = 4096
N_IMAGES = 40


def main() -> None:
    train, test = load_digits(n_train=1200, n_test=max(N_IMAGES, 100), seed=SEED)
    model = HDCClassifier(PixelEncoder(dimension=DIMENSION, rng=SEED), 10)
    model.fit(train.images, train.labels)
    inputs = test.images[:N_IMAGES].astype(np.float64)

    print("== predictive triage (no fuzzing): lowest-margin inputs ==")
    ranking = rank_by_margin(model, inputs)
    margins = model.margins(inputs)
    for idx in ranking[:5]:
        print(f"  input #{idx:2d}  margin={margins[idx]:.4f}  "
              f"predicted={model.predict_one(inputs[idx])}")

    print("\n== fuzzing campaign ==")
    campaign = HDTest(model, "gauss", config=HDTestConfig(iter_times=60), rng=SEED).fuzz(inputs)
    print(f"success {campaign.n_success}/{campaign.n_inputs}, "
          f"avg iterations {campaign.avg_iterations:.2f}")

    print("\n== post-hoc vulnerable cases (flipped in ≤1 iteration) ==")
    for case in vulnerable_cases(campaign, max_iterations=1)[:5]:
        print(f"  input #{case.input_index:2d}  class {case.reference_label}  "
              f"L2={case.l2:.3f}")

    corr = margin_iteration_correlation(model, inputs, campaign)
    print(f"\nmargin ↔ iterations correlation: {corr:+.3f} "
          "(positive = low margin predicts easy flips)")

    print("\n== adversarial flip structure ==")
    matrix = flip_matrix(campaign, n_classes=10)
    print(flip_table(matrix))
    flips = dominant_flips(matrix)
    seen = {k: v for k, v in flips.items() if v is not None}
    print(f"dominant flips: " + ", ".join(f"{k}→{v}" for k, v in seen.items()))

    print("\n== why: class-HV similarity (top confusable pairs) ==")
    sims = class_confusability(model.associative_memory)
    pairs = []
    for a in range(10):
        for b in range(a + 1, 10):
            pairs.append((sims[a, b], a, b))
    pairs.sort(reverse=True)
    for sim, a, b in pairs[:5]:
        print(f"  classes {a} and {b}: cosine {sim:.3f}")


if __name__ == "__main__":
    main()
