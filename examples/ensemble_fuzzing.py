#!/usr/bin/env python
"""Cross-model differential fuzzing — the HDXplore workflow on HDTest.

The paper's oracle compares one model against itself before/after
mutation.  The stronger form runs K independently-seeded HDC models on
the same input and hunts inputs they *disagree* on:

1. Train a base model, then spawn an ensemble of K architecture-matched
   members with fresh item memories (``ModelEnsembleTarget.trained_like``).
2. Fuzz the ensemble with the lock-step batched engine: the
   ``CrossModelOracle`` flags any pairwise member disagreement —
   including *seed discrepancies*, inputs the members already split on
   before any mutation — and the ``AgreementMarginFitness`` steers
   mutation toward children that split the ensemble's vote.
3. Debug: retrain every member on the discrepancies (majority-vote
   labels) with ``debug_ensemble`` and measure how many *held-out*
   disagreements the hardened ensemble resolves.

Run:  python examples/ensemble_fuzzing.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    BatchedHDTest,
    HDCClassifier,
    HDTestConfig,
    ModelEnsembleTarget,
    PixelEncoder,
    debug_ensemble,
    load_digits,
)

SEED = 5
DIMENSION = 2048
K_MEMBERS = 3
N_FUZZ = 60
N_HOLDOUT = 120


def main() -> None:
    train, test = load_digits(n_train=1200, n_test=N_FUZZ + N_HOLDOUT, seed=SEED)
    base = HDCClassifier(PixelEncoder(dimension=DIMENSION, rng=SEED), 10)
    base.fit(train.images, train.labels)

    print(f"(1) spawning a {K_MEMBERS}-member ensemble "
          f"(independently-seeded item memories)…")
    ensemble = ModelEnsembleTarget.trained_like(
        base, K_MEMBERS, train.images, train.labels, rng=SEED + 1
    )
    images = test.images.astype(np.float64)
    fuzz_pool, holdout = images[:N_FUZZ], images[N_FUZZ:]
    print(f"    members agree on {ensemble.agreement(holdout) * 100:.1f}% "
          "of held-out inputs before debugging")

    print(f"\n(2) fuzzing {N_FUZZ} inputs for cross-model discrepancies…")
    engine = BatchedHDTest(ensemble, "gauss", config=HDTestConfig(iter_times=30))
    result = engine.fuzz(list(fuzz_pool), rng=SEED)
    seed_splits = result.seed_discrepancies
    print(f"    {result.n_success}/{result.n_inputs} inputs produced a "
          f"discrepancy ({len(seed_splits)} before any mutation)")
    for example in result.examples[:3]:
        kind = "seed" if example.iterations == 0 else f"iter {example.iterations}"
        print(f"    [{kind}] majority says {example.reference_label}, "
              f"members {example.disagreed_members} answer "
              f"{example.adversarial_label}")

    print("\n(3) debugging: retraining members on the discrepancies…")
    report, hardened = debug_ensemble(
        ensemble,
        list(fuzz_pool),
        list(holdout),
        config=HDTestConfig(iter_times=20),
        rng=SEED,
        clean_inputs=test.images,
        clean_labels=test.labels,
    )
    print(f"    fed back {report.n_discrepancies} discrepancies over "
          f"{report.rounds_run} rounds {report.per_round}")
    print(f"    held-out agreement: {report.agreement_before * 100:.1f}% -> "
          f"{report.agreement_after * 100:.1f}%")
    print(f"    of {report.n_holdout_disagreements} held-out inputs the "
          f"original members split on, {report.resolved_rate * 100:.1f}% "
          "now agree")
    print(f"    majority-vote clean accuracy: "
          f"{report.clean_accuracy_before:.3f} -> "
          f"{report.clean_accuracy_after:.3f}")


if __name__ == "__main__":
    main()
