#!/usr/bin/env python
"""Per-class analysis — the paper's Sec. V-C / Fig. 7.

Fuzzes a class-balanced pool of test images and groups the results by
the model's reference label: average normalized L1/L2 distance and
average fuzzing iterations per digit class, rendered as tables and
ASCII bar charts.

The paper's observations to look for:

* some classes are much harder to attack than others (the paper's
  model finds "1" hardest — visually dissimilar from everything except
  "7");
* iteration count and distance are *not* obviously correlated across
  classes (their "6" needs many iterations yet small distances).

Run:  python examples/per_class_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import HDCClassifier, HDTest, PixelEncoder, load_digits
from repro.analysis import (
    ascii_bar_chart,
    hardest_classes,
    per_class_series,
    per_class_table,
)
from repro.fuzz import HDTestConfig

SEED = 4
DIMENSION = 4096
N_IMAGES = 60


def main() -> None:
    train, test = load_digits(n_train=1200, n_test=max(N_IMAGES, 100), seed=SEED)
    model = HDCClassifier(PixelEncoder(dimension=DIMENSION, rng=SEED), 10)
    model.fit(train.images, train.labels)
    print(f"model accuracy: {model.score(test.images, test.labels):.3f}\n")

    fuzzer = HDTest(model, "gauss", config=HDTestConfig(iter_times=60), rng=SEED)
    campaign = fuzzer.fuzz(test.images[:N_IMAGES].astype(np.float64))
    series = per_class_series(campaign, n_classes=10)

    print(per_class_table(series))
    labels = [str(d) for d in range(10)]
    print()
    print(ascii_bar_chart(labels, series.iterations,
                          title="avg fuzzing iterations per class (Fig. 7)"))
    print()
    print(ascii_bar_chart(labels, series.l2,
                          title="avg normalized L2 per class (Fig. 7)"))

    ranking = hardest_classes(series)
    print(f"\nhardest classes (most iterations first): {ranking[:3]} …")
    print("paper's model found '1' hardest and '9' easiest; rankings depend on")
    print("the dataset's confusion structure, so expect the *spread*, not the")
    print("exact order, to reproduce.")


if __name__ == "__main__":
    main()
