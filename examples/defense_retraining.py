#!/usr/bin/env python
"""Defense case study — the paper's Sec. V-D / Fig. 8 pipeline.

1. Train an HDC model.
2. Run HDTest until a pool of adversarial images exists.
3. Split the pool 50/50; retrain the model on the first half with
   correct labels ("updating the reference HVs").
4. Attack the retrained model with the unseen second half.

The paper reports the attack success rate dropping by more than 20 %
after retraining; this script prints the before/after rates plus the
clean-accuracy cost.

Run:  python examples/defense_retraining.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    HDCClassifier,
    PixelEncoder,
    generate_adversarial_set,
    load_digits,
    run_defense,
)

SEED = 2
DIMENSION = 4096
N_ADVERSARIAL = 120


def main() -> None:
    train, test = load_digits(n_train=1000, n_test=300, seed=SEED)
    model = HDCClassifier(PixelEncoder(dimension=DIMENSION, rng=SEED), 10)
    model.fit(train.images, train.labels)
    print(f"clean accuracy before defense: {model.score(test.images, test.labels):.3f}")

    print(f"\n(1) generating {N_ADVERSARIAL} adversarial images with HDTest…")
    examples, elapsed = generate_adversarial_set(
        model,
        test.images.astype(np.float64),
        N_ADVERSARIAL,
        strategy="gauss",
        true_labels=test.labels,
        rng=SEED,
    )
    print(f"    done in {elapsed:.1f}s "
          f"({len(examples) / elapsed * 60:.0f} images/minute)")

    print("(2) retraining on half of them, (3) attacking with the other half…")
    report, hardened = run_defense(
        model,
        examples,
        retrain_fraction=0.5,
        epochs=5,
        clean_inputs=test.images,
        clean_labels=test.labels,
        rng=SEED,
    )

    print(f"""
results (paper: success rate drops by more than 20 %):
    attack success before retraining : {report.attack_rate_before:6.1%}
    attack success after  retraining : {report.attack_rate_after:6.1%}
    drop                             : {report.rate_drop:6.1%}
    clean accuracy before / after    : {report.clean_accuracy_before:.3f} / {report.clean_accuracy_after:.3f}
    retrain / attack subset sizes    : {report.n_retrain} / {report.n_attack}
""")


if __name__ == "__main__":
    main()
