#!/usr/bin/env python
"""HDTest on a second modality: character n-gram language identification.

Sec. V-E argues HDTest "can be naturally extended to other HDC model
structures because it considers a general greybox assumption with only
HV distance information".  This script is that extension, end to end:

* an HDC language classifier in the style of Rahimi et al. (ISLPED'16)
  — random character HVs bound through permuted n-grams, bundled per
  class into an associative memory;
* a synthetic 4-language corpus (per-language Markov character models);
* the *identical* HDTest loop — distance-guided fitness, top-N seed
  survival, differential oracle — with text mutations (character
  substitutions) and a character-edit budget instead of an L2 budget.

Run:  python examples/language_fuzzing.py
"""

from __future__ import annotations

from repro import HDCClassifier, HDTest, NgramEncoder
from repro.datasets import make_language_dataset
from repro.fuzz import HDTestConfig, TextConstraint

SEED = 3
DIMENSION = 4096


def show_diff(original: str, mutated: str) -> str:
    """Mark substituted characters with ^ underneath."""
    marks = "".join("^" if a != b else " " for a, b in zip(original, mutated))
    return f"  {original}\n  {mutated}\n  {marks}"


def main() -> None:
    data = make_language_dataset(40, n_languages=4, length=100, seed=SEED)
    train, test = data.split(0.75, rng=SEED)
    print(f"corpus: {len(data)} texts, languages: {', '.join(data.language_names)}")

    encoder = NgramEncoder(n=3, dimension=DIMENSION, rng=SEED)
    model = HDCClassifier(encoder, n_classes=4).fit(list(train.texts), train.labels)
    print(f"language-ID accuracy: {model.score(list(test.texts), test.labels):.3f}\n")

    fuzzer = HDTest(
        model,
        "char_sub",  # substitute a few characters per iteration
        constraint=TextConstraint(max_edits=35),
        config=HDTestConfig(iter_times=40),
        rng=SEED,
    )
    campaign = fuzzer.fuzz(list(test.texts)[:8])
    print(
        f"fuzzing: success {campaign.n_success}/{campaign.n_inputs}, "
        f"avg iterations {campaign.avg_iterations:.1f}"
    )

    for example in campaign.examples[:2]:
        before = data.language_names[example.reference_label]
        after = data.language_names[example.adversarial_label]
        print(f"\nflip {before} → {after} "
              f"({int(example.metrics['edits'])} character edits):")
        print(show_diff(example.original, example.adversarial))


if __name__ == "__main__":
    main()
