#!/usr/bin/env python
"""HDTest on a third modality: VoiceHD-style feature-record classification.

The paper cites VoiceHD (Imani et al., ICRC'17) — HDC over fixed-length
acoustic feature vectors — among HDC's flagship applications, and claims
(Sec. V-E) that HDTest transfers to any HDC model structure.  This
script closes the loop on a synthetic VoiceHD-shaped task:

* a record encoder (feature-ID ⊛ quantised-value, the VoiceHD recipe)
  with the paper's *random* value codebook;
* record-domain mutation strategies mirroring Table I
  (``record_gauss``, ``record_rand``, ``record_band``, ``record_shift``);
* the identical Alg. 1 loop with an L2 budget on the feature vector.

It also reruns the key ablation in this domain: swapping the random
value codebook for the ordinal *level* codebook hardens the model
against exactly these small-perturbation attacks.

Run:  python examples/voice_fuzzing.py
"""

from __future__ import annotations

import numpy as np

from repro import HDCClassifier, HDTest, RecordEncoder
from repro.datasets import make_voice_dataset
from repro.fuzz import HDTestConfig, RecordConstraint

SEED = 6
DIMENSION = 4096
N_FEATURES = 64


def build_model(level_encoding: str, train) -> HDCClassifier:
    encoder = RecordEncoder(
        N_FEATURES,
        levels=32,
        level_encoding=level_encoding,
        dimension=DIMENSION,
        rng=SEED,
    )
    return HDCClassifier(encoder, n_classes=6).fit(train.records, train.labels)


def fuzz(model, records, strategy: str):
    fuzzer = HDTest(
        model,
        strategy,
        constraint=RecordConstraint(max_l2=1.0),
        config=HDTestConfig(iter_times=40),
        rng=SEED,
    )
    return fuzzer.fuzz(records)


def main() -> None:
    data = make_voice_dataset(40, n_classes=6, n_features=N_FEATURES, seed=SEED)
    train, test = data.split(0.7, rng=SEED)
    records = [test.records[i] for i in range(8)]

    print("== paper-style model (random value codebook) ==")
    model = build_model("random", train)
    print(f"accuracy: {model.score(test.records, test.labels):.3f}")
    for strategy in ("record_gauss", "record_rand", "record_band", "record_shift"):
        result = fuzz(model, records, strategy)
        print(f"  {strategy:13s} success={result.success_rate:.2f} "
              f"avg iterations={result.avg_iterations:.1f}")

    example = next(
        e for s in ("record_gauss", "record_rand")
        for e in fuzz(model, records, s).examples
    )
    delta = np.abs(np.asarray(example.adversarial) - np.asarray(example.original))
    print(f"\nsample flip: class {example.reference_label} → "
          f"{example.adversarial_label}, max feature change "
          f"{delta.max():.3f}, features touched {(delta > 1e-12).sum()}")

    print("\n== hardened model (ordinal level codebook) ==")
    hardened = build_model("linear", train)
    print(f"accuracy: {hardened.score(test.records, test.labels):.3f}")
    for strategy in ("record_gauss", "record_rand"):
        result = fuzz(hardened, records, strategy)
        print(f"  {strategy:13s} success={result.success_rate:.2f} "
              f"avg iterations={result.avg_iterations:.1f}")
    print("\nordinal level encoding resists the small-perturbation attacks that")
    print("break the paper's random value memory — the same ablation result as")
    print("in the image domain (benchmarks/bench_ablation_value_memory.py).")


if __name__ == "__main__":
    main()
