#!/usr/bin/env python
"""Quickstart: train the paper's HDC model and fuzz it with HDTest.

This is the 60-second tour of the library:

1. load MNIST-shaped digit data (synthetic unless real MNIST IDX files
   are available — see README);
2. train the Sec. III HDC classifier (position ⊛ value encoding +
   associative memory);
3. run HDTest with the ``gauss`` mutation strategy on a handful of
   unlabeled test images;
4. display one adversarial example as the paper's Fig. 1-style
   original / mutated-pixels / adversarial triptych.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import HDCClassifier, HDTest, PixelEncoder, load_digits
from repro.analysis import adversarial_triptych

SEED = 0
DIMENSION = 4096  # 10 000 in the paper; smaller here for a fast demo


def main() -> None:
    print("== 1. data ==")
    train, test = load_digits(n_train=1000, n_test=200, seed=SEED)
    print(f"train: {train}, test: {test}")

    print("\n== 2. train the HDC model (Sec. III) ==")
    encoder = PixelEncoder(dimension=DIMENSION, rng=SEED)
    model = HDCClassifier(encoder, n_classes=10).fit(train.images, train.labels)
    accuracy = model.score(test.images, test.labels)
    print(f"model: {model}")
    print(f"test accuracy: {accuracy:.3f}   (paper reports ≈0.90)")

    print("\n== 3. fuzz with HDTest (Sec. IV, Alg. 1) ==")
    fuzzer = HDTest(model, "gauss", rng=SEED)
    campaign = fuzzer.fuzz(test.images[:10].astype(np.float64))
    print(
        f"strategy=gauss  success={campaign.n_success}/{campaign.n_inputs}  "
        f"avg iterations={campaign.avg_iterations:.2f}  "
        f"avg L1={campaign.avg_l1:.2f}  avg L2={campaign.avg_l2:.3f}"
    )
    print(
        f"extrapolated throughput: {campaign.images_per_minute:.0f} adversarial "
        "images/minute (paper: ≈400 on a Ryzen 5 3600)"
    )

    print("\n== 4. one adversarial example (Fig. 1) ==")
    example = campaign.examples[0]
    print(adversarial_triptych(example))
    print(
        f"\nmodel predicted {example.reference_label} on the original and "
        f"{example.adversarial_label} on the mutated image "
        f"(L2 perturbation {example.l2:.3f}, {example.iterations} iterations)"
    )


if __name__ == "__main__":
    main()
