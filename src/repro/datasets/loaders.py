"""Dataset container and the digit-loading entry point.

:func:`load_digits` is the one call every example, test, and bench uses:
it returns MNIST-shaped train/test splits, sourcing real MNIST IDX files
when a directory containing them is supplied (or found via the
``HDTEST_MNIST_DIR`` environment variable) and falling back to the
synthetic generator otherwise (DESIGN.md §2).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

import numpy as np

from repro.datasets.idx import MNIST_FILES, read_idx
from repro.datasets.synthetic_mnist import DigitStyle, SyntheticDigitGenerator
from repro.errors import ConfigurationError, DatasetError
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_labels, check_positive_int

__all__ = ["Dataset", "load_digits", "find_mnist_dir", "save_mnist_dir"]

#: Environment variable pointing at a directory of real MNIST IDX files.
MNIST_DIR_ENV = "HDTEST_MNIST_DIR"


@dataclass(frozen=True)
class Dataset:
    """An immutable labelled image dataset.

    Attributes
    ----------
    images:
        ``(n, H, W)`` uint8 array of grey-scale images.
    labels:
        ``(n,)`` int64 class labels.
    name:
        Human-readable provenance tag (``"synthetic-digits"`` or
        ``"mnist"``).
    """

    images: np.ndarray
    labels: np.ndarray
    name: str = "dataset"

    def __post_init__(self) -> None:
        images = np.asarray(self.images)
        if images.ndim != 3:
            raise DatasetError(f"images must be (n, H, W), got shape {images.shape}")
        if images.dtype != np.uint8:
            if images.min() < 0 or images.max() > 255:
                raise DatasetError("image values must lie in [0, 255]")
            images = images.astype(np.uint8)
        labels = check_labels(self.labels, images.shape[0])
        object.__setattr__(self, "images", images)
        object.__setattr__(self, "labels", labels)

    # -- basics ------------------------------------------------------------
    def __len__(self) -> int:
        return self.images.shape[0]

    def __iter__(self) -> Iterator[tuple[np.ndarray, int]]:
        for image, label in zip(self.images, self.labels):
            yield image, int(label)

    @property
    def image_shape(self) -> tuple[int, int]:
        """Spatial shape ``(H, W)``."""
        return self.images.shape[1], self.images.shape[2]

    @property
    def n_classes(self) -> int:
        """Number of distinct labels (max label + 1)."""
        return int(self.labels.max()) + 1 if len(self) else 0

    def class_counts(self) -> np.ndarray:
        """Per-class example counts, length ``n_classes``."""
        return np.bincount(self.labels, minlength=self.n_classes)

    # -- slicing -----------------------------------------------------------
    def subset(self, indices: Sequence[int]) -> "Dataset":
        """Select rows by index (order preserved, duplicates allowed)."""
        idx = np.asarray(indices, dtype=np.int64)
        return Dataset(self.images[idx], self.labels[idx], name=self.name)

    def take(self, n: int) -> "Dataset":
        """First *n* examples."""
        return self.subset(np.arange(min(n, len(self))))

    def filter_label(self, label: int) -> "Dataset":
        """Examples of one class only."""
        return self.subset(np.nonzero(self.labels == label)[0])

    def shuffled(self, rng: RngLike = None) -> "Dataset":
        """A shuffled copy."""
        perm = ensure_rng(rng).permutation(len(self))
        return self.subset(perm)

    def split(self, fraction: float, *, rng: RngLike = None) -> tuple["Dataset", "Dataset"]:
        """Random split into (``fraction``, ``1-fraction``) parts."""
        if not 0.0 < fraction < 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1), got {fraction}")
        perm = ensure_rng(rng).permutation(len(self))
        cut = int(round(fraction * len(self)))
        return self.subset(perm[:cut]), self.subset(perm[cut:])

    def as_float(self) -> np.ndarray:
        """Images as float64 in [0, 255] (mutation-strategy input form)."""
        return self.images.astype(np.float64)

    def __repr__(self) -> str:
        return (
            f"Dataset(name={self.name!r}, n={len(self)}, shape={self.image_shape}, "
            f"classes={self.n_classes})"
        )


def find_mnist_dir(data_dir: Union[str, Path, None] = None) -> Optional[Path]:
    """Locate a directory with all four MNIST IDX files, or return None.

    Checks, in order: the explicit *data_dir* argument, then the
    ``HDTEST_MNIST_DIR`` environment variable.  A directory qualifies if
    it contains every file in :data:`~repro.datasets.idx.MNIST_FILES`,
    plain or ``.gz``.
    """
    candidates = []
    if data_dir is not None:
        candidates.append(Path(data_dir))
    env = os.environ.get(MNIST_DIR_ENV)
    if env:
        candidates.append(Path(env))
    for cand in candidates:
        if not cand.is_dir():
            continue
        if all(
            (cand / name).exists() or (cand / f"{name}.gz").exists()
            for name in MNIST_FILES.values()
        ):
            return cand
    return None


def _read_mnist_member(directory: Path, name: str) -> np.ndarray:
    plain = directory / name
    return read_idx(plain if plain.exists() else directory / f"{name}.gz")


def save_mnist_dir(
    directory: Union[str, Path],
    train: Dataset,
    test: Dataset,
    *,
    gzip_files: bool = False,
) -> Path:
    """Write two datasets as an MNIST-format IDX directory.

    The resulting directory satisfies :func:`find_mnist_dir`, so
    ``load_digits(data_dir=...)`` reads it back through the real-MNIST
    code path — useful for exporting the synthetic data to external
    tools, or for freezing one generated dataset across many runs.
    """
    from repro.datasets.idx import write_idx

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    suffix = ".gz" if gzip_files else ""
    members = {
        "train_images": train.images,
        "train_labels": train.labels.astype(np.uint8),
        "test_images": test.images,
        "test_labels": test.labels.astype(np.uint8),
    }
    if train.labels.max() > 255 or test.labels.max() > 255:
        raise DatasetError("IDX label files store uint8; labels exceed 255")
    for key, array in members.items():
        write_idx(directory / f"{MNIST_FILES[key]}{suffix}", array)
    return directory


def load_digits(
    n_train: int = 2000,
    n_test: int = 500,
    *,
    seed: int = 0,
    data_dir: Union[str, Path, None] = None,
    style: Optional[DigitStyle] = None,
) -> tuple[Dataset, Dataset]:
    """Load MNIST-shaped train/test digit datasets.

    Real MNIST IDX files are used when found (see :func:`find_mnist_dir`);
    otherwise images come from
    :class:`~repro.datasets.synthetic_mnist.SyntheticDigitGenerator`.
    Subsampling (for real MNIST) and generation (synthetic) are both
    deterministic in *seed*.

    Parameters
    ----------
    n_train, n_test:
        Number of training / test examples.
    seed:
        Root seed for generation or subsampling.
    data_dir:
        Optional directory containing real MNIST IDX files.
    style:
        Optional :class:`DigitStyle` override for the synthetic path.

    Returns
    -------
    (train, test):
        Two :class:`Dataset` objects.
    """
    n_train = check_positive_int(n_train, "n_train")
    n_test = check_positive_int(n_test, "n_test")
    mnist_dir = find_mnist_dir(data_dir)
    if mnist_dir is not None:
        if style is not None:
            raise ConfigurationError("style only applies to synthetic data")
        rng = ensure_rng(seed)
        train_images = _read_mnist_member(mnist_dir, MNIST_FILES["train_images"])
        train_labels = _read_mnist_member(mnist_dir, MNIST_FILES["train_labels"])
        test_images = _read_mnist_member(mnist_dir, MNIST_FILES["test_images"])
        test_labels = _read_mnist_member(mnist_dir, MNIST_FILES["test_labels"])
        if n_train > train_images.shape[0] or n_test > test_images.shape[0]:
            raise DatasetError(
                f"requested {n_train}/{n_test} examples but MNIST provides "
                f"{train_images.shape[0]}/{test_images.shape[0]}"
            )
        train_idx = rng.choice(train_images.shape[0], size=n_train, replace=False)
        test_idx = rng.choice(test_images.shape[0], size=n_test, replace=False)
        train = Dataset(train_images[train_idx], train_labels[train_idx], name="mnist")
        test = Dataset(test_images[test_idx], test_labels[test_idx], name="mnist")
        return train, test

    generator = SyntheticDigitGenerator(style)
    rng = ensure_rng(seed)
    train_images, train_labels = generator.dataset(n_train, rng=rng)
    test_images, test_labels = generator.dataset(n_test, rng=rng)
    return (
        Dataset(train_images, train_labels, name="synthetic-digits"),
        Dataset(test_images, test_labels, name="synthetic-digits"),
    )
