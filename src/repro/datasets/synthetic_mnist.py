"""Synthetic handwritten-digit generator (the repo's MNIST substitute).

The paper trains and fuzzes on MNIST, which cannot be downloaded in this
offline environment (see DESIGN.md §2).  This module generates an
MNIST-shaped drop-in: 28×28 grey-scale ``uint8`` images of digits 0–9,
rendered from per-class stroke skeletons with randomised handwriting
variation:

* control-point jitter (wobbly strokes),
* a random affine transform (rotation, anisotropic scale, shear,
  translation),
* random stroke thickness and ink intensity,
* additive Gaussian pixel noise and sparse speckle.

The generator is fully deterministic given a seed, fast (tens of
microseconds per image), and calibrated so the paper's HDC model lands
in its reported ≈90 % accuracy regime with realistic confusions
(3/8/9 family vs the visually isolated 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, DatasetError
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["DigitStyle", "SyntheticDigitGenerator", "glyph_strokes", "DIGIT_NAMES"]

DIGIT_NAMES = tuple(str(d) for d in range(10))

# --------------------------------------------------------------------------
# Glyph skeletons
# --------------------------------------------------------------------------
# Strokes live in a unit box: x grows rightward, y grows downward (image
# row order).  Each stroke is a polyline given as an (k, 2) float array of
# (x, y) vertices.


def _line(p0: tuple[float, float], p1: tuple[float, float]) -> np.ndarray:
    return np.asarray([p0, p1], dtype=np.float64)


def _arc(
    center: tuple[float, float],
    rx: float,
    ry: float,
    deg0: float,
    deg1: float,
    n: int = 16,
) -> np.ndarray:
    """Polyline along an ellipse arc; angles in degrees, 0° = +x, 90° = +y."""
    theta = np.radians(np.linspace(deg0, deg1, n))
    cx, cy = center
    return np.stack([cx + rx * np.cos(theta), cy + ry * np.sin(theta)], axis=1)


def glyph_strokes(digit: int) -> list[np.ndarray]:
    """Canonical stroke skeleton for *digit* (copies, safe to mutate)."""
    if not 0 <= digit <= 9:
        raise ConfigurationError(f"digit must be 0..9, got {digit}")
    if digit == 0:
        strokes = [_arc((0.50, 0.50), 0.26, 0.36, 0.0, 360.0, n=24)]
    elif digit == 1:
        strokes = [
            _line((0.42, 0.28), (0.54, 0.14)),
            _line((0.54, 0.14), (0.54, 0.86)),
        ]
    elif digit == 2:
        strokes = [
            _arc((0.50, 0.32), 0.22, 0.18, 180.0, 360.0, n=12),
            _line((0.72, 0.32), (0.30, 0.84)),
            _line((0.30, 0.84), (0.74, 0.84)),
        ]
    elif digit == 3:
        strokes = [
            _arc((0.47, 0.33), 0.20, 0.15, -160.0, 90.0, n=14),
            _arc((0.47, 0.63), 0.22, 0.17, -90.0, 160.0, n=14),
        ]
    elif digit == 4:
        strokes = [
            _line((0.58, 0.12), (0.26, 0.58)),
            _line((0.26, 0.58), (0.78, 0.58)),
            _line((0.62, 0.12), (0.62, 0.88)),
        ]
    elif digit == 5:
        strokes = [
            _line((0.72, 0.16), (0.34, 0.16)),
            _line((0.34, 0.16), (0.32, 0.46)),
            _arc((0.47, 0.63), 0.22, 0.19, -90.0, 140.0, n=14),
        ]
    elif digit == 6:
        strokes = [
            _arc((0.62, 0.52), 0.34, 0.42, -90.0, -180.0, n=12),
            _arc((0.47, 0.66), 0.19, 0.16, 0.0, 360.0, n=18),
        ]
    elif digit == 7:
        strokes = [
            _line((0.28, 0.18), (0.74, 0.18)),
            _line((0.74, 0.18), (0.44, 0.86)),
        ]
    elif digit == 8:
        strokes = [
            _arc((0.50, 0.32), 0.17, 0.14, 0.0, 360.0, n=18),
            _arc((0.50, 0.66), 0.20, 0.17, 0.0, 360.0, n=18),
        ]
    else:  # 9
        strokes = [
            _arc((0.50, 0.34), 0.18, 0.15, 0.0, 360.0, n=18),
            np.asarray([(0.68, 0.34), (0.66, 0.62), (0.58, 0.86)], dtype=np.float64),
        ]
    return [s.copy() for s in strokes]


# --------------------------------------------------------------------------
# Style / randomisation parameters
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DigitStyle:
    """Randomisation envelope for the handwriting simulation.

    All ranges are sampled uniformly per image.  Geometry is expressed
    in unit-box coordinates (1.0 = image side length).
    """

    image_shape: tuple[int, int] = (28, 28)
    #: stroke half-width range, in unit-box units (0.04 ≈ 1.1 px).
    thickness_range: tuple[float, float] = (0.034, 0.055)
    #: anti-aliasing falloff width beyond the stroke core.
    falloff: float = 0.022
    #: std-dev of i.i.d. control-point jitter.
    vertex_jitter: float = 0.012
    #: rotation range in degrees.
    rotation_deg: float = 11.0
    #: per-axis scale range.
    scale_range: tuple[float, float] = (0.86, 1.10)
    #: horizontal shear range (±).
    shear: float = 0.09
    #: translation range (±, unit-box units).
    translation: float = 0.055
    #: peak ink intensity range (× 255).  Kept tight because real MNIST
    #: strokes saturate near 255; wide variation here would also unfairly
    #: handicap the paper's *random* value memory (nearby grey levels get
    #: unrelated HVs).
    intensity_range: tuple[float, float] = (0.90, 1.00)
    #: std-dev range of additive Gaussian pixel noise (grey levels).
    noise_sigma_range: tuple[float, float] = (0.0, 5.0)
    #: grey levels below this are clamped to 0 (scanner black point);
    #: keeps the background exactly zero, as in real MNIST.
    black_point: float = 8.0
    #: probability that a background pixel receives a speckle.
    speckle_prob: float = 0.004
    #: speckle intensity range (grey levels).
    speckle_range: tuple[float, float] = (30.0, 120.0)

    def validate(self) -> "DigitStyle":
        """Raise :class:`ConfigurationError` on out-of-range fields."""
        h, w = self.image_shape
        check_positive_int(h, "image_shape[0]")
        check_positive_int(w, "image_shape[1]")
        for name in ("thickness_range", "scale_range", "intensity_range",
                     "noise_sigma_range", "speckle_range"):
            lo, hi = getattr(self, name)
            if not lo <= hi:
                raise ConfigurationError(f"{name} must satisfy low <= high, got {(lo, hi)}")
        if self.thickness_range[0] <= 0:
            raise ConfigurationError("thickness_range values must be positive")
        if self.falloff <= 0:
            raise ConfigurationError("falloff must be positive")
        if not 0.0 <= self.speckle_prob <= 1.0:
            raise ConfigurationError(f"speckle_prob must be in [0, 1], got {self.speckle_prob}")
        return self


# --------------------------------------------------------------------------
# Generator
# --------------------------------------------------------------------------


class SyntheticDigitGenerator:
    """Renders randomised handwritten digits from stroke skeletons.

    Parameters
    ----------
    style:
        Randomisation envelope; defaults to :class:`DigitStyle`'s
        MNIST-calibrated values.

    Examples
    --------
    >>> gen = SyntheticDigitGenerator()
    >>> img = gen.render(8, rng=0)
    >>> img.shape, img.dtype
    ((28, 28), dtype('uint8'))
    """

    def __init__(self, style: Optional[DigitStyle] = None) -> None:
        self._style = (style if style is not None else DigitStyle()).validate()
        h, w = self._style.image_shape
        # Pixel-centre coordinates in unit-box space, precomputed once.
        ys, xs = np.mgrid[0:h, 0:w]
        self._pixel_xy = np.stack(
            [(xs.ravel() + 0.5) / w, (ys.ravel() + 0.5) / h], axis=1
        )

    @property
    def style(self) -> DigitStyle:
        """The randomisation envelope in use."""
        return self._style

    @property
    def image_shape(self) -> tuple[int, int]:
        """Output image shape ``(H, W)``."""
        return self._style.image_shape

    # -- single image ------------------------------------------------------
    def render(self, digit: int, *, rng: RngLike = None) -> np.ndarray:
        """Render one randomised image of *digit* as ``(H, W) uint8``."""
        generator = ensure_rng(rng)
        segments = self._randomised_segments(digit, generator)
        field = self._rasterize(segments, generator)
        return self._postprocess(field, generator)

    # -- batches -----------------------------------------------------------
    def batch(self, labels: Sequence[int], *, rng: RngLike = None) -> np.ndarray:
        """Render one image per label → ``(n, H, W) uint8``."""
        generator = ensure_rng(rng)
        labels_arr = np.asarray(labels, dtype=np.int64)
        if labels_arr.ndim != 1:
            raise DatasetError(f"labels must be 1-D, got shape {labels_arr.shape}")
        h, w = self._style.image_shape
        out = np.empty((labels_arr.size, h, w), dtype=np.uint8)
        for i, digit in enumerate(labels_arr):
            out[i] = self.render(int(digit), rng=generator)
        return out

    def dataset(
        self, n: int, *, rng: RngLike = None, balanced: bool = True
    ) -> tuple[np.ndarray, np.ndarray]:
        """Generate *n* labelled images → ``(images, labels)``.

        With ``balanced=True`` labels cycle through 0–9 before being
        shuffled, so every class count differs by at most one.
        """
        n = check_positive_int(n, "n")
        generator = ensure_rng(rng)
        if balanced:
            labels = np.arange(n, dtype=np.int64) % 10
            generator.shuffle(labels)
        else:
            labels = generator.integers(0, 10, size=n, dtype=np.int64)
        images = self.batch(labels, rng=generator)
        return images, labels

    # -- internals -----------------------------------------------------
    def _randomised_segments(
        self, digit: int, generator: np.random.Generator
    ) -> np.ndarray:
        """Jitter + affine-transform the skeleton; return (S, 2, 2) segments."""
        style = self._style
        strokes = glyph_strokes(digit)

        theta = np.radians(generator.uniform(-style.rotation_deg, style.rotation_deg))
        sx, sy = generator.uniform(*style.scale_range, size=2)
        shear = generator.uniform(-style.shear, style.shear)
        tx, ty = generator.uniform(-style.translation, style.translation, size=2)
        cos_t, sin_t = np.cos(theta), np.sin(theta)

        segments: list[np.ndarray] = []
        for stroke in strokes:
            pts = stroke + generator.normal(0.0, style.vertex_jitter, size=stroke.shape)
            centred = pts - 0.5
            x = centred[:, 0] * sx + centred[:, 1] * shear
            y = centred[:, 1] * sy
            xr = x * cos_t - y * sin_t + 0.5 + tx
            yr = x * sin_t + y * cos_t + 0.5 + ty
            pts = np.stack([xr, yr], axis=1)
            segments.append(np.stack([pts[:-1], pts[1:]], axis=1))
        return np.concatenate(segments, axis=0)

    def _rasterize(
        self, segments: np.ndarray, generator: np.random.Generator
    ) -> np.ndarray:
        """Distance-field rasterisation with anti-aliased stroke edges."""
        style = self._style
        p = self._pixel_xy  # (P, 2)
        a = segments[:, 0]  # (S, 2)
        b = segments[:, 1]  # (S, 2)
        ab = b - a
        denom = np.einsum("sd,sd->s", ab, ab)
        denom[denom == 0.0] = 1e-12
        # Project every pixel onto every segment, clamped to [0, 1].
        ap = p[:, None, :] - a[None, :, :]  # (P, S, 2)
        t = np.clip(np.einsum("psd,sd->ps", ap, ab) / denom, 0.0, 1.0)
        closest = a[None, :, :] + t[:, :, None] * ab[None, :, :]
        dist = np.linalg.norm(p[:, None, :] - closest, axis=2).min(axis=1)  # (P,)

        thickness = generator.uniform(*style.thickness_range)
        # 1.0 inside the stroke core, linear falloff over `falloff` beyond it.
        ink = np.clip((thickness + style.falloff - dist) / style.falloff, 0.0, 1.0)
        h, w = style.image_shape
        return ink.reshape(h, w)

    def _postprocess(
        self, ink: np.ndarray, generator: np.random.Generator
    ) -> np.ndarray:
        """Intensity, noise, and speckle — then quantise to uint8."""
        style = self._style
        peak = generator.uniform(*style.intensity_range) * 255.0
        img = ink * peak
        sigma = generator.uniform(*style.noise_sigma_range)
        if sigma > 0.0:
            img = img + generator.normal(0.0, sigma, size=img.shape)
        if style.speckle_prob > 0.0:
            mask = generator.random(size=img.shape) < style.speckle_prob
            if mask.any():
                img[mask] += generator.uniform(
                    *style.speckle_range, size=int(mask.sum())
                )
        img[img < style.black_point] = 0.0
        return np.clip(img, 0.0, 255.0).astype(np.uint8)

    def __repr__(self) -> str:
        return f"SyntheticDigitGenerator(image_shape={self._style.image_shape})"
