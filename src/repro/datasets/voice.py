"""Synthetic VoiceHD-style feature dataset.

The paper cites VoiceHD (Imani et al., ICRC'17) — HDC speech
recognition over fixed-length acoustic feature vectors — as a flagship
HDC application.  Real ISOLET-style audio features are not available
offline, so this module synthesises the same *shape* of problem: each
class is a smooth spectral prototype (a random mixture of bumps over
the feature axis) and samples are prototypes plus correlated noise and
random gain, normalised to [0, 1].

The resulting records train a
:class:`~repro.hdc.encoders.record.RecordEncoder` classifier to high
accuracy, giving HDTest its third modality (after images and text)
for the Sec. V-E generality claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DatasetError
from repro.utils.rng import RngLike, ensure_rng, spawn
from repro.utils.validation import check_positive_int

__all__ = ["RecordDataset", "make_voice_dataset"]


@dataclass(frozen=True)
class RecordDataset:
    """Labelled fixed-length feature records in [0, 1].

    Attributes
    ----------
    records:
        ``(n, n_features)`` float64 array.
    labels:
        ``(n,)`` int64 class labels.
    """

    records: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        records = np.asarray(self.records, dtype=np.float64)
        if records.ndim != 2:
            raise DatasetError(f"records must be (n, F), got shape {records.shape}")
        if records.min() < 0.0 or records.max() > 1.0:
            raise DatasetError("record values must lie in [0, 1]")
        labels = np.asarray(self.labels, dtype=np.int64)
        if labels.shape != (records.shape[0],):
            raise DatasetError(
                f"labels shape {labels.shape} does not match {records.shape[0]} records"
            )
        object.__setattr__(self, "records", records)
        object.__setattr__(self, "labels", labels)

    def __len__(self) -> int:
        return self.records.shape[0]

    @property
    def n_features(self) -> int:
        return self.records.shape[1]

    @property
    def n_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self) else 0

    def split(self, fraction: float, *, rng: RngLike = None) -> tuple["RecordDataset", "RecordDataset"]:
        """Random split into (``fraction``, ``1-fraction``) parts."""
        if not 0.0 < fraction < 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1), got {fraction}")
        perm = ensure_rng(rng).permutation(len(self))
        cut = int(round(fraction * len(self)))
        first, second = perm[:cut], perm[cut:]
        return (
            RecordDataset(self.records[first], self.labels[first]),
            RecordDataset(self.records[second], self.labels[second]),
        )


def _prototype(n_features: int, generator: np.random.Generator) -> np.ndarray:
    """A smooth spectral prototype: a few Gaussian bumps over the axis."""
    axis = np.linspace(0.0, 1.0, n_features)
    n_bumps = int(generator.integers(2, 5))
    proto = np.zeros(n_features)
    for _ in range(n_bumps):
        centre = generator.uniform(0.1, 0.9)
        width = generator.uniform(0.03, 0.12)
        height = generator.uniform(0.4, 1.0)
        proto += height * np.exp(-0.5 * ((axis - centre) / width) ** 2)
    peak = proto.max()
    return proto / peak if peak > 0 else proto


def make_voice_dataset(
    n_per_class: int = 40,
    *,
    n_classes: int = 6,
    n_features: int = 64,
    noise_scale: float = 0.06,
    seed: int = 0,
    sample_seed: int | None = None,
) -> RecordDataset:
    """Generate a VoiceHD-shaped record dataset.

    Parameters
    ----------
    n_per_class:
        Samples per class.
    n_classes:
        Number of classes (each gets an independent prototype).
    n_features:
        Record length (VoiceHD's ISOLET uses 617; 64 keeps demos fast).
    noise_scale:
        Std-dev of the smoothed additive noise; larger = harder task.
    seed:
        Fixes the class prototypes (and, by default, the samples).
    sample_seed:
        When given, draws a fresh independent sample set **from the
        same prototypes** — how the CLI generates in-distribution
        fuzzing inputs without replaying the training records.
    """
    n_per_class = check_positive_int(n_per_class, "n_per_class")
    n_classes = check_positive_int(n_classes, "n_classes")
    n_features = check_positive_int(n_features, "n_features")
    if noise_scale < 0:
        raise ConfigurationError(f"noise_scale must be >= 0, got {noise_scale}")
    root = ensure_rng(seed)
    proto_rngs = spawn(root, n_classes)
    sample_rng = ensure_rng(root if sample_seed is None else sample_seed)

    records = np.empty((n_classes * n_per_class, n_features))
    labels = np.empty(n_classes * n_per_class, dtype=np.int64)
    row = 0
    for cls in range(n_classes):
        proto = _prototype(n_features, proto_rngs[cls])
        for _ in range(n_per_class):
            gain = sample_rng.uniform(0.85, 1.0)
            raw_noise = sample_rng.normal(0.0, noise_scale, size=n_features)
            # Neighbouring features co-vary (spectra are smooth): box-smooth.
            kernel = np.ones(5) / 5.0
            noise = np.convolve(raw_noise, kernel, mode="same")
            records[row] = np.clip(gain * proto + noise, 0.0, 1.0)
            labels[row] = cls
            row += 1
    perm = sample_rng.permutation(records.shape[0])
    return RecordDataset(records[perm], labels[perm])
