"""Reader/writer for the IDX binary format used by real MNIST.

If genuine MNIST files (``train-images-idx3-ubyte`` etc., optionally
gzipped) are placed on disk, :func:`repro.datasets.loaders.load_digits`
uses them instead of the synthetic generator — making the reproduction
bit-compatible with the paper's dataset when the files are available.

Format reference (LeCun et al.): big-endian magic ``0x00 0x00 <dtype>
<ndim>`` followed by ``ndim`` big-endian uint32 dimension sizes, then
row-major data.  Only the unsigned-byte dtype (0x08) used by MNIST is
required, but the common numeric dtypes are supported for completeness.
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import DatasetError

__all__ = ["read_idx", "write_idx", "MNIST_FILES"]

#: Standard MNIST file names (stem → (images, labels) pair membership).
MNIST_FILES = {
    "train_images": "train-images-idx3-ubyte",
    "train_labels": "train-labels-idx1-ubyte",
    "test_images": "t10k-images-idx3-ubyte",
    "test_labels": "t10k-labels-idx1-ubyte",
}

_DTYPE_CODES = {
    0x08: np.dtype(np.uint8),
    0x09: np.dtype(np.int8),
    0x0B: np.dtype(">i2"),
    0x0C: np.dtype(">i4"),
    0x0D: np.dtype(">f4"),
    0x0E: np.dtype(">f8"),
}
_CODE_FOR_KIND = {
    np.dtype(np.uint8): 0x08,
    np.dtype(np.int8): 0x09,
    np.dtype(np.int16): 0x0B,
    np.dtype(np.int32): 0x0C,
    np.dtype(np.float32): 0x0D,
    np.dtype(np.float64): 0x0E,
}


def _open_maybe_gzip(path: Path, mode: str):
    """Open *path*, transparently un-gzipping if the magic bytes say so."""
    if "r" in mode:
        with open(path, "rb") as handle:
            magic = handle.read(2)
        if magic == b"\x1f\x8b":
            return gzip.open(path, mode)
    elif path.suffix == ".gz":
        return gzip.open(path, mode)
    return open(path, mode)


def read_idx(path: Union[str, Path]) -> np.ndarray:
    """Read an IDX file (gzipped or plain) into a numpy array."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"IDX file not found: {path}")
    with _open_maybe_gzip(path, "rb") as handle:
        header = handle.read(4)
        if len(header) != 4 or header[0] != 0 or header[1] != 0:
            raise DatasetError(f"{path} is not an IDX file (bad magic {header!r})")
        dtype_code, ndim = header[2], header[3]
        dtype = _DTYPE_CODES.get(dtype_code)
        if dtype is None:
            raise DatasetError(f"{path}: unsupported IDX dtype code 0x{dtype_code:02x}")
        dims_raw = handle.read(4 * ndim)
        if len(dims_raw) != 4 * ndim:
            raise DatasetError(f"{path}: truncated IDX dimension header")
        dims = struct.unpack(f">{ndim}I", dims_raw)
        count = int(np.prod(dims)) if dims else 1
        payload = handle.read()
    expected = count * dtype.itemsize
    if len(payload) < expected:
        raise DatasetError(
            f"{path}: truncated IDX payload ({len(payload)} bytes, expected {expected})"
        )
    data = np.frombuffer(payload[:expected], dtype=dtype).reshape(dims)
    # Normalise to native byte order for downstream numpy code.
    return data.astype(data.dtype.newbyteorder("="), copy=False)


def write_idx(path: Union[str, Path], array: np.ndarray) -> None:
    """Write *array* as an IDX file (gzipped when *path* ends in .gz)."""
    path = Path(path)
    arr = np.ascontiguousarray(array)
    code = _CODE_FOR_KIND.get(np.dtype(arr.dtype.type))
    if code is None:
        raise DatasetError(f"dtype {arr.dtype} is not representable in IDX")
    if arr.ndim > 255:
        raise DatasetError("IDX supports at most 255 dimensions")
    header = bytes([0, 0, code, arr.ndim]) + struct.pack(
        f">{arr.ndim}I", *arr.shape
    )
    big_endian = arr.astype(arr.dtype.newbyteorder(">"), copy=False)
    with _open_maybe_gzip(path, "wb") as handle:
        handle.write(header)
        handle.write(big_endian.tobytes())
