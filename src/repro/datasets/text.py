"""Synthetic language-identification corpus.

Supports the second HDTest modality (Sec. V-E: "HDTest can be
naturally extended to other HDC model structures").  Each synthetic
"language" is a first-order Markov chain over the lower-case alphabet
with its own randomly-drawn but heavily-peaked transition structure, so
character n-gram statistics — exactly what
:class:`~repro.hdc.encoders.ngram.NgramEncoder` captures — separate the
classes, while single characters do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError, DatasetError
from repro.hdc.encoders.ngram import DEFAULT_ALPHABET
from repro.utils.rng import RngLike, ensure_rng, spawn
from repro.utils.validation import check_positive_int

__all__ = ["LanguageModel", "TextDataset", "make_language_dataset"]


@dataclass(frozen=True)
class TextDataset:
    """Labelled text samples.

    Attributes
    ----------
    texts:
        Tuple of strings.
    labels:
        ``(n,)`` int64 class labels, aligned with *texts*.
    language_names:
        Name per class index.
    """

    texts: tuple[str, ...]
    labels: np.ndarray
    language_names: tuple[str, ...]

    def __post_init__(self) -> None:
        labels = np.asarray(self.labels, dtype=np.int64)
        if labels.ndim != 1 or labels.shape[0] != len(self.texts):
            raise DatasetError(
                f"labels shape {labels.shape} does not match {len(self.texts)} texts"
            )
        object.__setattr__(self, "labels", labels)

    def __len__(self) -> int:
        return len(self.texts)

    @property
    def n_classes(self) -> int:
        return len(self.language_names)

    def split(self, fraction: float, *, rng: RngLike = None) -> tuple["TextDataset", "TextDataset"]:
        """Random split into (``fraction``, ``1-fraction``) parts."""
        if not 0.0 < fraction < 1.0:
            raise ConfigurationError(f"fraction must be in (0, 1), got {fraction}")
        perm = ensure_rng(rng).permutation(len(self))
        cut = int(round(fraction * len(self)))
        first, second = perm[:cut], perm[cut:]
        return (
            TextDataset(
                tuple(self.texts[i] for i in first), self.labels[first], self.language_names
            ),
            TextDataset(
                tuple(self.texts[i] for i in second), self.labels[second], self.language_names
            ),
        )


class LanguageModel:
    """A first-order Markov character model with a peaked transition matrix.

    Parameters
    ----------
    alphabet:
        Characters the model emits.
    concentration:
        Dirichlet concentration of each row of the transition matrix;
        *smaller* values make rows spikier, i.e. languages more
        distinctive.
    rng:
        Seed/generator fixing the language's identity.
    """

    def __init__(
        self,
        alphabet: str = DEFAULT_ALPHABET,
        *,
        concentration: float = 0.08,
        rng: RngLike = None,
    ) -> None:
        if len(alphabet) < 2:
            raise ConfigurationError("alphabet needs at least two characters")
        if concentration <= 0:
            raise ConfigurationError(f"concentration must be positive, got {concentration}")
        self._alphabet = alphabet
        generator = ensure_rng(rng)
        k = len(alphabet)
        self._initial = generator.dirichlet(np.full(k, 0.5))
        self._transitions = generator.dirichlet(np.full(k, concentration), size=k)

    @property
    def alphabet(self) -> str:
        return self._alphabet

    @property
    def transitions(self) -> np.ndarray:
        """Read-only ``(k, k)`` transition matrix."""
        view = self._transitions.view()
        view.flags.writeable = False
        return view

    def sample(self, length: int, *, rng: RngLike = None) -> str:
        """Draw one string of *length* characters."""
        length = check_positive_int(length, "length")
        generator = ensure_rng(rng)
        k = len(self._alphabet)
        out = np.empty(length, dtype=np.int64)
        out[0] = generator.choice(k, p=self._initial)
        for i in range(1, length):
            out[i] = generator.choice(k, p=self._transitions[out[i - 1]])
        return "".join(self._alphabet[i] for i in out)


def make_language_dataset(
    n_per_class: int = 50,
    *,
    n_languages: int = 4,
    length: int = 120,
    alphabet: str = DEFAULT_ALPHABET,
    seed: int = 0,
    sample_seed: int | None = None,
) -> TextDataset:
    """Generate a labelled corpus of ``n_languages`` synthetic languages.

    *seed* fixes the languages themselves (each class's Markov
    transition structure); *sample_seed*, when given, draws a fresh,
    independent set of strings **from those same languages** — how the
    CLI generates unlabeled fuzzing inputs that stay in the trained
    model's distribution without replaying the training corpus.
    """
    n_per_class = check_positive_int(n_per_class, "n_per_class")
    n_languages = check_positive_int(n_languages, "n_languages")
    root = ensure_rng(seed)
    model_rngs = spawn(root, n_languages)
    sample_rng = ensure_rng(root if sample_seed is None else sample_seed)
    texts: list[str] = []
    labels: list[int] = []
    for cls in range(n_languages):
        model = LanguageModel(alphabet, rng=model_rngs[cls])
        for _ in range(n_per_class):
            texts.append(model.sample(length, rng=sample_rng))
            labels.append(cls)
    names = tuple(f"lang-{chr(ord('a') + i)}" for i in range(n_languages))
    return TextDataset(tuple(texts), np.asarray(labels, dtype=np.int64), names)
