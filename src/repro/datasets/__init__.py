"""Datasets: synthetic MNIST substitute, real-MNIST IDX I/O, text corpus."""

from repro.datasets.idx import MNIST_FILES, read_idx, write_idx
from repro.datasets.loaders import Dataset, find_mnist_dir, load_digits, save_mnist_dir
from repro.datasets.synthetic_mnist import (
    DIGIT_NAMES,
    DigitStyle,
    SyntheticDigitGenerator,
    glyph_strokes,
)
from repro.datasets.text import LanguageModel, TextDataset, make_language_dataset
from repro.datasets.voice import RecordDataset, make_voice_dataset

__all__ = [
    "DIGIT_NAMES",
    "Dataset",
    "DigitStyle",
    "LanguageModel",
    "MNIST_FILES",
    "RecordDataset",
    "SyntheticDigitGenerator",
    "TextDataset",
    "make_voice_dataset",
    "find_mnist_dir",
    "glyph_strokes",
    "load_digits",
    "make_language_dataset",
    "read_idx",
    "save_mnist_dir",
    "write_idx",
]
