"""Baselines HDTest is compared against (random sampling, unguided modes)."""

from repro.baselines.random_attack import RandomAttackResult, random_attack

__all__ = ["RandomAttackResult", "random_attack"]
