"""Single-shot random-perturbation baseline.

HDTest's value proposition (Sec. I) is that *unguided* random input
generation "cover[s] more than a tiny fraction of all possible corner
cases" only by luck.  The most naive attacker makes that concrete:
sample a random perturbation inside the same L2 budget and hope the
prediction flips — no iterations, no seed survival, no guidance.

:func:`random_attack` implements that attacker so benches can quantify
how much the fuzzing loop actually buys.  With the paper's invisible
budgets the baseline's success rate collapses while HDTest stays near
100 % (``benchmarks/bench_baseline_random_attack.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.hdc.model import HDCClassifier
from repro.metrics.distances import normalized_l2
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import as_image_batch, check_positive_int

__all__ = ["RandomAttackResult", "random_attack"]


@dataclass(frozen=True)
class RandomAttackResult:
    """Outcome of a random-perturbation attack on a set of images.

    Attributes
    ----------
    n_inputs:
        Number of attacked images.
    n_success:
        Images for which at least one random sample flipped the label.
    attempts_per_input:
        Samples drawn per image.
    """

    n_inputs: int
    n_success: int
    attempts_per_input: int

    @property
    def success_rate(self) -> float:
        """Fraction of images flipped by at least one sample."""
        return self.n_success / self.n_inputs if self.n_inputs else float("nan")


def random_attack(
    model: HDCClassifier,
    images: Sequence[np.ndarray],
    *,
    max_l2: float = 1.0,
    attempts_per_input: int = 20,
    rng: RngLike = None,
) -> RandomAttackResult:
    """Attack each image with i.i.d. Gaussian noise scaled to the budget.

    Each attempt draws full-image Gaussian noise and rescales it to sit
    exactly at the ``max_l2`` boundary (the most perturbation the
    budget allows — the baseline's best case), clips to [0, 255], and
    checks the model.  This gives random sampling the same per-image
    query budget a short HDTest run would use.
    """
    if max_l2 <= 0:
        raise ConfigurationError(f"max_l2 must be positive, got {max_l2}")
    attempts_per_input = check_positive_int(attempts_per_input, "attempts_per_input")
    batch = as_image_batch(np.asarray(images, dtype=np.float64))
    generator = ensure_rng(rng)

    n_success = 0
    for image in batch:
        reference = model.predict_one(image)
        flipped = False
        for _ in range(attempts_per_input):
            noise = generator.normal(size=image.shape)
            norm = np.linalg.norm(noise)
            if norm == 0.0:
                continue
            # Scale so the *pre-clipping* perturbation has normalized
            # L2 exactly max_l2 (255 grey levels per unit).
            perturbed = np.clip(image + noise / norm * max_l2 * 255.0, 0.0, 255.0)
            if normalized_l2(image, perturbed) > max_l2 + 1e-9:
                continue  # cannot happen (clipping shrinks), kept as a guard
            if model.predict_one(perturbed) != reference:
                flipped = True
                break
        n_success += int(flipped)
    return RandomAttackResult(
        n_inputs=batch.shape[0],
        n_success=n_success,
        attempts_per_input=attempts_per_input,
    )
