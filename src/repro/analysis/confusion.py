"""Adversarial flip (confusion) analysis.

The paper repeatedly reasons about *which* classes flip into which:
Fig. 1's "8" becomes a "3"; Sec. V-C explains class "1"'s difficulty by
its visual dissimilarity from everything but "7", and class "9"'s ease
by its similarity to "8" and "3".  This module tabulates exactly those
flip patterns from a campaign: a reference-label × adversarial-label
matrix, the dominant flip per class, and the similarity structure of
the associative memory that explains them.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.analysis.tables import format_table
from repro.errors import ConfigurationError
from repro.fuzz.results import AdversarialExample, CampaignResult
from repro.hdc.associative_memory import AssociativeMemory
from repro.hdc.similarity import cosine_matrix

__all__ = [
    "flip_matrix",
    "dominant_flips",
    "flip_table",
    "class_confusability",
]


def _examples_of(results) -> list[AdversarialExample]:
    if isinstance(results, CampaignResult):
        return results.examples
    if isinstance(results, Mapping):
        return [e for r in results.values() for e in r.examples]
    return [e for r in results for e in r.examples]


def flip_matrix(results, n_classes: int = 10) -> np.ndarray:
    """Count matrix ``M[ref, adv]`` of adversarial label flips.

    Accepts a single campaign, a mapping of campaigns, or a sequence —
    examples are pooled.
    """
    if n_classes < 2:
        raise ConfigurationError(f"n_classes must be >= 2, got {n_classes}")
    matrix = np.zeros((n_classes, n_classes), dtype=np.int64)
    for example in _examples_of(results):
        ref, adv = example.reference_label, example.adversarial_label
        if not (0 <= ref < n_classes and 0 <= adv < n_classes):
            raise ConfigurationError(
                f"labels ({ref}, {adv}) out of range for {n_classes} classes"
            )
        matrix[ref, adv] += 1
    if np.trace(matrix) != 0:
        raise ConfigurationError("flip matrix has diagonal entries — not adversarial")
    return matrix


def dominant_flips(matrix: np.ndarray) -> dict[int, Optional[int]]:
    """Most common adversarial target per reference class (None if unseen)."""
    out: dict[int, Optional[int]] = {}
    for ref in range(matrix.shape[0]):
        row = matrix[ref]
        out[ref] = int(row.argmax()) if row.sum() > 0 else None
    return out


def flip_table(matrix: np.ndarray) -> str:
    """The flip matrix as a monospace table (rows = reference labels)."""
    n = matrix.shape[0]
    headers = ["ref\\adv"] + [str(c) for c in range(n)] + ["total"]
    rows = []
    for ref in range(n):
        rows.append([str(ref)] + [int(v) for v in matrix[ref]] + [int(matrix[ref].sum())])
    return format_table(headers, rows, title="Adversarial flips (reference → adversarial)")


def class_confusability(am: AssociativeMemory) -> np.ndarray:
    """Pairwise cosine similarity between the AM's class hypervectors.

    The paper's explanation of per-class difficulty is exactly this
    matrix: classes whose reference HVs sit close together flip into
    each other easily.  The diagonal is masked to NaN.
    """
    sims = cosine_matrix(am.class_hvs, am.class_hvs)
    np.fill_diagonal(sims, np.nan)
    return sims
