"""Plain-text table rendering — Table II and friends.

No plotting stack exists offline, so evaluation artifacts are emitted
as aligned monospace tables (and the figures as ASCII art /
``.pgm``/``.npz`` files, see :mod:`repro.analysis.figures`).
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.fuzz.results import CampaignResult

__all__ = ["format_table", "table2", "PAPER_TABLE2"]

#: The paper's Table II, for side-by-side reporting.
PAPER_TABLE2: dict[str, dict[str, float]] = {
    "gauss": {"l1": 2.91, "l2": 0.38, "iterations": 1.46, "time_per_1k": 173.0},
    "rand": {"l1": 0.58, "l2": 0.09, "iterations": 12.18, "time_per_1k": 228.3},
    "row_col_rand": {"l1": 9.45, "l2": 0.65, "iterations": 7.94, "time_per_1k": 114.2},
    "shift": {"l1": 10.19, "l2": 0.68, "iterations": 4.25, "time_per_1k": 88.4},
}


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if np.isnan(value):
            return "—"
        if value == 0 or 0.01 <= abs(value) < 10000:
            return f"{value:.2f}".rstrip("0").rstrip(".") if value % 1 else f"{value:g}"
        return f"{value:.3g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned monospace table with a header rule."""
    if not headers:
        raise ConfigurationError("headers is empty")
    str_rows = [[_format_cell(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
    widths = [
        max(len(str(headers[c])), *(len(r[c]) for r in str_rows)) if str_rows else len(str(headers[c]))
        for c in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def table2(
    results: Mapping[str, CampaignResult],
    *,
    include_paper: bool = True,
) -> str:
    """Render campaign results as the paper's Table II layout.

    One column per strategy; rows are normalized L1/L2, average fuzzing
    iterations, and (extrapolated) seconds per 1000 generated images.
    With ``include_paper=True`` each measured row is followed by the
    paper's reported row for side-by-side comparison.
    """
    if not results:
        raise ConfigurationError("results is empty")
    strategies = list(results)
    headers = ["Metric"] + strategies

    def measured(metric: str) -> list[Any]:
        values = []
        for name in strategies:
            r = results[name]
            values.append(
                {
                    "l1": r.avg_l1,
                    "l2": r.avg_l2,
                    "iterations": r.avg_iterations,
                    "time_per_1k": r.time_per_1k,
                    "success_rate": r.success_rate,
                }[metric]
            )
        return values

    def paper(metric: str) -> list[Any]:
        return [PAPER_TABLE2.get(name, {}).get(metric, float("nan")) for name in strategies]

    rows: list[list[Any]] = []
    for metric, label in (
        ("l1", "Avg. Norm. Dist. L1"),
        ("l2", "Avg. Norm. Dist. L2"),
        ("iterations", "Avg. #Iter."),
        ("time_per_1k", "Time Per-1K Gen. Img. (s)"),
    ):
        rows.append([label] + measured(metric))
        if include_paper:
            rows.append([f"  (paper)"] + paper(metric))
    rows.append(["Success rate"] + measured("success_rate"))
    return format_table(headers, rows, title="Table II — mutation strategy comparison")
