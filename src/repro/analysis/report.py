"""Markdown experiment-report emitters.

Builds the paper-vs-measured sections EXPERIMENTS.md records, from the
same objects the benches produce — so documentation and benchmarks can
never drift apart.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import numpy as np

from repro.analysis.per_class import PerClassSeries
from repro.analysis.tables import PAPER_TABLE2
from repro.defense.retrain import DefenseReport
from repro.errors import ConfigurationError
from repro.fuzz.results import CampaignResult

__all__ = ["markdown_table", "table2_markdown", "per_class_markdown", "defense_markdown"]


def markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavoured markdown table."""
    if not headers:
        raise ConfigurationError("headers is empty")

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return "—" if np.isnan(cell) else f"{cell:.3g}"
        return str(cell)

    lines = ["| " + " | ".join(str(h) for h in headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(f"row has {len(row)} cells for {len(headers)} headers")
        lines.append("| " + " | ".join(fmt(c) for c in row) + " |")
    return "\n".join(lines)


def table2_markdown(results: Mapping[str, CampaignResult]) -> str:
    """Table II paper-vs-measured as markdown."""
    headers = ["Strategy", "L1 (paper)", "L1 (ours)", "L2 (paper)", "L2 (ours)",
               "#Iter (paper)", "#Iter (ours)", "s/1K (paper)", "s/1K (ours)"]
    rows = []
    for name, result in results.items():
        paper = PAPER_TABLE2.get(name, {})
        rows.append(
            [
                name,
                paper.get("l1", float("nan")),
                result.avg_l1,
                paper.get("l2", float("nan")),
                result.avg_l2,
                paper.get("iterations", float("nan")),
                result.avg_iterations,
                paper.get("time_per_1k", float("nan")),
                result.time_per_1k,
            ]
        )
    return markdown_table(headers, rows)


def per_class_markdown(series: PerClassSeries) -> str:
    """Fig. 7 data as markdown."""
    headers = ["Class", "Avg L1", "Avg L2", "Avg #Iter"]
    return markdown_table(headers, series.as_rows())


def defense_markdown(report: DefenseReport) -> str:
    """Sec. V-D defense outcome as markdown."""
    headers = ["Metric", "Value"]
    summary = report.summary()
    rows = [[k, v] for k, v in summary.items()]
    return markdown_table(headers, rows)
