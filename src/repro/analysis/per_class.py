"""Per-class analysis (Sec. V-C, Fig. 7).

Fig. 7 plots, per digit class, the average normalized L1/L2 distance
and the average fuzzing iterations needed to generate an adversarial.
:func:`per_class_table` assembles that data from one or more campaign
results, and :func:`hardest_classes` ranks classes by iteration count —
the paper observes class "1" is drastically harder (all other digits
except "7" are visually dissimilar from "1") while "9" is easy (it
resembles "8" and "3").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.tables import format_table
from repro.errors import ConfigurationError
from repro.fuzz.results import CampaignResult

__all__ = ["PerClassSeries", "per_class_series", "per_class_table", "hardest_classes"]


@dataclass(frozen=True)
class PerClassSeries:
    """Fig. 7's three series over class indices 0..n_classes-1."""

    l1: np.ndarray
    l2: np.ndarray
    iterations: np.ndarray

    @property
    def n_classes(self) -> int:
        return self.l1.shape[0]

    def as_rows(self) -> list[list[float]]:
        """Rows ``[class, l1, l2, iterations]`` for table rendering."""
        return [
            [c, float(self.l1[c]), float(self.l2[c]), float(self.iterations[c])]
            for c in range(self.n_classes)
        ]


def per_class_series(
    results: CampaignResult | Sequence[CampaignResult] | Mapping[str, CampaignResult],
    n_classes: int = 10,
) -> PerClassSeries:
    """Pool one or more campaigns into Fig. 7's per-class series.

    When several campaigns are given (e.g. all four Table II
    strategies), outcomes are pooled before grouping, matching the
    figure's strategy-agnostic presentation.
    """
    if isinstance(results, CampaignResult):
        campaigns = [results]
    elif isinstance(results, Mapping):
        campaigns = list(results.values())
    else:
        campaigns = list(results)
    if not campaigns:
        raise ConfigurationError("no campaign results given")
    pooled = CampaignResult(
        strategy="pooled",
        outcomes=[o for c in campaigns for o in c.outcomes],
        elapsed_seconds=sum(c.elapsed_seconds for c in campaigns),
    )
    data = pooled.per_class(n_classes)
    return PerClassSeries(l1=data["l1"], l2=data["l2"], iterations=data["iterations"])


def per_class_table(series: PerClassSeries) -> str:
    """Fig. 7's data as a monospace table."""
    return format_table(
        ["Class", "Avg L1", "Avg L2", "Avg #Iter"],
        series.as_rows(),
        title="Fig. 7 — per-class distances and fuzzing iterations",
    )


def hardest_classes(series: PerClassSeries) -> list[int]:
    """Class indices sorted hardest-first (by average iterations).

    NaN classes (no outcomes) sort last.
    """
    iters = series.iterations
    order = np.argsort(np.where(np.isnan(iters), -np.inf, iters))[::-1]
    return [int(c) for c in order]
