"""Figure rendering without a plotting stack.

Reproduces the paper's qualitative figures as terminal/file artifacts:

* Figs. 1 and 4–6 (original image / mutated pixels / adversarial
  image triptychs) → ASCII art via :func:`ascii_image` /
  :func:`adversarial_triptych`, and portable grey-map files via
  :func:`save_pgm` for external viewers.
* Fig. 7 (per-class bars) → :func:`ascii_bar_chart`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.fuzz.results import AdversarialExample

__all__ = [
    "ascii_image",
    "diff_mask",
    "adversarial_triptych",
    "ascii_bar_chart",
    "save_pgm",
    "save_examples_npz",
]

#: Ten-step grey ramp used for ASCII rendering.
_RAMP = " .:-=+*#%@"


def ascii_image(image: np.ndarray, *, downsample: int = 1) -> str:
    """Render a grey-scale image as ASCII art (dark background).

    Parameters
    ----------
    downsample:
        Keep every *downsample*-th row/column (rows additionally halved
        because terminal cells are ~2× taller than wide).
    """
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 2:
        raise ConfigurationError(f"image must be 2-D, got shape {arr.shape}")
    if downsample < 1:
        raise ConfigurationError(f"downsample must be >= 1, got {downsample}")
    arr = arr[:: 2 * downsample, ::downsample]
    idx = np.clip((arr / 255.0 * (len(_RAMP) - 1)).round().astype(int), 0, len(_RAMP) - 1)
    return "\n".join("".join(_RAMP[i] for i in row) for row in idx)


def diff_mask(original: np.ndarray, mutated: np.ndarray, *, tol: float = 0.5) -> np.ndarray:
    """Binary image marking pixels changed by more than *tol* grey levels.

    This is the "(b) the pixels mutated" panel of Figs. 1 and 4–5.
    """
    a = np.asarray(original, dtype=np.float64)
    b = np.asarray(mutated, dtype=np.float64)
    if a.shape != b.shape:
        raise ConfigurationError(f"shape mismatch: {a.shape} vs {b.shape}")
    return (np.abs(b - a) > tol).astype(np.uint8) * 255


def adversarial_triptych(example: AdversarialExample) -> str:
    """Fig. 1-style panel: original | mutated pixels | adversarial.

    Renders the three images side by side with the reference and
    adversarial labels in the header.
    """
    original = np.asarray(example.original, dtype=np.float64)
    adversarial = np.asarray(example.adversarial, dtype=np.float64)
    panels = [
        (f"original → {example.reference_label}", ascii_image(original)),
        ("mutated pixels", ascii_image(diff_mask(original, adversarial))),
        (f"adversarial → {example.adversarial_label}", ascii_image(adversarial)),
    ]
    blocks = []
    width = original.shape[1]
    for caption, art in panels:
        lines = [caption.center(width)[:width].ljust(width)]
        lines += [line.ljust(width) for line in art.splitlines()]
        blocks.append(lines)
    height = max(len(b) for b in blocks)
    for b in blocks:
        b += [" " * width] * (height - len(b))
    return "\n".join(" | ".join(b[r] for b in blocks) for r in range(height))


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    title: Optional[str] = None,
    fmt: str = "{:.2f}",
) -> str:
    """Horizontal ASCII bar chart (used for the Fig. 7 series).

    NaN values render as empty bars labelled ``n/a``.
    """
    if len(labels) != len(values):
        raise ConfigurationError(f"{len(labels)} labels for {len(values)} values")
    if width < 1:
        raise ConfigurationError(f"width must be >= 1, got {width}")
    vals = np.asarray(values, dtype=np.float64)
    finite = vals[np.isfinite(vals)]
    vmax = float(finite.max()) if finite.size else 1.0
    vmax = vmax if vmax > 0 else 1.0
    label_w = max((len(str(l)) for l in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, vals):
        if np.isfinite(value):
            bar = "█" * max(1, int(round(value / vmax * width))) if value > 0 else ""
            lines.append(f"{str(label).rjust(label_w)} |{bar.ljust(width)} {fmt.format(value)}")
        else:
            lines.append(f"{str(label).rjust(label_w)} |{' ' * width} n/a")
    return "\n".join(lines)


def save_pgm(path: Union[str, Path], image: np.ndarray) -> None:
    """Write a grey-scale image as a binary PGM (P5) file.

    PGM needs no imaging library and opens in any viewer; the benches
    use it to persist the Figs. 1/4–6 sample images.
    """
    arr = np.asarray(image)
    if arr.ndim != 2:
        raise ConfigurationError(f"image must be 2-D, got shape {arr.shape}")
    arr = np.clip(arr, 0, 255).astype(np.uint8)
    header = f"P5\n{arr.shape[1]} {arr.shape[0]}\n255\n".encode("ascii")
    with open(Path(path), "wb") as handle:
        handle.write(header + arr.tobytes())


def save_examples_npz(path: Union[str, Path], examples: Sequence[AdversarialExample]) -> None:
    """Persist image adversarial examples (originals, adversarials, labels)."""
    if not examples:
        raise ConfigurationError("examples is empty")
    originals = np.stack([np.asarray(e.original) for e in examples])
    adversarials = np.stack([np.asarray(e.adversarial) for e in examples])
    np.savez_compressed(
        Path(path),
        originals=originals,
        adversarials=adversarials,
        reference_labels=np.asarray([e.reference_label for e in examples]),
        adversarial_labels=np.asarray([e.adversarial_label for e in examples]),
        iterations=np.asarray([e.iterations for e in examples]),
        strategies=np.asarray([e.strategy for e in examples]),
    )
