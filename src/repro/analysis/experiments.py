"""One-call experiment suite → markdown report.

:func:`run_experiment_suite` executes a scaled-down version of the
paper's whole evaluation — model accuracy, the Table II strategy
comparison, the Fig. 7 per-class series, the guided-vs-unguided
comparison, and the Sec. V-D defense — and renders a single markdown
report with measured values next to the paper's. The ``hdtest report``
CLI subcommand is a thin wrapper around it.

This intentionally reuses the exact same building blocks as the
benchmark harness (`compare_strategies`, `per_class_series`,
`run_defense`), so the report can never drift from what the benches
measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.per_class import PerClassSeries, per_class_series
from repro.analysis.report import (
    defense_markdown,
    markdown_table,
    per_class_markdown,
    table2_markdown,
)
from repro.defense.retrain import DefenseReport, run_defense
from repro.errors import ConfigurationError
from repro.fuzz.campaign import compare_strategies, generate_adversarial_set
from repro.fuzz.fuzzer import HDTest, HDTestConfig
from repro.fuzz.results import CampaignResult
from repro.hdc.model import HDCClassifier
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["ExperimentSuiteResult", "run_experiment_suite", "render_report"]

#: Paper values quoted in the report header.
_PAPER_CLAIMS = (
    ("model accuracy", "≈90 %"),
    ("guided vs unguided", "guided ≈12 % faster"),
    ("defense", "attack success drops >20 %"),
    ("throughput", "≈400 adversarial images/minute"),
)


@dataclass
class ExperimentSuiteResult:
    """Everything the report renders, as structured data."""

    accuracy: float
    table2: dict[str, CampaignResult]
    per_class: PerClassSeries
    guided: CampaignResult
    unguided: CampaignResult
    defense: DefenseReport
    images_per_minute: float

    @property
    def guided_speedup(self) -> float:
        """Relative iteration reduction from guidance (paper: ≈0.12)."""
        if self.unguided.avg_iterations == 0:
            return 0.0
        return 1.0 - self.guided.avg_iterations / self.unguided.avg_iterations


def run_experiment_suite(
    model: HDCClassifier,
    images: np.ndarray,
    labels: np.ndarray,
    *,
    n_fuzz: int = 20,
    n_adversarial: int = 60,
    rng: RngLike = None,
) -> ExperimentSuiteResult:
    """Run the scaled-down evaluation suite against *model*.

    Parameters
    ----------
    model:
        A trained classifier.
    images, labels:
        Labeled test pool; fuzzing uses the images unlabeled, the
        defense uses the labels as ground truth.
    n_fuzz:
        Inputs per strategy for the Table II comparison.
    n_adversarial:
        Adversarial-set size for the defense case study.
    """
    n_fuzz = check_positive_int(n_fuzz, "n_fuzz")
    n_adversarial = check_positive_int(n_adversarial, "n_adversarial")
    if len(images) < n_fuzz:
        raise ConfigurationError(f"need at least {n_fuzz} images, got {len(images)}")
    generator = ensure_rng(rng)
    pool = np.asarray(images, dtype=np.float64)

    accuracy = model.score(images, labels)

    table2 = compare_strategies(
        model,
        pool[:n_fuzz],
        ("gauss", "rand", "row_col_rand", "shift"),
        config=HDTestConfig(iter_times=60),
        rng=generator,
    )
    per_class = per_class_series(table2, n_classes=model.n_classes)

    guided = HDTest(
        model, "rand", config=HDTestConfig(iter_times=60, guided=True), rng=generator
    ).fuzz(pool[:n_fuzz])
    unguided = HDTest(
        model, "rand", config=HDTestConfig(iter_times=60, guided=False), rng=generator
    ).fuzz(pool[:n_fuzz])

    examples, elapsed = generate_adversarial_set(
        model,
        pool,
        n_adversarial,
        strategy="gauss",
        true_labels=labels,
        rng=generator,
    )
    defense, _ = run_defense(
        model,
        examples,
        epochs=5,
        clean_inputs=images,
        clean_labels=labels,
        rng=generator,
    )
    images_per_minute = len(examples) / elapsed * 60.0 if elapsed > 0 else float("nan")

    return ExperimentSuiteResult(
        accuracy=accuracy,
        table2=table2,
        per_class=per_class,
        guided=guided,
        unguided=unguided,
        defense=defense,
        images_per_minute=images_per_minute,
    )


def render_report(result: ExperimentSuiteResult) -> str:
    """Render the suite result as a self-contained markdown report."""
    lines = ["# HDTest experiment report", ""]
    lines.append("Paper claims under test:")
    for name, claim in _PAPER_CLAIMS:
        lines.append(f"- **{name}**: {claim}")
    lines.append("")

    lines.append("## Model accuracy (Sec. V-A)")
    lines.append("")
    lines.append(f"Measured test accuracy: **{result.accuracy:.3f}** (paper ≈0.90).")
    lines.append("")

    lines.append("## Table II — mutation strategies")
    lines.append("")
    lines.append(table2_markdown(result.table2))
    lines.append("")

    lines.append("## Fig. 7 — per-class analysis")
    lines.append("")
    lines.append(per_class_markdown(result.per_class))
    lines.append("")

    lines.append("## Guided vs unguided fuzzing (Sec. IV)")
    lines.append("")
    lines.append(
        markdown_table(
            ["Mode", "Avg #Iter", "Success rate"],
            [
                ["guided", result.guided.avg_iterations, result.guided.success_rate],
                ["unguided", result.unguided.avg_iterations, result.unguided.success_rate],
            ],
        )
    )
    lines.append("")
    lines.append(
        f"Guidance reduces iterations by **{result.guided_speedup:.0%}** "
        "(paper: ≈12 %)."
    )
    lines.append("")

    lines.append("## Defense case study (Sec. V-D)")
    lines.append("")
    lines.append(defense_markdown(result.defense))
    lines.append("")
    lines.append(
        f"Attack-rate drop: **{result.defense.rate_drop:.1%}** (paper: >20 %)."
    )
    lines.append("")

    lines.append("## Throughput")
    lines.append("")
    lines.append(
        f"Measured generation rate: **{result.images_per_minute:.0f} adversarial "
        "images/minute** (paper: ≈400/minute on a Ryzen 5 3600)."
    )
    lines.append("")
    return "\n".join(lines)
