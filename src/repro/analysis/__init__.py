"""Analysis and reporting: tables, per-class series, ASCII figures."""

from repro.analysis.confusion import (
    class_confusability,
    dominant_flips,
    flip_matrix,
    flip_table,
)
from repro.analysis.experiments import (
    ExperimentSuiteResult,
    render_report,
    run_experiment_suite,
)
from repro.analysis.figures import (
    adversarial_triptych,
    ascii_bar_chart,
    ascii_image,
    diff_mask,
    save_examples_npz,
    save_pgm,
)
from repro.analysis.per_class import (
    PerClassSeries,
    hardest_classes,
    per_class_series,
    per_class_table,
)
from repro.analysis.report import (
    defense_markdown,
    markdown_table,
    per_class_markdown,
    table2_markdown,
)
from repro.analysis.tables import PAPER_TABLE2, format_table, table2
from repro.analysis.vulnerability import (
    VulnerableCase,
    margin_iteration_correlation,
    rank_by_margin,
    vulnerable_cases,
)

__all__ = [
    "ExperimentSuiteResult",
    "PAPER_TABLE2",
    "PerClassSeries",
    "VulnerableCase",
    "adversarial_triptych",
    "ascii_bar_chart",
    "ascii_image",
    "class_confusability",
    "defense_markdown",
    "diff_mask",
    "dominant_flips",
    "flip_matrix",
    "flip_table",
    "format_table",
    "hardest_classes",
    "margin_iteration_correlation",
    "markdown_table",
    "per_class_markdown",
    "per_class_series",
    "per_class_table",
    "rank_by_margin",
    "render_report",
    "run_experiment_suite",
    "save_examples_npz",
    "save_pgm",
    "table2",
    "table2_markdown",
    "vulnerable_cases",
]
