"""Hypervector arithmetic (Sec. III-A of the paper).

The three HDC operations and the re-bipolarisation rule:

* :func:`bind` — element-wise multiplication ``⊛``.  Produces a vector
  (pseudo-)orthogonal to both operands; used to associate a pixel's
  position HV with its value HV.
* :func:`bundle` — element-wise addition ``⨁``.  Preserves similarity to
  each operand (≈50 % for two bipolar operands); used to superpose pixel
  HVs into an image HV and image HVs into class HVs.
* :func:`permute` — cyclic shift ``ρ``.  Produces a vector orthogonal to
  the operand while preserving pairwise structure; used by sequence
  encoders (n-grams).
* :func:`bipolarize` — Eq. 1: sign with random tie-breaking at zero.

All functions accept single hypervectors ``(D,)`` or batches
``(n, D)`` and broadcast like numpy.  XOR-style operations for binary
spaces are provided as :func:`bind_xor` / :func:`bundle_majority`; for
*bit-packed* binary hypervectors (uint64 words, 64 components each)
the word-level kernels live in :mod:`repro.hdc.backends.packed`
(:func:`bind_xor` itself is representation-agnostic — XOR on packed
words binds all 64 components at once).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import DimensionMismatchError
from repro.utils.rng import RngLike, ensure_rng

__all__ = [
    "bind",
    "bundle",
    "permute",
    "bipolarize",
    "invert",
    "bind_xor",
    "bundle_majority",
    "bundle_many",
]


def _check_broadcastable(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape[-1] != b.shape[-1]:
        raise DimensionMismatchError(
            f"operands have dimensions {a.shape[-1]} and {b.shape[-1]}"
        )


def bind(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise multiplication ``a ⊛ b`` (binding).

    For bipolar operands the result is bipolar, is (pseudo-)orthogonal
    to both operands, and ``bind(bind(a, b), b) == a`` — binding is its
    own inverse, which the record encoder exploits.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    _check_broadcastable(a, b)
    # Promote deliberately: int8 * int8 stays int8 (±1 never overflows).
    return a * b


def bundle(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Element-wise addition ``a ⨁ b`` (bundling / superposition).

    The result is an *accumulator* (not bipolar); callers re-quantise
    with :func:`bipolarize` when a bipolar HV is needed, exactly as the
    paper does after summing pixel HVs and after summing class HVs.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    _check_broadcastable(a, b)
    return a.astype(np.int64, copy=False) + b.astype(np.int64, copy=False)


def bundle_many(hvs: Sequence[np.ndarray] | np.ndarray) -> np.ndarray:
    """Sum a sequence (or stacked batch) of hypervectors into one accumulator."""
    arr = np.asarray(hvs)
    if arr.ndim == 1:
        return arr.astype(np.int64)
    if arr.ndim != 2:
        raise DimensionMismatchError(f"expected (n, D) stack, got shape {arr.shape}")
    return arr.sum(axis=0, dtype=np.int64)


def permute(hv: np.ndarray, shifts: int = 1) -> np.ndarray:
    """Cyclic shift ``ρ^shifts`` along the component axis.

    ``permute(permute(hv, k), -k) == hv`` for every ``k``; the shift
    amount may be negative or exceed the dimension (it wraps).
    """
    arr = np.asarray(hv)
    return np.roll(arr, shifts, axis=-1)


def bipolarize(hv: np.ndarray, *, rng: RngLike = None) -> np.ndarray:
    """Quantise an accumulator back onto {-1, +1} (Eq. 1 in the paper).

    Components below zero map to -1, above zero to +1, and exact zeros
    are resolved by an independent fair coin flip, as the paper's
    ``RandomSelect(1, -1)`` specifies.  Passing a seeded *rng* makes the
    tie-breaking reproducible.
    """
    arr = np.asarray(hv)
    out = np.sign(arr).astype(np.int8)
    zeros = out == 0
    if zeros.any():
        generator = ensure_rng(rng)
        flips = generator.integers(0, 2, size=int(zeros.sum()), dtype=np.int8) * 2 - 1
        out[zeros] = flips
    return out


def invert(hv: np.ndarray) -> np.ndarray:
    """Multiplicative inverse under :func:`bind` for bipolar HVs.

    Bipolar binding is self-inverse, so the inverse of a bipolar HV is
    itself; this exists so generic code can stay alphabet-agnostic.
    """
    return np.asarray(hv)


def bind_xor(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """XOR binding for dense-binary ({0, 1}) hypervectors."""
    a = np.asarray(a)
    b = np.asarray(b)
    _check_broadcastable(a, b)
    return np.bitwise_xor(a, b)


def bundle_majority(
    hvs: Sequence[np.ndarray] | np.ndarray, *, rng: RngLike = None
) -> np.ndarray:
    """Majority-vote bundling for dense-binary hypervectors.

    Ties (possible for an even number of operands) are broken by a fair
    coin flip, mirroring Eq. 1's treatment of zero sums.
    """
    arr = np.asarray(hvs)
    if arr.ndim == 1:
        return arr.astype(np.int8)
    if arr.ndim != 2:
        raise DimensionMismatchError(f"expected (n, D) stack, got shape {arr.shape}")
    n = arr.shape[0]
    counts = arr.sum(axis=0, dtype=np.int64)
    out = np.where(counts * 2 > n, 1, 0).astype(np.int8)
    ties = counts * 2 == n
    if ties.any():
        generator = ensure_rng(rng)
        out[ties] = generator.integers(0, 2, size=int(ties.sum()), dtype=np.int8)
    return out
