"""High-level HDC classifier: encoder + associative memory (Sec. III).

:class:`HDCClassifier` is the object placed under test by HDTest.  It
wires any :class:`~repro.hdc.encoders.base.Encoder` to an
:class:`~repro.hdc.associative_memory.AssociativeMemory` and exposes the
grey-box surface the fuzzer relies on (Sec. IV):

* :meth:`predict` — the differential oracle's reference and query labels;
* :meth:`encode` / :meth:`encode_batch` — query HVs for fitness;
* :meth:`reference_hv` — ``AM[y]`` for the distance-guided fitness.

It also implements the two training modes the paper uses: single-pass
accumulation (Sec. III-B) and retraining on new labelled data
(Sec. V-D's defense, "updating the reference HVs").
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, NotTrainedError
from repro.hdc.associative_memory import AssociativeMemory
from repro.hdc.encoders.base import Encoder
from repro.hdc.encoders.image import PixelEncoder
from repro.hdc.item_memory import memory_from_payload, memory_payload
from repro.utils.rng import RngLike
from repro.utils.validation import check_labels, check_positive_int

__all__ = ["HDCClassifier"]


class HDCClassifier:
    """An HDC classifier with the paper's train / test / retrain phases.

    Parameters
    ----------
    encoder:
        Any encoder mapping raw inputs to bipolar hypervectors.
    n_classes:
        Number of output classes.
    bipolar_am:
        Whether the associative memory bipolarises its class HVs before
        querying (the paper does; ``False`` is an ablation).

    Examples
    --------
    >>> from repro.hdc import PixelEncoder, HDCClassifier
    >>> from repro.datasets import load_digits
    >>> train, test = load_digits(n_train=200, n_test=50, seed=7)
    >>> enc = PixelEncoder(dimension=2048, rng=7)
    >>> model = HDCClassifier(enc, n_classes=10).fit(train.images, train.labels)
    >>> float(model.score(test.images, test.labels)) > 0.5
    True
    """

    def __init__(
        self,
        encoder: Encoder,
        n_classes: int,
        *,
        bipolar_am: bool = True,
    ) -> None:
        if not isinstance(encoder, Encoder):
            raise ConfigurationError(
                f"encoder must be an Encoder, got {type(encoder).__name__}"
            )
        self._encoder = encoder
        self._n_classes = check_positive_int(n_classes, "n_classes")
        self._am = AssociativeMemory(self._n_classes, encoder.dimension, bipolar=bipolar_am)

    # -- introspection ---------------------------------------------------
    @property
    def encoder(self) -> Encoder:
        """The input encoder (grey-box access point for the fuzzer)."""
        return self._encoder

    @property
    def associative_memory(self) -> AssociativeMemory:
        """The trained associative memory."""
        return self._am

    @property
    def n_classes(self) -> int:
        """Number of output classes."""
        return self._n_classes

    @property
    def dimension(self) -> int:
        """Hypervector dimensionality."""
        return self._encoder.dimension

    @property
    def is_trained(self) -> bool:
        """True once every class has at least one training example."""
        return self._am.is_trained

    # -- encoding passthrough ----------------------------------------------
    def encode(self, item: Any) -> np.ndarray:
        """Encode one raw input into its query hypervector."""
        return self._encoder.encode(item)

    def encode_batch(self, items: Sequence[Any]) -> np.ndarray:
        """Encode a batch of raw inputs into ``(n, D)`` query HVs."""
        return self._encoder.encode_batch(items)

    # -- training ----------------------------------------------------------
    def fit(self, inputs: Sequence[Any], labels) -> "HDCClassifier":
        """Single-epoch accumulation training (Sec. III-B).

        Each input's HV is added into its class accumulator; the AM
        bipolarises lazily on first query.  Returns ``self`` so
        construction and training chain.
        """
        hvs = self._encoder.encode_batch(inputs)
        labels_arr = check_labels(labels, hvs.shape[0])
        self._am.add(hvs, labels_arr)
        return self

    def fit_adaptive(
        self,
        inputs: Sequence[Any],
        labels,
        *,
        epochs: int = 10,
        patience: int = 3,
    ) -> list[float]:
        """One-shot fit followed by adaptive (perceptron-style) epochs.

        The paper's Discussion points at the HDC retraining literature
        (its ref. [32]) as the route to higher accuracy than one-shot
        accumulation.  This trains exactly that way: a Sec. III-B
        accumulation pass, then up to *epochs* passes where each
        misclassified example's HV is added to its true class and
        subtracted from the predicted one.  Stops early when training
        accuracy hasn't improved for *patience* epochs.

        Returns
        -------
        list[float]
            Training accuracy after the initial pass and after each
            adaptive epoch (the training history).
        """
        epochs = check_positive_int(epochs, "epochs")
        patience = check_positive_int(patience, "patience")
        hvs = self._encoder.encode_batch(inputs)
        labels_arr = check_labels(labels, hvs.shape[0])
        if labels_arr.size and labels_arr.max() >= self._n_classes:
            raise ConfigurationError(
                f"label {labels_arr.max()} out of range for {self._n_classes} classes"
            )
        self._am.add(hvs, labels_arr)
        history = [float(np.mean(self._am.predict(hvs) == labels_arr))]
        best = history[0]
        stale = 0
        for _ in range(epochs):
            predictions = self._am.predict(hvs)
            wrong = predictions != labels_arr
            if not wrong.any():
                break
            self._am.add(hvs[wrong], labels_arr[wrong])
            self._am.subtract(hvs[wrong], predictions[wrong])
            accuracy = float(np.mean(self._am.predict(hvs) == labels_arr))
            history.append(accuracy)
            if accuracy > best + 1e-12:
                best = accuracy
                stale = 0
            else:
                stale += 1
                if stale >= patience:
                    break
        return history

    def retrain(
        self,
        inputs: Sequence[Any],
        labels,
        *,
        mode: str = "adaptive",
        epochs: int = 1,
    ) -> "HDCClassifier":
        """Update the reference HVs with new labelled data (Sec. V-D).

        Parameters
        ----------
        mode:
            ``"additive"`` simply accumulates the new HVs into their
            correct classes (one more epoch of Sec. III-B training).
            ``"adaptive"`` (default) is the perceptron-style HDC update
            the retraining literature the paper cites uses: only
            *misclassified* inputs update the memory — their HV is added
            to the true class and subtracted from the wrongly-predicted
            class.
        epochs:
            Number of passes over the new data (adaptive mode converges
            in a few).
        """
        if mode not in ("additive", "adaptive"):
            raise ConfigurationError(f"mode must be 'additive' or 'adaptive', got {mode!r}")
        epochs = check_positive_int(epochs, "epochs")
        hvs = self._encoder.encode_batch(inputs)
        labels_arr = check_labels(labels, hvs.shape[0])
        if labels_arr.size and labels_arr.max() >= self._n_classes:
            raise ConfigurationError(
                f"label {labels_arr.max()} out of range for {self._n_classes} classes"
            )
        if mode == "additive":
            self._am.add(hvs, labels_arr)
            return self
        for _ in range(epochs):
            predictions = self._am.predict(hvs)
            wrong = predictions != labels_arr
            if not wrong.any():
                break
            self._am.add(hvs[wrong], labels_arr[wrong])
            self._am.subtract(hvs[wrong], predictions[wrong])
        return self

    # -- inference -----------------------------------------------------
    def predict(self, inputs: Sequence[Any]) -> np.ndarray:
        """Predicted class per raw input → ``(n,)`` int64."""
        return self._am.predict(self._encoder.encode_batch(inputs))

    def predict_one(self, item: Any) -> int:
        """Predicted class for a single raw input."""
        return int(self._am.predict(self._encoder.encode(item)[None])[0])

    def predict_hv(self, hvs: np.ndarray) -> np.ndarray:
        """Predicted classes for already-encoded query HVs."""
        return self._am.predict(hvs)

    def similarities(self, inputs: Sequence[Any]) -> np.ndarray:
        """Cosine similarities of each input to every class → ``(n, C)``."""
        return self._am.similarities(self._encoder.encode_batch(inputs))

    def margins(self, inputs: Sequence[Any]) -> np.ndarray:
        """Top-1 − top-2 similarity per input (vulnerability proxy)."""
        return self._am.margins(self._encoder.encode_batch(inputs))

    def score(self, inputs: Sequence[Any], labels) -> float:
        """Classification accuracy on labelled data (Sec. III-C)."""
        predictions = self.predict(inputs)
        labels_arr = check_labels(labels, predictions.shape[0])
        return float(np.mean(predictions == labels_arr))

    def reference_hv(self, label: int) -> np.ndarray:
        """``AM[label]`` — the reference vector used by guided fitness."""
        return self._am.reference_hv(label)

    def copy(self) -> "HDCClassifier":
        """Clone sharing the encoder but with an independent AM.

        The defense retrains a copy so before/after attack rates can be
        measured against the same frozen baseline.
        """
        clone = HDCClassifier(self._encoder, self._n_classes, bipolar_am=self._am.bipolar)
        clone._am = self._am.copy()
        return clone

    # -- persistence ---------------------------------------------------
    def save_payload(self) -> dict:
        """The ``.npz`` key/value payload :meth:`save` writes.

        Exposed separately so wrappers that persist *extra* arrays next
        to one model — a shared-codebook ensemble storing K associative
        memories around a single codebook — can extend the payload
        rather than duplicate the serialisation logic.
        """
        from repro.hdc.encoders.ngram import NgramEncoder
        from repro.hdc.encoders.record import RecordEncoder

        enc = self._encoder
        state = self._am.state_dict()
        am_fields = dict(
            am_accumulators=state["accumulators"],
            am_counts=state["counts"],
            am_bipolar=state["bipolar"],
            n_classes=np.asarray(self._n_classes),
        )
        if isinstance(enc, PixelEncoder):
            return dict(
                kind=np.asarray("pixel-hdc"),
                codebook=np.asarray(enc.codebook),
                shape=np.asarray(enc.shape),
                levels=np.asarray(enc.levels),
                dimension=np.asarray(enc.dimension),
                **memory_payload("position", enc.position_memory),
                **memory_payload("value", enc.value_memory),
                **am_fields,
            )
        if isinstance(enc, NgramEncoder):
            return dict(
                kind=np.asarray("ngram-hdc"),
                codebook=np.asarray(enc.codebook),
                n=np.asarray(enc.n),
                alphabet=np.asarray(enc.alphabet),
                unknown_policy=np.asarray(enc.unknown_policy),
                dimension=np.asarray(enc.dimension),
                **memory_payload("item", enc.item_memory),
                **am_fields,
            )
        if isinstance(enc, RecordEncoder):
            from repro.hdc.item_memory import LevelMemory

            level_encoding = (
                "linear" if isinstance(enc.value_memory, LevelMemory) else "random"
            )
            return dict(
                kind=np.asarray("record-hdc"),
                codebook=np.asarray(enc.codebook),
                n_features=np.asarray(enc.n_features),
                levels=np.asarray(enc.levels),
                value_range=np.asarray(enc.value_range),
                level_encoding=np.asarray(level_encoding),
                dimension=np.asarray(enc.dimension),
                **memory_payload("id", enc.id_memory),
                **memory_payload("value", enc.value_memory),
                **am_fields,
            )
        raise ConfigurationError(
            f"save() supports PixelEncoder, NgramEncoder and RecordEncoder "
            f"models, not {type(enc).__name__}"
        )

    def save(self, path: Union[str, Path]) -> None:
        """Serialise model (codebooks + AM) to a ``.npz`` file.

        Three encoder families are serialisable — the pixel encoder
        (kind ``pixel-hdc``), the character n-gram encoder
        (``ngram-hdc``), and the record encoder (``record-hdc``) — so
        every fuzzing domain's model round-trips through the CLI.
        Other encoders raise :class:`~repro.errors.ConfigurationError`.
        Rematerialized codebooks persist as their 64-bit PRF seeds only
        (``codebook`` tag + ``<name>_seed`` keys); stored-codebook files
        from before the tag existed keep loading.
        """
        np.savez_compressed(Path(path), **self.save_payload())

    @staticmethod
    def _load_pixel_encoder(data) -> "PixelEncoder":
        from repro.hdc.spaces import BipolarSpace

        encoder = PixelEncoder.__new__(PixelEncoder)
        # Rebuild the encoder around the stored codebooks without
        # re-drawing randomness.  Rematerialized payloads store only
        # PRF seeds (<name>_seed keys); memory_from_payload dispatches,
        # so pre-codebook-tag files keep loading unchanged.
        encoder._shape = tuple(int(v) for v in data["shape"])  # noqa: SLF001
        encoder._levels = int(data["levels"])
        encoder._space = BipolarSpace(int(data["dimension"]))
        encoder._sparse_background = True
        n_pixels = encoder._shape[0] * encoder._shape[1]
        encoder._position_memory = memory_from_payload(
            "position", data, n_pixels, encoder._space
        )
        encoder._value_memory = memory_from_payload(
            "value", data, encoder._levels, encoder._space
        )
        encoder._position_sum = encoder._position_memory.vectors.sum(
            axis=0, dtype=np.int64
        )
        return encoder

    @staticmethod
    def _load_ngram_encoder(data):
        from repro.hdc.encoders.ngram import NgramEncoder
        from repro.hdc.spaces import BipolarSpace

        encoder = NgramEncoder.__new__(NgramEncoder)
        alphabet = str(data["alphabet"])
        encoder._n = int(data["n"])  # noqa: SLF001 - controlled reconstruction
        encoder._alphabet = alphabet
        encoder._char_to_idx = {ch: i for i, ch in enumerate(alphabet)}
        encoder._unknown_policy = str(data["unknown_policy"])
        encoder._space = BipolarSpace(int(data["dimension"]))
        encoder._item_memory = memory_from_payload(
            "item", data, len(alphabet), encoder._space
        )
        encoder._build_shifted()
        return encoder

    @staticmethod
    def _load_record_encoder(data):
        from repro.hdc.encoders.record import RecordEncoder
        from repro.hdc.item_memory import LevelMemory
        from repro.hdc.spaces import BipolarSpace

        encoder = RecordEncoder.__new__(RecordEncoder)
        encoder._n_features = int(data["n_features"])  # noqa: SLF001
        encoder._levels = int(data["levels"])
        encoder._value_range = tuple(float(v) for v in data["value_range"])
        encoder._level_encoding = str(data["level_encoding"])
        encoder._space = BipolarSpace(int(data["dimension"]))
        encoder._id_memory = memory_from_payload(
            "id", data, encoder._n_features, encoder._space
        )
        if encoder._level_encoding == "linear" and "value_vectors" in data:
            encoder._value_memory = LevelMemory.from_vectors(
                data["value_vectors"], encoder._space
            )
        else:
            encoder._value_memory = memory_from_payload(
                "value", data, encoder._levels, encoder._space
            )
        return encoder

    @classmethod
    def load(cls, path: Union[str, Path]) -> "HDCClassifier":
        """Inverse of :meth:`save`, dispatching on the stored ``kind`` tag."""
        loaders = {
            "pixel-hdc": cls._load_pixel_encoder,
            "ngram-hdc": cls._load_ngram_encoder,
            "record-hdc": cls._load_record_encoder,
        }
        with np.load(Path(path), allow_pickle=False) as data:
            kind = str(data["kind"])
            if kind not in loaders:
                raise ConfigurationError(f"unsupported model kind {kind!r}")
            encoder = loaders[kind](data)
            model = cls(encoder, int(data["n_classes"]), bipolar_am=bool(data["am_bipolar"]))
            model._am = AssociativeMemory.from_state_dict(
                {
                    "accumulators": data["am_accumulators"],
                    "counts": data["am_counts"],
                    "bipolar": data["am_bipolar"],
                }
            )
        return model

    def __repr__(self) -> str:
        return (
            f"HDCClassifier(encoder={self._encoder!r}, n_classes={self._n_classes}, "
            f"trained={self.is_trained})"
        )
