"""Hypervector spaces.

A *space* fixes the dimensionality and element alphabet of hypervectors
and provides random generation.  The paper (Sec. III-A) uses bipolar
hypervectors — i.i.d. elements drawn uniformly from {-1, +1} — which
:class:`BipolarSpace` implements.  :class:`BinarySpace` ({0, 1} with XOR
binding) is provided because much of the HDC literature the paper builds
on (Rahimi et al.) uses dense binary HVs; it lets users port those
models onto HDTest unchanged.

Hypervectors are plain :class:`numpy.ndarray` rows (int8 for the
alphabets, wider ints for accumulators); there is intentionally no
wrapper class, so all of numpy composes directly.

Both alphabets also have bit-packed forms —
:class:`~repro.hdc.backends.binary.PackedBinarySpace` and
:class:`~repro.hdc.backends.bipolar.PackedBipolarSpace`, 64 components
(or sign bits) per uint64 word — re-exported here for discoverability
(lazily, since :mod:`repro.hdc.backends` builds on this module).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "Space",
    "BipolarSpace",
    "BinarySpace",
    "PackedBinarySpace",
    "PackedBipolarSpace",
    "DEFAULT_DIMENSION",
]


def __getattr__(name: str):
    """Lazy re-export of the packed spaces (avoids a circular import)."""
    if name == "PackedBinarySpace":
        from repro.hdc.backends.binary import PackedBinarySpace

        return PackedBinarySpace
    if name == "PackedBipolarSpace":
        from repro.hdc.backends.bipolar import PackedBipolarSpace

        return PackedBipolarSpace
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

#: Dimension used throughout the paper's experiments.
DEFAULT_DIMENSION = 10_000


class Space:
    """Base class for hypervector spaces.

    Parameters
    ----------
    dimension:
        Number of components per hypervector (``D`` in the paper).
    """

    #: Values a quantised hypervector component may take.
    alphabet: tuple[int, ...] = ()

    def __init__(self, dimension: int = DEFAULT_DIMENSION) -> None:
        self._dimension = check_positive_int(dimension, "dimension")

    @property
    def dimension(self) -> int:
        """Number of components per hypervector."""
        return self._dimension

    # -- generation ----------------------------------------------------
    def random(self, n: Optional[int] = None, *, rng: RngLike = None) -> np.ndarray:
        """Draw ``n`` i.i.d. random hypervectors (or one if ``n`` is None).

        Returns an int8 array of shape ``(dimension,)`` or
        ``(n, dimension)``.
        """
        raise NotImplementedError

    # -- structure checks ----------------------------------------------
    def check_member(self, hv: np.ndarray, *, name: str = "hv") -> np.ndarray:
        """Validate that *hv* (a vector or batch) belongs to this space."""
        arr = np.asarray(hv)
        if arr.ndim not in (1, 2):
            raise DimensionMismatchError(f"{name} must be 1-D or 2-D, got ndim={arr.ndim}")
        if arr.shape[-1] != self._dimension:
            raise DimensionMismatchError(
                f"{name} has dimension {arr.shape[-1]}, expected {self._dimension}"
            )
        if self.alphabet and not np.isin(arr, self.alphabet).all():
            raise ConfigurationError(
                f"{name} contains values outside the {type(self).__name__} "
                f"alphabet {self.alphabet}"
            )
        return arr

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._dimension == other._dimension  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._dimension))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(dimension={self._dimension})"


class BipolarSpace(Space):
    """Hypervectors with i.i.d. components uniform over {-1, +1}.

    This is the space the paper uses: multiplication (Hadamard product)
    binds, element-wise addition bundles, and cyclic shift permutes.
    """

    alphabet = (-1, 1)

    def random(self, n: Optional[int] = None, *, rng: RngLike = None) -> np.ndarray:
        generator = ensure_rng(rng)
        size = (self._dimension,) if n is None else (check_positive_int(n, "n"), self._dimension)
        # 2 * Bernoulli(0.5) - 1 gives exactly i.i.d. uniform {-1, +1}.
        return (generator.integers(0, 2, size=size, dtype=np.int8) * 2 - 1).astype(np.int8)


class BinarySpace(Space):
    """Hypervectors with i.i.d. components uniform over {0, 1}.

    Binding is XOR and bundling is majority vote; provided for
    compatibility with dense-binary HDC models (e.g. Rahimi et al.,
    ISLPED'16) so they can be put under HDTest too.
    """

    alphabet = (0, 1)

    def random(self, n: Optional[int] = None, *, rng: RngLike = None) -> np.ndarray:
        generator = ensure_rng(rng)
        size = (self._dimension,) if n is None else (check_positive_int(n, "n"), self._dimension)
        return generator.integers(0, 2, size=size, dtype=np.int8)
