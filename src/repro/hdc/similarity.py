"""Similarity measures between hypervectors.

The paper's model predicts with cosine similarity (Sec. III-C) and the
fuzzer's fitness is ``1 - cosine`` (Sec. IV), so :func:`cosine` and its
batched form :func:`cosine_matrix` are the hot paths.  Hamming and dot
similarities are included for binary models and diagnostics.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionMismatchError

__all__ = [
    "cosine",
    "cosine_matrix",
    "dot",
    "hamming_similarity",
    "hamming_distance",
]


def _as_2d(x: np.ndarray) -> tuple[np.ndarray, bool]:
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim == 1:
        return arr[None, :], True
    if arr.ndim == 2:
        return arr, False
    raise DimensionMismatchError(f"expected 1-D or 2-D array, got ndim={arr.ndim}")


def cosine(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two hypervectors.

    ``Cosim(a, b) = a·b / (||a|| ||b||)`` — Sec. III-C.  A zero vector
    has similarity 0 to everything (rather than NaN), which keeps the
    fuzzer's fitness finite for degenerate seeds (e.g. an all-black
    image whose accumulator could be tiny).
    """
    av = np.asarray(a, dtype=np.float64).ravel()
    bv = np.asarray(b, dtype=np.float64).ravel()
    if av.shape != bv.shape:
        raise DimensionMismatchError(f"shapes {av.shape} and {bv.shape} differ")
    na = np.linalg.norm(av)
    nb = np.linalg.norm(bv)
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(av @ bv / (na * nb))


def cosine_matrix(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities.

    Parameters
    ----------
    queries:
        ``(n, D)`` (or ``(D,)``) query hypervectors.
    references:
        ``(m, D)`` (or ``(D,)``) reference hypervectors (e.g. the
        associative memory's class HVs).

    Returns
    -------
    numpy.ndarray
        ``(n, m)`` float64 matrix; rows for queries, columns for
        references.  Zero-norm rows/columns produce zero similarity.
    """
    q, _ = _as_2d(queries)
    r, _ = _as_2d(references)
    if q.shape[1] != r.shape[1]:
        raise DimensionMismatchError(
            f"queries have dimension {q.shape[1]}, references {r.shape[1]}"
        )
    qn = np.linalg.norm(q, axis=1)
    rn = np.linalg.norm(r, axis=1)
    denom = np.outer(qn, rn)
    sims = q @ r.T
    np.divide(sims, denom, out=sims, where=denom > 0)
    sims[denom == 0] = 0.0
    return sims


def dot(a: np.ndarray, b: np.ndarray) -> float:
    """Raw inner product (useful for integer accumulators)."""
    av = np.asarray(a, dtype=np.float64).ravel()
    bv = np.asarray(b, dtype=np.float64).ravel()
    if av.shape != bv.shape:
        raise DimensionMismatchError(f"shapes {av.shape} and {bv.shape} differ")
    return float(av @ bv)


def hamming_distance(a: np.ndarray, b: np.ndarray) -> float:
    """Normalised Hamming distance: fraction of differing components."""
    av = np.asarray(a).ravel()
    bv = np.asarray(b).ravel()
    if av.shape != bv.shape:
        raise DimensionMismatchError(f"shapes {av.shape} and {bv.shape} differ")
    return float(np.mean(av != bv))


def hamming_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """``1 - hamming_distance`` — fraction of matching components."""
    return 1.0 - hamming_distance(a, b)
