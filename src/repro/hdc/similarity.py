"""Similarity measures between hypervectors.

The paper's model predicts with cosine similarity (Sec. III-C) and the
fuzzer's fitness is ``1 - cosine`` (Sec. IV), so :func:`cosine` and its
batched form :func:`cosine_matrix` are the hot paths.  Hamming and dot
similarities are included for binary models and diagnostics.

:func:`hamming_distance` / :func:`hamming_similarity` accept both
single hypervectors ``(D,)`` (→ float) and row-aligned batches
``(n, D)`` (→ ``(n,)``).  For *bit-packed* uint64 hypervectors the
equivalent kernels live in :mod:`repro.hdc.backends.packed`
(``hamming_distance_packed`` et al.) — results are bit-identical for
equal bits, which the test suite pins across both representations.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DimensionMismatchError

__all__ = [
    "cosine",
    "cosine_matrix",
    "dot",
    "hamming_similarity",
    "hamming_distance",
]


def _as_2d(x: np.ndarray) -> tuple[np.ndarray, bool]:
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim == 1:
        return arr[None, :], True
    if arr.ndim == 2:
        return arr, False
    raise DimensionMismatchError(f"expected 1-D or 2-D array, got ndim={arr.ndim}")


def _row_norms(original: np.ndarray, cast: np.ndarray) -> np.ndarray:
    """Row 2-norms of *cast*, skipping the squared float copy when exact.

    For int8/int16 rows every partial sum of squares is an exact
    integer below 2**53 (int16 needs D ≤ 8e6), so an int64 einsum and
    ``np.linalg.norm`` on the float64 cast see the *same* integer and
    take the same square root — bit-identical, without materialising
    the ``(n, D)`` float64 squares.  This is the hot norm in
    :func:`cosine_matrix`: query blocks are int8 hypervectors.
    """
    arr = np.asarray(original)
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim == 2 and (
        arr.dtype == np.int8
        or (arr.dtype == np.int16 and arr.shape[1] <= 8_000_000)
    ):
        squares = np.einsum("ij,ij->i", arr, arr, dtype=np.int64)
        return np.sqrt(squares.astype(np.float64))
    return np.linalg.norm(cast, axis=1)


def cosine(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity between two hypervectors.

    ``Cosim(a, b) = a·b / (||a|| ||b||)`` — Sec. III-C.  A zero vector
    has similarity 0 to everything (rather than NaN), which keeps the
    fuzzer's fitness finite for degenerate seeds (e.g. an all-black
    image whose accumulator could be tiny).
    """
    av = np.asarray(a, dtype=np.float64).ravel()
    bv = np.asarray(b, dtype=np.float64).ravel()
    if av.shape != bv.shape:
        raise DimensionMismatchError(f"shapes {av.shape} and {bv.shape} differ")
    na = np.linalg.norm(av)
    nb = np.linalg.norm(bv)
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(av @ bv / (na * nb))


def cosine_matrix(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities.

    Parameters
    ----------
    queries:
        ``(n, D)`` (or ``(D,)``) query hypervectors.
    references:
        ``(m, D)`` (or ``(D,)``) reference hypervectors (e.g. the
        associative memory's class HVs).

    Returns
    -------
    numpy.ndarray
        ``(n, m)`` float64 matrix; rows for queries, columns for
        references.  Zero-norm rows/columns produce zero similarity.
    """
    q, _ = _as_2d(queries)
    r, _ = _as_2d(references)
    if q.shape[1] != r.shape[1]:
        raise DimensionMismatchError(
            f"queries have dimension {q.shape[1]}, references {r.shape[1]}"
        )
    qn = _row_norms(queries, q)
    rn = _row_norms(references, r)
    denom = np.outer(qn, rn)
    sims = q @ r.T
    np.divide(sims, denom, out=sims, where=denom > 0)
    sims[denom == 0] = 0.0
    return sims


def dot(a: np.ndarray, b: np.ndarray) -> float:
    """Raw inner product (useful for integer accumulators)."""
    av = np.asarray(a, dtype=np.float64).ravel()
    bv = np.asarray(b, dtype=np.float64).ravel()
    if av.shape != bv.shape:
        raise DimensionMismatchError(f"shapes {av.shape} and {bv.shape} differ")
    return float(av @ bv)


def hamming_distance(a: np.ndarray, b: np.ndarray):
    """Normalised Hamming distance: fraction of differing components.

    Two single hypervectors ``(D,)`` give a float; two row-aligned
    batches ``(n, D)`` give a float64 ``(n,)`` of row-wise distances
    (an empty batch gives an empty array).  Shapes must match exactly —
    row-wise comparison is positional, not broadcast.
    """
    av = np.asarray(a)
    bv = np.asarray(b)
    if av.shape != bv.shape:
        raise DimensionMismatchError(f"shapes {av.shape} and {bv.shape} differ")
    if av.ndim == 2:
        return np.mean(av != bv, axis=1, dtype=np.float64)
    if av.ndim != 1:
        raise DimensionMismatchError(f"expected 1-D or 2-D arrays, got ndim={av.ndim}")
    return float(np.mean(av != bv))


def hamming_similarity(a: np.ndarray, b: np.ndarray):
    """``1 - hamming_distance`` — fraction of matching components.

    Mirrors :func:`hamming_distance`'s shape contract: float for single
    hypervectors, ``(n,)`` for row-aligned batches.
    """
    return 1.0 - hamming_distance(a, b)
