"""Dense-binary HDC classifier — the Rahimi-style {0,1} model family.

Much of the HDC literature the paper builds on (its refs. [2], [14],
[18]) uses *dense binary* hypervectors: components in {0, 1}, XOR for
binding, majority vote for bundling, and Hamming distance for the
associative-memory query.  This module provides that family so HDTest
can fuzz it too — another concrete instance of the Sec. V-E claim that
only HV distance information is needed.

The pieces mirror the bipolar stack:

* :class:`BinaryPixelEncoder` — position XOR value encoding with
  majority-vote bundling;
* :class:`BinaryAssociativeMemory` — per-class bit-count accumulators,
  majority-quantised class HVs, (1 − Hamming) similarity query.

Both plug into :class:`~repro.hdc.model.HDCClassifier` unchanged
(cosine on centred binary HVs is monotone in Hamming distance, but the
binary AM keeps the literature's exact formulation).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError, NotTrainedError
from repro.hdc.encoders.base import Encoder
from repro.hdc.item_memory import ItemMemory
from repro.hdc.spaces import DEFAULT_DIMENSION, BinarySpace
from repro.utils.rng import RngLike, ensure_rng, spawn
from repro.utils.validation import as_image_batch, check_labels, check_positive_int

__all__ = ["BinaryPixelEncoder", "BinaryAssociativeMemory", "BinaryHDCClassifier"]


class BinaryPixelEncoder(Encoder):
    """Position-XOR-value image encoder over dense-binary hypervectors.

    Encoding: pixel HV = ``pos_p XOR val_{q(x_p)}``; image HV =
    bit-wise majority over all pixel HVs (ties resolved to 1 for
    determinism, mirroring the bipolar encoder's zero policy).
    """

    def __init__(
        self,
        shape: tuple[int, int] = (28, 28),
        *,
        levels: int = 256,
        dimension: int = DEFAULT_DIMENSION,
        rng: RngLike = None,
    ) -> None:
        if len(shape) != 2:
            raise ConfigurationError(f"shape must be (H, W), got {shape}")
        self._shape = (check_positive_int(shape[0], "H"), check_positive_int(shape[1], "W"))
        self._levels = check_positive_int(levels, "levels")
        self._space = BinarySpace(dimension)
        pos_rng, val_rng = spawn(ensure_rng(rng), 2)
        n_pixels = self._shape[0] * self._shape[1]
        self._position_memory = ItemMemory(n_pixels, self._space, rng=pos_rng)
        self._value_memory = ItemMemory(self._levels, self._space, rng=val_rng)
        self._majority_threshold = n_pixels / 2.0

    @property
    def dimension(self) -> int:
        return self._space.dimension

    @property
    def shape(self) -> tuple[int, int]:
        """Expected image shape ``(H, W)``."""
        return self._shape

    @property
    def position_memory(self) -> ItemMemory:
        """Per-pixel binary position codebook."""
        return self._position_memory

    @property
    def value_memory(self) -> ItemMemory:
        """Per-grey-level binary value codebook."""
        return self._value_memory

    def quantize(self, images: np.ndarray) -> np.ndarray:
        """Map grey values to level indices."""
        arr = as_image_batch(images, shape=self._shape)
        return np.rint(arr * ((self._levels - 1) / 255.0)).astype(np.int64)

    def encode(self, item: np.ndarray) -> np.ndarray:
        arr = np.asarray(item)
        return self.encode_batch(arr[None] if arr.ndim == 2 else arr)[0]

    def encode_batch(self, items: np.ndarray) -> np.ndarray:
        levels = self.quantize(items)
        n = levels.shape[0]
        flat = levels.reshape(n, -1)
        pos = self._position_memory.vectors
        val = self._value_memory.vectors
        out = np.empty((n, self.dimension), dtype=np.int8)
        for i in range(n):
            pixel_hvs = np.bitwise_xor(pos, val[flat[i]])  # (P, D) in {0,1}
            ones = pixel_hvs.sum(axis=0, dtype=np.int64)
            out[i] = (ones >= self._majority_threshold).astype(np.int8)
        return out

    def __repr__(self) -> str:
        return (
            f"BinaryPixelEncoder(shape={self._shape}, levels={self._levels}, "
            f"dimension={self.dimension})"
        )


class BinaryAssociativeMemory:
    """Per-class bit-count accumulators with Hamming-similarity queries.

    The binary counterpart of
    :class:`~repro.hdc.associative_memory.AssociativeMemory`, exposing
    the same surface the classifier and fuzzer rely on (``add``,
    ``class_hvs``, ``similarities``, ``predict``, ``reference_hv``,
    ``margins``, ``state_dict`` …), so it drops into
    :class:`~repro.hdc.model.HDCClassifier` as-is.
    """

    def __init__(self, n_classes: int, dimension: int) -> None:
        self._n_classes = check_positive_int(n_classes, "n_classes")
        self._dimension = check_positive_int(dimension, "dimension")
        # ones[c, d] counts 1-bits added to class c at component d.
        self._ones = np.zeros((self._n_classes, self._dimension), dtype=np.int64)
        self._counts = np.zeros(self._n_classes, dtype=np.int64)
        self._cache: Optional[np.ndarray] = None

    @property
    def n_classes(self) -> int:
        return self._n_classes

    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def bipolar(self) -> bool:
        """Interface parity with the bipolar AM (binary = not bipolar)."""
        return False

    @property
    def counts(self) -> np.ndarray:
        return self._counts.copy()

    @property
    def is_trained(self) -> bool:
        return bool((self._counts > 0).all())

    def add(self, hvs: np.ndarray, labels) -> None:
        """Accumulate binary HVs into their class bit counters."""
        arr = np.asarray(hvs)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self._dimension:
            raise DimensionMismatchError(
                f"hvs must be (n, {self._dimension}), got shape {arr.shape}"
            )
        if not np.isin(arr, (0, 1)).all():
            raise ConfigurationError("binary AM requires {0,1} hypervectors")
        labels_arr = check_labels(labels, arr.shape[0])
        if labels_arr.size and labels_arr.max() >= self._n_classes:
            raise ConfigurationError(
                f"label {labels_arr.max()} out of range for {self._n_classes} classes"
            )
        np.add.at(self._ones, labels_arr, arr.astype(np.int64))
        np.add.at(self._counts, labels_arr, 1)
        self._cache = None

    def subtract(self, hvs: np.ndarray, labels) -> None:
        """Perceptron-style removal (clamped at zero bit counts)."""
        arr = np.asarray(hvs)
        if arr.ndim == 1:
            arr = arr[None, :]
        labels_arr = check_labels(labels, arr.shape[0])
        np.subtract.at(self._ones, labels_arr, arr.astype(np.int64))
        np.maximum(self._ones, 0, out=self._ones)
        self._cache = None

    @property
    def class_hvs(self) -> np.ndarray:
        """Majority-quantised class hypervectors (ties → 1)."""
        if self._cache is None:
            threshold = np.maximum(self._counts, 1)[:, None] / 2.0
            self._cache = (self._ones >= threshold).astype(np.int8)
        return self._cache

    def reference_hv(self, label: int) -> np.ndarray:
        if not 0 <= label < self._n_classes:
            raise ConfigurationError(f"label {label} out of range")
        return self.class_hvs[label]

    def similarities(self, queries: np.ndarray) -> np.ndarray:
        """``1 − normalized Hamming distance`` to each class → (n, C)."""
        self._require_trained()
        arr = np.asarray(queries)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.shape[1] != self._dimension:
            raise DimensionMismatchError(
                f"queries must be (n, {self._dimension}), got shape {arr.shape}"
            )
        refs = self.class_hvs
        # Hamming distance via XOR popcount, vectorised: both in {0,1}.
        diff = arr[:, None, :] != refs[None, :, :]
        return 1.0 - diff.mean(axis=2)

    def predict(self, queries: np.ndarray) -> np.ndarray:
        return self.similarities(queries).argmax(axis=1).astype(np.int64)

    def margins(self, queries: np.ndarray) -> np.ndarray:
        sims = self.similarities(queries)
        if sims.shape[1] < 2:
            return np.zeros(sims.shape[0])
        part = np.partition(sims, -2, axis=1)
        return part[:, -1] - part[:, -2]

    def _require_trained(self) -> None:
        if not (self._counts > 0).any():
            raise NotTrainedError("binary associative memory has no trained classes")

    def state_dict(self) -> dict[str, np.ndarray]:
        return {"ones": self._ones.copy(), "counts": self._counts.copy()}

    @classmethod
    def from_state_dict(cls, state: dict[str, np.ndarray]) -> "BinaryAssociativeMemory":
        ones = np.asarray(state["ones"], dtype=np.int64)
        am = cls(ones.shape[0], ones.shape[1])
        am._ones = ones
        am._counts = np.asarray(state["counts"], dtype=np.int64)
        return am

    def copy(self) -> "BinaryAssociativeMemory":
        return BinaryAssociativeMemory.from_state_dict(self.state_dict())

    def __repr__(self) -> str:
        return (
            f"BinaryAssociativeMemory(n_classes={self._n_classes}, "
            f"dimension={self._dimension}, trained={self.is_trained})"
        )


class BinaryHDCClassifier:
    """Thin classifier facade over the binary encoder + AM pair.

    API-compatible with :class:`~repro.hdc.model.HDCClassifier` for
    everything the fuzzer touches (``predict_hv``, ``encode_batch``,
    ``reference_hv``, ``is_trained``); kept separate because the binary
    AM's update semantics differ (bit counters, not signed sums).
    """

    def __init__(self, encoder: Encoder, n_classes: int) -> None:
        if not isinstance(encoder, Encoder):
            raise ConfigurationError(
                f"encoder must be an Encoder, got {type(encoder).__name__}"
            )
        self._encoder = encoder
        self._n_classes = check_positive_int(n_classes, "n_classes")
        self._am = BinaryAssociativeMemory(n_classes, encoder.dimension)

    @property
    def encoder(self) -> Encoder:
        return self._encoder

    @property
    def associative_memory(self) -> BinaryAssociativeMemory:
        return self._am

    @property
    def n_classes(self) -> int:
        return self._n_classes

    @property
    def dimension(self) -> int:
        return self._encoder.dimension

    @property
    def is_trained(self) -> bool:
        return self._am.is_trained

    def encode(self, item) -> np.ndarray:
        return self._encoder.encode(item)

    def encode_batch(self, items) -> np.ndarray:
        return self._encoder.encode_batch(items)

    def fit(self, inputs, labels) -> "BinaryHDCClassifier":
        hvs = self._encoder.encode_batch(inputs)
        self._am.add(hvs, check_labels(labels, hvs.shape[0]))
        return self

    def predict(self, inputs) -> np.ndarray:
        return self._am.predict(self._encoder.encode_batch(inputs))

    def predict_one(self, item) -> int:
        return int(self._am.predict(self._encoder.encode(item)[None])[0])

    def predict_hv(self, hvs: np.ndarray) -> np.ndarray:
        return self._am.predict(hvs)

    def similarities(self, inputs) -> np.ndarray:
        return self._am.similarities(self._encoder.encode_batch(inputs))

    def margins(self, inputs) -> np.ndarray:
        return self._am.margins(self._encoder.encode_batch(inputs))

    def score(self, inputs, labels) -> float:
        predictions = self.predict(inputs)
        labels_arr = check_labels(labels, predictions.shape[0])
        return float(np.mean(predictions == labels_arr))

    def reference_hv(self, label: int) -> np.ndarray:
        return self._am.reference_hv(label)

    def __repr__(self) -> str:
        return (
            f"BinaryHDCClassifier(encoder={self._encoder!r}, "
            f"n_classes={self._n_classes}, trained={self.is_trained})"
        )
