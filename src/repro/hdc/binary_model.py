"""Dense-binary HDC classifier — the Rahimi-style {0,1} model family.

Much of the HDC literature the paper builds on (its refs. [2], [14],
[18]) uses *dense binary* hypervectors: components in {0, 1}, XOR for
binding, majority vote for bundling, and Hamming distance for the
associative-memory query.  This module provides that family so HDTest
can fuzz it too — another concrete instance of the Sec. V-E claim that
only HV distance information is needed.

The pieces mirror the bipolar stack:

* :class:`BinaryPixelEncoder` — position XOR value encoding with
  majority-vote bundling;
* :class:`BinaryAssociativeMemory` — per-class bit-count accumulators,
  majority-quantised class HVs, (1 − Hamming) similarity query.

Both plug into :class:`~repro.hdc.model.HDCClassifier` unchanged
(cosine on centred binary HVs is monotone in Hamming distance, but the
binary AM keeps the literature's exact formulation).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.errors import (
    ConfigurationError,
    DimensionMismatchError,
    EncodingError,
    NotTrainedError,
)
from repro.hdc.encoders._blocked import (
    fused_delta_into,
    grouped_products,
    level_histogram,
)
from repro.hdc.encoders.base import Encoder
from repro.hdc.item_memory import (
    ItemMemory,
    check_codebook_kind,
    codebook_kind,
    make_item_memory,
    memory_from_payload,
    memory_payload,
)
from repro.hdc.spaces import DEFAULT_DIMENSION, BinarySpace
from repro.utils.rng import RngLike, ensure_rng, spawn
from repro.utils.validation import as_image_batch, check_labels, check_positive_int

__all__ = ["BinaryPixelEncoder", "BinaryAssociativeMemory", "BinaryHDCClassifier"]


class BinaryPixelEncoder(Encoder):
    """Position-XOR-value image encoder over dense-binary hypervectors.

    Encoding: pixel HV = ``pos_p XOR val_{q(x_p)}``; image HV =
    bit-wise majority over all pixel HVs (ties resolved to 1 for
    determinism, mirroring the bipolar encoder's zero policy).
    """

    def __init__(
        self,
        shape: tuple[int, int] = (28, 28),
        *,
        levels: int = 256,
        dimension: int = DEFAULT_DIMENSION,
        rng: RngLike = None,
        position_memory: Optional[ItemMemory] = None,
        value_memory: Optional[ItemMemory] = None,
        codebook: str = "materialized",
    ) -> None:
        if len(shape) != 2:
            raise ConfigurationError(f"shape must be (H, W), got {shape}")
        self._shape = (check_positive_int(shape[0], "H"), check_positive_int(shape[1], "W"))
        self._levels = check_positive_int(levels, "levels")
        self._space = BinarySpace(dimension)
        check_codebook_kind(codebook)
        pos_rng, val_rng = spawn(ensure_rng(rng), 2)
        n_pixels = self._shape[0] * self._shape[1]
        if position_memory is not None:
            self._check_memory(position_memory, n_pixels, "position_memory")
            self._position_memory = position_memory
        else:
            self._position_memory = make_item_memory(
                codebook, n_pixels, self._space, rng=pos_rng
            )
        if value_memory is not None:
            self._check_memory(value_memory, self._levels, "value_memory")
            self._value_memory = value_memory
        else:
            self._value_memory = make_item_memory(
                codebook, self._levels, self._space, rng=val_rng
            )
        self._majority_threshold = n_pixels / 2.0

    def _check_memory(self, memory: ItemMemory, size: int, name: str) -> None:
        if memory.size != size:
            raise ConfigurationError(f"{name} has {memory.size} rows, expected {size}")
        if memory.dimension != self.dimension:
            raise ConfigurationError(
                f"{name} dimension {memory.dimension} != encoder dimension "
                f"{self.dimension}"
            )

    @property
    def dimension(self) -> int:
        return self._space.dimension

    @property
    def shape(self) -> tuple[int, int]:
        """Expected image shape ``(H, W)``."""
        return self._shape

    @property
    def levels(self) -> int:
        """Number of grey levels in the value memory."""
        return self._levels

    @property
    def position_memory(self) -> ItemMemory:
        """Per-pixel binary position codebook."""
        return self._position_memory

    @property
    def value_memory(self) -> ItemMemory:
        """Per-grey-level binary value codebook."""
        return self._value_memory

    @property
    def codebook(self) -> str:
        """Codebook storage kind (by the position memory's storage)."""
        return codebook_kind(self._position_memory)

    def quantize(self, images: np.ndarray) -> np.ndarray:
        """Map grey values to level indices."""
        arr = as_image_batch(images, shape=self._shape)
        return np.rint(arr * ((self._levels - 1) / 255.0)).astype(np.int64)

    def encode(self, item: np.ndarray) -> np.ndarray:
        arr = np.asarray(item)
        return self.encode_batch(arr[None] if arr.ndim == 2 else arr)[0]

    def encode_batch(self, items: np.ndarray) -> np.ndarray:
        return self.hvs_from_accumulators(self.accumulate_batch(items))

    def hvs_from_accumulators(self, accumulators: np.ndarray) -> np.ndarray:
        """Majority-quantise ones-count accumulators into {0, 1} HVs.

        A component is 1 when at least half the pixel HVs set it
        (ties → 1, deterministic — the binary analogue of the bipolar
        encoder's zero policy).  Exposed so the incremental fuzzing
        engines apply exactly this rule.
        """
        return (np.asarray(accumulators) >= self._majority_threshold).astype(np.int8)

    def accumulate_batch(self, items: np.ndarray) -> np.ndarray:
        """Per-component ones counts over each image's pixel HVs → (n, D).

        The binary accumulator: ``acc[i, d] = Σ_p (pos_p ⊕ val[x_p])_d``,
        the pre-majority sums :meth:`encode_batch` thresholds.  Bounded
        by the pixel count, so compact integer storage is exact.
        """
        levels = self.quantize(items)
        flat = levels.reshape(levels.shape[0], -1)
        pos = self._position_memory.vectors
        val = self._value_memory.vectors
        # Blocked via the exact {0,1} identity p ⊕ v = p + v − 2·p·v:
        #   Σ_p (pos_p ⊕ val[x_p]) = Σ_p pos_p + hist·val − 2·Σ_p pos_p·val[x_p]
        # — a cached-free column sum, one histogram matmul, and the same
        # level-grouped product kernel the bipolar encoders use, instead
        # of one P×D XOR + reduction per image.
        pos_sum = pos.sum(axis=0, dtype=np.int64)
        hist = level_histogram(flat, self._levels)
        return (
            pos_sum[None, :]
            + hist @ val.astype(np.int64)
            - 2 * grouped_products(pos, val, flat)
        )

    def accumulate_delta(
        self,
        level_batch: np.ndarray,
        parent_levels: np.ndarray,
        parent_accumulators: np.ndarray,
        *,
        result_dtype: Optional[type] = None,
    ) -> np.ndarray:
        """Children's ones counts from their parents' — changed pixels only.

        Bit-identical to :meth:`accumulate_batch` on the children (the
        count is a plain sum over pixels, so only changed pixels
        contribute a ``{-1, 0, 1}`` correction); same parameter
        conventions as
        :meth:`repro.hdc.encoders.image.PixelEncoder.accumulate_delta`
        (including the compact *result_dtype* fast path).  This is what
        lets the fuzzing engines run their incremental encode path on
        the dense-binary family too.
        """
        levels = np.asarray(level_batch)
        parents = np.asarray(parent_levels)
        if levels.shape != parents.shape or levels.ndim != 2:
            raise EncodingError(
                f"level_batch {levels.shape} and parent_levels {parents.shape} "
                "must both be (n, H*W)"
            )
        n_pixels = self._shape[0] * self._shape[1]
        if levels.shape[1] != n_pixels:
            raise EncodingError(
                f"level rows have {levels.shape[1]} pixels, expected {n_pixels}"
            )
        accs = np.asarray(parent_accumulators)
        if accs.shape != (levels.shape[0], self.dimension):
            raise EncodingError(
                f"parent_accumulators {accs.shape} must be "
                f"(n={levels.shape[0]}, D={self.dimension})"
            )
        # One fused ragged scatter over the whole block (see
        # PixelEncoder.accumulate_delta).  Correction components are in
        # {-1, 0, 1}, so int16 partial sums are exact up to 32767
        # changed pixels; wider blocks widen to int64.
        return fused_delta_into(
            accs.astype(result_dtype or np.int64, copy=True),
            self._position_memory,
            self._value_memory,
            levels,
            parents,
            int16_safe=np.iinfo(np.int16).max,
            binary=True,
        )

    def __repr__(self) -> str:
        return (
            f"BinaryPixelEncoder(shape={self._shape}, levels={self._levels}, "
            f"dimension={self.dimension})"
        )


class BinaryAssociativeMemory:
    """Per-class bit-count accumulators with Hamming-similarity queries.

    The binary counterpart of
    :class:`~repro.hdc.associative_memory.AssociativeMemory`, exposing
    the same surface the classifier and fuzzer rely on (``add``,
    ``class_hvs``, ``similarities``, ``predict``, ``reference_hv``,
    ``margins``, ``state_dict`` …), so it drops into
    :class:`~repro.hdc.model.HDCClassifier` as-is.
    """

    def __init__(self, n_classes: int, dimension: int) -> None:
        self._n_classes = check_positive_int(n_classes, "n_classes")
        self._dimension = check_positive_int(dimension, "dimension")
        # ones[c, d] counts 1-bits added to class c at component d.
        self._ones = np.zeros((self._n_classes, self._dimension), dtype=np.int64)
        self._counts = np.zeros(self._n_classes, dtype=np.int64)
        self._cache: Optional[np.ndarray] = None

    @property
    def n_classes(self) -> int:
        return self._n_classes

    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def bipolar(self) -> bool:
        """Interface parity with the bipolar AM (binary = not bipolar)."""
        return False

    @property
    def counts(self) -> np.ndarray:
        return self._counts.copy()

    @property
    def is_trained(self) -> bool:
        return bool((self._counts > 0).all())

    def add(self, hvs: np.ndarray, labels) -> None:
        """Accumulate binary HVs into their class bit counters."""
        arr = np.asarray(hvs)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self._dimension:
            raise DimensionMismatchError(
                f"hvs must be (n, {self._dimension}), got shape {arr.shape}"
            )
        if not np.isin(arr, (0, 1)).all():
            raise ConfigurationError("binary AM requires {0,1} hypervectors")
        labels_arr = check_labels(labels, arr.shape[0])
        if labels_arr.size and labels_arr.max() >= self._n_classes:
            raise ConfigurationError(
                f"label {labels_arr.max()} out of range for {self._n_classes} classes"
            )
        np.add.at(self._ones, labels_arr, arr.astype(np.int64))
        np.add.at(self._counts, labels_arr, 1)
        self._cache = None

    def subtract(self, hvs: np.ndarray, labels) -> None:
        """Perceptron-style removal (clamped at zero bit counts)."""
        arr = np.asarray(hvs)
        if arr.ndim == 1:
            arr = arr[None, :]
        labels_arr = check_labels(labels, arr.shape[0])
        np.subtract.at(self._ones, labels_arr, arr.astype(np.int64))
        np.maximum(self._ones, 0, out=self._ones)
        self._cache = None

    @property
    def class_hvs(self) -> np.ndarray:
        """Majority-quantised class hypervectors (ties → 1)."""
        if self._cache is None:
            threshold = np.maximum(self._counts, 1)[:, None] / 2.0
            self._cache = (self._ones >= threshold).astype(np.int8)
        return self._cache

    def reference_hv(self, label: int) -> np.ndarray:
        if not 0 <= label < self._n_classes:
            raise ConfigurationError(f"label {label} out of range")
        return self.class_hvs[label]

    def similarities(self, queries: np.ndarray) -> np.ndarray:
        """``1 − normalized Hamming distance`` to each class → (n, C)."""
        self._require_trained()
        arr = np.asarray(queries)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.shape[1] != self._dimension:
            raise DimensionMismatchError(
                f"queries must be (n, {self._dimension}), got shape {arr.shape}"
            )
        refs = self.class_hvs
        # Hamming distance via XOR popcount, vectorised: both in {0,1}.
        diff = arr[:, None, :] != refs[None, :, :]
        return 1.0 - diff.mean(axis=2)

    def predict(self, queries: np.ndarray) -> np.ndarray:
        return self.similarities(queries).argmax(axis=1).astype(np.int64)

    def margins(self, queries: np.ndarray) -> np.ndarray:
        sims = self.similarities(queries)
        if sims.shape[1] < 2:
            return np.zeros(sims.shape[0])
        part = np.partition(sims, -2, axis=1)
        return part[:, -1] - part[:, -2]

    def _require_trained(self) -> None:
        if not (self._counts > 0).any():
            raise NotTrainedError("binary associative memory has no trained classes")

    def state_dict(self) -> dict[str, np.ndarray]:
        return {"ones": self._ones.copy(), "counts": self._counts.copy()}

    @classmethod
    def from_state_dict(cls, state: dict[str, np.ndarray]) -> "BinaryAssociativeMemory":
        ones = np.asarray(state["ones"], dtype=np.int64)
        am = cls(ones.shape[0], ones.shape[1])
        am._ones = ones
        am._counts = np.asarray(state["counts"], dtype=np.int64)
        return am

    def copy(self) -> "BinaryAssociativeMemory":
        return BinaryAssociativeMemory.from_state_dict(self.state_dict())

    def __repr__(self) -> str:
        return (
            f"BinaryAssociativeMemory(n_classes={self._n_classes}, "
            f"dimension={self._dimension}, trained={self.is_trained})"
        )


class BinaryHDCClassifier:
    """Thin classifier facade over the binary encoder + AM pair.

    API-compatible with :class:`~repro.hdc.model.HDCClassifier` for
    everything the fuzzer touches (``predict_hv``, ``encode_batch``,
    ``reference_hv``, ``is_trained``); kept separate because the binary
    AM's update semantics differ (bit counters, not signed sums).
    """

    def __init__(self, encoder: Encoder, n_classes: int) -> None:
        if not isinstance(encoder, Encoder):
            raise ConfigurationError(
                f"encoder must be an Encoder, got {type(encoder).__name__}"
            )
        self._encoder = encoder
        self._n_classes = check_positive_int(n_classes, "n_classes")
        self._am = BinaryAssociativeMemory(n_classes, encoder.dimension)

    @property
    def encoder(self) -> Encoder:
        return self._encoder

    @property
    def associative_memory(self) -> BinaryAssociativeMemory:
        return self._am

    @property
    def n_classes(self) -> int:
        return self._n_classes

    @property
    def dimension(self) -> int:
        return self._encoder.dimension

    @property
    def is_trained(self) -> bool:
        return self._am.is_trained

    def encode(self, item) -> np.ndarray:
        return self._encoder.encode(item)

    def encode_batch(self, items) -> np.ndarray:
        return self._encoder.encode_batch(items)

    def fit(self, inputs, labels) -> "BinaryHDCClassifier":
        hvs = self._encoder.encode_batch(inputs)
        self._am.add(hvs, check_labels(labels, hvs.shape[0]))
        return self

    def retrain(
        self, inputs, labels, *, mode: str = "adaptive", epochs: int = 1
    ) -> "BinaryHDCClassifier":
        """Update the class bit counters with new labelled data.

        Same contract as :meth:`repro.hdc.model.HDCClassifier.retrain`
        (``"additive"`` accumulation or perceptron-style ``"adaptive"``
        updates), which makes the binary family usable in the Sec. V-D
        defense pipeline too.
        """
        if mode not in ("additive", "adaptive"):
            raise ConfigurationError(f"mode must be 'additive' or 'adaptive', got {mode!r}")
        epochs = check_positive_int(epochs, "epochs")
        hvs = self._encoder.encode_batch(inputs)
        labels_arr = check_labels(labels, hvs.shape[0])
        if labels_arr.size and labels_arr.max() >= self._n_classes:
            raise ConfigurationError(
                f"label {labels_arr.max()} out of range for {self._n_classes} classes"
            )
        if mode == "additive":
            self._am.add(hvs, labels_arr)
            return self
        for _ in range(epochs):
            predictions = self._am.predict(hvs)
            wrong = predictions != labels_arr
            if not wrong.any():
                break
            self._am.add(hvs[wrong], labels_arr[wrong])
            self._am.subtract(hvs[wrong], predictions[wrong])
        return self

    def copy(self) -> "BinaryHDCClassifier":
        """Clone sharing the encoder but with an independent AM."""
        clone = BinaryHDCClassifier(self._encoder, self._n_classes)
        clone._am = self._am.copy()
        return clone

    def predict(self, inputs) -> np.ndarray:
        return self._am.predict(self._encoder.encode_batch(inputs))

    def predict_one(self, item) -> int:
        return int(self._am.predict(self._encoder.encode(item)[None])[0])

    def predict_hv(self, hvs: np.ndarray) -> np.ndarray:
        return self._am.predict(hvs)

    def similarities(self, inputs) -> np.ndarray:
        return self._am.similarities(self._encoder.encode_batch(inputs))

    def margins(self, inputs) -> np.ndarray:
        return self._am.margins(self._encoder.encode_batch(inputs))

    def score(self, inputs, labels) -> float:
        predictions = self.predict(inputs)
        labels_arr = check_labels(labels, predictions.shape[0])
        return float(np.mean(predictions == labels_arr))

    def reference_hv(self, label: int) -> np.ndarray:
        return self._am.reference_hv(label)

    # -- persistence ---------------------------------------------------
    def save_payload(self) -> dict:
        """The ``.npz`` key/value payload :meth:`save` writes.

        Same extension hook as
        :meth:`repro.hdc.model.HDCClassifier.save_payload` (shared-
        codebook ensemble serialisation appends per-member AM arrays).
        """
        if not isinstance(self._encoder, BinaryPixelEncoder):
            raise ConfigurationError(
                "save() currently supports BinaryPixelEncoder models only"
            )
        enc = self._encoder
        state = self._am.state_dict()
        return dict(
            kind=np.asarray("pixel-binary-hdc"),
            codebook=np.asarray(enc.codebook),
            shape=np.asarray(enc.shape),
            levels=np.asarray(enc.levels),
            dimension=np.asarray(enc.dimension),
            **memory_payload("position", enc.position_memory),
            **memory_payload("value", enc.value_memory),
            am_ones=state["ones"],
            am_counts=state["counts"],
            n_classes=np.asarray(self._n_classes),
        )

    def save(self, path: Union[str, Path]) -> None:
        """Serialise model (codebooks + bit counters) to a ``.npz`` file.

        Only :class:`BinaryPixelEncoder` models are serialisable (the
        same restriction as :meth:`repro.hdc.model.HDCClassifier.save`).
        The file is tagged ``kind="pixel-binary-hdc"`` so loaders can
        dispatch between model families; rematerialized codebooks
        persist as their 64-bit PRF seeds only.
        """
        np.savez_compressed(Path(path), **self.save_payload())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "BinaryHDCClassifier":
        """Inverse of :meth:`save`."""
        with np.load(Path(path), allow_pickle=False) as data:
            if str(data["kind"]) != "pixel-binary-hdc":
                raise ConfigurationError(f"unsupported model kind {data['kind']!r}")
            shape = tuple(int(v) for v in data["shape"])
            dimension = int(data["dimension"])
            space = BinarySpace(dimension)
            encoder = BinaryPixelEncoder.__new__(BinaryPixelEncoder)
            # Rebuild around the stored codebooks, no fresh randomness.
            # Rematerialized payloads carry only the PRF seeds
            # (<name>_seed keys); memory_from_payload dispatches.
            encoder._shape = shape  # noqa: SLF001 - controlled reconstruction
            encoder._levels = int(data["levels"])
            encoder._space = space
            n_pixels = shape[0] * shape[1]
            encoder._position_memory = memory_from_payload(
                "position", data, n_pixels, space
            )
            encoder._value_memory = memory_from_payload(
                "value", data, encoder._levels, space
            )
            encoder._majority_threshold = n_pixels / 2.0
            model = cls(encoder, int(data["n_classes"]))
            model._am = BinaryAssociativeMemory.from_state_dict(
                {"ones": data["am_ones"], "counts": data["am_counts"]}
            )
        return model

    def __repr__(self) -> str:
        return (
            f"BinaryHDCClassifier(encoder={self._encoder!r}, "
            f"n_classes={self._n_classes}, trained={self.is_trained})"
        )
