"""Item memories: codebooks mapping discrete symbols to hypervectors.

The paper's encoder uses two of these (Sec. III-A step 2):

* a *position memory* with one random HV per pixel index (784 for
  MNIST), and
* a *value memory* with one random HV per grey level.

Both are instances of :class:`ItemMemory` — i.i.d. random codebooks.
:class:`LevelMemory` additionally offers the *linear level* construction
common in the wider HDC literature (consecutive levels differ in a
small, monotone set of flipped components, so similarity decays
linearly with level distance).  The paper generates its value memory
randomly, so `ItemMemory` is the default everywhere; `LevelMemory`
exists for the ablation bench that shows how the choice changes the
fuzzer's behaviour.

:class:`RematerializedItemMemory` is the near-zero-memory variant
(Schmuck et al.'s *rematerialization*): rows are regenerated on demand
from a counter-based PRF (:func:`repro.hdc.backends.packed.prf_words`)
instead of stored, so the retained state is one 64-bit seed however
large ``size × D`` grows.  It is a drop-in replacement wherever an
:class:`ItemMemory` is gathered — :meth:`ItemMemory.take` is the shared
hot-path gather both implement — and :meth:`materialize` recovers an
ordinary stored codebook with bit-identical rows.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError
from repro.hdc.spaces import BinarySpace, BipolarSpace, Space
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "ItemMemory",
    "LevelMemory",
    "RematerializedItemMemory",
    "CODEBOOK_KINDS",
    "check_codebook_kind",
    "codebook_kind",
    "codebook_seed",
    "make_item_memory",
    "memory_payload",
    "memory_from_payload",
]

#: Encoder ``codebook=`` vocabulary (also the CLI ``--codebook`` choices).
CODEBOOK_KINDS = ("materialized", "rematerialized")


def check_codebook_kind(codebook: str) -> str:
    """Validate a ``codebook=`` argument against :data:`CODEBOOK_KINDS`."""
    if codebook not in CODEBOOK_KINDS:
        raise ConfigurationError(
            f"codebook must be one of {CODEBOOK_KINDS}, got {codebook!r}"
        )
    return codebook


def codebook_kind(memory: "ItemMemory") -> str:
    """Which :data:`CODEBOOK_KINDS` entry *memory* is (by storage)."""
    return (
        "rematerialized"
        if isinstance(memory, RematerializedItemMemory)
        else "materialized"
    )


def codebook_seed(rng: RngLike) -> int:
    """Draw a 64-bit PRF seed for a rematerialized codebook from *rng*.

    One draw from the generator, so seed derivation composes with the
    encoders' existing ``spawn`` discipline (position and value memories
    get independent seeds from independent child generators).
    """
    return int(ensure_rng(rng).integers(0, 2**64, dtype=np.uint64))


def make_item_memory(
    codebook: str, size: int, space: Optional[Space], *, rng: RngLike
) -> "ItemMemory":
    """Draw a fresh i.i.d. codebook of the requested storage *codebook* kind."""
    check_codebook_kind(codebook)
    if codebook == "rematerialized":
        return RematerializedItemMemory(size, space, seed=codebook_seed(rng))
    return ItemMemory(size, space, rng=rng)


def memory_payload(name: str, memory: "ItemMemory") -> dict:
    """``.npz`` key/value pairs persisting *memory* under prefix *name*.

    Materialised codebooks store their ``(n, D)`` rows under
    ``<name>_vectors``; rematerialized codebooks store only the 64-bit
    PRF seed under ``<name>_seed`` — the whole point of the scheme is
    that the seed *is* the codebook.  :func:`memory_from_payload`
    branches on which key is present, so files saved before the seed
    schema existed keep loading unchanged.
    """
    if isinstance(memory, RematerializedItemMemory):
        return {f"{name}_seed": np.asarray(memory.seed, dtype=np.uint64)}
    return {f"{name}_vectors": memory.vectors}


def memory_from_payload(name: str, data, size: int, space: Space) -> "ItemMemory":
    """Inverse of :func:`memory_payload` (*data* is an open ``.npz``)."""
    if f"{name}_seed" in data:
        return RematerializedItemMemory(size, space, seed=int(data[f"{name}_seed"]))
    return ItemMemory.from_vectors(data[f"{name}_vectors"], space)


class ItemMemory:
    """A fixed codebook of i.i.d. random hypervectors.

    Parameters
    ----------
    size:
        Number of items (rows).
    space:
        Hypervector space to draw from; defaults to a
        :class:`~repro.hdc.spaces.BipolarSpace` of the paper's dimension.
    rng:
        Seed or generator for reproducible codebooks.

    Notes
    -----
    Lookups are plain row indexing, and :meth:`lookup` accepts arrays of
    indices, returning a gathered ``(..., D)`` array — this is what makes
    whole-image encoding a single vectorised gather.
    """

    def __init__(
        self,
        size: int,
        space: Optional[Space] = None,
        *,
        rng: RngLike = None,
    ) -> None:
        self._space = space if space is not None else BipolarSpace()
        self._size = check_positive_int(size, "size")
        self._vectors = self._space.random(self._size, rng=ensure_rng(rng))

    @classmethod
    def from_vectors(cls, vectors: np.ndarray, space: Optional[Space] = None) -> "ItemMemory":
        """Wrap an existing ``(n, D)`` codebook (e.g. loaded from disk)."""
        arr = np.asarray(vectors)
        if arr.ndim != 2:
            raise DimensionMismatchError(f"vectors must be (n, D), got shape {arr.shape}")
        if space is None:
            space = BipolarSpace(arr.shape[1])
        space.check_member(arr, name="vectors")
        mem = cls.__new__(cls)
        mem._space = space
        mem._size = arr.shape[0]
        mem._vectors = arr.astype(np.int8, copy=True)
        return mem

    # -- introspection ---------------------------------------------------
    @property
    def size(self) -> int:
        """Number of stored items."""
        return self._size

    @property
    def dimension(self) -> int:
        """Hypervector dimension."""
        return self._space.dimension

    @property
    def space(self) -> Space:
        """The space the codebook was drawn from."""
        return self._space

    @property
    def vectors(self) -> np.ndarray:
        """Read-only view of the full ``(size, D)`` codebook."""
        view = self._vectors.view()
        view.flags.writeable = False
        return view

    # -- lookup ------------------------------------------------------------
    def lookup(self, index) -> np.ndarray:
        """Return the HV(s) for *index* (an int or an integer array).

        Integer-array indices gather: ``lookup(image_pixels)`` with a
        ``(784,)`` index array returns a ``(784, D)`` stack.
        """
        idx = np.asarray(index)
        if not np.issubdtype(idx.dtype, np.integer):
            raise ConfigurationError(f"index must be integer(s), got dtype {idx.dtype}")
        if idx.size and (idx.min() < 0 or idx.max() >= self._size):
            raise ConfigurationError(
                f"index out of range [0, {self._size}): [{idx.min()}, {idx.max()}]"
            )
        return self._vectors[idx]

    def take(self, index) -> np.ndarray:
        """Unvalidated row gather — the encoders' hot-path lookup.

        Same semantics as :meth:`lookup` minus the dtype/bounds checks
        (callers' indices are valid by construction: quantised levels,
        pixel positions).  Subclasses that do not store their rows
        (:class:`RematerializedItemMemory`) generate exactly the
        requested ones here.
        """
        return self._vectors[index]

    def __getitem__(self, index) -> np.ndarray:
        return self.lookup(index)

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return f"{type(self).__name__}(size={self._size}, dimension={self.dimension})"


class LevelMemory(ItemMemory):
    """Codebook whose rows interpolate from a random base hypervector.

    Level ``0`` is a random bipolar HV; level ``k`` flips the first
    ``k/(size-1) · D/2`` components of the base (in a fixed random
    order).  Cosine similarity therefore decays linearly,
    ``cos(level_0, level_k) = 1 − k/(size−1)``, reaching exactly
    (pseudo-)orthogonality between the two extreme levels — the ordinal
    "level hypervector" encoding of the HDC literature, offered as an
    ablation against the paper's fully-random value memory.
    """

    def __init__(
        self,
        size: int,
        space: Optional[Space] = None,
        *,
        rng: RngLike = None,
    ) -> None:
        space = space if space is not None else BipolarSpace()
        if not isinstance(space, BipolarSpace):
            raise ConfigurationError("LevelMemory currently supports bipolar spaces only")
        size = check_positive_int(size, "size")
        generator = ensure_rng(rng)
        low = space.random(rng=generator)
        vectors = np.empty((size, space.dimension), dtype=np.int8)
        vectors[0] = low
        if size > 1:
            # Flip components in a fixed random order; the top level
            # flips exactly half the dimensions so the two extremes are
            # orthogonal and cos(level_0, level_k) = 1 - k/(size-1).
            flip_order = generator.permutation(space.dimension)
            for level in range(1, size):
                n_flips = round(level / (size - 1) * space.dimension / 2)
                row = low.copy()
                flips = flip_order[:n_flips]
                row[flips] = -row[flips]
                vectors[level] = row
        self._space = space
        self._size = size
        self._vectors = vectors


class RematerializedItemMemory(ItemMemory):
    """A codebook whose rows are regenerated from a seed, never stored.

    Row *i*, word *w* is a pure function of ``(seed, i, w)`` — the
    SplitMix64 counter PRF of
    :func:`repro.hdc.backends.packed.prf_words` — so gathers are
    deterministic and order-independent, and the retained state is one
    64-bit integer regardless of ``size × D``.  Dense rows come from
    :meth:`take` (bipolar spaces unpack the words as sign bits, binary
    spaces as plain bits); packed consumers take the uint64 words
    directly via :meth:`take_words`, which makes the dense and packed
    views of a row the same bits by construction (``pack ∘ unpack`` is
    the identity on tail-masked words).

    Only i.i.d. random codebooks rematerialize — a
    :class:`LevelMemory`'s rows are sequentially constructed, so the
    linear-level ablation keeps its stored form.

    Parameters
    ----------
    size:
        Number of items (rows).
    space:
        :class:`~repro.hdc.spaces.BipolarSpace` (default) or
        :class:`~repro.hdc.spaces.BinarySpace`.
    seed:
        64-bit PRF seed; see :func:`codebook_seed` to derive one from
        the encoders' rng discipline.
    """

    def __init__(
        self,
        size: int,
        space: Optional[Space] = None,
        *,
        seed: int,
    ) -> None:
        space = space if space is not None else BipolarSpace()
        if isinstance(space, BipolarSpace):
            self._signed = True
        elif isinstance(space, BinarySpace):
            self._signed = False
        else:
            raise ConfigurationError(
                f"rematerialized codebooks support bipolar and binary spaces, "
                f"got {type(space).__name__}"
            )
        self._space = space
        self._size = check_positive_int(size, "size")
        self._seed = int(seed) % (2**64)

    @property
    def seed(self) -> int:
        """The 64-bit PRF seed — the codebook's entire retained state."""
        return self._seed

    # -- generation --------------------------------------------------------
    def take_words(self, rows) -> np.ndarray:
        """Packed uint64 words of *rows* → ``rows.shape + (W,)``."""
        from repro.hdc.backends.packed import prf_words

        return prf_words(self._seed, rows, self.dimension)

    def take(self, index) -> np.ndarray:
        """Generate the dense int8 rows for *index* on demand."""
        from repro.hdc.backends.packed import unpack_bits, unpack_signs

        words = self.take_words(index)
        if self._signed:
            return unpack_signs(words, self.dimension)
        return unpack_bits(words, self.dimension)

    @property
    def vectors(self) -> np.ndarray:
        """The full codebook, generated transiently (not cached).

        Exists so batch-level consumers that hoist the whole codebook
        before a loop (the dense encode paths, ``Σ_p pos_p`` caches)
        stay drop-in; per-row consumers should gather with :meth:`take`
        or :meth:`take_words` instead.
        """
        return self.take(np.arange(self._size))

    def lookup(self, index) -> np.ndarray:
        idx = np.asarray(index)
        if not np.issubdtype(idx.dtype, np.integer):
            raise ConfigurationError(f"index must be integer(s), got dtype {idx.dtype}")
        if idx.size and (idx.min() < 0 or idx.max() >= self._size):
            raise ConfigurationError(
                f"index out of range [0, {self._size}): [{idx.min()}, {idx.max()}]"
            )
        return self.take(idx)

    def materialize(self) -> ItemMemory:
        """An ordinary stored :class:`ItemMemory` with identical rows."""
        return ItemMemory.from_vectors(self.vectors, self._space)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(size={self._size}, "
            f"dimension={self.dimension}, seed={self._seed})"
        )
