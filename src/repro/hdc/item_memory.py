"""Item memories: codebooks mapping discrete symbols to hypervectors.

The paper's encoder uses two of these (Sec. III-A step 2):

* a *position memory* with one random HV per pixel index (784 for
  MNIST), and
* a *value memory* with one random HV per grey level.

Both are instances of :class:`ItemMemory` — i.i.d. random codebooks.
:class:`LevelMemory` additionally offers the *linear level* construction
common in the wider HDC literature (consecutive levels differ in a
small, monotone set of flipped components, so similarity decays
linearly with level distance).  The paper generates its value memory
randomly, so `ItemMemory` is the default everywhere; `LevelMemory`
exists for the ablation bench that shows how the choice changes the
fuzzer's behaviour.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError
from repro.hdc.spaces import BipolarSpace, Space
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["ItemMemory", "LevelMemory"]


class ItemMemory:
    """A fixed codebook of i.i.d. random hypervectors.

    Parameters
    ----------
    size:
        Number of items (rows).
    space:
        Hypervector space to draw from; defaults to a
        :class:`~repro.hdc.spaces.BipolarSpace` of the paper's dimension.
    rng:
        Seed or generator for reproducible codebooks.

    Notes
    -----
    Lookups are plain row indexing, and :meth:`lookup` accepts arrays of
    indices, returning a gathered ``(..., D)`` array — this is what makes
    whole-image encoding a single vectorised gather.
    """

    def __init__(
        self,
        size: int,
        space: Optional[Space] = None,
        *,
        rng: RngLike = None,
    ) -> None:
        self._space = space if space is not None else BipolarSpace()
        self._size = check_positive_int(size, "size")
        self._vectors = self._space.random(self._size, rng=ensure_rng(rng))

    @classmethod
    def from_vectors(cls, vectors: np.ndarray, space: Optional[Space] = None) -> "ItemMemory":
        """Wrap an existing ``(n, D)`` codebook (e.g. loaded from disk)."""
        arr = np.asarray(vectors)
        if arr.ndim != 2:
            raise DimensionMismatchError(f"vectors must be (n, D), got shape {arr.shape}")
        if space is None:
            space = BipolarSpace(arr.shape[1])
        space.check_member(arr, name="vectors")
        mem = cls.__new__(cls)
        mem._space = space
        mem._size = arr.shape[0]
        mem._vectors = arr.astype(np.int8, copy=True)
        return mem

    # -- introspection ---------------------------------------------------
    @property
    def size(self) -> int:
        """Number of stored items."""
        return self._size

    @property
    def dimension(self) -> int:
        """Hypervector dimension."""
        return self._space.dimension

    @property
    def space(self) -> Space:
        """The space the codebook was drawn from."""
        return self._space

    @property
    def vectors(self) -> np.ndarray:
        """Read-only view of the full ``(size, D)`` codebook."""
        view = self._vectors.view()
        view.flags.writeable = False
        return view

    # -- lookup ------------------------------------------------------------
    def lookup(self, index) -> np.ndarray:
        """Return the HV(s) for *index* (an int or an integer array).

        Integer-array indices gather: ``lookup(image_pixels)`` with a
        ``(784,)`` index array returns a ``(784, D)`` stack.
        """
        idx = np.asarray(index)
        if not np.issubdtype(idx.dtype, np.integer):
            raise ConfigurationError(f"index must be integer(s), got dtype {idx.dtype}")
        if idx.size and (idx.min() < 0 or idx.max() >= self._size):
            raise ConfigurationError(
                f"index out of range [0, {self._size}): [{idx.min()}, {idx.max()}]"
            )
        return self._vectors[idx]

    def __getitem__(self, index) -> np.ndarray:
        return self.lookup(index)

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return f"{type(self).__name__}(size={self._size}, dimension={self.dimension})"


class LevelMemory(ItemMemory):
    """Codebook whose rows interpolate from a random base hypervector.

    Level ``0`` is a random bipolar HV; level ``k`` flips the first
    ``k/(size-1) · D/2`` components of the base (in a fixed random
    order).  Cosine similarity therefore decays linearly,
    ``cos(level_0, level_k) = 1 − k/(size−1)``, reaching exactly
    (pseudo-)orthogonality between the two extreme levels — the ordinal
    "level hypervector" encoding of the HDC literature, offered as an
    ablation against the paper's fully-random value memory.
    """

    def __init__(
        self,
        size: int,
        space: Optional[Space] = None,
        *,
        rng: RngLike = None,
    ) -> None:
        space = space if space is not None else BipolarSpace()
        if not isinstance(space, BipolarSpace):
            raise ConfigurationError("LevelMemory currently supports bipolar spaces only")
        size = check_positive_int(size, "size")
        generator = ensure_rng(rng)
        low = space.random(rng=generator)
        vectors = np.empty((size, space.dimension), dtype=np.int8)
        vectors[0] = low
        if size > 1:
            # Flip components in a fixed random order; the top level
            # flips exactly half the dimensions so the two extremes are
            # orthogonal and cos(level_0, level_k) = 1 - k/(size-1).
            flip_order = generator.permutation(space.dimension)
            for level in range(1, size):
                n_flips = round(level / (size - 1) * space.dimension / 2)
                row = low.copy()
                flips = flip_order[:n_flips]
                row[flips] = -row[flips]
                vectors[level] = row
        self._space = space
        self._size = size
        self._vectors = vectors
