"""Hardware-fault injection for HDC models.

The paper's related work (Sec. II) notes that prior HDC studies examined
"robustness … with regard to hardware failures such [as] memory
errors" — HDC's celebrated tolerance to bit flips in the associative
memory — while HDTest targets *algorithmic* robustness.  This module
supplies the hardware half so both robustness axes can be measured in
one framework:

* :func:`flip_components` — i.i.d. sign flips on bipolar HVs (the
  standard memory-error model);
* :func:`inject_am_faults` — a faulted copy of an associative memory;
* :func:`accuracy_under_faults` — accuracy sweep over fault rates,
  reproducing the graceful-degradation curve of the HDC literature
  (``benchmarks/bench_fault_tolerance.py``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.hdc.associative_memory import AssociativeMemory
from repro.hdc.model import HDCClassifier
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_probability

__all__ = ["flip_components", "inject_am_faults", "accuracy_under_faults"]


def flip_components(
    hvs: np.ndarray, rate: float, *, rng: RngLike = None
) -> np.ndarray:
    """Flip each bipolar component independently with probability *rate*.

    Returns a new array; the input is untouched.  Values must be ±1.
    """
    rate = check_probability(rate, "rate")
    arr = np.asarray(hvs)
    if not np.isin(arr, (-1, 1)).all():
        raise ConfigurationError("flip_components expects bipolar (±1) hypervectors")
    out = arr.copy()
    if rate == 0.0:
        return out
    generator = ensure_rng(rng)
    mask = generator.random(size=out.shape) < rate
    out[mask] = -out[mask]
    return out


def inject_am_faults(
    am: AssociativeMemory, rate: float, *, rng: RngLike = None
) -> AssociativeMemory:
    """Return a copy of *am* whose stored class HVs carry bit flips.

    The fault model matches the in-memory-computing literature the
    paper cites ([17]–[19]): the *quantised* class hypervectors sitting
    in associative memory take i.i.d. sign flips at *rate*.  The
    returned memory holds the faulted HVs as its accumulators (their
    bipolarisation is themselves), leaving the original untouched.
    """
    if not am.bipolar:
        raise ConfigurationError("fault injection requires a bipolar associative memory")
    faulted_hvs = flip_components(am.class_hvs, rate, rng=rng)
    state = am.state_dict()
    state["accumulators"] = faulted_hvs.astype(np.int64)
    return AssociativeMemory.from_state_dict(state)


def accuracy_under_faults(
    model: HDCClassifier,
    images: np.ndarray,
    labels: np.ndarray,
    rates: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3, 0.4),
    *,
    rng: RngLike = None,
) -> dict[float, float]:
    """Model accuracy at each AM bit-flip rate.

    Encodes *images* once and re-queries faulted copies of the
    associative memory, so the sweep costs one encoding pass plus one
    cheap similarity query per rate.
    """
    if len(rates) == 0:
        raise ConfigurationError("rates is empty")
    generator = ensure_rng(rng)
    query_hvs = model.encode_batch(images)
    labels_arr = np.asarray(labels)
    out: dict[float, float] = {}
    for rate in rates:
        faulted = inject_am_faults(model.associative_memory, float(rate), rng=generator)
        predictions = faulted.predict(query_hvs)
        out[float(rate)] = float(np.mean(predictions == labels_arr))
    return out
