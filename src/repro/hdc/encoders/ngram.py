"""Character n-gram text encoder.

This is the language-classification encoding of Rahimi et al.
(ISLPED'16), which the paper cites as a primary HDC application
(Sec. I, II) and names when claiming HDTest "can be naturally extended
to other HDC model structures" (Sec. V-E).  Each character gets a random
item HV; an n-gram is encoded by binding permuted character HVs
(``ρ²(c₀) ⊛ ρ¹(c₁) ⊛ c₂`` for trigrams); a string is the re-bipolarised
sum of its n-gram HVs.

Together with :mod:`repro.fuzz.mutations.text` this demonstrates HDTest
on a second, non-image modality end-to-end.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, EncodingError
from repro.hdc.encoders.base import Encoder
from repro.hdc.item_memory import ItemMemory
from repro.hdc.ops import permute
from repro.hdc.spaces import DEFAULT_DIMENSION, BipolarSpace
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["NgramEncoder", "DEFAULT_ALPHABET"]

#: Lower-case letters plus space — the alphabet used by the language
#: identification literature the paper builds on.
DEFAULT_ALPHABET = "abcdefghijklmnopqrstuvwxyz "


class NgramEncoder(Encoder):
    """Encode strings as bundled, permutation-bound character n-grams.

    Parameters
    ----------
    n:
        n-gram order (3 = trigrams, the literature's default).
    alphabet:
        Permitted characters; anything outside raises
        :class:`~repro.errors.EncodingError` unless *unknown_policy* is
        ``"skip"`` (drop the character) or ``"map"`` (map to the last
        alphabet symbol).
    dimension:
        Hypervector dimensionality.
    rng:
        Seed/generator for the character codebook.
    """

    def __init__(
        self,
        n: int = 3,
        *,
        alphabet: str = DEFAULT_ALPHABET,
        dimension: int = DEFAULT_DIMENSION,
        rng: RngLike = None,
        unknown_policy: str = "raise",
    ) -> None:
        self._n = check_positive_int(n, "n")
        if not alphabet:
            raise ConfigurationError("alphabet must be non-empty")
        if len(set(alphabet)) != len(alphabet):
            raise ConfigurationError("alphabet contains duplicate characters")
        if unknown_policy not in ("raise", "skip", "map"):
            raise ConfigurationError(
                f"unknown_policy must be 'raise', 'skip' or 'map', got {unknown_policy!r}"
            )
        self._alphabet = alphabet
        self._char_to_idx = {ch: i for i, ch in enumerate(alphabet)}
        self._unknown_policy = unknown_policy
        self._space = BipolarSpace(dimension)
        self._item_memory = ItemMemory(len(alphabet), self._space, rng=ensure_rng(rng))
        # Pre-permuted codebooks: row r of _shifted[k] is ρ^k(item_r).
        self._shifted = [
            np.roll(self._item_memory.vectors, self._n - 1 - k, axis=1) for k in range(self._n)
        ]

    # -- introspection ---------------------------------------------------
    @property
    def dimension(self) -> int:
        return self._space.dimension

    @property
    def n(self) -> int:
        """n-gram order."""
        return self._n

    @property
    def alphabet(self) -> str:
        """Permitted characters."""
        return self._alphabet

    @property
    def item_memory(self) -> ItemMemory:
        """Per-character codebook."""
        return self._item_memory

    # -- encoding ----------------------------------------------------------
    def indices(self, text: str) -> np.ndarray:
        """Map *text* to codebook indices, applying the unknown policy."""
        if not isinstance(text, str):
            raise EncodingError(f"expected str, got {type(text).__name__}")
        idx = []
        for ch in text:
            pos = self._char_to_idx.get(ch)
            if pos is None:
                if self._unknown_policy == "raise":
                    raise EncodingError(f"character {ch!r} not in alphabet")
                if self._unknown_policy == "skip":
                    continue
                pos = len(self._alphabet) - 1
            idx.append(pos)
        return np.asarray(idx, dtype=np.int64)

    def encode(self, item: str) -> np.ndarray:
        idx = self.indices(item)
        if idx.size < self._n:
            raise EncodingError(
                f"text needs at least n={self._n} in-alphabet characters, got {idx.size}"
            )
        # n-gram g at position t binds ρ^{n-1}(c_t) ⊛ ... ⊛ ρ^0(c_{t+n-1}).
        # Using the pre-shifted codebooks this is a product of n gathers.
        n_grams = idx.size - self._n + 1
        acc = np.ones((n_grams, self.dimension), dtype=np.int64)
        for k in range(self._n):
            acc *= self._shifted[k][idx[k : k + n_grams]]
        summed = acc.sum(axis=0, dtype=np.int64)
        return np.where(summed >= 0, 1, -1).astype(np.int8)

    def __repr__(self) -> str:
        return (
            f"NgramEncoder(n={self._n}, alphabet_size={len(self._alphabet)}, "
            f"dimension={self.dimension})"
        )
