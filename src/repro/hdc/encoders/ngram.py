"""Character n-gram text encoder.

This is the language-classification encoding of Rahimi et al.
(ISLPED'16), which the paper cites as a primary HDC application
(Sec. I, II) and names when claiming HDTest "can be naturally extended
to other HDC model structures" (Sec. V-E).  Each character gets a random
item HV; an n-gram is encoded by binding permuted character HVs
(``ρ²(c₀) ⊛ ρ¹(c₁) ⊛ c₂`` for trigrams); a string is the re-bipolarised
sum of its n-gram HVs.

Together with :mod:`repro.fuzz.mutations.text` and
:class:`~repro.fuzz.domains.text.TextDomain` this runs HDTest on a
second, non-image modality end-to-end — through the batched engine too,
because the encoder exposes the full delta surface
(``quantize`` / ``accumulate_batch`` / ``accumulate_delta`` /
``hvs_from_accumulators``): the accumulator is a plain sum of n-gram
HVs, and a k-character substitution touches at most ``k·n`` n-grams,
so a mutated child is encoded from its parent's accumulator by
swapping only the affected n-gram terms.  The integer algebra is
exact, so delta-encoded hypervectors are bit-identical to scratch
encoding.  Inputs may be strings or arrays of alphabet codes (the
fuzzing domain's internal representation); the two forms encode
identically.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError, EncodingError
from repro.hdc.encoders._blocked import (
    BLOCK_ELEMS,
    _child_chunks,
    _segment_breaks,
    bipolar_sign,
    segment_reduce,
)
from repro.hdc.encoders.base import Encoder
from repro.hdc.item_memory import (
    ItemMemory,
    check_codebook_kind,
    codebook_kind,
    make_item_memory,
)
from repro.hdc.ops import permute
from repro.hdc.spaces import DEFAULT_DIMENSION, BipolarSpace
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["NgramEncoder", "DEFAULT_ALPHABET"]

#: Lower-case letters plus space — the alphabet used by the language
#: identification literature the paper builds on.
DEFAULT_ALPHABET = "abcdefghijklmnopqrstuvwxyz "


class NgramEncoder(Encoder):
    """Encode strings as bundled, permutation-bound character n-grams.

    Parameters
    ----------
    n:
        n-gram order (3 = trigrams, the literature's default).
    alphabet:
        Permitted characters; anything outside raises
        :class:`~repro.errors.EncodingError` unless *unknown_policy* is
        ``"skip"`` (drop the character) or ``"map"`` (map to the last
        alphabet symbol).
    dimension:
        Hypervector dimensionality.
    rng:
        Seed/generator for the character codebook.
    item_memory:
        Optional pre-built character codebook (shared-codebook
        ensembles, materialised twins); must have one row per alphabet
        symbol.
    codebook:
        ``"materialized"`` (default) stores the codebook — and ``n``
        pre-permuted copies of it — as arrays; ``"rematerialized"``
        regenerates rows (and their permutations) on demand from one
        64-bit seed, shrinking retained encoder state to near zero.
    """

    def __init__(
        self,
        n: int = 3,
        *,
        alphabet: str = DEFAULT_ALPHABET,
        dimension: int = DEFAULT_DIMENSION,
        rng: RngLike = None,
        unknown_policy: str = "raise",
        item_memory: Optional[ItemMemory] = None,
        codebook: str = "materialized",
    ) -> None:
        self._n = check_positive_int(n, "n")
        if not alphabet:
            raise ConfigurationError("alphabet must be non-empty")
        if len(set(alphabet)) != len(alphabet):
            raise ConfigurationError("alphabet contains duplicate characters")
        if unknown_policy not in ("raise", "skip", "map"):
            raise ConfigurationError(
                f"unknown_policy must be 'raise', 'skip' or 'map', got {unknown_policy!r}"
            )
        self._alphabet = alphabet
        self._char_to_idx = {ch: i for i, ch in enumerate(alphabet)}
        self._unknown_policy = unknown_policy
        self._space = BipolarSpace(dimension)
        check_codebook_kind(codebook)
        if item_memory is not None:
            if item_memory.size != len(alphabet):
                raise ConfigurationError(
                    f"item_memory has {item_memory.size} rows, expected "
                    f"{len(alphabet)} (one per alphabet symbol)"
                )
            if item_memory.dimension != dimension:
                raise ConfigurationError(
                    f"item_memory dimension {item_memory.dimension} != "
                    f"encoder dimension {dimension}"
                )
            self._item_memory = item_memory
        else:
            self._item_memory = make_item_memory(
                codebook, len(alphabet), self._space, rng=ensure_rng(rng)
            )
        self._build_shifted()

    def _build_shifted(self) -> None:
        # Pre-permuted codebooks: row r of _shifted[k] is ρ^k(item_r).
        # A rematerialized codebook stores nothing, so its permuted
        # copies aren't cached either — _shifted_take rolls regenerated
        # rows on demand instead.
        if self.codebook == "rematerialized":
            self._shifted = None
        else:
            self._shifted = [
                np.roll(self._item_memory.vectors, self._n - 1 - k, axis=1)
                for k in range(self._n)
            ]

    def _shifted_take(self, k: int, rows: np.ndarray) -> np.ndarray:
        """Gather ρ^{n-1-k}-permuted codebook rows (generated if remat)."""
        if self._shifted is not None:
            return self._shifted[k][rows]
        return np.roll(self._item_memory.take(rows), self._n - 1 - k, axis=-1)

    def _shifted_gather(self, k: int, rows: np.ndarray) -> np.ndarray:
        """:meth:`_shifted_take` generating each distinct row at most once.

        The fused delta path gathers one row per affected n-gram slot
        across a whole child block; with a rematerialized codebook the
        alphabet is tiny compared to the block, so regenerating (and
        rolling) only the unique rows makes each character's permuted
        HV exist once per block instead of once per occurrence.
        """
        if self._shifted is not None:
            return self._shifted[k][rows]
        uniq, inv = np.unique(rows, return_inverse=True)
        return np.roll(self._item_memory.take(uniq), self._n - 1 - k, axis=-1)[inv]

    # -- introspection ---------------------------------------------------
    @property
    def dimension(self) -> int:
        return self._space.dimension

    @property
    def n(self) -> int:
        """n-gram order."""
        return self._n

    @property
    def alphabet(self) -> str:
        """Permitted characters."""
        return self._alphabet

    @property
    def unknown_policy(self) -> str:
        """Out-of-alphabet character handling (``raise``/``skip``/``map``)."""
        return self._unknown_policy

    @property
    def levels(self) -> int:
        """Alphabet size — the number of distinct codes (quantisation levels)."""
        return len(self._alphabet)

    @property
    def item_memory(self) -> ItemMemory:
        """Per-character codebook."""
        return self._item_memory

    @property
    def codebook(self) -> str:
        """Codebook storage kind (by the item memory's actual storage)."""
        return codebook_kind(self._item_memory)

    # -- encoding ----------------------------------------------------------
    def indices(self, text: Union[str, np.ndarray]) -> np.ndarray:
        """Map *text* to codebook indices, applying the unknown policy.

        Arrays of codes (the fuzzing domain's internal representation)
        pass through after range validation.
        """
        if isinstance(text, np.ndarray):
            return self._validate_codes(text)
        if not isinstance(text, str):
            raise EncodingError(f"expected str or code array, got {type(text).__name__}")
        idx = []
        for ch in text:
            pos = self._char_to_idx.get(ch)
            if pos is None:
                if self._unknown_policy == "raise":
                    raise EncodingError(f"character {ch!r} not in alphabet")
                if self._unknown_policy == "skip":
                    continue
                pos = len(self._alphabet) - 1
            idx.append(pos)
        return np.asarray(idx, dtype=np.int64)

    def _validate_codes(self, codes: np.ndarray) -> np.ndarray:
        arr = np.asarray(codes)
        if arr.ndim != 1 or not np.issubdtype(arr.dtype, np.integer):
            raise EncodingError(
                f"code arrays must be 1-D integer, got {arr.dtype} {arr.shape}"
            )
        if arr.size and (int(arr.max()) >= len(self._alphabet) or int(arr.min()) < 0):
            raise EncodingError(
                f"codes must lie in [0, {len(self._alphabet) - 1}], got range "
                f"[{int(arr.min())}, {int(arr.max())}]"
            )
        return arr.astype(np.int64, copy=False)

    def quantize(self, items: Union[np.ndarray, Sequence[str]]) -> np.ndarray:
        """Code rows of a batch of inputs — the text analogue of grey levels.

        Accepts an ``(n, L)`` code array (validated, returned as int64)
        or a sequence of equal-length strings (index-mapped).  Part of
        the delta-encoder surface the fuzzing engines consume.
        """
        if isinstance(items, np.ndarray):
            arr = np.asarray(items)
            if arr.ndim == 1:
                arr = arr[None]
            if arr.ndim != 2:
                raise EncodingError(f"code batches must be (n, L), got {arr.shape}")
            for row in arr:
                self._validate_codes(row)
            return arr.astype(np.int64, copy=False)
        rows = [self.indices(item) for item in items]
        lengths = {row.size for row in rows}
        if len(lengths) > 1:
            raise EncodingError(
                f"strings must share one in-alphabet length to batch, got {sorted(lengths)}"
            )
        return np.stack(rows) if rows else np.empty((0, 0), dtype=np.int64)

    def _gram_accumulate(self, idx: np.ndarray) -> np.ndarray:
        """Raw integer accumulator (sum of n-gram HVs) of one code row."""
        if idx.size < self._n:
            raise EncodingError(
                f"text needs at least n={self._n} in-alphabet characters, got {idx.size}"
            )
        # n-gram g at position t binds ρ^{n-1}(c_t) ⊛ ... ⊛ ρ^0(c_{t+n-1}).
        # Using the pre-shifted codebooks this is a product of n gathers.
        n_grams = idx.size - self._n + 1
        acc = np.ones((n_grams, self.dimension), dtype=np.int64)
        for k in range(self._n):
            acc *= self._shifted_take(k, idx[k : k + n_grams])
        return acc.sum(axis=0, dtype=np.int64)

    def accumulate_batch(self, items: Union[np.ndarray, Sequence[str]]) -> np.ndarray:
        """Raw ``(n, D)`` integer accumulators (pre-binarization sums)."""
        if isinstance(items, np.ndarray):
            arr = np.asarray(items)
            rows = [self._validate_codes(row) for row in (arr[None] if arr.ndim == 1 else arr)]
        elif isinstance(items, str):
            raise EncodingError("accumulate_batch expects a sequence, not one string")
        else:
            rows = [self.indices(item) for item in items]
        out = np.empty((len(rows), self.dimension), dtype=np.int64)
        for i, idx in enumerate(rows):
            out[i] = self._gram_accumulate(idx)
        return out

    def accumulate_delta(
        self,
        level_batch: np.ndarray,
        parent_levels: np.ndarray,
        parent_accumulators: np.ndarray,
        *,
        result_dtype: Optional[type] = None,
    ) -> np.ndarray:
        """Accumulators of children given their parents' accumulators.

        A child sharing most codes with its parent shares most n-grams:
        only n-grams overlapping a changed position differ, and a
        position *q* is covered by the n-grams starting in
        ``[q−n+1, q]``.  So::

            acc(child) = acc(parent) + Σ_{t affected} (gram_t(child) − gram_t(parent))

        with at most ``k·n`` affected n-grams for *k* changed
        characters.  The algebra is exact in integers, so the result is
        bit-identical to :meth:`accumulate_batch` on the children.

        Parameters
        ----------
        level_batch:
            ``(n, L)`` child code rows (see :meth:`quantize`).
        parent_levels:
            ``(n, L)`` code rows of each child's parent.
        parent_accumulators:
            ``(n, D)`` integer accumulators of the parents.
        result_dtype:
            Output dtype; default int64.  Callers whose accumulator
            storage is already exact (it can hold ``±(L−n+1)``) may
            pass it to keep the whole delta in that compact dtype.
        """
        levels = np.asarray(level_batch)
        parents = np.asarray(parent_levels)
        if levels.shape != parents.shape or levels.ndim != 2:
            raise EncodingError(
                f"level_batch {levels.shape} and parent_levels {parents.shape} "
                "must both be (n, L)"
            )
        if levels.shape[1] < self._n:
            raise EncodingError(
                f"rows have {levels.shape[1]} characters, need at least n={self._n}"
            )
        accs = np.asarray(parent_accumulators)
        if accs.shape != (levels.shape[0], self.dimension):
            raise EncodingError(
                f"parent_accumulators {accs.shape} must be "
                f"(n={levels.shape[0]}, D={self.dimension})"
            )
        n_grams = levels.shape[1] - self._n + 1
        out = accs.astype(result_dtype or np.int64, copy=True)
        changed = levels != parents
        if not changed.any():
            return out
        # Affected n-gram starts for every child at once: gram t covers
        # positions [t, t+n−1], so its "affected" bit is the windowed OR
        # of the changed mask over those n positions (exactly the
        # clipped [q−n+1, q] start sets of the per-row formulation).
        affected = np.array(changed[:, :n_grams])
        for k in range(1, self._n):
            np.logical_or(affected, changed[:, k : k + n_grams], out=affected)
        rows, starts = np.nonzero(affected)
        counts = np.count_nonzero(affected, axis=1)
        child_idx = levels.astype(np.int64, copy=False)
        parent_idx = parents.astype(np.int64, copy=False)
        # Gram products stay in {-1, +1} (products of ±1 rows), so the
        # replaced-gram corrections are ±2-bounded int8 rows; int16
        # segment sums are exact up to 16383 affected grams per child.
        sum_dtype = (
            np.int16
            if int(counts.max()) <= np.iinfo(np.int16).max // 2
            else np.int64
        )
        bounds = np.concatenate(([0], np.cumsum(counts)))
        for lo, hi in _child_chunks(
            bounds, counts.shape[0], max(1, BLOCK_ELEMS // (2 * self.dimension))
        ):
            s, e = int(bounds[lo]), int(bounds[hi])
            if s == e:
                continue
            r = rows[s:e]
            t = starts[s:e]
            old = np.ones((e - s, self.dimension), dtype=np.int8)
            new = np.ones((e - s, self.dimension), dtype=np.int8)
            for k in range(self._n):
                old *= self._shifted_gather(k, parent_idx[r, t + k])
                new *= self._shifted_gather(k, child_idx[r, t + k])
            new -= old
            seg_starts = np.flatnonzero(_segment_breaks(r))
            out[r[seg_starts]] += segment_reduce(new, seg_starts, sum_dtype)
        return out

    def hvs_from_accumulators(self, accumulators: np.ndarray) -> np.ndarray:
        """Binarization of raw accumulators (:meth:`encode`'s exact rule)."""
        return bipolar_sign(accumulators)

    def encode(self, item: Union[str, np.ndarray]) -> np.ndarray:
        return self.hvs_from_accumulators(self._gram_accumulate(self.indices(item)))

    def encode_batch(self, items: Union[np.ndarray, Sequence[str]]) -> np.ndarray:
        """Encode strings or ``(n, L)`` code rows into ``(n, D)`` HVs."""
        return self.hvs_from_accumulators(self.accumulate_batch(items))

    def __repr__(self) -> str:
        return (
            f"NgramEncoder(n={self._n}, alphabet_size={len(self._alphabet)}, "
            f"dimension={self.dimension})"
        )
