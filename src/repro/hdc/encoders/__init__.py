"""Encoders from raw inputs to hypervectors."""

from repro.hdc.encoders.base import Encoder
from repro.hdc.encoders.image import PixelEncoder
from repro.hdc.encoders.ngram import DEFAULT_ALPHABET, NgramEncoder
from repro.hdc.encoders.permutation import PermutationImageEncoder
from repro.hdc.encoders.record import RecordEncoder

__all__ = [
    "DEFAULT_ALPHABET",
    "Encoder",
    "NgramEncoder",
    "PermutationImageEncoder",
    "PixelEncoder",
    "RecordEncoder",
]
