"""The paper's pixel-position/value image encoder (Sec. III-A).

Encoding an ``H×W`` grey-scale image:

1. flatten to a pixel array (position = flat index, value = grey level);
2. for each pixel, bind its *position HV* with its *value HV*
   (``pos ⊛ val``, element-wise multiplication of two random bipolar
   codebook rows);
3. bundle (sum) all pixel HVs and re-bipolarise with Eq. 1.

Both codebooks are i.i.d. random, exactly as the paper specifies
("we randomly generate two memories of HVs").  A
:class:`~repro.hdc.item_memory.LevelMemory` can be substituted for the
value memory to study the ordinal-encoding ablation.

Performance
-----------
The hot loop of the whole system is encoding mutated seed images, so two
vectorised paths are provided:

* a *dense* path — gather both codebooks for all ``H*W`` pixels and
  reduce (one fused multiply-sum per image);
* a *sparse-background* path — rewrite the sum as
  ``(Σ_p pos_p) ⊛ val_bg  +  Σ_{p∉bg} pos_p ⊛ (val_{x_p} − val_bg)``
  so only non-background pixels are gathered.  MNIST-style images are
  ≈80 % background, which makes this ≈4–5× faster.  The two paths are
  bit-identical (the algebra is exact in integers).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, EncodingError
from repro.hdc.encoders._blocked import (
    bipolar_sign,
    fused_delta_into,
    grouped_products,
)
from repro.hdc.encoders.base import Encoder
from repro.hdc.item_memory import (
    ItemMemory,
    check_codebook_kind,
    codebook_kind,
    make_item_memory,
)
from repro.hdc.ops import bipolarize
from repro.hdc.spaces import DEFAULT_DIMENSION, BipolarSpace
from repro.utils.rng import RngLike, ensure_rng, spawn
from repro.utils.validation import as_image_batch, check_positive_int

__all__ = ["PixelEncoder"]


class PixelEncoder(Encoder):
    """Position ⊛ value image encoder over bipolar hypervectors.

    Parameters
    ----------
    shape:
        Image shape ``(H, W)``; the paper uses ``(28, 28)``.
    levels:
        Number of grey-level entries in the value memory.  The paper
        stores one HV per grey value (its prose says 255; we default to
        256 so every ``uint8`` value has its own row — value 255
        included).
    dimension:
        Hypervector dimensionality ``D`` (default 10 000, as in the
        paper's experiments).
    value_memory:
        Optional pre-built value codebook (e.g. a
        :class:`~repro.hdc.item_memory.LevelMemory` for the ordinal
        ablation, or a shared codebook reused across ensemble members).
        Must have ``levels`` rows.
    position_memory:
        Optional pre-built position codebook (``H·W`` rows) — the
        injection point for shared-codebook ensembles and for
        materialising a rematerialized twin.
    rng:
        Seed/generator for the random codebooks.
    sparse_background:
        Use the sparse-background fast path (identical results).
    codebook:
        ``"materialized"`` (default) stores the codebooks as ``(n, D)``
        arrays; ``"rematerialized"`` draws
        :class:`~repro.hdc.item_memory.RematerializedItemMemory`
        codebooks whose rows are regenerated on demand from one 64-bit
        seed each — near-zero retained encoder state, bit-identical to
        their :meth:`~repro.hdc.item_memory.RematerializedItemMemory.materialize`-d
        twins.  Explicitly injected memories take precedence.
    """

    def __init__(
        self,
        shape: tuple[int, int] = (28, 28),
        *,
        levels: int = 256,
        dimension: int = DEFAULT_DIMENSION,
        value_memory: Optional[ItemMemory] = None,
        position_memory: Optional[ItemMemory] = None,
        rng: RngLike = None,
        sparse_background: bool = True,
        codebook: str = "materialized",
    ) -> None:
        if len(shape) != 2:
            raise ConfigurationError(f"shape must be (H, W), got {shape}")
        self._shape = (check_positive_int(shape[0], "H"), check_positive_int(shape[1], "W"))
        self._levels = check_positive_int(levels, "levels")
        self._space = BipolarSpace(dimension)
        self._sparse_background = bool(sparse_background)
        check_codebook_kind(codebook)

        pos_rng, val_rng = spawn(ensure_rng(rng), 2)
        n_pixels = self._shape[0] * self._shape[1]
        if position_memory is not None:
            if position_memory.size != n_pixels:
                raise ConfigurationError(
                    f"position_memory has {position_memory.size} rows, "
                    f"expected H*W={n_pixels}"
                )
            if position_memory.dimension != dimension:
                raise ConfigurationError(
                    f"position_memory dimension {position_memory.dimension} != "
                    f"encoder dimension {dimension}"
                )
            self._position_memory = position_memory
        else:
            self._position_memory = make_item_memory(
                codebook, n_pixels, self._space, rng=pos_rng
            )
        if value_memory is None:
            value_memory = make_item_memory(
                codebook, self._levels, self._space, rng=val_rng
            )
        if value_memory.size != self._levels:
            raise ConfigurationError(
                f"value_memory has {value_memory.size} rows, expected levels={self._levels}"
            )
        if value_memory.dimension != dimension:
            raise ConfigurationError(
                f"value_memory dimension {value_memory.dimension} != encoder dimension {dimension}"
            )
        self._value_memory = value_memory
        # Cached for the sparse path: Σ_p pos_p, an integer accumulator
        # (computed from a transient materialisation when rematerialized).
        self._position_sum = self._position_memory.vectors.sum(axis=0, dtype=np.int64)

    # -- introspection ---------------------------------------------------
    @property
    def dimension(self) -> int:
        return self._space.dimension

    @property
    def shape(self) -> tuple[int, int]:
        """Expected image shape ``(H, W)``."""
        return self._shape

    @property
    def levels(self) -> int:
        """Number of grey levels in the value memory."""
        return self._levels

    @property
    def position_memory(self) -> ItemMemory:
        """Codebook of per-pixel position hypervectors (``H*W`` rows)."""
        return self._position_memory

    @property
    def value_memory(self) -> ItemMemory:
        """Codebook of per-grey-level value hypervectors."""
        return self._value_memory

    @property
    def codebook(self) -> str:
        """Codebook storage kind: ``"materialized"`` or ``"rematerialized"``."""
        return codebook_kind(self._position_memory)

    # -- quantisation ------------------------------------------------------
    def quantize(self, images: np.ndarray) -> np.ndarray:
        """Map grey values in [0, 255] to level indices ``0..levels-1``.

        With the default 256 levels this is plain rounding, so integer
        images pass through unchanged.
        """
        arr = as_image_batch(images, shape=self._shape)
        idx = np.rint(arr * ((self._levels - 1) / 255.0)).astype(np.int64)
        return idx

    # -- encoding ----------------------------------------------------------
    def encode(self, item: np.ndarray) -> np.ndarray:
        """Encode one image into a bipolar ``(D,)`` hypervector."""
        return self.encode_batch(np.asarray(item)[None] if np.asarray(item).ndim == 2 else item)[0]

    def encode_batch(self, items: np.ndarray) -> np.ndarray:
        """Encode ``(n, H, W)`` images into an ``(n, D)`` bipolar stack.

        Tie-breaking for zero accumulator components (Eq. 1) is
        deterministic here: a component that sums to exactly zero maps
        to +1.  Determinism matters because the fuzzer re-encodes the
        same image many times; random tie-breaking would make
        predictions flicker without any input change, breaking the
        differential oracle.  With D = 10 000 and 784 summands, exact
        zeros are rare enough (<1 % of components) that this choice is
        immaterial to accuracy.
        """
        return self.hvs_from_accumulators(self.accumulate_batch(items))

    def hvs_from_accumulators(self, accumulators: np.ndarray) -> np.ndarray:
        """Eq. 1 binarization of raw accumulators (``encode_batch``'s rule).

        Exposed so incremental encoders of hypervectors (the batched
        fuzzing engine) apply exactly this tie-breaking, rather than
        re-implementing it.
        """
        return bipolar_sign(accumulators)

    def accumulate_batch(self, items: np.ndarray) -> np.ndarray:
        """Return raw integer accumulators ``(n, D)`` (pre-Eq.-1 sums)."""
        images = as_image_batch(items, shape=self._shape)
        level_idx = self.quantize(images)
        n = images.shape[0]
        flat = level_idx.reshape(n, -1)
        if self._sparse_background:
            return self._accumulate_sparse(flat)
        return self._accumulate_dense(flat)

    def accumulate_delta(
        self,
        level_batch: np.ndarray,
        parent_levels: np.ndarray,
        parent_accumulators: np.ndarray,
        *,
        result_dtype: Optional[type] = None,
    ) -> np.ndarray:
        """Accumulators of children given their parents' accumulators.

        The fuzzing loop encodes *mutants of known seeds*, and a mutant
        shares most quantised pixel levels with its parent.  Since the
        accumulator is a plain sum over pixels, the child's accumulator
        is the parent's plus a correction over only the *changed*
        pixels::

            acc(child) = acc(parent) + Σ_{p: c_p ≠ s_p} pos_p ⊛ (val[c_p] − val[s_p])

        The algebra is exact in integers, so the result is bit-identical
        to :meth:`accumulate_batch` on the children — at a fraction of
        the work when few levels change (``rand`` flips ~8 pixels of
        784; even ``gauss`` leaves ~half the levels untouched).

        Parameters
        ----------
        level_batch:
            ``(n, H*W)`` quantised child levels (see :meth:`quantize`).
        parent_levels:
            ``(n, H*W)`` quantised levels of each child's parent.
        parent_accumulators:
            ``(n, D)`` integer accumulators of the parents.
        result_dtype:
            Output dtype; default int64 (the public contract).  Callers
            whose accumulator storage is already exact — any dtype that
            can hold ``±H·W``, like the engine seed pool's compact
            int16 — may pass it to keep the whole delta in that dtype,
            which cuts the block's memory traffic ~4× with bit-equal
            results (the algebra is exact in any sufficient dtype).

        Returns
        -------
        ``(n, D)`` accumulators in *result_dtype*, elementwise equal to
        ``accumulate_batch`` applied to the children directly.
        """
        levels = np.asarray(level_batch)
        parents = np.asarray(parent_levels)
        if levels.shape != parents.shape or levels.ndim != 2:
            raise EncodingError(
                f"level_batch {levels.shape} and parent_levels {parents.shape} "
                "must both be (n, H*W)"
            )
        n_pixels = self._shape[0] * self._shape[1]
        if levels.shape[1] != n_pixels:
            raise EncodingError(
                f"level rows have {levels.shape[1]} pixels, expected {n_pixels}"
            )
        accs = np.asarray(parent_accumulators)
        if accs.shape != (levels.shape[0], self.dimension):
            raise EncodingError(
                f"parent_accumulators {accs.shape} must be "
                f"(n={levels.shape[0]}, D={self.dimension})"
            )
        # One fused ragged scatter over the whole block: the changed
        # (child, pixel) pairs become flat COO indices, codebook rows
        # are gathered once (deduped when rematerialized), and the
        # ±2-bounded corrections are segment-summed per child.  |each
        # correction term| <= 2, so int16 partial sums are exact up to
        # 16383 changed pixels; larger blocks widen to int64 rather
        # than silently wrapping.
        return fused_delta_into(
            accs.astype(result_dtype or np.int64, copy=True),
            self._position_memory,
            self._value_memory,
            levels,
            parents,
            int16_safe=np.iinfo(np.int16).max // 2,
        )

    # -- internals -----------------------------------------------------
    def _accumulate_dense(self, flat_levels: np.ndarray) -> np.ndarray:
        # Level-grouped blocked kernel: one call for the whole batch
        # instead of one P×D einsum per image.
        return grouped_products(
            self._position_memory.vectors, self._value_memory.vectors, flat_levels
        )

    def _accumulate_sparse(self, flat_levels: np.ndarray) -> np.ndarray:
        # The sparse rewrite *is* a delta from the all-background image:
        # acc = base + Σ_{p∉bg} pos_p ⊛ (val_{x_p} − val_0), so the same
        # fused correction kernel covers it — only the non-background
        # (child, pixel) pairs are ever gathered.
        val0 = self._value_memory.take(0).astype(np.int64)
        base = self._position_sum * val0  # Σ_p pos_p ⊛ val_0
        out = np.empty((flat_levels.shape[0], self.dimension), dtype=np.int64)
        out[:] = base
        return fused_delta_into(
            out,
            self._position_memory,
            self._value_memory,
            flat_levels,
            np.zeros_like(flat_levels),
            int16_safe=np.iinfo(np.int16).max // 2,
        )

    def __repr__(self) -> str:
        return (
            f"PixelEncoder(shape={self._shape}, levels={self._levels}, "
            f"dimension={self.dimension})"
        )
