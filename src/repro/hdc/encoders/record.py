"""Record-based encoder for generic feature vectors.

This is the standard HDC "record" encoding used by VoiceHD and the
biosignal models the paper cites ([14], [15]): each feature *slot* gets
a random ID hypervector, each quantised feature *value* gets a value
hypervector, and the record HV is the re-bipolarised sum of
``id_f ⊛ val_{x_f}`` over features.  It generalises the image encoder
(positions = feature slots) to arbitrary fixed-length numeric records,
letting HDTest fuzz non-image HDC models through the same interface.

Like the pixel and n-gram encoders, it exposes the full incremental
surface the fuzzing engines probe for
(:data:`~repro.fuzz.domains.DELTA_ENCODER_API`): the accumulator is a
plain sum over feature slots, so a mutant's accumulator is its
parent's plus a correction over only the *changed* slots
(:meth:`RecordEncoder.accumulate_delta`, exact in integers and
therefore bit-identical to scratch encoding) — the batched fast path
for voice/record campaigns.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, EncodingError
from repro.hdc.encoders._blocked import (
    bipolar_sign,
    fused_delta_into,
    grouped_products,
)
from repro.hdc.encoders.base import Encoder
from repro.hdc.item_memory import (
    ItemMemory,
    LevelMemory,
    check_codebook_kind,
    codebook_kind,
    make_item_memory,
)
from repro.hdc.spaces import DEFAULT_DIMENSION, BipolarSpace
from repro.utils.rng import RngLike, ensure_rng, spawn
from repro.utils.validation import check_positive_int

__all__ = ["RecordEncoder"]


class RecordEncoder(Encoder):
    """Encode fixed-length numeric records as ``Σ_f id_f ⊛ val_{q(x_f)}``.

    Parameters
    ----------
    n_features:
        Record length (number of feature slots).
    levels:
        Number of quantisation levels for feature values.
    value_range:
        ``(low, high)`` range that feature values are clipped to before
        quantisation.
    level_encoding:
        ``"random"`` for i.i.d. value HVs (the paper's choice for
        images) or ``"linear"`` for ordinal
        :class:`~repro.hdc.item_memory.LevelMemory` rows.
    dimension:
        Hypervector dimensionality.
    rng:
        Seed/generator for the codebooks.
    id_memory / value_memory:
        Optional pre-built codebooks (shared-codebook ensembles,
        materialised twins); sizes must match ``n_features`` / ``levels``.
    codebook:
        ``"materialized"`` (default) stores both codebooks as arrays;
        ``"rematerialized"`` regenerates rows on demand from 64-bit
        seeds.  Rematerialization draws i.i.d. rows, so it requires
        ``level_encoding="random"`` — a :class:`LevelMemory`'s rows are
        sequentially constructed and cannot be regenerated row-wise.
    """

    def __init__(
        self,
        n_features: int,
        *,
        levels: int = 64,
        value_range: tuple[float, float] = (0.0, 1.0),
        level_encoding: str = "linear",
        dimension: int = DEFAULT_DIMENSION,
        rng: RngLike = None,
        id_memory: Optional[ItemMemory] = None,
        value_memory: Optional[ItemMemory] = None,
        codebook: str = "materialized",
    ) -> None:
        self._n_features = check_positive_int(n_features, "n_features")
        self._levels = check_positive_int(levels, "levels")
        low, high = float(value_range[0]), float(value_range[1])
        if not low < high:
            raise ConfigurationError(f"value_range must satisfy low < high, got {value_range}")
        self._value_range = (low, high)
        self._space = BipolarSpace(dimension)
        check_codebook_kind(codebook)
        if codebook == "rematerialized" and level_encoding != "random":
            raise ConfigurationError(
                "codebook='rematerialized' requires level_encoding='random' "
                "(LevelMemory rows are sequentially constructed and cannot "
                "be regenerated row-wise)"
            )

        id_rng, val_rng = spawn(ensure_rng(rng), 2)
        if id_memory is not None:
            self._check_memory(id_memory, self._n_features, "id_memory")
            self._id_memory = id_memory
        else:
            self._id_memory = make_item_memory(
                codebook, self._n_features, self._space, rng=id_rng
            )
        if value_memory is not None:
            self._check_memory(value_memory, self._levels, "value_memory")
            self._value_memory: ItemMemory = value_memory
        elif level_encoding == "random":
            self._value_memory = make_item_memory(
                codebook, self._levels, self._space, rng=val_rng
            )
        elif level_encoding == "linear":
            self._value_memory = LevelMemory(self._levels, self._space, rng=val_rng)
        else:
            raise ConfigurationError(
                f"level_encoding must be 'random' or 'linear', got {level_encoding!r}"
            )
        self._level_encoding = level_encoding

    def _check_memory(self, memory: ItemMemory, size: int, name: str) -> None:
        if memory.size != size:
            raise ConfigurationError(
                f"{name} has {memory.size} rows, expected {size}"
            )
        if memory.dimension != self.dimension:
            raise ConfigurationError(
                f"{name} dimension {memory.dimension} != encoder dimension "
                f"{self.dimension}"
            )

    # -- introspection ---------------------------------------------------
    @property
    def dimension(self) -> int:
        return self._space.dimension

    @property
    def n_features(self) -> int:
        """Number of feature slots per record."""
        return self._n_features

    @property
    def levels(self) -> int:
        """Number of quantisation levels."""
        return self._levels

    @property
    def value_range(self) -> tuple[float, float]:
        """Clipping range applied before quantisation."""
        return self._value_range

    @property
    def id_memory(self) -> ItemMemory:
        """Per-feature ID codebook."""
        return self._id_memory

    @property
    def value_memory(self) -> ItemMemory:
        """Per-level value codebook."""
        return self._value_memory

    @property
    def codebook(self) -> str:
        """Codebook storage kind (by the ID memory's actual storage)."""
        return codebook_kind(self._id_memory)

    # -- quantisation ------------------------------------------------------
    def quantize(self, records: np.ndarray) -> np.ndarray:
        """Clip to ``value_range`` and map to integer levels."""
        arr = np.asarray(records, dtype=np.float64)
        low, high = self._value_range
        arr = np.clip(arr, low, high)
        scaled = (arr - low) / (high - low)
        return np.rint(scaled * (self._levels - 1)).astype(np.int64)

    # -- encoding ----------------------------------------------------------
    def encode(self, item: np.ndarray) -> np.ndarray:
        arr = np.asarray(item, dtype=np.float64)
        if arr.ndim != 1:
            raise EncodingError(f"record must be 1-D, got shape {arr.shape}")
        return self.encode_batch(arr[None])[0]

    def encode_batch(self, items: np.ndarray) -> np.ndarray:
        return self.hvs_from_accumulators(self.accumulate_batch(items))

    def hvs_from_accumulators(self, accumulators: np.ndarray) -> np.ndarray:
        """Eq. 1 bipolarisation of raw accumulators (``encode_batch``'s rule).

        A component summing to exactly zero maps to +1, deterministically
        — the same tie policy as the pixel encoder, for the same reason
        (the differential oracle re-encodes unchanged inputs).
        """
        return bipolar_sign(accumulators)

    def accumulate_batch(self, items: np.ndarray) -> np.ndarray:
        """Raw integer accumulators ``(n, D)`` (pre-Eq.-1 feature sums)."""
        arr = np.asarray(items, dtype=np.float64)
        if arr.ndim == 1:
            arr = arr[None]
        if arr.ndim != 2 or arr.shape[1] != self._n_features:
            raise EncodingError(
                f"records must be (n, {self._n_features}), got shape {arr.shape}"
            )
        if np.isnan(arr).any():
            raise EncodingError("records contain NaN values")
        levels = self.quantize(arr)
        # Level-grouped blocked kernel: one call for the whole batch
        # instead of one F×D einsum per record.
        return grouped_products(
            self._id_memory.vectors, self._value_memory.vectors, levels
        )

    def accumulate_delta(
        self,
        level_batch: np.ndarray,
        parent_levels: np.ndarray,
        parent_accumulators: np.ndarray,
        *,
        result_dtype: Optional[type] = None,
    ) -> np.ndarray:
        """Accumulators of children given their parents' accumulators.

        A record mutant shares most quantised feature levels with its
        parent, and the accumulator is a plain sum over feature slots::

            acc(child) = acc(parent) + Σ_{f: c_f ≠ s_f} id_f ⊛ (val[c_f] − val[s_f])

        The algebra is exact in integers, so the result is bit-identical
        to :meth:`accumulate_batch` on the children — at a fraction of
        the work when few levels change (``record_rand`` perturbs ~4 of
        the features; ``record_gauss`` leaves the quantised level of
        many slots untouched).  Same parameter conventions as
        :meth:`repro.hdc.encoders.image.PixelEncoder.accumulate_delta`
        with feature slots in place of pixels (including the compact
        *result_dtype* fast path for callers whose accumulator storage
        is already exact).
        """
        levels = np.asarray(level_batch)
        parents = np.asarray(parent_levels)
        if levels.shape != parents.shape or levels.ndim != 2:
            raise EncodingError(
                f"level_batch {levels.shape} and parent_levels {parents.shape} "
                "must both be (n, n_features)"
            )
        if levels.shape[1] != self._n_features:
            raise EncodingError(
                f"level rows have {levels.shape[1]} features, expected "
                f"{self._n_features}"
            )
        accs = np.asarray(parent_accumulators)
        if accs.shape != (levels.shape[0], self.dimension):
            raise EncodingError(
                f"parent_accumulators {accs.shape} must be "
                f"(n={levels.shape[0]}, D={self.dimension})"
            )
        # One fused ragged scatter over the whole block (see
        # PixelEncoder.accumulate_delta): changed (child, slot) pairs as
        # flat COO indices, codebook rows gathered once, ±2-bounded
        # corrections segment-summed per child.  int16 partial sums are
        # exact up to 16383 changed slots; wider blocks widen to int64.
        return fused_delta_into(
            accs.astype(result_dtype or np.int64, copy=True),
            self._id_memory,
            self._value_memory,
            levels,
            parents,
            int16_safe=np.iinfo(np.int16).max // 2,
        )

    def __repr__(self) -> str:
        return (
            f"RecordEncoder(n_features={self._n_features}, levels={self._levels}, "
            f"level_encoding={self._level_encoding!r}, dimension={self.dimension})"
        )
