"""Fused cross-child encode kernels shared by the encoder families.

Every delta encoder used to loop over children in Python — one gather,
one multiply, one reduction *per child* — which PR-7 phase telemetry
showed was ~90 % of batched campaign wall time.  The helpers here turn
those loops into O(1) kernel calls per block:

* :func:`fused_delta_into` — the ragged-scatter correction kernel: the
  ``levels != parents`` mask over the whole ``(n, P)`` block becomes
  flat (child, pixel) COO indices, codebook rows are gathered once
  (deduped for rematerialized codebooks, so each touched row is
  generated once per block), and corrections are segment-summed into
  the ``(n, D)`` accumulator block with exact integer algebra.
* :func:`grouped_products` — the blocked scratch-encode kernel: the
  per-child ``Σ_p pos_p ⊛ val[level_p]`` einsum becomes a level-grouped
  identity ``Σ_l val_l ⊛ (Σ_{p: level_p=l} pos_p)`` — P×D multiply-adds
  turn into int8 segmented sums plus at most ``min(L, P)``×D
  multiplies per child, batched over children.
* :func:`level_histogram` — per-child level occupancy counts, the
  matmul half of the binary XOR identity.

All kernels are exact in integers, so results are elementwise equal to
the per-child loops they replace (property-tested at the int16
partial-sum boundaries in ``tests/hdc/test_fused_kernels.py``).
Blocks are internally chunked so peak temporary memory stays bounded
regardless of how many children are fused into one call.
"""

from __future__ import annotations

import numpy as np

from repro.hdc.item_memory import RematerializedItemMemory

__all__ = [
    "BLOCK_ELEMS",
    "bipolar_sign",
    "fused_delta_into",
    "gather_rows",
    "grouped_products",
    "level_histogram",
]


def bipolar_sign(accumulators: np.ndarray) -> np.ndarray:
    """Eq. 1 binarization ``acc >= 0 → +1 else −1`` as compact int8.

    Semantically ``np.where(accs >= 0, 1, -1).astype(np.int8)``, but
    without materializing the intermediate at the accumulator's (wide)
    dtype: the comparison writes straight into the int8 result through
    a bool view, and ``2x − 1`` maps {0, 1} onto {−1, +1} in place.
    On the engine's (n, 10 000) int64 blocks this is ~5× less memory
    traffic, and thresholding was the single largest item in the encode
    phase profile after the kernels were fused.
    """
    accs = np.asarray(accumulators)
    out = np.empty(accs.shape, dtype=np.int8)
    np.greater_equal(accs, 0, out=out.view(np.bool_))
    np.multiply(out, 2, out=out)
    np.subtract(out, 1, out=out)
    return out

#: Elements (int8) a fused kernel may materialize per chunk.  Sized so
#: a chunk's working set (three gathered row blocks, ~1 MB each) stays
#: L2-resident: larger chunks turn the gather→subtract→multiply→reduce
#: pipeline into repeated DRAM passes and measure up to ~2× slower on
#: dense delta blocks.  Chunks align to child boundaries, so a single
#: child larger than the budget still encodes (using exactly the memory
#: a per-child loop did).
BLOCK_ELEMS = 1 << 20


def gather_rows(memory, rows: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    """``memory.take(rows)``, generating each distinct row once.

    Materialized codebooks fancy-index directly (a dedupe pass would
    only add a second copy); rematerialized codebooks regenerate rows
    from their PRF on every ``take``, so gathering the unique rows and
    fanning out with the inverse map makes each touched codebook row
    exist once per block instead of once per (child, pixel) occurrence.

    *out*, when given, receives the gathered rows (first ``len(rows)``
    rows of it) — the chunked kernels pass one reused buffer so each
    chunk does not page-fault a fresh multi-MB allocation.  The ``out=``
    takes use ``mode="clip"``: with the default ``"raise"`` numpy drops
    to a buffered bounds-checking path that measures ~3× slower, and
    every index here is valid by construction (levels come from
    ``quantize``, columns from ``nonzero`` of a level mask).
    """
    if isinstance(memory, RematerializedItemMemory):
        uniq, inv = np.unique(rows, return_inverse=True)
        generated = memory.take(uniq)
        if out is None:
            return generated[inv]
        np.take(generated, inv, axis=0, out=out[: rows.size], mode="clip")
        return out[: rows.size]
    if out is None:
        return memory.take(rows)
    np.take(memory.vectors, rows, axis=0, out=out[: rows.size], mode="clip")
    return out[: rows.size]


def _child_chunks(bounds: np.ndarray, n: int, max_rows: int):
    """Yield ``(lo, hi)`` child ranges whose flat entries fit *max_rows*."""
    lo = 0
    while lo < n:
        hi = lo + 1
        while hi < n and bounds[hi + 1] - bounds[lo] <= max_rows:
            hi += 1
        yield lo, hi
        lo = hi


def _segment_breaks(ids: np.ndarray) -> np.ndarray:
    """Boolean mask marking the first entry of each run in *ids*."""
    breaks = np.empty(ids.size, dtype=bool)
    breaks[0] = True
    np.not_equal(ids[1:], ids[:-1], out=breaks[1:])
    return breaks


def segment_reduce(
    block: np.ndarray, starts: np.ndarray, sum_dtype
) -> np.ndarray:
    """Column sums of consecutive row segments of *block*.

    Semantically ``np.add.reduceat(block, starts, axis=0, dtype=...)``,
    but ``reduceat`` has no vectorised inner loop — it pays ~30× per
    element over ``np.add.reduce`` at these shapes — so each segment is
    reduced with one vectorised ``reduce`` instead.  The Python-level
    loop is per *segment* (per child), not per row, and measures
    10–40× faster than ``reduceat`` across the engine's workload shapes
    (a few long segments through thousands of short ones).
    """
    # (np.r_ would read nicer but costs ~30 µs per call — this helper
    # runs once per chunk on the hot path.)
    ends = np.empty_like(starts)
    ends[:-1] = starts[1:]
    ends[-1] = block.shape[0]
    out = np.empty((starts.size, block.shape[1]), dtype=sum_dtype)
    for i in range(starts.size):
        np.add.reduce(
            block[starts[i] : ends[i]], axis=0, dtype=sum_dtype, out=out[i]
        )
    return out


#: Reused int8 gather buffers, keyed by hypervector dimension.  A fused
#: call gathers into the same three buffers every chunk — and every
#: *call* reuses the process-wide set, because a fresh multi-MB
#: ``np.empty`` per call is mmap'd and page-faults on first touch,
#: which profiling showed dominating sparse engine iterations.  The
#: package is single-threaded per process (parallelism is fork-based),
#: so one cache per process is safe.
_GATHER_BUFFERS: dict[int, list[np.ndarray]] = {}


def _chunk_buffers(n_rows: int, dimension: int) -> list[np.ndarray]:
    bufs = _GATHER_BUFFERS.get(dimension)
    if bufs is None or bufs[0].shape[0] < n_rows:
        bufs = [np.empty((n_rows, dimension), dtype=np.int8) for _ in range(3)]
        _GATHER_BUFFERS[dimension] = bufs
    return bufs


def fused_delta_into(
    out: np.ndarray,
    pos_memory,
    val_memory,
    levels: np.ndarray,
    parents: np.ndarray,
    *,
    int16_safe: int,
    binary: bool = False,
) -> np.ndarray:
    """Scatter-add child-vs-parent corrections into *out*, one ragged block.

    *out* is the ``(n, D)`` int64 block already holding each child's
    parent accumulator; rows whose levels equal their parent's are left
    untouched.  Corrections are ``pos_p ⊛ (val[c_p] − val[s_p])`` for
    bipolar codebooks and ``(pos_p ⊕ val[c_p]) − (pos_p ⊕ val[s_p])``
    for binary ones — both exact in integers, so the result is
    elementwise equal to the per-child loop this replaces.

    Children are sorted by changed count and packed into rectangular
    ``(m, kmax, D)`` chunks (pad lanes zeroed before the reduction), so
    each chunk's per-child sums collapse into a single vectorised
    ``np.add.reduce`` over the middle axis — mutators that change a
    fixed number of components per child (``rand``, ``row_col_rand``)
    pad nothing at all, and near-uniform blocks pad a sliver.

    *int16_safe* is the family's partial-sum exactness bound (the
    largest per-child changed count whose correction sum provably fits
    int16); blocks staying under it use compact int16 segment sums,
    larger ones widen to int64 rather than silently wrapping.
    """
    mask = levels != parents
    counts = np.count_nonzero(mask, axis=1)
    if not counts.any():
        return out
    rows, cols = np.nonzero(mask)
    new_lv = levels[mask]
    old_lv = parents[mask]
    dimension = out.shape[1]
    sum_dtype = np.int16 if int(counts.max()) <= int16_safe else np.int64
    bounds = np.concatenate(([0], np.cumsum(counts)))
    active = np.flatnonzero(counts)
    order = active[np.argsort(counts[active], kind="stable")]
    budget = max(1, BLOCK_ELEMS // dimension)
    chunks = []  # (ids, kmax) rectangular chunk plans
    a = 0
    while a < order.size:
        b = a + 1
        # counts are sorted, so counts[order[b]] is the running max and
        # (b + 1 - a) * it bounds the padded chunk size.
        while b < order.size and (b + 1 - a) * int(counts[order[b]]) <= budget:
            b += 1
        chunks.append((order[a:b], int(counts[order[b - 1]])))
        a = b
    buf_rows = max(ids.size * kmax for ids, kmax in chunks)
    pos_buf, new_buf, old_buf = _chunk_buffers(buf_rows, dimension)
    for ids, kmax in chunks:
        m = ids.size
        k = counts[ids]
        # Flat COO positions of each child's changed entries, padded to
        # kmax per child; pad lanes repeat the child's last entry (any
        # valid index works — they are zeroed before the reduction).
        lane = np.arange(kmax, dtype=np.int64)
        src = bounds[ids][:, None] + np.minimum(lane[None, :], k[:, None] - 1)
        src = src.ravel()
        pos_rows = gather_rows(pos_memory, cols[src], out=pos_buf)
        corr = gather_rows(val_memory, new_lv[src], out=new_buf)
        old_rows = gather_rows(val_memory, old_lv[src], out=old_buf)
        if binary:
            # {0,1} rows: each correction component lands in {-1, 0, 1}.
            np.bitwise_xor(pos_rows, corr, out=corr)
            np.bitwise_xor(pos_rows, old_rows, out=old_rows)
            np.subtract(corr, old_rows, out=corr)
        else:
            # ±1 rows: differences are {-2, 0, 2} and so are the products.
            np.subtract(corr, old_rows, out=corr)
            np.multiply(pos_rows, corr, out=corr)
        corr = corr.reshape(m, kmax, dimension)
        pad = lane[None, :] >= k[:, None]
        if pad.any():
            corr[pad] = 0
        # Per-chunk partial-sum dtype: components are ±2-bounded, so a
        # chunk summing kmax lanes fits int8 whenever 2·kmax ≤ 127 —
        # sparse mutators (a handful of changed entries) halve the
        # reduce-output and scatter-read traffic this way.  The scatter
        # add itself upcasts to ``out``'s dtype, which is exact.
        chunk_dtype = np.int8 if 2 * kmax <= np.iinfo(np.int8).max else sum_dtype
        out[ids] += np.add.reduce(corr, axis=1, dtype=chunk_dtype)
    return out


def grouped_products(
    pos_vectors: np.ndarray, val_vectors: np.ndarray, levels_block: np.ndarray
) -> np.ndarray:
    """``Σ_p pos_p ⊛ val[levels[i, p]]`` for every child *i*, level-grouped.

    Sorting each child's pixels by level turns the P×D gather-multiply
    into pure int8 segmented sums of position rows followed by one
    multiply per distinct (child, level) segment — the blocked identity
    ``acc_i = Σ_l val_l ⊛ (Σ_{p: level_ip=l} pos_p)``.  Exact integer
    algebra throughout, so the result equals the einsum formulation
    elementwise.  Works for ±1 and {0, 1} codebooks alike (segment sums
    are bounded by the pixel count either way).
    """
    n, n_pixels = levels_block.shape
    dimension = pos_vectors.shape[1]
    out = np.empty((n, dimension), dtype=np.int64)
    if n == 0:
        return out
    sum_dtype = np.int16 if n_pixels <= np.iinfo(np.int16).max else np.int64
    chunk = max(1, BLOCK_ELEMS // (n_pixels * dimension))
    for lo in range(0, n, chunk):
        lv = levels_block[lo : lo + chunk]
        c = lv.shape[0]
        order = np.argsort(lv, axis=1, kind="stable")
        sorted_lv = np.take_along_axis(lv, order, axis=1).ravel()
        child_ids = np.repeat(np.arange(c), n_pixels)
        breaks = _segment_breaks(sorted_lv)
        breaks[1:] |= child_ids[1:] != child_ids[:-1]
        starts = np.flatnonzero(breaks)
        seg = segment_reduce(pos_vectors[order.ravel()], starts, sum_dtype)
        prod = seg * val_vectors[sorted_lv[starts]]
        child_starts = np.flatnonzero(_segment_breaks(child_ids[starts]))
        out[lo : lo + c] = segment_reduce(prod, child_starts, np.int64)
    return out


def level_histogram(levels_block: np.ndarray, n_levels: int) -> np.ndarray:
    """Per-child level occupancy counts ``(n, L)`` in one bincount."""
    n = levels_block.shape[0]
    offsets = levels_block + (np.arange(n, dtype=np.int64)[:, None] * n_levels)
    return np.bincount(offsets.ravel(), minlength=n * n_levels).reshape(n, n_levels)
