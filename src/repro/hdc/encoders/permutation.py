"""Permutation-based image encoder — an alternative HDC model structure.

The paper stresses that HDC encoding "is largely unique for different
applications" (Sec. I) and that HDTest generalises across model
structures because it only needs HV distances (Sec. V-E).  This encoder
is that second structure for images: instead of binding a *random
position HV* per pixel (the paper's scheme), spatial identity comes
from the permutation operation ρ —

    ImgHV = bipolarize( Σ_p  ρ^p( val[x_p] ) )

i.e. the value HV of pixel ``p`` is cyclically shifted by ``p`` before
bundling.  ρ preserves pairwise distances and maps random HVs to
(pseudo-)orthogonal ones, so shifted copies act exactly like per-pixel
codebooks while storing a single value memory — the rematerialisation
trick of Schmuck et al. (the paper's ref. [18]).

Functionally interchangeable with
:class:`~repro.hdc.encoders.image.PixelEncoder` everywhere in the
library (model, fuzzer, defense); the ablation bench puts both under
HDTest to show the fuzzer is agnostic to the encoding structure.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.hdc.encoders.base import Encoder
from repro.hdc.item_memory import ItemMemory
from repro.hdc.spaces import DEFAULT_DIMENSION, BipolarSpace
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import as_image_batch, check_positive_int

__all__ = ["PermutationImageEncoder"]


class PermutationImageEncoder(Encoder):
    """Encode images as ``Σ_p ρ^p(val[x_p])`` over a single value codebook.

    Parameters
    ----------
    shape:
        Image shape ``(H, W)``.
    levels:
        Grey-level count of the value memory.
    dimension:
        Hypervector dimensionality.
    value_memory:
        Optional pre-built value codebook (``levels`` rows).
    rng:
        Seed/generator for the codebook.
    """

    def __init__(
        self,
        shape: tuple[int, int] = (28, 28),
        *,
        levels: int = 256,
        dimension: int = DEFAULT_DIMENSION,
        value_memory: Optional[ItemMemory] = None,
        rng: RngLike = None,
    ) -> None:
        if len(shape) != 2:
            raise ConfigurationError(f"shape must be (H, W), got {shape}")
        self._shape = (check_positive_int(shape[0], "H"), check_positive_int(shape[1], "W"))
        self._levels = check_positive_int(levels, "levels")
        self._space = BipolarSpace(dimension)
        if value_memory is None:
            value_memory = ItemMemory(self._levels, self._space, rng=ensure_rng(rng))
        if value_memory.size != self._levels:
            raise ConfigurationError(
                f"value_memory has {value_memory.size} rows, expected {self._levels}"
            )
        if value_memory.dimension != dimension:
            raise ConfigurationError(
                f"value_memory dimension {value_memory.dimension} != {dimension}"
            )
        self._value_memory = value_memory
        n_pixels = self._shape[0] * self._shape[1]
        if n_pixels > dimension:
            raise ConfigurationError(
                f"dimension ({dimension}) must be >= number of pixels "
                f"({n_pixels}) for distinct cyclic shifts"
            )
        # Precomputed gather indices: row p holds (arange(D) - p) % D, so
        # rolled[p] = vec[gather[p]] == np.roll(vec, p).
        d = dimension
        self._gather = (np.arange(d)[None, :] - np.arange(n_pixels)[:, None]) % d

    # -- introspection ---------------------------------------------------
    @property
    def dimension(self) -> int:
        return self._space.dimension

    @property
    def shape(self) -> tuple[int, int]:
        """Expected image shape ``(H, W)``."""
        return self._shape

    @property
    def levels(self) -> int:
        """Grey-level count."""
        return self._levels

    @property
    def value_memory(self) -> ItemMemory:
        """The single value codebook (no position memory exists)."""
        return self._value_memory

    # -- encoding ----------------------------------------------------------
    def quantize(self, images: np.ndarray) -> np.ndarray:
        """Map grey values in [0, 255] to level indices."""
        arr = as_image_batch(images, shape=self._shape)
        return np.rint(arr * ((self._levels - 1) / 255.0)).astype(np.int64)

    def encode(self, item: np.ndarray) -> np.ndarray:
        arr = np.asarray(item)
        return self.encode_batch(arr[None] if arr.ndim == 2 else arr)[0]

    def encode_batch(self, items: np.ndarray) -> np.ndarray:
        """Encode ``(n, H, W)`` images into ``(n, D)`` bipolar HVs.

        Zero accumulator components quantise to +1 (deterministic, for
        the same oracle-stability reason as
        :meth:`repro.hdc.encoders.image.PixelEncoder.encode_batch`).
        """
        levels = self.quantize(items)
        n = levels.shape[0]
        flat = levels.reshape(n, -1)
        vals = self._value_memory.vectors
        out = np.empty((n, self.dimension), dtype=np.int8)
        for i in range(n):
            pixel_hvs = vals[flat[i]]  # (P, D)
            shifted = np.take_along_axis(pixel_hvs, self._gather, axis=1)
            acc = shifted.sum(axis=0, dtype=np.int64)
            out[i] = np.where(acc >= 0, 1, -1)
        return out

    def __repr__(self) -> str:
        return (
            f"PermutationImageEncoder(shape={self._shape}, levels={self._levels}, "
            f"dimension={self.dimension})"
        )
