"""Encoder interface.

An encoder maps raw inputs (images, feature records, strings, …) to
bipolar hypervectors.  The fuzzer and the classifier only rely on this
interface, which is what makes HDTest "naturally extendable to other
HDC model structures" (Sec. V-E): plugging in a different encoder is the
whole port.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

import numpy as np

__all__ = ["Encoder"]


class Encoder(ABC):
    """Maps raw inputs to bipolar hypervectors of a fixed dimension."""

    @property
    @abstractmethod
    def dimension(self) -> int:
        """Dimensionality of produced hypervectors."""

    @abstractmethod
    def encode(self, item: Any) -> np.ndarray:
        """Encode a single input into a bipolar ``(D,)`` int8 hypervector."""

    def encode_batch(self, items: Sequence[Any]) -> np.ndarray:
        """Encode a batch of inputs into an ``(n, D)`` int8 stack.

        The default implementation loops over :meth:`encode`; subclasses
        with vectorisable inputs (images) override it.
        """
        encoded = [self.encode(item) for item in items]
        if not encoded:
            return np.empty((0, self.dimension), dtype=np.int8)
        return np.stack(encoded).astype(np.int8, copy=False)
