"""Associative memory (AM): one class hypervector per label (Sec. III-B).

Training sums every training image's HV into its class accumulator and
re-bipolarises (Eq. 1).  Querying computes cosine similarity between a
query HV and every (bipolarised) class HV and predicts the arg-max
(Sec. III-C).

The AM keeps its integer *accumulators* alongside the bipolar class HVs
so it supports the paper's defense case study (Sec. V-D): retraining
"updates the reference HVs" by adding further HVs into the accumulators
(optionally subtracting from a wrongly-predicted class), then
re-bipolarising.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError, NotTrainedError
from repro.hdc.similarity import cosine_matrix
from repro.utils.validation import check_labels, check_positive_int

__all__ = ["AssociativeMemory"]


class AssociativeMemory:
    """Per-class hypervector store with accumulate / bipolarise / query.

    Parameters
    ----------
    n_classes:
        Number of classes (rows).
    dimension:
        Hypervector dimensionality.
    bipolar:
        If True (paper behaviour) queries run against bipolarised class
        HVs; if False, against the raw integer accumulators (a common
        HDC variant, kept for ablations).
    """

    def __init__(self, n_classes: int, dimension: int, *, bipolar: bool = True) -> None:
        self._n_classes = check_positive_int(n_classes, "n_classes")
        self._dimension = check_positive_int(dimension, "dimension")
        self._bipolar = bool(bipolar)
        self._accumulators = np.zeros((self._n_classes, self._dimension), dtype=np.int64)
        self._counts = np.zeros(self._n_classes, dtype=np.int64)
        self._class_hvs_cache: Optional[np.ndarray] = None

    # -- introspection ---------------------------------------------------
    @property
    def n_classes(self) -> int:
        """Number of classes."""
        return self._n_classes

    @property
    def dimension(self) -> int:
        """Hypervector dimensionality."""
        return self._dimension

    @property
    def bipolar(self) -> bool:
        """Whether queries use bipolarised class HVs."""
        return self._bipolar

    @property
    def counts(self) -> np.ndarray:
        """Number of HVs accumulated into each class (read-only copy)."""
        return self._counts.copy()

    @property
    def accumulators(self) -> np.ndarray:
        """Read-only view of the raw ``(n_classes, D)`` accumulators."""
        view = self._accumulators.view()
        view.flags.writeable = False
        return view

    @property
    def is_trained(self) -> bool:
        """True once at least one HV has been added to every class."""
        return bool((self._counts > 0).all())

    # -- updates ---------------------------------------------------------
    def add(self, hvs: np.ndarray, labels: np.ndarray) -> None:
        """Accumulate hypervectors *hvs* into the classes in *labels*."""
        hvs, labels = self._check_update(hvs, labels)
        np.add.at(self._accumulators, labels, hvs.astype(np.int64, copy=False))
        np.add.at(self._counts, labels, 1)
        self._class_hvs_cache = None

    def subtract(self, hvs: np.ndarray, labels: np.ndarray) -> None:
        """Subtract hypervectors from classes (perceptron-style update).

        Used by adaptive retraining: a misclassified sample's HV is
        added to its true class and subtracted from the wrong one, so
        the decision moves in one pass.  Counts are not decremented —
        they track *additions* for introspection, not a norm.
        """
        hvs, labels = self._check_update(hvs, labels)
        np.subtract.at(self._accumulators, labels, hvs.astype(np.int64, copy=False))
        self._class_hvs_cache = None

    def _check_update(self, hvs: np.ndarray, labels) -> tuple[np.ndarray, np.ndarray]:
        arr = np.asarray(hvs)
        if arr.ndim == 1:
            arr = arr[None, :]
        if arr.ndim != 2 or arr.shape[1] != self._dimension:
            raise DimensionMismatchError(
                f"hvs must be (n, {self._dimension}), got shape {arr.shape}"
            )
        labels_arr = check_labels(labels, arr.shape[0])
        if labels_arr.size and labels_arr.max() >= self._n_classes:
            raise ConfigurationError(
                f"label {labels_arr.max()} out of range for {self._n_classes} classes"
            )
        return arr, labels_arr

    # -- reference vectors -------------------------------------------------
    @property
    def class_hvs(self) -> np.ndarray:
        """The reference hypervectors used for querying.

        Bipolarised accumulators when ``bipolar=True`` (zero components
        map to +1, deterministically — see
        :meth:`repro.hdc.encoders.image.PixelEncoder.encode_batch` for
        why determinism is required), raw accumulators otherwise.
        """
        if self._class_hvs_cache is None:
            if self._bipolar:
                self._class_hvs_cache = np.where(self._accumulators >= 0, 1, -1).astype(np.int8)
            else:
                self._class_hvs_cache = self._accumulators.copy()
        return self._class_hvs_cache

    def reference_hv(self, label: int) -> np.ndarray:
        """The reference HV for one class (``AM[label]`` in the paper)."""
        if not 0 <= label < self._n_classes:
            raise ConfigurationError(f"label {label} out of range [0, {self._n_classes})")
        return self.class_hvs[label]

    # -- queries -----------------------------------------------------------
    def similarities(self, queries: np.ndarray) -> np.ndarray:
        """Cosine similarity of each query to every class HV → ``(n, C)``."""
        self._require_trained()
        return cosine_matrix(queries, self.class_hvs)

    def predict(self, queries: np.ndarray) -> np.ndarray:
        """Arg-max-similarity class for each query HV → ``(n,)`` int64."""
        return self.similarities(queries).argmax(axis=1).astype(np.int64)

    def margins(self, queries: np.ndarray) -> np.ndarray:
        """Top-1 minus top-2 similarity per query — a confidence proxy.

        Low margins flag the "vulnerable cases" of Sec. V-B: inputs the
        fuzzer flips with very few mutations.
        """
        sims = self.similarities(queries)
        if sims.shape[1] < 2:
            return np.zeros(sims.shape[0])
        part = np.partition(sims, -2, axis=1)
        return part[:, -1] - part[:, -2]

    def _require_trained(self) -> None:
        if not (self._counts > 0).any():
            raise NotTrainedError("associative memory has no trained classes yet")

    # -- persistence ---------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Arrays needed to reconstruct this AM exactly."""
        return {
            "accumulators": self._accumulators.copy(),
            "counts": self._counts.copy(),
            "bipolar": np.asarray(self._bipolar),
        }

    @classmethod
    def from_state_dict(cls, state: dict[str, np.ndarray]) -> "AssociativeMemory":
        """Inverse of :meth:`state_dict`."""
        acc = np.asarray(state["accumulators"], dtype=np.int64)
        if acc.ndim != 2:
            raise ConfigurationError(f"accumulators must be 2-D, got shape {acc.shape}")
        am = cls(acc.shape[0], acc.shape[1], bipolar=bool(np.asarray(state["bipolar"])))
        am._accumulators = acc
        am._counts = np.asarray(state["counts"], dtype=np.int64)
        return am

    def copy(self) -> "AssociativeMemory":
        """Deep copy (used by the defense to retrain without clobbering)."""
        return AssociativeMemory.from_state_dict(self.state_dict())

    def __repr__(self) -> str:
        return (
            f"AssociativeMemory(n_classes={self._n_classes}, dimension={self._dimension}, "
            f"bipolar={self._bipolar}, trained={self.is_trained})"
        )
