"""Bit-packed binary hypervector kernels (uint64 words + popcount).

The dense-binary model family stores {0, 1} hypervectors one byte per
bit, so the fuzzer's hottest path — Hamming queries against the
associative memory — wastes 8× memory and most of its bandwidth.
Hardware formulations of dense binary HDC (Schmuck et al., *Hardware
Optimizations of Dense Binary Hyperdimensional Computing*) pack 64
components per machine word: XOR binds a whole word at a time and
population count (``popcnt``) computes 64 components of a Hamming
distance per instruction.  This module is that formulation in numpy.

Layout
------
A packed hypervector of logical dimension ``D`` is a uint64 array of
``ceil(D / 64)`` words.  Component ``d`` lives in bit ``d % 64`` of word
``d // 64`` (``bitorder="little"``, matching :func:`numpy.packbits`);
when ``D`` is not a multiple of 64, the unused tail bits of the last
word are always zero — every kernel preserves that invariant, and
:func:`check_packed` enforces it on foreign arrays.

Popcount
--------
:func:`popcount` uses :func:`numpy.bitwise_count` (numpy ≥ 2.0, which
lowers to the hardware instruction) and falls back to a vectorised
SWAR bit-count (Hacker's Delight 5-2) on older numpy — ~3× slower than
the ufunc but still far ahead of the unpacked byte-per-bit path.  A
uint8 lookup-table popcount (:func:`_popcount_lut`) is kept as an
independently-simple reference that both implementations are tested
against.  Setting the environment variable ``REPRO_NO_BITWISE_COUNT``
forces the SWAR fallback — CI exercises that path so the kernels stay
correct (and fast enough) on numpy 1.x.

Everything here is representation-exact: packing is lossless, so every
kernel result is bit-identical to the corresponding computation on the
unpacked {0, 1} arrays (property-tested in
``tests/hdc/backends/test_packed_kernels.py``).
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError

__all__ = [
    "WORD_BITS",
    "packed_words",
    "pack_bits",
    "unpack_bits",
    "check_packed",
    "popcount",
    "using_hardware_popcount",
    "bind_xor_packed",
    "bit_counts",
    "bundle_majority_packed",
    "hamming_counts",
    "hamming_distance_packed",
    "hamming_similarity_packed",
    "cosine_matrix_packed",
]

#: Components per packed word.
WORD_BITS = 64

#: Per-byte popcounts (reference implementation; see :func:`_popcount_lut`).
_POPCOUNT_LUT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

# SWAR bit-count masks (Hacker's Delight, Fig. 5-2).
_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)

#: Whether the hardware-lowered ufunc is available *and* not disabled.
_HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count") and not os.environ.get(
    "REPRO_NO_BITWISE_COUNT"
)


def using_hardware_popcount() -> bool:
    """True when :func:`popcount` lowers to ``numpy.bitwise_count``.

    False on numpy < 2.0 or when ``REPRO_NO_BITWISE_COUNT`` is set, in
    which case the uint8 lookup-table fallback is active.
    """
    return _HAVE_BITWISE_COUNT


def packed_words(dimension: int) -> int:
    """Number of uint64 words holding *dimension* components."""
    if dimension < 1:
        raise ConfigurationError(f"dimension must be positive, got {dimension}")
    return -(-int(dimension) // WORD_BITS)


def pack_bits(bits: np.ndarray, *, validate: bool = True) -> np.ndarray:
    """Pack a {0, 1} array ``(..., D)`` into uint64 words ``(..., W)``.

    ``W = ceil(D / 64)``; tail bits of the last word are zero.  The
    inverse is :func:`unpack_bits` with the original *D*.  Internal hot
    paths whose inputs are {0, 1} by construction (threshold
    comparisons) pass ``validate=False`` to skip the membership scan.
    """
    arr = np.asarray(bits)
    if arr.ndim < 1:
        raise DimensionMismatchError("bits must have at least one axis")
    if validate and arr.size and not np.isin(arr, (0, 1)).all():
        raise ConfigurationError("pack_bits requires {0,1} components")
    n_words = packed_words(arr.shape[-1]) if arr.shape[-1] else 0
    if arr.shape[-1] == 0:
        return np.zeros(arr.shape[:-1] + (0,), dtype=np.uint64)
    as_bytes = np.packbits(arr.astype(np.uint8), axis=-1, bitorder="little")
    pad = n_words * 8 - as_bytes.shape[-1]
    if pad:
        as_bytes = np.concatenate(
            [as_bytes, np.zeros(as_bytes.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1,
        )
    return np.ascontiguousarray(as_bytes).view(np.uint64)


def unpack_bits(words: np.ndarray, dimension: int) -> np.ndarray:
    """Unpack uint64 words ``(..., W)`` back to an int8 {0, 1} ``(..., D)``."""
    arr = _as_words(words, "words")
    expected = packed_words(dimension)
    if arr.shape[-1] != expected:
        raise DimensionMismatchError(
            f"words has {arr.shape[-1]} words, dimension {dimension} needs {expected}"
        )
    as_bytes = np.ascontiguousarray(arr).view(np.uint8)
    return np.unpackbits(as_bytes, axis=-1, count=int(dimension), bitorder="little").astype(
        np.int8
    )


def check_packed(words: np.ndarray, dimension: int, *, name: str = "hv") -> np.ndarray:
    """Validate a packed array: dtype, word count, and zeroed tail bits."""
    arr = _as_words(words, name)
    expected = packed_words(dimension)
    if arr.shape[-1] != expected:
        raise DimensionMismatchError(
            f"{name} has {arr.shape[-1]} words, dimension {dimension} needs {expected}"
        )
    tail = dimension % WORD_BITS
    if tail and arr.size:
        mask = np.uint64(~np.uint64((1 << tail) - 1))
        if np.bitwise_and(arr[..., -1], mask).any():
            raise ConfigurationError(
                f"{name} has non-zero bits beyond dimension {dimension}"
            )
    return arr


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-word population counts (same shape as *words*, small ints).

    Uses ``numpy.bitwise_count`` when available; otherwise the
    vectorised SWAR fallback (exactly equal, ~3× slower).
    """
    arr = _as_words(words, "words")
    if _HAVE_BITWISE_COUNT:
        return np.bitwise_count(arr)
    return _popcount_swar(arr)


def _popcount_swar(arr: np.ndarray) -> np.ndarray:
    """Portable popcount: SWAR parallel bit-count, ~6 uint64 ops per word."""
    x = arr - ((arr >> np.uint64(1)) & _M1)
    x = (x & _M2) + ((x >> np.uint64(2)) & _M2)
    x = (x + (x >> np.uint64(4))) & _M4
    # The top byte of x * 0x0101…01 is the sum of x's bytes (wrapping
    # multiply is intentional and exact for byte sums <= 64).
    return (x * _H01) >> np.uint64(56)


def _popcount_lut(arr: np.ndarray) -> np.ndarray:
    """Reference popcount: per-byte table lookups summed per word.

    Slower than both production paths; kept so the tests can pin
    ``bitwise_count`` and the SWAR kernel against a third,
    independently-obvious implementation.
    """
    if arr.size == 0:
        return np.zeros(arr.shape, dtype=np.uint8)
    as_bytes = np.ascontiguousarray(arr).view(np.uint8)
    per_byte = _POPCOUNT_LUT[as_bytes]
    return per_byte.reshape(arr.shape + (8,)).sum(axis=-1, dtype=np.uint8)


def bind_xor_packed(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """XOR binding on packed words (64 components per operation)."""
    a_arr = _as_words(a, "a")
    b_arr = _as_words(b, "b")
    if a_arr.shape[-1] != b_arr.shape[-1]:
        raise DimensionMismatchError(
            f"operands have {a_arr.shape[-1]} and {b_arr.shape[-1]} words"
        )
    return np.bitwise_xor(a_arr, b_arr)


def bit_counts(words: np.ndarray, dimension: int) -> np.ndarray:
    """Per-component ones counts over a packed stack ``(n, W)`` → ``(D,)``.

    The bit-count half of majority bundling: column sums of the
    unpacked {0, 1} matrix, computed without materialising it as int64.
    """
    arr = _as_words(words, "words")
    if arr.ndim != 2:
        raise DimensionMismatchError(f"expected (n, W) stack, got shape {arr.shape}")
    if arr.shape[0] == 0:
        return np.zeros(int(dimension), dtype=np.int64)
    return unpack_bits(arr, dimension).sum(axis=0, dtype=np.int64)


def bundle_majority_packed(words: np.ndarray, dimension: int) -> np.ndarray:
    """Majority-vote bundling of a packed stack ``(n, W)`` → ``(W,)``.

    Ties (even *n*, exactly half ones) resolve to 1 — the deterministic
    policy of the binary encoder and associative memory (their
    ``count >= n/2`` threshold), so packed bundling is bit-identical to
    theirs.  For the random-tie-break variant, bundle unpacked with
    :func:`repro.hdc.ops.bundle_majority`.
    """
    arr = _as_words(words, "words")
    if arr.ndim != 2 or arr.shape[0] == 0:
        raise DimensionMismatchError(
            f"expected a non-empty (n, W) stack, got shape {arr.shape}"
        )
    counts = bit_counts(arr, dimension)
    return pack_bits((2 * counts >= arr.shape[0]).astype(np.int8))


def hamming_counts(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Pairwise differing-bit counts ``(n, m)`` between packed stacks.

    The popcount inner loop of every packed associative-memory query:
    ``out[i, j] = popcount(queries[i] XOR references[j])``.  Iterates
    over references (few classes) so the working set stays one query
    stack wide.
    """
    q = np.atleast_2d(_as_words(queries, "queries"))
    r = np.atleast_2d(_as_words(references, "references"))
    if q.shape[-1] != r.shape[-1]:
        raise DimensionMismatchError(
            f"queries have {q.shape[-1]} words, references {r.shape[-1]}"
        )
    out = np.empty((q.shape[0], r.shape[0]), dtype=np.int64)
    for j in range(r.shape[0]):
        out[:, j] = popcount(np.bitwise_xor(q, r[j])).sum(axis=-1, dtype=np.int64)
    return out


def hamming_distance_packed(a: np.ndarray, b: np.ndarray, dimension: int):
    """Normalised Hamming distance between packed HVs.

    Accepts single vectors ``(W,)`` (→ float) or row-aligned batches
    ``(n, W)`` (→ ``(n,)`` float64), mirroring
    :func:`repro.hdc.similarity.hamming_distance` on unpacked arrays.
    """
    a_arr = _as_words(a, "a")
    b_arr = _as_words(b, "b")
    if a_arr.shape != b_arr.shape:
        raise DimensionMismatchError(f"shapes {a_arr.shape} and {b_arr.shape} differ")
    if a_arr.ndim not in (1, 2):
        raise DimensionMismatchError(f"expected 1-D or 2-D packed arrays, got ndim={a_arr.ndim}")
    diff = popcount(np.bitwise_xor(a_arr, b_arr)).sum(axis=-1, dtype=np.int64)
    result = diff / float(dimension)
    return float(result) if a_arr.ndim == 1 else result


def hamming_similarity_packed(a: np.ndarray, b: np.ndarray, dimension: int):
    """``1 − hamming_distance_packed`` — fraction of matching components."""
    return 1.0 - hamming_distance_packed(a, b, dimension)


def cosine_matrix_packed(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities between packed binary HVs → ``(n, m)``.

    For {0, 1} vectors ``cos(a, b) = |a ∧ b| / (√|a| · √|b|)``, so the
    whole matrix reduces to popcounts.  The float operations mirror
    :func:`repro.hdc.similarity.cosine_matrix` exactly (integer-valued
    dot products, one square root per row norm, one multiply, one
    divide), making the result **bit-identical** to unpacking and
    calling ``cosine_matrix`` — which is what lets the distance-guided
    fitness rank packed children exactly as it ranks unpacked ones.
    Zero vectors get similarity 0, as in the unpacked version.
    """
    q = np.atleast_2d(_as_words(queries, "queries"))
    r = np.atleast_2d(_as_words(references, "references"))
    if q.shape[-1] != r.shape[-1]:
        raise DimensionMismatchError(
            f"queries have {q.shape[-1]} words, references {r.shape[-1]}"
        )
    inter = np.empty((q.shape[0], r.shape[0]), dtype=np.int64)
    for j in range(r.shape[0]):
        inter[:, j] = popcount(np.bitwise_and(q, r[j])).sum(axis=-1, dtype=np.int64)
    qn = np.sqrt(popcount(q).sum(axis=-1, dtype=np.int64).astype(np.float64))
    rn = np.sqrt(popcount(r).sum(axis=-1, dtype=np.int64).astype(np.float64))
    denom = np.outer(qn, rn)
    sims = inter.astype(np.float64)
    np.divide(sims, denom, out=sims, where=denom > 0)
    sims[denom == 0] = 0.0
    return sims


def _as_words(words: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(words)
    if arr.dtype != np.uint64:
        raise ConfigurationError(
            f"{name} must be a packed uint64 array, got dtype {arr.dtype}"
        )
    return arr
