"""Bit-packed binary hypervector kernels (uint64 words + popcount).

The dense-binary model family stores {0, 1} hypervectors one byte per
bit, so the fuzzer's hottest path — Hamming queries against the
associative memory — wastes 8× memory and most of its bandwidth.
Hardware formulations of dense binary HDC (Schmuck et al., *Hardware
Optimizations of Dense Binary Hyperdimensional Computing*) pack 64
components per machine word: XOR binds a whole word at a time and
population count (``popcnt``) computes 64 components of a Hamming
distance per instruction.  This module is that formulation in numpy.

Layout
------
A packed hypervector of logical dimension ``D`` is a uint64 array of
``ceil(D / 64)`` words.  Component ``d`` lives in bit ``d % 64`` of word
``d // 64`` (``bitorder="little"``, matching :func:`numpy.packbits`);
when ``D`` is not a multiple of 64, the unused tail bits of the last
word are always zero — every kernel preserves that invariant, and
:func:`check_packed` enforces it on foreign arrays.

Popcount
--------
:func:`popcount` uses :func:`numpy.bitwise_count` (numpy ≥ 2.0, which
lowers to the hardware instruction) and falls back to a vectorised
SWAR bit-count (Hacker's Delight 5-2) on older numpy — ~3× slower than
the ufunc but still far ahead of the unpacked byte-per-bit path.  A
uint8 lookup-table popcount (:func:`_popcount_lut`) is kept as an
independently-simple reference that both implementations are tested
against.  Setting the environment variable ``REPRO_NO_BITWISE_COUNT``
forces the SWAR fallback — CI exercises that path so the kernels stay
correct (and fast enough) on numpy 1.x.

Everything here is representation-exact: packing is lossless, so every
kernel result is bit-identical to the corresponding computation on the
unpacked {0, 1} arrays (property-tested in
``tests/hdc/backends/test_packed_kernels.py``).

Bipolar hypervectors
--------------------
The paper's {-1, +1} family packs through the same machinery: a bipolar
component is one *sign bit* (bit 1 ⇔ −1, so XOR is exactly the
Hadamard-product bind), :func:`pack_signs` / :func:`unpack_signs`
convert, and the dot product of two bipolar HVs is
``D − 2·popcount(a XOR b)`` — which :func:`cosine_matrix_packed_bipolar`
turns into the model's cosine similarity with float operations that
mirror :func:`repro.hdc.similarity.cosine_matrix` exactly.

Training kernels
----------------
:func:`bit_sliced_counts` is the word-level bundling kernel: it sums a
packed stack column-wise with carry-save-adder trees over *bit-sliced*
vertical counters (Schmuck et al.'s combinational bundling, in numpy),
so majority/threshold bundling — and therefore encoder training — never
gathers unpacked codebooks per component.

Rematerialized codebooks
------------------------
Schmuck et al.'s second memory optimization regenerates item-memory
rows on the fly instead of storing them.  :func:`prf_words` is that
generator: a counter-based PRF (SplitMix64's finalizer over the counter
``row·W + word``) that yields row *i*'s word *w* as a pure function of
``(seed, i, w)`` — stateless, vectorised, and identical however rows
are gathered.  The gather kernels here accept *word sources* — either a
materialised ``(size, W)`` uint64 array or any object exposing
``take_words(rows)`` (``RematerializedItemMemory``) — so
:func:`gathered_xor_counts` fuses generate+XOR+count per chunk and the
codebook is never materialised at once.
"""

from __future__ import annotations

import os

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError

__all__ = [
    "WORD_BITS",
    "SPLITMIX64_GAMMA",
    "packed_words",
    "prf_words",
    "materialize_words",
    "gather_words",
    "pack_bits",
    "unpack_bits",
    "pack_signs",
    "unpack_signs",
    "check_packed",
    "popcount",
    "using_hardware_popcount",
    "bind_xor_packed",
    "bit_counts",
    "bit_sliced_counts",
    "gathered_xor_counts",
    "bundle_majority_packed",
    "bundle_sign_packed",
    "hamming_counts",
    "hamming_distance_packed",
    "hamming_similarity_packed",
    "cosine_matrix_packed",
    "cosine_matrix_packed_bipolar",
    "bipolar_cosine_from_counts",
]

#: Components per packed word.
WORD_BITS = 64

#: Per-byte popcounts (reference implementation; see :func:`_popcount_lut`).
_POPCOUNT_LUT = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

# SWAR bit-count masks (Hacker's Delight, Fig. 5-2).
_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)

#: Whether the hardware-lowered ufunc is available *and* not disabled.
_HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count") and not os.environ.get(
    "REPRO_NO_BITWISE_COUNT"
)


def using_hardware_popcount() -> bool:
    """True when :func:`popcount` lowers to ``numpy.bitwise_count``.

    False on numpy < 2.0 or when ``REPRO_NO_BITWISE_COUNT`` is set, in
    which case the uint8 lookup-table fallback is active.
    """
    return _HAVE_BITWISE_COUNT


def packed_words(dimension: int) -> int:
    """Number of uint64 words holding *dimension* components."""
    if dimension < 1:
        raise ConfigurationError(f"dimension must be positive, got {dimension}")
    return -(-int(dimension) // WORD_BITS)


#: SplitMix64's golden-ratio increment (Steele et al., "Fast Splittable
#: Pseudorandom Number Generators").
SPLITMIX64_GAMMA = np.uint64(0x9E3779B97F4A7C15)


def prf_words(seed: int, rows: np.ndarray, dimension: int) -> np.ndarray:
    """Counter-based-PRF codebook words: index array → ``(..., W)`` uint64.

    Row *i*'s word *w* is output ``i·W + w`` of the SplitMix64 stream
    seeded with *seed* — a pure function of ``(seed, i, w)``, so any
    gather of any subset of rows, in any order, on any process, yields
    identical bits.  This is what lets a codebook be *rematerialized* on
    the fly (Schmuck et al.'s hardware optimization) instead of stored:
    the retained state is one 64-bit seed.

    *rows* may be a scalar or any integer array; the result has shape
    ``rows.shape + (W,)`` with ``W = ceil(dimension / 64)``.  Tail bits
    of the last word are masked to zero, so the rows are valid packed
    hypervectors (:func:`check_packed`) and ``pack∘unpack`` round-trips
    them exactly — the dense and packed views of a rematerialized row
    are the same bits by construction.
    """
    n_words = packed_words(dimension)
    idx = np.asarray(rows)
    if not np.issubdtype(idx.dtype, np.integer):
        raise ConfigurationError(f"rows must be integer(s), got dtype {idx.dtype}")
    counters = idx.astype(np.uint64)[..., None] * np.uint64(n_words) + np.arange(
        n_words, dtype=np.uint64
    )
    # SplitMix64: the k-th output is the finalizer applied to
    # seed + (k+1)·GAMMA; vectorised here over the whole counter block.
    z = np.uint64(seed) + (counters + np.uint64(1)) * SPLITMIX64_GAMMA
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    words = z ^ (z >> np.uint64(31))
    tail = dimension % WORD_BITS
    if tail:
        words[..., -1] &= np.uint64((1 << tail) - 1)
    return words


def materialize_words(source, name: str = "words") -> np.ndarray:
    """Resolve a *word source* into its full ``(size, W)`` uint64 array.

    A word source is either an already-packed uint64 array (returned
    unchanged) or an object exposing ``take_words(rows)`` and ``size``
    (a :class:`~repro.hdc.item_memory.RematerializedItemMemory`), whose
    rows are generated transiently here.
    """
    if hasattr(source, "take_words"):
        return source.take_words(np.arange(len(source)))
    return _as_words(source, name)


def gather_words(source, rows: np.ndarray, name: str = "words") -> np.ndarray:
    """Gather codebook word rows from a word source → ``rows.shape + (W,)``.

    Materialised sources index; rematerialized sources generate exactly
    the requested rows — the fused-generate half of the packed gather
    kernels.
    """
    if hasattr(source, "take_words"):
        return source.take_words(rows)
    return _as_words(source, name)[np.asarray(rows)]


def _source_rows(source, name: str) -> int:
    """Row count of a word source (array rows or codebook size)."""
    if hasattr(source, "take_words"):
        return len(source)
    return _as_words(source, name).shape[0]


def pack_bits(bits: np.ndarray, *, validate: bool = True) -> np.ndarray:
    """Pack a {0, 1} array ``(..., D)`` into uint64 words ``(..., W)``.

    ``W = ceil(D / 64)``; tail bits of the last word are zero.  The
    inverse is :func:`unpack_bits` with the original *D*.  Internal hot
    paths whose inputs are {0, 1} by construction (threshold
    comparisons) pass ``validate=False`` to skip the membership scan.
    """
    arr = np.asarray(bits)
    if arr.ndim < 1:
        raise DimensionMismatchError("bits must have at least one axis")
    if validate and arr.size and not np.isin(arr, (0, 1)).all():
        raise ConfigurationError("pack_bits requires {0,1} components")
    n_words = packed_words(arr.shape[-1]) if arr.shape[-1] else 0
    if arr.shape[-1] == 0:
        return np.zeros(arr.shape[:-1] + (0,), dtype=np.uint64)
    as_bytes = np.packbits(arr.astype(np.uint8), axis=-1, bitorder="little")
    pad = n_words * 8 - as_bytes.shape[-1]
    if pad:
        as_bytes = np.concatenate(
            [as_bytes, np.zeros(as_bytes.shape[:-1] + (pad,), dtype=np.uint8)],
            axis=-1,
        )
    return np.ascontiguousarray(as_bytes).view(np.uint64)


def unpack_bits(words: np.ndarray, dimension: int) -> np.ndarray:
    """Unpack uint64 words ``(..., W)`` back to an int8 {0, 1} ``(..., D)``."""
    arr = _as_words(words, "words")
    expected = packed_words(dimension)
    if arr.shape[-1] != expected:
        raise DimensionMismatchError(
            f"words has {arr.shape[-1]} words, dimension {dimension} needs {expected}"
        )
    as_bytes = np.ascontiguousarray(arr).view(np.uint8)
    return np.unpackbits(as_bytes, axis=-1, count=int(dimension), bitorder="little").astype(
        np.int8
    )


def pack_signs(values: np.ndarray, *, validate: bool = True) -> np.ndarray:
    """Pack a {-1, +1} array ``(..., D)`` into sign words ``(..., W)``.

    The bipolar packing convention: bit 1 ⇔ component −1, bit 0 ⇔ +1.
    Under it the Hadamard-product bind of two bipolar HVs is a plain
    XOR of their sign words (signs multiply ⇔ sign bits xor), and
    ``popcount(a XOR b)`` counts disagreeing components, so
    ``a·b = D − 2·popcount(a XOR b)``.  Inverse: :func:`unpack_signs`.
    """
    arr = np.asarray(values)
    if arr.ndim < 1:
        raise DimensionMismatchError("values must have at least one axis")
    if validate and arr.size and not np.isin(arr, (-1, 1)).all():
        raise ConfigurationError("pack_signs requires {-1,+1} components")
    return pack_bits(arr < 0, validate=False)


def unpack_signs(words: np.ndarray, dimension: int) -> np.ndarray:
    """Unpack sign words ``(..., W)`` back to an int8 {-1, +1} ``(..., D)``."""
    bits = unpack_bits(words, dimension)
    return (1 - 2 * bits).astype(np.int8)


def check_packed(words: np.ndarray, dimension: int, *, name: str = "hv") -> np.ndarray:
    """Validate a packed array: dtype, word count, and zeroed tail bits."""
    arr = _as_words(words, name)
    expected = packed_words(dimension)
    if arr.shape[-1] != expected:
        raise DimensionMismatchError(
            f"{name} has {arr.shape[-1]} words, dimension {dimension} needs {expected}"
        )
    tail = dimension % WORD_BITS
    if tail and arr.size:
        mask = np.uint64(~np.uint64((1 << tail) - 1))
        if np.bitwise_and(arr[..., -1], mask).any():
            raise ConfigurationError(
                f"{name} has non-zero bits beyond dimension {dimension}"
            )
    return arr


def popcount(words: np.ndarray) -> np.ndarray:
    """Per-word population counts (same shape as *words*, small ints).

    Uses ``numpy.bitwise_count`` when available; otherwise the
    vectorised SWAR fallback (exactly equal, ~3× slower).
    """
    arr = _as_words(words, "words")
    if _HAVE_BITWISE_COUNT:
        return np.bitwise_count(arr)
    return _popcount_swar(arr)


def _popcount_swar(arr: np.ndarray) -> np.ndarray:
    """Portable popcount: SWAR parallel bit-count, ~6 uint64 ops per word."""
    x = arr - ((arr >> np.uint64(1)) & _M1)
    x = (x & _M2) + ((x >> np.uint64(2)) & _M2)
    x = (x + (x >> np.uint64(4))) & _M4
    # The top byte of x * 0x0101…01 is the sum of x's bytes (wrapping
    # multiply is intentional and exact for byte sums <= 64).
    return (x * _H01) >> np.uint64(56)


def _popcount_lut(arr: np.ndarray) -> np.ndarray:
    """Reference popcount: per-byte table lookups summed per word.

    Slower than both production paths; kept so the tests can pin
    ``bitwise_count`` and the SWAR kernel against a third,
    independently-obvious implementation.
    """
    if arr.size == 0:
        return np.zeros(arr.shape, dtype=np.uint8)
    as_bytes = np.ascontiguousarray(arr).view(np.uint8)
    per_byte = _POPCOUNT_LUT[as_bytes]
    return per_byte.reshape(arr.shape + (8,)).sum(axis=-1, dtype=np.uint8)


def bind_xor_packed(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """XOR binding on packed words (64 components per operation)."""
    a_arr = _as_words(a, "a")
    b_arr = _as_words(b, "b")
    if a_arr.shape[-1] != b_arr.shape[-1]:
        raise DimensionMismatchError(
            f"operands have {a_arr.shape[-1]} and {b_arr.shape[-1]} words"
        )
    return np.bitwise_xor(a_arr, b_arr)


def bit_counts(words: np.ndarray, dimension: int) -> np.ndarray:
    """Per-component ones counts over a packed stack ``(n, W)`` → ``(D,)``.

    The bit-count half of majority bundling: column sums of the
    unpacked {0, 1} matrix, computed without materialising it as int64.
    """
    arr = _as_words(words, "words")
    if arr.ndim != 2:
        raise DimensionMismatchError(f"expected (n, W) stack, got shape {arr.shape}")
    if arr.shape[0] == 0:
        return np.zeros(int(dimension), dtype=np.int64)
    return unpack_bits(arr, dimension).sum(axis=0, dtype=np.int64)


def bundle_majority_packed(words: np.ndarray, dimension: int) -> np.ndarray:
    """Majority-vote bundling of a packed stack ``(n, W)`` → ``(W,)``.

    Ties (even *n*, exactly half ones) resolve to 1 — the deterministic
    policy of the binary encoder and associative memory (their
    ``count >= n/2`` threshold), so packed bundling is bit-identical to
    theirs.  For the random-tie-break variant, bundle unpacked with
    :func:`repro.hdc.ops.bundle_majority`.
    """
    arr = _as_words(words, "words")
    if arr.ndim != 2 or arr.shape[0] == 0:
        raise DimensionMismatchError(
            f"expected a non-empty (n, W) stack, got shape {arr.shape}"
        )
    counts = bit_counts(arr, dimension)
    return pack_bits((2 * counts >= arr.shape[0]).astype(np.int8))


def _add_counter_pairs(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Add two stacks of k-plane bit-sliced counters → k+1 planes.

    *a* and *b* have shape ``(..., r, k, W)``: ``r`` counters of ``k``
    binary planes (plane ``j`` holds bit ``j`` of every per-component
    count).  One ripple-carry pass over the planes adds them pairwise —
    each plane step is a handful of whole-word bitwise operations, fully
    vectorised over the leading axes.
    """
    k = a.shape[-2]
    out = np.empty(a.shape[:-2] + (k + 1, a.shape[-1]), dtype=np.uint64)
    out[..., 0, :] = np.bitwise_xor(a[..., 0, :], b[..., 0, :])
    carry = np.bitwise_and(a[..., 0, :], b[..., 0, :])
    for j in range(1, k):
        aj, bj = a[..., j, :], b[..., j, :]
        half = np.bitwise_xor(aj, bj)
        out[..., j, :] = np.bitwise_xor(half, carry)
        carry = np.bitwise_or(np.bitwise_and(aj, bj), np.bitwise_and(carry, half))
    out[..., k, :] = carry
    return out


def _ripple_add_planes(a: list, b: list) -> list:
    """Add two bit-sliced counters given as plane lists (ragged widths)."""
    planes = []
    carry = None
    for j in range(max(len(a), len(b))):
        terms = [p[j] for p in (a, b) if j < len(p)]
        if carry is not None:
            terms.append(carry)
        if len(terms) == 1:
            planes.append(terms[0])
            carry = None
        elif len(terms) == 2:
            planes.append(np.bitwise_xor(terms[0], terms[1]))
            carry = np.bitwise_and(terms[0], terms[1])
        else:
            x, y, z = terms
            half = np.bitwise_xor(x, y)
            planes.append(np.bitwise_xor(half, z))
            carry = np.bitwise_or(np.bitwise_and(x, y), np.bitwise_and(z, half))
    if carry is not None:
        planes.append(carry)
    return planes


def _bit_sliced_planes(arr: np.ndarray) -> list:
    """Column-sum a packed stack ``(..., m, W)`` into counter bit planes.

    Carry-save-adder tree: rows start as one-plane counters and are
    added pairwise level by level (``m → m/2 → …``), so summing ``m``
    rows costs ``O(m)`` whole-word operations total and every operation
    is vectorised across all surviving counters at once.  Odd leftovers
    are folded in at the end with a ripple add.  Returns planes of
    weight ``2^j``, ``j = 0, 1, …`` (at most ``⌈log2(m+1)⌉`` of them).
    """
    x = arr[..., :, None, :]  # (..., m, 1, W): m single-plane counters
    pending: list[list] = []
    while x.shape[-3] > 1:
        if x.shape[-3] % 2:
            pending.append([x[..., -1, j, :] for j in range(x.shape[-2])])
            x = x[..., :-1, :, :]
        x = _add_counter_pairs(x[..., 0::2, :, :], x[..., 1::2, :, :])
    planes = [x[..., 0, j, :] for j in range(x.shape[-2])]
    for extra in pending:
        planes = _ripple_add_planes(planes, extra)
    return planes


def bit_sliced_counts(words: np.ndarray, dimension: int) -> np.ndarray:
    """Per-component ones counts of a packed stack, word-level throughout.

    ``(..., m, W) → (..., D)`` int64: the same column sums as
    :func:`bit_counts`, but computed with carry-save-adder trees over
    *bit-sliced* vertical counters — the stack is never unpacked.  This
    is the training-path kernel: bundling ``m`` bound pixel/feature HVs
    costs ``O(m·W)`` word operations plus one unpack per counter plane
    (``⌈log2(m+1)⌉`` of them), instead of ``O(m·D)`` byte operations.
    The counts are exact integers, so every consumer (majority
    quantisation, signed bipolar sums) stays bit-identical to the
    unpacked computation.
    """
    arr = _as_words(words, "words")
    if arr.ndim < 2:
        raise DimensionMismatchError(
            f"expected a (..., m, W) packed stack, got shape {arr.shape}"
        )
    expected = packed_words(dimension)
    if arr.shape[-1] != expected:
        raise DimensionMismatchError(
            f"words has {arr.shape[-1]} words, dimension {dimension} needs {expected}"
        )
    lead = arr.shape[:-2]
    if arr.shape[-2] == 0:
        return np.zeros(lead + (int(dimension),), dtype=np.int64)
    counts = np.zeros(lead + (int(dimension),), dtype=np.int64)
    for j, plane in enumerate(_bit_sliced_planes(arr)):
        counts += np.int64(1 << j) * unpack_bits(plane, dimension)
    return counts


#: uint64 words XORed per chunk by :func:`gathered_xor_counts`; bounds
#: the transient ``(chunk, m, W)`` block at a few dozen MB.
TRAIN_CHUNK_BYTES = 1 << 25


def gathered_xor_counts(
    pos_words: np.ndarray,
    val_words: np.ndarray,
    level_rows: np.ndarray,
    dimension: int,
    *,
    chunk_bytes: int = TRAIN_CHUNK_BYTES,
) -> np.ndarray:
    """Ones counts of ``pos_words XOR val_words[levels]`` per item → (n, D).

    The shared inner loop of both packed encoders' training path: for
    every item (image) gather the value codebook rows its quantised
    levels select, XOR them against the fixed position codebook, and
    column-sum the resulting packed stack with
    :func:`bit_sliced_counts`.  Items are processed in chunks so the
    transient XOR block stays within *chunk_bytes*.  Counts are exact,
    so the binary encoder uses them directly and the bipolar encoder
    maps them through ``m − 2·counts`` — both bit-identical to their
    dense gathers.

    Both codebooks may be *word sources* (see :func:`gather_words`):
    with a rematerialized value memory, each chunk's value rows are
    generated, XORed, counted, and freed — a fused generate+XOR+count
    kernel that never materialises the codebook.
    """
    pos = materialize_words(pos_words, "pos_words")
    levels = np.asarray(level_rows)
    if levels.ndim != 2 or pos.ndim != 2 or pos.shape[0] != levels.shape[1]:
        raise DimensionMismatchError(
            f"level rows {levels.shape} must be (n, m) with m matching "
            f"pos_words rows {pos.shape}"
        )
    val_remat = hasattr(val_words, "take_words")
    val = val_words if val_remat else _as_words(val_words, "val_words")
    n, m = levels.shape
    out = np.empty((n, int(dimension)), dtype=np.int64)
    chunk = max(1, chunk_bytes // max(1, m * pos.shape[-1] * 8))
    for start in range(0, n, chunk):
        stop = min(n, start + chunk)
        gathered = (
            val.take_words(levels[start:stop]) if val_remat else val[levels[start:stop]]
        )
        block = np.bitwise_xor(pos[None, :, :], gathered)
        out[start:stop] = bit_sliced_counts(block, dimension)
    return out


def bundle_sign_packed(words: np.ndarray, dimension: int) -> np.ndarray:
    """Majority-vote bundling of packed *bipolar* sign words ``(n, W)``.

    The bipolar bundle is the sign of the component-wise sum; with ``c``
    the per-component count of −1 bits, ``Σ = n − 2c``, so the bundle is
    −1 exactly when ``2c > n`` (ties → +1, the deterministic zero policy
    of :func:`repro.hdc.ops.bipolarize` consumers and of the encoders).
    Computed word-level via :func:`bit_sliced_counts`.
    """
    arr = _as_words(words, "words")
    if arr.ndim != 2 or arr.shape[0] == 0:
        raise DimensionMismatchError(
            f"expected a non-empty (n, W) stack, got shape {arr.shape}"
        )
    counts = bit_sliced_counts(arr, dimension)
    return pack_bits(2 * counts > arr.shape[0], validate=False)


def hamming_counts(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Pairwise differing-bit counts ``(n, m)`` between packed stacks.

    The popcount inner loop of every packed associative-memory query:
    ``out[i, j] = popcount(queries[i] XOR references[j])``.  Iterates
    over references (few classes) so the working set stays one query
    stack wide.
    """
    q = np.atleast_2d(_as_words(queries, "queries"))
    r = np.atleast_2d(_as_words(references, "references"))
    if q.shape[-1] != r.shape[-1]:
        raise DimensionMismatchError(
            f"queries have {q.shape[-1]} words, references {r.shape[-1]}"
        )
    out = np.empty((q.shape[0], r.shape[0]), dtype=np.int64)
    for j in range(r.shape[0]):
        out[:, j] = popcount(np.bitwise_xor(q, r[j])).sum(axis=-1, dtype=np.int64)
    return out


def hamming_distance_packed(a: np.ndarray, b: np.ndarray, dimension: int):
    """Normalised Hamming distance between packed HVs.

    Accepts single vectors ``(W,)`` (→ float) or row-aligned batches
    ``(n, W)`` (→ ``(n,)`` float64), mirroring
    :func:`repro.hdc.similarity.hamming_distance` on unpacked arrays.
    """
    a_arr = _as_words(a, "a")
    b_arr = _as_words(b, "b")
    if a_arr.shape != b_arr.shape:
        raise DimensionMismatchError(f"shapes {a_arr.shape} and {b_arr.shape} differ")
    if a_arr.ndim not in (1, 2):
        raise DimensionMismatchError(f"expected 1-D or 2-D packed arrays, got ndim={a_arr.ndim}")
    diff = popcount(np.bitwise_xor(a_arr, b_arr)).sum(axis=-1, dtype=np.int64)
    result = diff / float(dimension)
    return float(result) if a_arr.ndim == 1 else result


def hamming_similarity_packed(a: np.ndarray, b: np.ndarray, dimension: int):
    """``1 − hamming_distance_packed`` — fraction of matching components."""
    return 1.0 - hamming_distance_packed(a, b, dimension)


def cosine_matrix_packed(queries: np.ndarray, references: np.ndarray) -> np.ndarray:
    """Pairwise cosine similarities between packed binary HVs → ``(n, m)``.

    For {0, 1} vectors ``cos(a, b) = |a ∧ b| / (√|a| · √|b|)``, so the
    whole matrix reduces to popcounts.  The float operations mirror
    :func:`repro.hdc.similarity.cosine_matrix` exactly (integer-valued
    dot products, one square root per row norm, one multiply, one
    divide), making the result **bit-identical** to unpacking and
    calling ``cosine_matrix`` — which is what lets the distance-guided
    fitness rank packed children exactly as it ranks unpacked ones.
    Zero vectors get similarity 0, as in the unpacked version.
    """
    q = np.atleast_2d(_as_words(queries, "queries"))
    r = np.atleast_2d(_as_words(references, "references"))
    if q.shape[-1] != r.shape[-1]:
        raise DimensionMismatchError(
            f"queries have {q.shape[-1]} words, references {r.shape[-1]}"
        )
    inter = np.empty((q.shape[0], r.shape[0]), dtype=np.int64)
    for j in range(r.shape[0]):
        inter[:, j] = popcount(np.bitwise_and(q, r[j])).sum(axis=-1, dtype=np.int64)
    qn = np.sqrt(popcount(q).sum(axis=-1, dtype=np.int64).astype(np.float64))
    rn = np.sqrt(popcount(r).sum(axis=-1, dtype=np.int64).astype(np.float64))
    denom = np.outer(qn, rn)
    sims = inter.astype(np.float64)
    np.divide(sims, denom, out=sims, where=denom > 0)
    sims[denom == 0] = 0.0
    return sims


def cosine_matrix_packed_bipolar(
    queries: np.ndarray, references: np.ndarray, dimension: int
) -> np.ndarray:
    """Pairwise cosine similarities between packed *bipolar* HVs → ``(n, m)``.

    For {-1, +1} vectors every norm is ``√D`` and the dot product is
    ``D − 2·popcount(a XOR b)`` under the sign-bit packing of
    :func:`pack_signs`, so the whole matrix reduces to Hamming
    popcounts.  The float operations mirror
    :func:`repro.hdc.similarity.cosine_matrix` exactly — the integer
    dot is exact in float64 (every partial sum of ±1 terms is an
    integer below 2⁵³), both norms are ``sqrt`` of the exact float64
    ``D``, and the divisor is their product — so the result is
    **bit-identical** to unpacking with :func:`unpack_signs` and
    calling ``cosine_matrix``.  That equality is what lets the
    distance-guided fitness rank packed-bipolar children exactly as it
    ranks dense ones.  ``D ≥ 1`` means the divisor is always positive,
    so the dense kernel's zero-norm branch never triggers here.
    """
    if dimension < 1:
        raise ConfigurationError(f"dimension must be positive, got {dimension}")
    return bipolar_cosine_from_counts(hamming_counts(queries, references), dimension)


def bipolar_cosine_from_counts(diff: np.ndarray, dimension: int) -> np.ndarray:
    """Bipolar cosine from differing-bit counts: ``(D − 2·diff) / (√D·√D)``.

    The float tail of :func:`cosine_matrix_packed_bipolar`, shared with
    the packed bipolar associative memory (which produces *diff* through
    its kernel backend).  The operation order — exact integer dot cast
    to float64, divided by the float64 product of two ``sqrt(D)`` norms
    — is what makes both bit-identical to the dense
    :func:`~repro.hdc.similarity.cosine_matrix`; keep any edit to it in
    this one place.
    """
    dots = (int(dimension) - 2 * np.asarray(diff)).astype(np.float64)
    norm = np.sqrt(np.float64(dimension))
    return dots / (norm * norm)


def _as_words(words: np.ndarray, name: str) -> np.ndarray:
    arr = np.asarray(words)
    if arr.dtype != np.uint64:
        raise ConfigurationError(
            f"{name} must be a packed uint64 array, got dtype {arr.dtype}"
        )
    return arr
