"""Optional torch kernel backend for packed binary hypervectors.

HDTorch demonstrates that batched HDC shapes — exactly the
``(n_children, W)`` blocks the batched fuzzer produces — map directly
onto torch tensors.  :class:`TorchKernelBackend` implements the packed
kernel surface on torch when it is importable; torch is **not** a
dependency of this package, so everything is gated behind a lazy
import and :func:`repro.hdc.backends.dispatch.get_backend` falls back
to numpy (with a warning) when torch is missing.

Torch has no native popcount and limited uint64 support, so words are
viewed as uint8 and popcounts come from a 256-entry lookup table —
the same portable formulation as the numpy fallback, which keeps the
two backends bit-identical.  Tensors live on ``device`` (default
``"cuda"`` when available, else CPU); results always return as numpy.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.hdc.backends.dispatch import KernelBackend

__all__ = ["TorchKernelBackend"]


def _import_torch():
    """The gated import; None when torch is absent."""
    try:
        import torch  # noqa: PLC0415 - the whole point is laziness
    except ImportError:
        return None
    return torch


class TorchKernelBackend(KernelBackend):
    """Packed kernels on torch tensors (CUDA when available).

    Parameters
    ----------
    device:
        Torch device string; ``None`` picks ``"cuda"`` when a GPU is
        visible, else ``"cpu"``.

    Raises
    ------
    ConfigurationError
        When constructed on a machine without torch.  Use
        :func:`~repro.hdc.backends.dispatch.get_backend`, which checks
        :meth:`available` and degrades to numpy instead.
    """

    name = "torch"

    def __init__(self, device: Optional[str] = None) -> None:
        torch = _import_torch()
        if torch is None:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "torch is not installed; use get_backend('torch') for the "
                "numpy fallback, or `pip install torch`"
            )
        self._torch = torch
        if device is None:
            device = "cuda" if torch.cuda.is_available() else "cpu"
        self._device = torch.device(device)
        # Same 256-entry table as the numpy fallback → bit-identical.
        self._lut = torch.tensor(
            [bin(i).count("1") for i in range(256)],
            dtype=torch.int64,
            device=self._device,
        )

    @classmethod
    def available(cls) -> bool:
        """True when torch imports on this machine."""
        return _import_torch() is not None

    # -- pickling (ProcessExecutor broadcasts models holding backends) ----
    def __getstate__(self) -> dict:
        """Module and tensor attributes are rebuilt on unpickle."""
        return {"device": str(self._device)}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["device"])

    # -- helpers -----------------------------------------------------------
    def _to_bytes(self, words: np.ndarray) -> Any:
        """Packed uint64 numpy → torch uint8 tensor ``(..., W*8)``."""
        as_bytes = np.ascontiguousarray(np.asarray(words, dtype=np.uint64)).view(np.uint8)
        return self._torch.from_numpy(as_bytes.copy()).to(self._device)

    def _popcount_bytes(self, byte_tensor: Any) -> Any:
        """Per-byte popcounts via the lookup table (int64 tensor)."""
        return self._lut[byte_tensor.long()]

    # -- kernel surface ----------------------------------------------------
    def bind_xor(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """XOR on the uint8 view, returned re-packed as uint64."""
        out = self._torch.bitwise_xor(self._to_bytes(a), self._to_bytes(b))
        flat = out.cpu().numpy()
        return np.ascontiguousarray(flat).view(np.uint64)

    def popcount(self, words: np.ndarray) -> np.ndarray:
        """Per-word population counts via byte LUT gathers."""
        arr = np.asarray(words)
        counts = self._popcount_bytes(self._to_bytes(arr))
        per_word = counts.reshape(arr.shape + (8,)).sum(dim=-1)
        return per_word.cpu().numpy()

    def hamming_counts(self, queries: np.ndarray, references: np.ndarray) -> np.ndarray:
        """Pairwise differing-bit counts ``(n, m)`` on-device."""
        q = self._to_bytes(np.atleast_2d(queries))
        r = self._to_bytes(np.atleast_2d(references))
        # (n, 1, B) xor (1, m, B) → per-byte popcounts → sum over bytes.
        diff = self._torch.bitwise_xor(q[:, None, :], r[None, :, :])
        return self._popcount_bytes(diff).sum(dim=-1).cpu().numpy()

    def cosine_matrix(self, queries: np.ndarray, references: np.ndarray) -> np.ndarray:
        """Binary cosine from on-device popcounts (matches numpy bit-for-bit)."""
        q = self._to_bytes(np.atleast_2d(queries))
        r = self._to_bytes(np.atleast_2d(references))
        inter = self._popcount_bytes(
            self._torch.bitwise_and(q[:, None, :], r[None, :, :])
        ).sum(dim=-1)
        qn = self._torch.sqrt(self._popcount_bytes(q).sum(dim=-1).double())
        rn = self._torch.sqrt(self._popcount_bytes(r).sum(dim=-1).double())
        denom = qn[:, None] * rn[None, :]
        sims = inter.double()
        nonzero = denom > 0
        sims = self._torch.where(nonzero, sims / denom, self._torch.zeros_like(sims))
        return sims.cpu().numpy()

    def __repr__(self) -> str:
        return f"TorchKernelBackend(device={self._device})"
