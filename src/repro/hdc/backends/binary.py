"""The packed dense-binary model family: space, encoder, memory, model.

Bit-packed counterparts of :mod:`repro.hdc.binary_model`, storing
hypervectors as uint64 words (64 components per word, 8× less memory)
and querying with XOR + popcount kernels routed through a
:class:`~repro.hdc.backends.dispatch.KernelBackend`.

Packing is pure representation, and the code is structured so the
bit-identity is *structural*, not coincidental:

* :class:`PackedPixelEncoder` **subclasses**
  :class:`~repro.hdc.binary_model.BinaryPixelEncoder` — codebooks,
  quantisation, and the ones-count accumulator algebra
  (``accumulate_batch`` / ``accumulate_delta``) are literally the
  parent's; only the final majority quantisation packs its bits;
* :class:`PackedAssociativeMemory` keeps the same integer bit counters
  as the unpacked memory, so class HVs, similarities, predictions, and
  margins all match to the last float;
* :class:`PackedBinaryHDCClassifier` **subclasses**
  :class:`~repro.hdc.binary_model.BinaryHDCClassifier` — training,
  inference, retraining, and persistence are inherited; construction
  and conversion are the only packed-specific parts.

Fuzzing outcomes therefore equal the unpacked family's, input for
input (property-tested in ``tests/fuzz/test_packed_fuzzing.py``).  The
encoder exposes the full incremental surface the fuzzing engines probe
for, so ``BatchedHDTest`` runs its fused encode + predict on packed
``(n_children, D//64)`` blocks with delta encoding from parent
accumulators, exactly as it does for the bipolar pixel encoder.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError, NotTrainedError
from repro.hdc.backends.dispatch import KernelBackend, get_backend
from repro.hdc.backends.packed import (
    bit_sliced_counts,
    check_packed,
    gathered_xor_counts,
    pack_bits,
    packed_words,
    unpack_bits,
)
from repro.hdc.binary_model import (
    BinaryAssociativeMemory,
    BinaryHDCClassifier,
    BinaryPixelEncoder,
)
from repro.hdc.encoders.base import Encoder
from repro.hdc.item_memory import RematerializedItemMemory
from repro.hdc.spaces import DEFAULT_DIMENSION, BinarySpace, Space
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_labels, check_positive_int

__all__ = [
    "PackedBinarySpace",
    "PackedPixelEncoder",
    "PackedAssociativeMemory",
    "PackedBinaryHDCClassifier",
]

BackendLike = Union[None, str, KernelBackend]


class PackedBinarySpace(Space):
    """{0, 1} hypervectors stored as packed uint64 words.

    ``dimension`` stays the *logical* component count ``D``; arrays have
    ``n_words = ceil(D / 64)`` uint64 entries, component ``d`` at bit
    ``d % 64`` of word ``d // 64``.  :meth:`random` draws the same bit
    stream as :class:`~repro.hdc.spaces.BinarySpace` for the same
    generator, then packs — so packed and unpacked codebooks built from
    one seed agree bit for bit.
    """

    alphabet = (0, 1)

    @property
    def n_words(self) -> int:
        """uint64 words per hypervector (``ceil(dimension / 64)``)."""
        return packed_words(self.dimension)

    def random(self, n: Optional[int] = None, *, rng: RngLike = None) -> np.ndarray:
        generator = ensure_rng(rng)
        size = (
            (self.dimension,)
            if n is None
            else (check_positive_int(n, "n"), self.dimension)
        )
        return pack_bits(generator.integers(0, 2, size=size, dtype=np.int8))

    def check_member(self, hv: np.ndarray, *, name: str = "hv") -> np.ndarray:
        """Validate packed dtype, word count, and zeroed tail bits."""
        arr = np.asarray(hv)
        if arr.ndim not in (1, 2):
            raise DimensionMismatchError(f"{name} must be 1-D or 2-D, got ndim={arr.ndim}")
        return check_packed(arr, self.dimension, name=name)

    def pack(self, bits: np.ndarray) -> np.ndarray:
        """Pack unpacked {0, 1} members of the equivalent BinarySpace."""
        arr = np.asarray(bits)
        if arr.shape[-1] != self.dimension:
            raise DimensionMismatchError(
                f"bits has dimension {arr.shape[-1]}, expected {self.dimension}"
            )
        return pack_bits(arr)

    def unpack(self, words: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`pack` (int8 {0, 1} array)."""
        return unpack_bits(words, self.dimension)


class PackedPixelEncoder(BinaryPixelEncoder):
    """Position-XOR-value image encoder emitting packed binary HVs.

    Everything semantic — codebooks (same spawn discipline, so equal
    seeds give equal bits), quantisation, the ones-count accumulator
    algebra, and the incremental ``accumulate_delta`` — is inherited
    from :class:`~repro.hdc.binary_model.BinaryPixelEncoder` unchanged.
    Two methods differ, both representation-only:
    :meth:`accumulate_batch` computes the very same ones counts on
    *packed codebooks* — XOR whole words, then column-sum with the
    word-level :func:`~repro.hdc.backends.packed.bit_sliced_counts`
    bundling kernel instead of gathering unpacked rows per pixel (the
    packed *training* path) — and :meth:`hvs_from_accumulators` applies
    the parent's ties-to-1 majority and then packs.
    """

    def __init__(
        self,
        shape: tuple[int, int] = (28, 28),
        *,
        levels: int = 256,
        dimension: int = DEFAULT_DIMENSION,
        rng: RngLike = None,
        backend: BackendLike = None,
        position_memory=None,
        value_memory=None,
        codebook: str = "materialized",
    ) -> None:
        super().__init__(
            shape,
            levels=levels,
            dimension=dimension,
            rng=rng,
            position_memory=position_memory,
            value_memory=value_memory,
            codebook=codebook,
        )
        self._packed_space = PackedBinarySpace(dimension)
        self._backend = get_backend(backend)

    @classmethod
    def from_binary(
        cls, encoder, *, backend: BackendLike = None
    ) -> "PackedPixelEncoder":
        """Wrap a trained ``BinaryPixelEncoder``'s codebooks (exact)."""
        for attr in ("shape", "position_memory", "value_memory", "dimension"):
            if not hasattr(encoder, attr):
                raise ConfigurationError(
                    f"{type(encoder).__name__} lacks {attr!r}; expected a "
                    "BinaryPixelEncoder-compatible encoder"
                )
        packed = cls.__new__(cls)
        packed._shape = tuple(encoder.shape)
        packed._levels = encoder.value_memory.size
        packed._space = BinarySpace(encoder.dimension)
        packed._position_memory = encoder.position_memory
        packed._value_memory = encoder.value_memory
        packed._majority_threshold = (packed._shape[0] * packed._shape[1]) / 2.0
        packed._packed_space = PackedBinarySpace(encoder.dimension)
        packed._backend = get_backend(backend)
        return packed

    # -- introspection ---------------------------------------------------
    @property
    def n_words(self) -> int:
        """uint64 words per emitted hypervector."""
        return self._packed_space.n_words

    @property
    def backend(self) -> KernelBackend:
        """Kernel backend packed outputs are produced with."""
        return self._backend

    # -- the packed training path ------------------------------------------
    def _packed_codebooks(self) -> tuple:
        """Word sources for both codebooks (packed once and cached, or
        the rematerialized memory itself).

        A :class:`~repro.hdc.item_memory.RematerializedItemMemory` in a
        binary space already *is* a packed word source — its PRF words
        are the packed bits of its dense rows by construction — so it is
        returned as-is and the gather kernels generate rows on demand
        (``take_words``) instead of reading a cached array.
        """
        cache = getattr(self, "_codebook_words", None)
        if cache is None:
            cache = tuple(
                memory
                if isinstance(memory, RematerializedItemMemory)
                else pack_bits(memory.vectors, validate=False)
                for memory in (self._position_memory, self._value_memory)
            )
            self._codebook_words = cache
        return cache

    def accumulate_batch(self, items: np.ndarray) -> np.ndarray:
        """Per-component ones counts ``(n, D)`` via word-level bundling.

        Elementwise equal to the parent's per-pixel unpacked gather
        (the counts are exact integers either way); only the arithmetic
        is packed — one whole-word XOR per pixel row and a carry-save
        bit-sliced column sum, which is what accelerates ``fit``.
        """
        levels = self.quantize(items)
        flat = levels.reshape(levels.shape[0], -1)
        pos_w, val_w = self._packed_codebooks()
        return gathered_xor_counts(pos_w, val_w, flat, self.dimension)

    # -- the packed quantisation step ------------------------------------
    def hvs_from_accumulators(self, accumulators: np.ndarray) -> np.ndarray:
        """The parent's majority quantisation (ties → 1), packed.

        Validation is skipped on the pack: a threshold comparison can
        only produce {0, 1}, and this runs once per fuzzing iteration
        on every child block.
        """
        bits = super().hvs_from_accumulators(accumulators)
        return self._backend.pack(bits, validate=False)

    def unpack(self, hvs: np.ndarray) -> np.ndarray:
        """Unpack emitted HVs back to int8 {0, 1} components."""
        return self._packed_space.unpack(hvs)

    def __repr__(self) -> str:
        return (
            f"PackedPixelEncoder(shape={self.shape}, levels={self.levels}, "
            f"dimension={self.dimension}, backend={self._backend.name!r})"
        )


class PackedAssociativeMemory:
    """Per-class bit counters with packed class HVs and popcount queries.

    Holds the same integer ones counters as
    :class:`~repro.hdc.binary_model.BinaryAssociativeMemory` (so
    training and retraining semantics match exactly) but quantises its
    class HVs into packed words and answers similarity queries with the
    kernel backend's XOR + popcount — the ≥3× query-throughput path the
    packed benchmark measures.  All query results are bit-identical to
    the unpacked memory's.
    """

    def __init__(
        self, n_classes: int, dimension: int, *, backend: BackendLike = None
    ) -> None:
        self._n_classes = check_positive_int(n_classes, "n_classes")
        self._dimension = check_positive_int(dimension, "dimension")
        self._backend = get_backend(backend)
        # ones[c, d] counts 1-bits added to class c at component d.
        self._ones = np.zeros((self._n_classes, self._dimension), dtype=np.int64)
        self._counts = np.zeros(self._n_classes, dtype=np.int64)
        self._cache: Optional[np.ndarray] = None

    @classmethod
    def from_binary(
        cls, am, *, backend: BackendLike = None
    ) -> "PackedAssociativeMemory":
        """Adopt an unpacked binary AM's counters (exact conversion)."""
        return cls.from_state_dict(am.state_dict(), backend=backend)

    def to_binary(self) -> BinaryAssociativeMemory:
        """The equivalent unpacked :class:`BinaryAssociativeMemory`."""
        return BinaryAssociativeMemory.from_state_dict(self.state_dict())

    # -- introspection ---------------------------------------------------
    @property
    def n_classes(self) -> int:
        return self._n_classes

    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def n_words(self) -> int:
        """uint64 words per class hypervector."""
        return packed_words(self._dimension)

    @property
    def backend(self) -> KernelBackend:
        """Kernel backend answering similarity queries."""
        return self._backend

    @property
    def bipolar(self) -> bool:
        """Interface parity with the bipolar AM (binary = not bipolar)."""
        return False

    @property
    def counts(self) -> np.ndarray:
        return self._counts.copy()

    @property
    def is_trained(self) -> bool:
        return bool((self._counts > 0).all())

    # -- updates ---------------------------------------------------------
    def add(self, hvs: np.ndarray, labels) -> None:
        """Accumulate packed HVs into their class bit counters.

        Word-level throughout: each class's update rows are column-summed
        with the bit-sliced carry-save kernel instead of unpacking every
        hypervector to one byte per bit (the retraining counterpart of
        the packed training path; counts are exact either way).
        """
        arr, labels_arr = self._check_update(hvs, labels)
        for label, rows in self._rows_by_label(arr, labels_arr):
            self._ones[label] += bit_sliced_counts(rows, self._dimension)
        np.add.at(self._counts, labels_arr, 1)
        self._cache = None

    def subtract(self, hvs: np.ndarray, labels) -> None:
        """Perceptron-style removal (clamped at zero bit counts)."""
        arr, labels_arr = self._check_update(hvs, labels)
        for label, rows in self._rows_by_label(arr, labels_arr):
            self._ones[label] -= bit_sliced_counts(rows, self._dimension)
        np.maximum(self._ones, 0, out=self._ones)
        self._cache = None

    @staticmethod
    def _rows_by_label(arr: np.ndarray, labels_arr: np.ndarray):
        """Group packed update rows per class (duplicates sum exactly)."""
        for label in np.unique(labels_arr):
            yield int(label), arr[labels_arr == label]

    def _check_update(self, hvs: np.ndarray, labels) -> tuple[np.ndarray, np.ndarray]:
        arr = np.asarray(hvs)
        if arr.ndim == 1:
            arr = arr[None, :]
        arr = check_packed(arr, self._dimension, name="hvs")
        labels_arr = check_labels(labels, arr.shape[0])
        if labels_arr.size and labels_arr.max() >= self._n_classes:
            raise ConfigurationError(
                f"label {labels_arr.max()} out of range for {self._n_classes} classes"
            )
        return arr, labels_arr

    # -- reference vectors -------------------------------------------------
    @property
    def class_hvs(self) -> np.ndarray:
        """Majority-quantised class HVs, packed ``(C, n_words)`` (ties → 1)."""
        if self._cache is None:
            threshold = np.maximum(self._counts, 1)[:, None] / 2.0
            self._cache = self._backend.pack(
                (self._ones >= threshold).astype(np.int8), validate=False
            )
        return self._cache

    @property
    def class_hvs_bits(self) -> np.ndarray:
        """Unpacked int8 {0, 1} view of :attr:`class_hvs` (diagnostics)."""
        return self._backend.unpack(self.class_hvs, self._dimension)

    def reference_hv(self, label: int) -> np.ndarray:
        if not 0 <= label < self._n_classes:
            raise ConfigurationError(f"label {label} out of range")
        return self.class_hvs[label]

    # -- queries -----------------------------------------------------------
    def similarities(self, queries: np.ndarray) -> np.ndarray:
        """``1 − normalized Hamming distance`` to each class → (n, C).

        One XOR + popcount pass per class over the packed query block —
        the packed family's hot path.
        """
        self._require_trained()
        arr = np.asarray(queries)
        if arr.ndim == 1:
            arr = arr[None, :]
        arr = check_packed(arr, self._dimension, name="queries")
        diff = self._backend.hamming_counts(arr, self.class_hvs)
        return 1.0 - diff / float(self._dimension)

    def predict(self, queries: np.ndarray) -> np.ndarray:
        return self.similarities(queries).argmax(axis=1).astype(np.int64)

    def margins(self, queries: np.ndarray) -> np.ndarray:
        sims = self.similarities(queries)
        if sims.shape[1] < 2:
            return np.zeros(sims.shape[0])
        part = np.partition(sims, -2, axis=1)
        return part[:, -1] - part[:, -2]

    def _require_trained(self) -> None:
        if not (self._counts > 0).any():
            raise NotTrainedError("packed associative memory has no trained classes")

    # -- persistence ---------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Same schema as the unpacked binary AM (counters, not words)."""
        return {"ones": self._ones.copy(), "counts": self._counts.copy()}

    @classmethod
    def from_state_dict(
        cls, state: dict[str, np.ndarray], *, backend: BackendLike = None
    ) -> "PackedAssociativeMemory":
        """Inverse of :meth:`state_dict`."""
        ones = np.asarray(state["ones"], dtype=np.int64)
        am = cls(ones.shape[0], ones.shape[1], backend=backend)
        am._ones = ones
        am._counts = np.asarray(state["counts"], dtype=np.int64)
        return am

    def copy(self) -> "PackedAssociativeMemory":
        return PackedAssociativeMemory.from_state_dict(
            self.state_dict(), backend=self._backend
        )

    def __repr__(self) -> str:
        return (
            f"PackedAssociativeMemory(n_classes={self._n_classes}, "
            f"dimension={self._dimension}, backend={self._backend.name!r}, "
            f"trained={self.is_trained})"
        )


class PackedBinaryHDCClassifier(BinaryHDCClassifier):
    """Classifier facade over the packed encoder + popcount AM pair.

    Subclasses :class:`~repro.hdc.binary_model.BinaryHDCClassifier`:
    training, inference, retraining, scoring, and :meth:`save` are all
    inherited — the packed AM exposes the same counter interface — so
    the packed family cannot drift from the unpacked one.  ``save``
    writes the shared ``pixel-binary-hdc`` format (counters, not
    words); ``load`` therefore returns an *unpacked* classifier —
    repackage with :meth:`from_binary`.
    """

    #: Grey-box marker: query/reference HVs are packed {0, 1} words, so
    #: the cosine-based fitnesses score with the binary popcount cosine
    #: (their uint64 default — see :mod:`repro.fuzz.fitness`).
    packed_alphabet = "binary"

    def __init__(
        self, encoder: Encoder, n_classes: int, *, backend: BackendLike = None
    ) -> None:
        super().__init__(encoder, n_classes)
        self._am = PackedAssociativeMemory(
            n_classes, encoder.dimension, backend=backend
        )

    @classmethod
    def from_binary(
        cls, model, *, backend: BackendLike = None
    ) -> "PackedBinaryHDCClassifier":
        """Repackage a trained ``BinaryHDCClassifier`` (exact, shares codebooks)."""
        packed = cls.__new__(cls)
        packed._encoder = PackedPixelEncoder.from_binary(model.encoder, backend=backend)
        packed._n_classes = model.n_classes
        packed._am = PackedAssociativeMemory.from_binary(
            model.associative_memory, backend=backend
        )
        return packed

    def to_binary(self) -> BinaryHDCClassifier:
        """The equivalent unpacked :class:`BinaryHDCClassifier`."""
        binary = BinaryHDCClassifier.__new__(BinaryHDCClassifier)
        encoder = BinaryPixelEncoder.__new__(BinaryPixelEncoder)
        encoder._shape = self._encoder.shape  # noqa: SLF001 - controlled reconstruction
        encoder._levels = self._encoder.levels
        encoder._space = BinarySpace(self._encoder.dimension)
        encoder._position_memory = self._encoder.position_memory
        encoder._value_memory = self._encoder.value_memory
        encoder._majority_threshold = (
            self._encoder.shape[0] * self._encoder.shape[1]
        ) / 2.0
        binary._encoder = encoder
        binary._n_classes = self._n_classes
        binary._am = self._am.to_binary()
        return binary

    def with_backend(self, backend: BackendLike) -> "PackedBinaryHDCClassifier":
        """Clone bound to different kernels (shared codebooks and counters)."""
        kernels = get_backend(backend)
        clone = PackedBinaryHDCClassifier.__new__(PackedBinaryHDCClassifier)
        if isinstance(self._encoder, BinaryPixelEncoder):
            clone._encoder = PackedPixelEncoder.from_binary(
                self._encoder, backend=kernels
            )
        else:
            clone._encoder = self._encoder
        clone._n_classes = self._n_classes
        clone._am = PackedAssociativeMemory.from_state_dict(
            self._am.state_dict(), backend=kernels
        )
        return clone

    def copy(self) -> "PackedBinaryHDCClassifier":
        """Clone sharing the encoder but with an independent AM."""
        clone = PackedBinaryHDCClassifier.__new__(PackedBinaryHDCClassifier)
        clone._encoder = self._encoder
        clone._n_classes = self._n_classes
        clone._am = self._am.copy()
        return clone

    @property
    def associative_memory(self) -> PackedAssociativeMemory:
        return self._am

    @property
    def backend(self) -> KernelBackend:
        """Kernel backend of the associative memory."""
        return self._am.backend

    def __repr__(self) -> str:
        return (
            f"PackedBinaryHDCClassifier(encoder={self._encoder!r}, "
            f"n_classes={self._n_classes}, backend={self.backend.name!r}, "
            f"trained={self.is_trained})"
        )
