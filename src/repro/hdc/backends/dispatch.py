"""Kernel-backend dispatch for the packed binary subsystem.

The packed model family (:mod:`repro.hdc.backends.binary`) routes its
word-level kernels — XOR bind, popcount, Hamming/cosine queries —
through a :class:`KernelBackend`, so the same model runs on plain numpy
(the default, always available) or on torch when it is installed
(:mod:`repro.hdc.backends.torch_backend`), without the model code
changing.

Selection
---------
:func:`get_backend` resolves a name (``"numpy"``, ``"torch"``, or
``None`` for the ``REPRO_BACKEND`` environment variable / numpy
default).  Requesting torch on a machine without it *falls back to
numpy with a warning* rather than failing — campaigns stay runnable
everywhere, as the ROADMAP's "gate on import, numpy fallback" item
specifies.

:func:`resolve_model_backend` is the campaign-level entry point wired
through ``compare_strategies`` / ``generate_adversarial_set`` and the
CLI's ``--backend`` flag: it re-targets a dense classifier onto the
matching packed representation — ``"packed"``/``"torch"`` for the
dense-binary family, ``"packed-bipolar"`` for the paper's bipolar
family — (an exact repackaging — predictions are bit-identical) or
returns it untouched for ``"dense"``.
"""

from __future__ import annotations

import os
import warnings
from typing import Any, Optional, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.hdc.backends import packed as _kernels

__all__ = [
    "KernelBackend",
    "NumpyKernelBackend",
    "backend_names",
    "get_backend",
    "resolve_model_backend",
]


class KernelBackend:
    """Word-level kernel provider for packed binary hypervectors.

    The default implementations delegate to the numpy kernels in
    :mod:`repro.hdc.backends.packed`; accelerator backends override the
    hot ones (:meth:`hamming_counts`, :meth:`cosine_matrix`) and may
    keep the cheap glue in numpy.  All inputs and outputs are numpy
    arrays — a backend is free to round-trip through its own device
    tensors internally, but the model layer never sees them.
    """

    #: Registry key; also recorded in ``repr`` of packed components.
    name: str = "base"

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run on the current machine."""
        return True

    # -- representation ----------------------------------------------------
    def pack(self, bits: np.ndarray, *, validate: bool = True) -> np.ndarray:
        """{0,1} ``(..., D)`` → packed uint64 ``(..., W)``.

        ``validate=False`` skips the {0,1} membership scan for callers
        whose bits are valid by construction (the per-iteration encode
        path).
        """
        return _kernels.pack_bits(bits, validate=validate)

    def unpack(self, words: np.ndarray, dimension: int) -> np.ndarray:
        """Packed uint64 ``(..., W)`` → int8 {0,1} ``(..., D)``."""
        return _kernels.unpack_bits(words, dimension)

    # -- kernels -----------------------------------------------------------
    def bind_xor(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """XOR binding on packed words."""
        return _kernels.bind_xor_packed(a, b)

    def popcount(self, words: np.ndarray) -> np.ndarray:
        """Per-word population counts."""
        return _kernels.popcount(words)

    def hamming_counts(self, queries: np.ndarray, references: np.ndarray) -> np.ndarray:
        """Pairwise differing-bit counts ``(n, m)``."""
        return _kernels.hamming_counts(queries, references)

    def cosine_matrix(self, queries: np.ndarray, references: np.ndarray) -> np.ndarray:
        """Pairwise binary-cosine similarities ``(n, m)``."""
        return _kernels.cosine_matrix_packed(queries, references)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class NumpyKernelBackend(KernelBackend):
    """The default backend: pure-numpy packed kernels.

    Uses ``numpy.bitwise_count`` when available and the vectorised SWAR
    popcount otherwise (see :func:`repro.hdc.backends.packed.popcount`).
    """

    name = "numpy"


def _registry() -> dict[str, type[KernelBackend]]:
    from repro.hdc.backends.torch_backend import TorchKernelBackend

    return {"numpy": NumpyKernelBackend, "torch": TorchKernelBackend}


def backend_names() -> list[str]:
    """Registered kernel-backend names (CLI choices, minus ``dense``)."""
    return sorted(_registry())


def get_backend(name: Union[None, str, KernelBackend] = None) -> KernelBackend:
    """Resolve *name* into a :class:`KernelBackend` instance.

    ``None`` reads the ``REPRO_BACKEND`` environment variable and
    defaults to ``"numpy"``.  An unavailable accelerator backend (torch
    not importable) degrades to numpy with a :class:`RuntimeWarning`
    instead of raising.  Instances pass through unchanged.
    """
    if isinstance(name, KernelBackend):
        return name
    if name is None:
        name = os.environ.get("REPRO_BACKEND", "numpy")
    registry = _registry()
    try:
        cls = registry[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown backend {name!r}; available: {sorted(registry)}"
        ) from None
    if not cls.available():
        warnings.warn(
            f"backend {name!r} is not available on this machine; "
            "falling back to the numpy kernels",
            RuntimeWarning,
            stacklevel=2,
        )
        return NumpyKernelBackend()
    return cls()


#: CLI vocabulary: the unpacked model families plus the packed backends.
MODEL_BACKEND_CHOICES = ("dense", "packed", "packed-bipolar", "torch")


def resolve_model_backend(
    model: Any, backend: Optional[str]
) -> Any:
    """Re-target *model* for the requested compute backend.

    * ``None`` / ``"dense"`` — return the model unchanged (bipolar and
      binary families run their existing unpacked paths; an
      already-packed classifier also passes through).
    * ``"packed"`` / ``"torch"`` — repackage a dense-binary classifier
      (:class:`~repro.hdc.binary_model.BinaryHDCClassifier`) onto the
      packed binary family with the corresponding kernel backend.
    * ``"packed-bipolar"`` — repackage the paper's bipolar classifier
      (:class:`~repro.hdc.model.HDCClassifier` with a pixel encoder and
      a bipolarised AM) onto
      :class:`~repro.hdc.backends.bipolar.PackedBipolarHDCClassifier`.

    Every conversion is exact: predictions, similarities, and fuzzing
    outcomes are bit-identical (property-tested).  An already-packed
    classifier is re-bound to the requested kernels; requesting a
    backend for the wrong family raises
    :class:`~repro.errors.ConfigurationError`.
    """
    from repro.hdc.backends.binary import PackedBinaryHDCClassifier
    from repro.hdc.backends.bipolar import PackedBipolarHDCClassifier
    from repro.hdc.binary_model import BinaryHDCClassifier
    from repro.hdc.model import HDCClassifier

    if backend is None or backend == "dense":
        return model
    if backend not in MODEL_BACKEND_CHOICES:
        raise ConfigurationError(
            f"unknown model backend {backend!r}; choose one of {MODEL_BACKEND_CHOICES}"
        )
    # "packed"/"packed-bipolar" mean the packed representation on the
    # default numpy kernels; "torch" is the same representation on torch
    # kernels.
    kernels = get_backend("torch" if backend == "torch" else "numpy")
    if backend == "packed-bipolar":
        if isinstance(model, PackedBipolarHDCClassifier):
            return model.with_backend(kernels)
        if isinstance(model, HDCClassifier):
            return PackedBipolarHDCClassifier.from_dense(model, backend=kernels)
        raise ConfigurationError(
            f"backend 'packed-bipolar' requires the paper's bipolar model "
            f"family (HDCClassifier); got {type(model).__name__} — "
            "binary-family models pack with backend='packed'"
        )
    if isinstance(model, PackedBinaryHDCClassifier):
        return model.with_backend(kernels)
    if isinstance(model, BinaryHDCClassifier):
        return PackedBinaryHDCClassifier.from_binary(model, backend=kernels)
    raise ConfigurationError(
        f"backend {backend!r} requires the dense-binary model family "
        f"(BinaryHDCClassifier); got {type(model).__name__} — train with "
        "--family binary, or pack the paper's bipolar family with "
        "backend='packed-bipolar'"
    )
