"""Pluggable compute backends for bit-packed binary hypervectors.

This subpackage holds everything needed to run the dense-binary HDC
family 8× smaller and several times faster than its byte-per-bit form:

* :mod:`~repro.hdc.backends.packed` — the word-level kernel module:
  ``pack_bits`` / ``unpack_bits``, XOR binding, popcount (hardware
  ``numpy.bitwise_count`` with a lookup-table fallback), bit-count
  bundling with majority quantisation, and Hamming / binary-cosine
  query kernels;
* :mod:`~repro.hdc.backends.binary` — the packed model family
  (:class:`PackedBinarySpace`, :class:`PackedPixelEncoder`,
  :class:`PackedAssociativeMemory`, :class:`PackedBinaryHDCClassifier`)
  — bit-identical to :mod:`repro.hdc.binary_model`, property-tested;
* :mod:`~repro.hdc.backends.dispatch` — kernel-backend selection
  (numpy default, torch gated on import with numpy fallback) and the
  campaign-level ``resolve_model_backend`` used by the CLI's
  ``--backend`` flag;
* :mod:`~repro.hdc.backends.torch_backend` — the optional torch
  kernels (HDTorch-style batched shapes), never imported unless asked.
"""

from repro.hdc.backends.binary import (
    PackedAssociativeMemory,
    PackedBinaryHDCClassifier,
    PackedBinarySpace,
    PackedPixelEncoder,
)
from repro.hdc.backends.dispatch import (
    KernelBackend,
    NumpyKernelBackend,
    backend_names,
    get_backend,
    resolve_model_backend,
)
from repro.hdc.backends.packed import (
    bind_xor_packed,
    bit_counts,
    bundle_majority_packed,
    cosine_matrix_packed,
    hamming_counts,
    hamming_distance_packed,
    hamming_similarity_packed,
    pack_bits,
    packed_words,
    popcount,
    unpack_bits,
    using_hardware_popcount,
)

__all__ = [
    "KernelBackend",
    "NumpyKernelBackend",
    "PackedAssociativeMemory",
    "PackedBinaryHDCClassifier",
    "PackedBinarySpace",
    "PackedPixelEncoder",
    "backend_names",
    "bind_xor_packed",
    "bit_counts",
    "bundle_majority_packed",
    "cosine_matrix_packed",
    "get_backend",
    "hamming_counts",
    "hamming_distance_packed",
    "hamming_similarity_packed",
    "pack_bits",
    "packed_words",
    "popcount",
    "resolve_model_backend",
    "unpack_bits",
    "using_hardware_popcount",
]
