"""Pluggable compute backends for bit-packed hypervectors.

This subpackage holds everything needed to run both dense model
families — the paper's bipolar family *and* the Rahimi-style binary
family — 8× smaller and several times faster than their
byte-per-component forms.  Four model families exist in total, two
dense and two packed, pairwise bit-identical:

========================  ===================================  =============================================
family                    dense home                           packed counterpart (here)
========================  ===================================  =============================================
bipolar {-1, +1}          :mod:`repro.hdc.model`               :mod:`~repro.hdc.backends.bipolar`
                          (``HDCClassifier``)                  (``PackedBipolarHDCClassifier``)
binary {0, 1}             :mod:`repro.hdc.binary_model`        :mod:`~repro.hdc.backends.binary`
                          (``BinaryHDCClassifier``)            (``PackedBinaryHDCClassifier``)
========================  ===================================  =============================================

Modules:

* :mod:`~repro.hdc.backends.packed` — the word-level kernel module:
  ``pack_bits`` / ``unpack_bits`` (and the bipolar ``pack_signs`` /
  ``unpack_signs``), XOR binding, popcount (hardware
  ``numpy.bitwise_count`` with a SWAR fallback), carry-save
  ``bit_sliced_counts`` bundling (the packed training path), majority /
  sign bundling, and the Hamming / binary-cosine / bipolar-cosine
  query kernels;
* :mod:`~repro.hdc.backends.binary` — the packed dense-binary family
  (:class:`PackedBinarySpace`, :class:`PackedPixelEncoder`,
  :class:`PackedAssociativeMemory`, :class:`PackedBinaryHDCClassifier`)
  — bit-identical to :mod:`repro.hdc.binary_model`, property-tested;
* :mod:`~repro.hdc.backends.bipolar` — the packed bipolar family
  (:class:`PackedBipolarSpace`, :class:`PackedBipolarEncoder`,
  :class:`PackedBipolarAssociativeMemory`,
  :class:`PackedBipolarHDCClassifier`) — bit-identical to the paper's
  model in :mod:`repro.hdc.model`, property-tested;
* :mod:`~repro.hdc.backends.dispatch` — kernel-backend selection
  (numpy default, torch gated on import with numpy fallback) and the
  campaign-level ``resolve_model_backend`` used by the CLI's
  ``--backend dense|packed|packed-bipolar|torch`` flag;
* :mod:`~repro.hdc.backends.torch_backend` — the optional torch
  kernels (HDTorch-style batched shapes), never imported unless asked.

The cross-family differential conformance suite
(``tests/hdc/backends/test_conformance.py``) runs the shared
train/predict/save/load/retrain/copy properties across all four
families so the pairs cannot drift apart.
"""

from repro.hdc.backends.binary import (
    PackedAssociativeMemory,
    PackedBinaryHDCClassifier,
    PackedBinarySpace,
    PackedPixelEncoder,
)
from repro.hdc.backends.bipolar import (
    PackedBipolarAssociativeMemory,
    PackedBipolarEncoder,
    PackedBipolarHDCClassifier,
    PackedBipolarSpace,
)
from repro.hdc.backends.dispatch import (
    KernelBackend,
    NumpyKernelBackend,
    backend_names,
    get_backend,
    resolve_model_backend,
)
from repro.hdc.backends.packed import (
    bind_xor_packed,
    bipolar_cosine_from_counts,
    bit_counts,
    bit_sliced_counts,
    bundle_majority_packed,
    bundle_sign_packed,
    cosine_matrix_packed,
    cosine_matrix_packed_bipolar,
    gathered_xor_counts,
    hamming_counts,
    hamming_distance_packed,
    hamming_similarity_packed,
    pack_bits,
    pack_signs,
    packed_words,
    popcount,
    unpack_bits,
    unpack_signs,
    using_hardware_popcount,
)

__all__ = [
    "KernelBackend",
    "NumpyKernelBackend",
    "PackedAssociativeMemory",
    "PackedBinaryHDCClassifier",
    "PackedBinarySpace",
    "PackedBipolarAssociativeMemory",
    "PackedBipolarEncoder",
    "PackedBipolarHDCClassifier",
    "PackedBipolarSpace",
    "PackedPixelEncoder",
    "backend_names",
    "bind_xor_packed",
    "bipolar_cosine_from_counts",
    "bit_counts",
    "bit_sliced_counts",
    "bundle_majority_packed",
    "bundle_sign_packed",
    "cosine_matrix_packed",
    "cosine_matrix_packed_bipolar",
    "gathered_xor_counts",
    "get_backend",
    "hamming_counts",
    "hamming_distance_packed",
    "hamming_similarity_packed",
    "pack_bits",
    "pack_signs",
    "packed_words",
    "popcount",
    "resolve_model_backend",
    "unpack_bits",
    "unpack_signs",
    "using_hardware_popcount",
]
