"""The packed *bipolar* model family: the paper's model on the fast path.

Bit-packed counterparts of the Sec. III stack
(:class:`~repro.hdc.spaces.BipolarSpace` /
:class:`~repro.hdc.encoders.image.PixelEncoder` /
:class:`~repro.hdc.associative_memory.AssociativeMemory` /
:class:`~repro.hdc.model.HDCClassifier`).  A bipolar component is a
single sign bit (bit 1 ⇔ −1, :func:`~repro.hdc.backends.packed.pack_signs`),
so the paper's model stores 64 components per uint64 word, binds with
XOR, and answers every cosine query as ``D − 2·popcount(xor)`` — the
Schmuck-style hardware formulation, applied to the bipolar family
HDTest actually fuzzes.

As with the packed binary family, packing is pure representation and
the bit-identity is structural:

* :class:`PackedBipolarEncoder` **subclasses**
  :class:`~repro.hdc.encoders.image.PixelEncoder` — codebooks,
  quantisation, and the signed-accumulator algebra (including
  ``accumulate_delta``) are the parent's; ``accumulate_batch`` runs on
  packed sign codebooks through the word-level
  :func:`~repro.hdc.backends.packed.bit_sliced_counts` bundling kernel
  (the packed *training* path) and ``hvs_from_accumulators`` packs the
  Eq. 1 sign threshold;
* :class:`PackedBipolarAssociativeMemory` keeps the dense AM's signed
  integer accumulators (training, retraining, and persistence match
  exactly) and quantises/queries packed — similarities, predictions,
  and margins equal the dense cosine to the last float;
* :class:`PackedBipolarHDCClassifier` **subclasses**
  :class:`~repro.hdc.model.HDCClassifier` — training, inference,
  retraining, and :meth:`~repro.hdc.model.HDCClassifier.save` are
  inherited, so the packed family cannot drift from the paper's.

Fuzzing outcomes therefore equal the dense bipolar family's, input for
input (property-tested in ``tests/fuzz/test_packed_fuzzing.py``); the
cross-family conformance suite
(``tests/hdc/backends/test_conformance.py``) pins the full
train/predict/save/load/retrain/copy surface against the dense family.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.errors import ConfigurationError, DimensionMismatchError, NotTrainedError
from repro.hdc.associative_memory import AssociativeMemory
from repro.hdc.backends.dispatch import KernelBackend, get_backend
from repro.hdc.backends.packed import (
    bipolar_cosine_from_counts,
    bit_sliced_counts,
    check_packed,
    gather_words,
    gathered_xor_counts,
    pack_signs,
    packed_words,
    unpack_signs,
)
from repro.hdc.encoders.base import Encoder
from repro.hdc.encoders.image import PixelEncoder
from repro.hdc.item_memory import ItemMemory, RematerializedItemMemory
from repro.hdc.model import HDCClassifier
from repro.hdc.spaces import DEFAULT_DIMENSION, BipolarSpace, Space
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_labels, check_positive_int

__all__ = [
    "PackedBipolarSpace",
    "PackedBipolarEncoder",
    "PackedBipolarAssociativeMemory",
    "PackedBipolarHDCClassifier",
]

BackendLike = Union[None, str, KernelBackend]


class PackedBipolarSpace(Space):
    """{-1, +1} hypervectors stored as packed uint64 sign words.

    ``dimension`` stays the *logical* component count ``D``; arrays have
    ``n_words = ceil(D / 64)`` uint64 entries with component ``d``'s
    sign bit (1 ⇔ −1) at bit ``d % 64`` of word ``d // 64``.
    :meth:`random` draws the same bit stream as
    :class:`~repro.hdc.spaces.BipolarSpace` for the same generator,
    then packs — packed and dense codebooks built from one seed agree
    sign for sign.
    """

    alphabet = (-1, 1)

    @property
    def n_words(self) -> int:
        """uint64 words per hypervector (``ceil(dimension / 64)``)."""
        return packed_words(self.dimension)

    def random(self, n: Optional[int] = None, *, rng: RngLike = None) -> np.ndarray:
        generator = ensure_rng(rng)
        size = (
            (self.dimension,)
            if n is None
            else (check_positive_int(n, "n"), self.dimension)
        )
        # Same mapping as BipolarSpace: draw b becomes value 2b − 1.
        draws = generator.integers(0, 2, size=size, dtype=np.int8)
        return pack_signs(2 * draws - 1, validate=False)

    def check_member(self, hv: np.ndarray, *, name: str = "hv") -> np.ndarray:
        """Validate packed dtype, word count, and zeroed tail bits."""
        arr = np.asarray(hv)
        if arr.ndim not in (1, 2):
            raise DimensionMismatchError(f"{name} must be 1-D or 2-D, got ndim={arr.ndim}")
        return check_packed(arr, self.dimension, name=name)

    def pack(self, values: np.ndarray) -> np.ndarray:
        """Pack dense {-1, +1} members of the equivalent BipolarSpace."""
        arr = np.asarray(values)
        if arr.shape[-1] != self.dimension:
            raise DimensionMismatchError(
                f"values has dimension {arr.shape[-1]}, expected {self.dimension}"
            )
        return pack_signs(arr)

    def unpack(self, words: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`pack` (int8 {-1, +1} array)."""
        return unpack_signs(words, self.dimension)


class PackedBipolarEncoder(PixelEncoder):
    """Position ⊛ value image encoder emitting packed bipolar sign words.

    Everything semantic — codebooks (same spawn discipline, so equal
    seeds give equal signs), quantisation, the signed pixel-sum
    accumulators, and the incremental ``accumulate_delta`` — is
    inherited from :class:`~repro.hdc.encoders.image.PixelEncoder`
    unchanged.  Two methods differ, both representation-only:

    * :meth:`accumulate_batch` computes the very same integer sums on
      *packed sign codebooks*: ``Σ_p pos_p ⊛ val_{x_p} = k − 2·c``
      where ``c`` are the per-component −1 counts of the XORed sign
      rows, summed word-level by
      :func:`~repro.hdc.backends.packed.bit_sliced_counts` (with the
      parent's sparse-background decomposition on mostly-dark images) —
      the packed *training* path;
    * :meth:`hvs_from_accumulators` applies the parent's Eq. 1 sign
      threshold (0 → +1) and packs the sign bits.
    """

    def __init__(
        self,
        shape: tuple[int, int] = (28, 28),
        *,
        levels: int = 256,
        dimension: int = DEFAULT_DIMENSION,
        value_memory: Optional[ItemMemory] = None,
        position_memory: Optional[ItemMemory] = None,
        rng: RngLike = None,
        sparse_background: bool = True,
        backend: BackendLike = None,
        codebook: str = "materialized",
    ) -> None:
        super().__init__(
            shape,
            levels=levels,
            dimension=dimension,
            value_memory=value_memory,
            position_memory=position_memory,
            rng=rng,
            sparse_background=sparse_background,
            codebook=codebook,
        )
        self._packed_space = PackedBipolarSpace(dimension)
        self._backend = get_backend(backend)

    @classmethod
    def from_dense(
        cls, encoder, *, backend: BackendLike = None
    ) -> "PackedBipolarEncoder":
        """Wrap a trained ``PixelEncoder``'s codebooks (exact, shared)."""
        for attr in ("shape", "position_memory", "value_memory", "dimension"):
            if not hasattr(encoder, attr):
                raise ConfigurationError(
                    f"{type(encoder).__name__} lacks {attr!r}; expected a "
                    "PixelEncoder-compatible encoder"
                )
        packed = cls.__new__(cls)
        packed._shape = tuple(encoder.shape)
        packed._levels = encoder.value_memory.size
        packed._space = BipolarSpace(encoder.dimension)
        packed._sparse_background = True
        packed._position_memory = encoder.position_memory
        packed._value_memory = encoder.value_memory
        packed._position_sum = encoder.position_memory.vectors.sum(
            axis=0, dtype=np.int64
        )
        packed._packed_space = PackedBipolarSpace(encoder.dimension)
        packed._backend = get_backend(backend)
        return packed

    # -- introspection ---------------------------------------------------
    @property
    def n_words(self) -> int:
        """uint64 words per emitted hypervector."""
        return self._packed_space.n_words

    @property
    def backend(self) -> KernelBackend:
        """Kernel backend packed outputs are produced with."""
        return self._backend

    # -- the packed training path ------------------------------------------
    def _sign_codebooks(self) -> tuple:
        """Sign-word sources for both codebooks (packed once and cached,
        or the rematerialized memory itself).

        A bipolar :class:`~repro.hdc.item_memory.RematerializedItemMemory`
        already *is* a packed sign-word source — its PRF words are the
        sign bits of its dense rows by construction — so it is returned
        as-is and the gather kernels generate rows on demand
        (``take_words``) instead of reading a cached array.
        """
        cache = getattr(self, "_sign_codebook_words", None)
        if cache is None:
            cache = tuple(
                memory
                if isinstance(memory, RematerializedItemMemory)
                else pack_signs(memory.vectors, validate=False)
                for memory in (self._position_memory, self._value_memory)
            )
            self._sign_codebook_words = cache
        return cache

    def accumulate_batch(self, items: np.ndarray) -> np.ndarray:
        """Raw integer accumulators ``(n, D)`` via word-level bundling.

        Elementwise equal to the parent's dense gather (both are exact
        integer sums of ±1 products); only the arithmetic is packed.
        """
        levels = self.quantize(items)
        flat = levels.reshape(levels.shape[0], -1)
        if self._sparse_background:
            return self._accumulate_sparse_packed(flat)
        return self._accumulate_full_packed(flat)

    def _accumulate_full_packed(self, flat_levels: np.ndarray) -> np.ndarray:
        pos_s, val_s = self._sign_codebooks()
        n_pixels = flat_levels.shape[1]
        counts = gathered_xor_counts(pos_s, val_s, flat_levels, self.dimension)
        # Σ ±1 products = n_pixels − 2 · (count of −1 sign bits).
        return n_pixels - 2 * counts

    def _accumulate_sparse_packed(self, flat_levels: np.ndarray) -> np.ndarray:
        """The parent's sparse-background rewrite, on sign words.

        ``acc = base + Σ_{p∉bg} pos_p ⊛ (val_{x_p} − val_0)`` and each
        term is ``2·(bit₀ − bitₓ)`` of the XORed sign rows, so the
        foreground correction is two bit-sliced counts over only the
        non-background pixels.
        """
        pos_s, val_s = self._sign_codebooks()
        val0 = self._value_memory.take(0).astype(np.int64)
        val0_words = gather_words(val_s, np.asarray([0]))[0]
        base = self._position_sum * val0
        n = flat_levels.shape[0]
        out = np.empty((n, self.dimension), dtype=np.int64)
        out[:] = base
        rows, cols = np.nonzero(flat_levels)
        if rows.size == 0:
            return out
        # One fused gather+XOR+bit_sliced_counts over the concatenated
        # child block instead of two word kernels per image: children
        # are ordered by foreground size and padded to rectangular
        # (c, k, W) stacks per chunk (pad rows XOR to all-zero words,
        # contributing identically to both counts), so the carry-save
        # column counter runs batched over its leading axis.  Codebook
        # rows are gathered once per distinct index, which also dedupes
        # rematerialized row generation across children.
        lv = flat_levels[rows, cols]
        counts = np.count_nonzero(flat_levels, axis=1)
        bounds = np.concatenate(([0], np.cumsum(counts)))
        order = np.argsort(counts, kind="stable")
        order = order[counts[order] > 0]
        n_words = val0_words.shape[-1]
        budget = max(1, (1 << 21) // n_words)  # padded rows per chunk
        a = 0
        while a < order.size:
            b = a + 1
            while (
                b < order.size
                and (b + 1 - a) * int(counts[order[b]]) <= budget
            ):
                b += 1
            ids = order[a:b]
            a = b
            sel_counts = counts[ids]
            kmax = int(sel_counts[-1])
            pix = np.zeros((ids.size, kmax), dtype=np.int64)
            val_idx = np.zeros((ids.size, kmax), dtype=np.int64)
            child_of = np.repeat(np.arange(ids.size), sel_counts)
            offsets = np.concatenate(([0], np.cumsum(sel_counts[:-1])))
            within = np.arange(child_of.size) - np.repeat(offsets, sel_counts)
            src = np.repeat(bounds[ids], sel_counts) + within
            pix[child_of, within] = cols[src]
            val_idx[child_of, within] = lv[src]
            pos_words = self._gather_words_deduped(pos_s, pix)
            xor_bg = np.bitwise_xor(pos_words, val0_words)
            xor_fg = np.bitwise_xor(
                pos_words, self._gather_words_deduped(val_s, val_idx)
            )
            pad = np.arange(kmax)[None, :] >= sel_counts[:, None]
            xor_bg[pad] = 0
            xor_fg[pad] = 0
            c_bg = bit_sliced_counts(xor_bg, self.dimension)
            c_fg = bit_sliced_counts(xor_fg, self.dimension)
            out[ids] += 2 * (c_bg - c_fg)
        return out

    @staticmethod
    def _gather_words_deduped(source, rows: np.ndarray) -> np.ndarray:
        """``gather_words`` generating each distinct row once per block."""
        if isinstance(source, np.ndarray):
            return gather_words(source, rows)
        uniq, inv = np.unique(rows, return_inverse=True)
        return gather_words(source, uniq)[inv.reshape(rows.shape)]

    # -- the packed quantisation step --------------------------------------
    def hvs_from_accumulators(self, accumulators: np.ndarray) -> np.ndarray:
        """The parent's Eq. 1 sign threshold (0 → +1), packed.

        ``acc < 0`` *is* the sign bit under the packing convention, so
        no dense ±1 intermediate is materialised.
        """
        return self._backend.pack(np.asarray(accumulators) < 0, validate=False)

    def unpack(self, hvs: np.ndarray) -> np.ndarray:
        """Unpack emitted HVs back to int8 {-1, +1} components."""
        return self._packed_space.unpack(hvs)

    def __repr__(self) -> str:
        return (
            f"PackedBipolarEncoder(shape={self.shape}, levels={self.levels}, "
            f"dimension={self.dimension}, backend={self._backend.name!r})"
        )


class PackedBipolarAssociativeMemory:
    """Signed class accumulators with packed class HVs and popcount queries.

    Holds the same ``(n_classes, D)`` int64 accumulators as the dense
    :class:`~repro.hdc.associative_memory.AssociativeMemory` (training,
    retraining, and the ``state_dict`` schema match exactly) but
    quantises its class HVs into packed sign words and answers cosine
    queries as ``(D − 2·popcount(xor)) / D`` — the ≥3× query-throughput
    path ``benchmarks/bench_packed_bipolar.py`` measures.  All query
    results are bit-identical to the dense memory's.

    Always bipolar: the raw-accumulator ablation (``bipolar=False``)
    queries integer accumulators with full cosine and has no packed
    form.
    """

    def __init__(
        self, n_classes: int, dimension: int, *, backend: BackendLike = None
    ) -> None:
        self._n_classes = check_positive_int(n_classes, "n_classes")
        self._dimension = check_positive_int(dimension, "dimension")
        self._backend = get_backend(backend)
        self._accumulators = np.zeros((self._n_classes, self._dimension), dtype=np.int64)
        self._counts = np.zeros(self._n_classes, dtype=np.int64)
        self._cache: Optional[np.ndarray] = None

    @classmethod
    def from_dense(
        cls, am, *, backend: BackendLike = None
    ) -> "PackedBipolarAssociativeMemory":
        """Adopt a dense bipolar AM's accumulators (exact conversion)."""
        return cls.from_state_dict(am.state_dict(), backend=backend)

    def to_dense(self) -> AssociativeMemory:
        """The equivalent dense :class:`AssociativeMemory`."""
        return AssociativeMemory.from_state_dict(self.state_dict())

    # -- introspection ---------------------------------------------------
    @property
    def n_classes(self) -> int:
        return self._n_classes

    @property
    def dimension(self) -> int:
        return self._dimension

    @property
    def n_words(self) -> int:
        """uint64 words per class hypervector."""
        return packed_words(self._dimension)

    @property
    def backend(self) -> KernelBackend:
        """Kernel backend answering similarity queries."""
        return self._backend

    @property
    def bipolar(self) -> bool:
        """Always True — only the bipolarised AM packs (see class docs)."""
        return True

    @property
    def counts(self) -> np.ndarray:
        return self._counts.copy()

    @property
    def accumulators(self) -> np.ndarray:
        """Read-only view of the raw ``(n_classes, D)`` accumulators."""
        view = self._accumulators.view()
        view.flags.writeable = False
        return view

    @property
    def is_trained(self) -> bool:
        return bool((self._counts > 0).all())

    # -- updates ---------------------------------------------------------
    def add(self, hvs: np.ndarray, labels) -> None:
        """Accumulate packed sign HVs into their signed class sums.

        Word-level throughout: with ``c`` the per-component −1 counts of
        a class's update rows (one bit-sliced column sum over the packed
        stack), the signed contribution is exactly ``m − 2·c`` for ``m``
        rows — no dense ±1 intermediate is materialised (the retraining
        counterpart of the packed training path).
        """
        arr, labels_arr = self._check_update(hvs, labels)
        for label, delta in self._signed_deltas(arr, labels_arr):
            self._accumulators[label] += delta
        np.add.at(self._counts, labels_arr, 1)
        self._cache = None

    def subtract(self, hvs: np.ndarray, labels) -> None:
        """Perceptron-style removal (signed, unclamped — as in the dense AM)."""
        arr, labels_arr = self._check_update(hvs, labels)
        for label, delta in self._signed_deltas(arr, labels_arr):
            self._accumulators[label] -= delta
        self._cache = None

    def _signed_deltas(self, arr: np.ndarray, labels_arr: np.ndarray):
        """Per-class signed update sums, computed bit-sliced (exact)."""
        for label in np.unique(labels_arr):
            rows = arr[labels_arr == label]
            counts = bit_sliced_counts(rows, self._dimension)
            yield int(label), rows.shape[0] - 2 * counts

    def _check_update(self, hvs: np.ndarray, labels) -> tuple[np.ndarray, np.ndarray]:
        arr = np.asarray(hvs)
        if arr.ndim == 1:
            arr = arr[None, :]
        arr = check_packed(arr, self._dimension, name="hvs")
        labels_arr = check_labels(labels, arr.shape[0])
        if labels_arr.size and labels_arr.max() >= self._n_classes:
            raise ConfigurationError(
                f"label {labels_arr.max()} out of range for {self._n_classes} classes"
            )
        return arr, labels_arr

    # -- reference vectors -------------------------------------------------
    @property
    def class_hvs(self) -> np.ndarray:
        """Bipolarised class HVs, packed ``(C, n_words)`` (Eq. 1, 0 → +1)."""
        if self._cache is None:
            # acc < 0 is exactly the sign bit of np.where(acc >= 0, 1, -1).
            self._cache = self._backend.pack(self._accumulators < 0, validate=False)
        return self._cache

    @property
    def class_hvs_values(self) -> np.ndarray:
        """Dense int8 {-1, +1} view of :attr:`class_hvs` (diagnostics)."""
        return unpack_signs(self.class_hvs, self._dimension)

    def reference_hv(self, label: int) -> np.ndarray:
        if not 0 <= label < self._n_classes:
            raise ConfigurationError(f"label {label} out of range [0, {self._n_classes})")
        return self.class_hvs[label]

    # -- queries -----------------------------------------------------------
    def similarities(self, queries: np.ndarray) -> np.ndarray:
        """Cosine similarity to each class HV → ``(n, C)``, popcount inside.

        One XOR + popcount pass per class over the packed query block;
        the float tail mirrors the dense
        :func:`~repro.hdc.similarity.cosine_matrix` operation for
        operation, so results are bit-identical.
        """
        self._require_trained()
        arr = np.asarray(queries)
        if arr.ndim == 1:
            arr = arr[None, :]
        arr = check_packed(arr, self._dimension, name="queries")
        diff = self._backend.hamming_counts(arr, self.class_hvs)
        return bipolar_cosine_from_counts(diff, self._dimension)

    def predict(self, queries: np.ndarray) -> np.ndarray:
        return self.similarities(queries).argmax(axis=1).astype(np.int64)

    def margins(self, queries: np.ndarray) -> np.ndarray:
        sims = self.similarities(queries)
        if sims.shape[1] < 2:
            return np.zeros(sims.shape[0])
        part = np.partition(sims, -2, axis=1)
        return part[:, -1] - part[:, -2]

    def _require_trained(self) -> None:
        if not (self._counts > 0).any():
            raise NotTrainedError("packed bipolar associative memory has no trained classes")

    # -- persistence ---------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Same schema as the dense AM (signed accumulators, not words)."""
        return {
            "accumulators": self._accumulators.copy(),
            "counts": self._counts.copy(),
            "bipolar": np.asarray(True),
        }

    @classmethod
    def from_state_dict(
        cls, state: dict[str, np.ndarray], *, backend: BackendLike = None
    ) -> "PackedBipolarAssociativeMemory":
        """Inverse of :meth:`state_dict` (rejects ``bipolar=False`` states)."""
        if not bool(np.asarray(state.get("bipolar", True))):
            raise ConfigurationError(
                "the raw-accumulator (bipolar=False) ablation has no packed "
                "form; load it into the dense AssociativeMemory instead"
            )
        acc = np.asarray(state["accumulators"], dtype=np.int64)
        if acc.ndim != 2:
            raise ConfigurationError(f"accumulators must be 2-D, got shape {acc.shape}")
        am = cls(acc.shape[0], acc.shape[1], backend=backend)
        am._accumulators = acc
        am._counts = np.asarray(state["counts"], dtype=np.int64)
        return am

    def copy(self) -> "PackedBipolarAssociativeMemory":
        return PackedBipolarAssociativeMemory.from_state_dict(
            self.state_dict(), backend=self._backend
        )

    def __repr__(self) -> str:
        return (
            f"PackedBipolarAssociativeMemory(n_classes={self._n_classes}, "
            f"dimension={self._dimension}, backend={self._backend.name!r}, "
            f"trained={self.is_trained})"
        )


class PackedBipolarHDCClassifier(HDCClassifier):
    """Classifier facade over the packed encoder + popcount AM pair.

    Subclasses :class:`~repro.hdc.model.HDCClassifier`: training,
    adaptive retraining, inference, scoring, and :meth:`save` are all
    inherited — the packed AM exposes the same accumulator interface —
    so the packed family cannot drift from the paper's.  ``save``
    writes the shared ``pixel-hdc`` format (codebooks + signed
    accumulators); ``load`` therefore returns a *dense* classifier —
    repackage with :meth:`from_dense`.
    """

    #: Grey-box marker read by the fuzzing engines: query and reference
    #: HVs are packed bipolar sign words, so the distance-guided fitness
    #: must score with the sign-bit cosine kernel
    #: (:func:`repro.fuzz.fitness.packed_bipolar_dimension`).
    packed_alphabet = "bipolar"

    def __init__(
        self, encoder: Encoder, n_classes: int, *, backend: BackendLike = None
    ) -> None:
        super().__init__(encoder, n_classes, bipolar_am=True)
        self._am = PackedBipolarAssociativeMemory(
            n_classes, encoder.dimension, backend=backend
        )

    @classmethod
    def from_dense(
        cls, model, *, backend: BackendLike = None
    ) -> "PackedBipolarHDCClassifier":
        """Repackage a trained ``HDCClassifier`` (exact, shares codebooks).

        Requires the paper's configuration: a
        :class:`~repro.hdc.encoders.image.PixelEncoder` (or an encoder
        exposing its codebook surface) in front of a *bipolarised* AM.
        """
        am = model.associative_memory
        if not getattr(am, "bipolar", True):
            raise ConfigurationError(
                "the raw-accumulator (bipolar_am=False) ablation has no "
                "packed form; run it dense"
            )
        packed = cls.__new__(cls)
        packed._encoder = PackedBipolarEncoder.from_dense(model.encoder, backend=backend)
        packed._n_classes = model.n_classes
        packed._am = PackedBipolarAssociativeMemory.from_dense(am, backend=backend)
        return packed

    def to_dense(self) -> HDCClassifier:
        """The equivalent dense :class:`~repro.hdc.model.HDCClassifier`."""
        dense = HDCClassifier.__new__(HDCClassifier)
        encoder = PixelEncoder.__new__(PixelEncoder)
        encoder._shape = self._encoder.shape  # noqa: SLF001 - controlled reconstruction
        encoder._levels = self._encoder.levels
        encoder._space = BipolarSpace(self._encoder.dimension)
        encoder._sparse_background = True
        encoder._position_memory = self._encoder.position_memory
        encoder._value_memory = self._encoder.value_memory
        encoder._position_sum = self._encoder.position_memory.vectors.sum(
            axis=0, dtype=np.int64
        )
        dense._encoder = encoder
        dense._n_classes = self._n_classes
        dense._am = self._am.to_dense()
        return dense

    def with_backend(self, backend: BackendLike) -> "PackedBipolarHDCClassifier":
        """Clone bound to different kernels (shared codebooks and sums)."""
        kernels = get_backend(backend)
        clone = PackedBipolarHDCClassifier.__new__(PackedBipolarHDCClassifier)
        if isinstance(self._encoder, PixelEncoder):
            clone._encoder = PackedBipolarEncoder.from_dense(
                self._encoder, backend=kernels
            )
        else:
            clone._encoder = self._encoder
        clone._n_classes = self._n_classes
        clone._am = PackedBipolarAssociativeMemory.from_state_dict(
            self._am.state_dict(), backend=kernels
        )
        return clone

    def copy(self) -> "PackedBipolarHDCClassifier":
        """Clone sharing the encoder but with an independent AM."""
        clone = PackedBipolarHDCClassifier.__new__(PackedBipolarHDCClassifier)
        clone._encoder = self._encoder
        clone._n_classes = self._n_classes
        clone._am = self._am.copy()
        return clone

    @property
    def associative_memory(self) -> PackedBipolarAssociativeMemory:
        return self._am

    @property
    def backend(self) -> KernelBackend:
        """Kernel backend of the associative memory."""
        return self._am.backend

    def __repr__(self) -> str:
        return (
            f"PackedBipolarHDCClassifier(encoder={self._encoder!r}, "
            f"n_classes={self._n_classes}, backend={self.backend.name!r}, "
            f"trained={self.is_trained})"
        )
