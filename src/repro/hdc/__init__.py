"""Hyperdimensional-computing core: spaces, operations, memories, models.

This subpackage is a from-scratch implementation of the HDC model
family described in Sec. III of the paper (and of the binary/dense
variants it cites), sufficient to train the paper's MNIST classifier
and to expose the grey-box surface HDTest fuzzes.
"""

from repro.hdc.associative_memory import AssociativeMemory
from repro.hdc.backends import (
    KernelBackend,
    PackedAssociativeMemory,
    PackedBinaryHDCClassifier,
    PackedBinarySpace,
    PackedBipolarAssociativeMemory,
    PackedBipolarEncoder,
    PackedBipolarHDCClassifier,
    PackedBipolarSpace,
    PackedPixelEncoder,
    backend_names,
    get_backend,
    pack_bits,
    pack_signs,
    resolve_model_backend,
    unpack_bits,
    unpack_signs,
)
from repro.hdc.binary_model import (
    BinaryAssociativeMemory,
    BinaryHDCClassifier,
    BinaryPixelEncoder,
)
from repro.hdc.faults import accuracy_under_faults, flip_components, inject_am_faults
from repro.hdc.encoders import (
    DEFAULT_ALPHABET,
    Encoder,
    NgramEncoder,
    PermutationImageEncoder,
    PixelEncoder,
    RecordEncoder,
)
from repro.hdc.item_memory import ItemMemory, LevelMemory
from repro.hdc.model import HDCClassifier
from repro.hdc.ops import (
    bind,
    bind_xor,
    bipolarize,
    bundle,
    bundle_majority,
    bundle_many,
    invert,
    permute,
)
from repro.hdc.similarity import (
    cosine,
    cosine_matrix,
    dot,
    hamming_distance,
    hamming_similarity,
)
from repro.hdc.spaces import DEFAULT_DIMENSION, BinarySpace, BipolarSpace, Space

__all__ = [
    "AssociativeMemory",
    "BinaryAssociativeMemory",
    "BinaryHDCClassifier",
    "BinaryPixelEncoder",
    "BinarySpace",
    "BipolarSpace",
    "DEFAULT_ALPHABET",
    "DEFAULT_DIMENSION",
    "Encoder",
    "HDCClassifier",
    "ItemMemory",
    "KernelBackend",
    "LevelMemory",
    "NgramEncoder",
    "PackedAssociativeMemory",
    "PackedBinaryHDCClassifier",
    "PackedBinarySpace",
    "PackedBipolarAssociativeMemory",
    "PackedBipolarEncoder",
    "PackedBipolarHDCClassifier",
    "PackedBipolarSpace",
    "PackedPixelEncoder",
    "PermutationImageEncoder",
    "PixelEncoder",
    "RecordEncoder",
    "Space",
    "accuracy_under_faults",
    "backend_names",
    "bind",
    "bind_xor",
    "bipolarize",
    "bundle",
    "bundle_majority",
    "bundle_many",
    "cosine",
    "cosine_matrix",
    "dot",
    "flip_components",
    "get_backend",
    "hamming_distance",
    "hamming_similarity",
    "inject_am_faults",
    "invert",
    "pack_bits",
    "pack_signs",
    "permute",
    "resolve_model_backend",
    "unpack_bits",
    "unpack_signs",
]
