"""Batched fuzzing engine: Alg. 1 in lock-step across inputs, any domain.

:class:`BatchedHDTest` runs the paper's per-input loop over *all*
active inputs simultaneously.  Each iteration mutates every input's
surviving seeds, then performs **one fused encode and one fused
predict per target member** covering every input's children, instead
of one small model call per input per iteration.  Inputs retire from
the batch the moment their differential oracle flips; per-input
iteration counts are exactly those of the sequential loop.

The engine is target-generic like its sequential parent: fuzzing a
K-member :class:`~repro.fuzz.targets.ModelEnsembleTarget` runs all K
models lock-step over the same child blocks — K fused encodes and K
fused AM queries per iteration, with per-member parent accumulators
riding the seed pools — which is what makes cross-model differential
campaigns cost ≈ K single-model campaigns instead of a serial re-fuzz
per member (``benchmarks/bench_ensemble_fuzzing.py``).  Inputs whose
members disagree before any mutation retire immediately as iteration-0
seed discrepancies.

The engine is modality-agnostic: its
:class:`~repro.fuzz.domains.FuzzDomain` converts raw inputs into the
internal array representation once at entry — pixel grids for images,
uint8 alphabet-code rows for strings, feature vectors for records —
and the lock-step loop only ever sees ``(n, …)`` numeric blocks.
``hdtest fuzz --domain image|text|voice`` drives the same engine
through any executor and backend.

Semantics are unchanged — only the schedule is.  Under the *shared RNG
discipline* (one child generator per input, derived with
:func:`repro.utils.rng.spawn`), every per-input outcome is identical to
running :meth:`repro.fuzz.fuzzer.HDTest.fuzz_one` on that input with
its generator::

    generators = spawn(seed, len(inputs))
    BatchedHDTest(model, "gauss").fuzz_outcomes(inputs, generators=generators)
    ==  [HDTest(model, "gauss").fuzz_one(x, rng=g)
         for x, g in zip(inputs, generators)]

(property-tested in ``tests/fuzz/test_batch.py`` for images and
``tests/fuzz/test_cross_modality.py`` for text and records).

Two encode paths are used, picked automatically:

* **incremental (delta)** — when the model's encoder exposes the
  :data:`~repro.fuzz.domains.DELTA_ENCODER_API` (the pixel and n-gram
  encoders do), children are encoded from their *parent seed's*
  accumulator, touching only the components (pixels, n-grams) the
  mutation changed.  The integer algebra is exact, so hypervectors are
  bit-identical to a full encode at a fraction of the work.
* **direct** — any other encoder: the iteration's cache-missing
  children of every input are stacked into a single ``encode_batch``
  call.

**How the fused encode path works.**  Per-child Python work is what a
profile of the old engine showed dominating the encode phase, so both
paths hoist every per-child step to the iteration's *concatenated*
child block.  The plans' children are concatenated once; quantisation
(``child_levels``) runs once over the block; cache keys come from a
single ``tobytes`` of the block sliced per row; the cache-missing rows
of *all* inputs are gathered into one ragged ``accumulate_delta`` (or
one ``encode_batch``) call; and one ``hvs_from_accumulators`` converts
the assembled accumulator block before per-plan slices are handed back.
Inside the encoders the same discipline continues: the delta kernels in
:mod:`repro.hdc.encoders._blocked` scatter all children's changed
(pixel, level) pairs as one flat COO block with segment sums, so an
engine iteration issues O(1) kernel calls *per member* regardless of
how many inputs, seeds, or children are in flight.  The algebra is
exact in integers throughout, so fusion changes no outcome bit
(equivalence-tested against the sequential engine and the per-child
reference loops).

Both paths dedupe through per-input bounded LRU caches keyed by child
bytes — each input gets a share of ``HDTestConfig.cache_max_entries``
(floored at 32 entries) so the aggregate memory bound is independent of
how many inputs are in flight.  This is what makes discrete strategies
such as ``shift`` nearly free.  The caches are keyed by the *content*
of the original input and live on the engine instance, so when a
campaign recycles inputs across waves (``generate_adversarial_set``)
or chunks (the executors), an input returning to the batch finds its
working set already warm.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, FuzzingError
from repro.fuzz.fuzzer import HDTest
from repro.fuzz.results import CampaignResult, InputOutcome
from repro.fuzz.seeds import SeedPoolBatch
from repro.metrics.timing import Stopwatch
from repro.utils.cache import LRUCache
from repro.utils.rng import RngLike, ensure_rng, spawn

__all__ = ["BatchedHDTest"]


class _CachePool:
    """Per-input dedupe caches keyed by input content, budget-bounded.

    Values are the familiar child-bytes → encode-result LRU caches; the
    pool evicts whole per-input caches least-recently-fuzzed first, so
    a long-lived engine cycling through an unbounded stream of distinct
    inputs cannot grow without bound.  The bound is an *aggregate entry
    budget* (sum of live cache capacities), not a cache count — so a
    stream of single-input calls (each claiming the full per-call
    capacity) retains a couple of warm caches, not hundreds.  Callers
    :meth:`reserve` the current chunk's footprint before an iteration,
    which both sizes the budget (with 2× headroom for wave recycling)
    and guarantees active inputs never evict each other mid-run; each
    :meth:`get` re-applies the *current* per-input capacity share, so a
    surviving cache from a small-batch call shrinks (LRU-evicting) when
    many inputs later split the same budget.
    """

    __slots__ = ("entry_budget", "_caches", "_total_capacity")

    def __init__(self) -> None:
        self.entry_budget = 0
        self._caches: OrderedDict[bytes, LRUCache[bytes, np.ndarray]] = OrderedDict()
        self._total_capacity = 0

    def reserve(self, n_inputs: int, capacity: int) -> None:
        """Ensure *n_inputs* caches of *capacity* fit, with 2× headroom."""
        self.entry_budget = max(self.entry_budget, 2 * n_inputs * capacity)

    def get(self, key: bytes, capacity: int) -> LRUCache[bytes, np.ndarray]:
        cache = self._caches.get(key)
        if cache is None:
            cache = self._caches[key] = LRUCache(capacity)
            self._total_capacity += capacity
            while self._total_capacity > self.entry_budget and len(self._caches) > 1:
                _, evicted = self._caches.popitem(last=False)
                self._total_capacity -= evicted.max_entries
        else:
            if cache.max_entries != capacity:
                self._total_capacity += capacity - cache.max_entries
                cache.resize(capacity)
            self._caches.move_to_end(key)
        return cache


class _ActiveInput:
    """Book-keeping for one not-yet-retired input of the lock-step batch."""

    __slots__ = ("index", "original", "reference", "generator", "cache_key")

    def __init__(self, index, original, reference, generator, cache_key):
        self.index = index
        self.original = original
        self.reference = reference  # TargetReference (label, votes, fitness_hv)
        self.generator = generator
        self.cache_key = cache_key


class BatchedHDTest(HDTest):
    """Lock-step batched variant of :class:`~repro.fuzz.fuzzer.HDTest`.

    Accepts the same constructor arguments, including ``domain``.  Any
    registered modality batches: inputs are converted to the domain's
    internal array representation (strings become uint8 code rows) and
    must share one shape/length per call.

    Examples
    --------
    >>> from repro.datasets import load_digits
    >>> from repro.hdc import PixelEncoder, HDCClassifier
    >>> from repro.fuzz import BatchedHDTest
    >>> train, test = load_digits(n_train=300, n_test=20, seed=3)
    >>> model = HDCClassifier(PixelEncoder(dimension=2048, rng=3), 10)
    >>> _ = model.fit(train.images, train.labels)
    >>> result = BatchedHDTest(model, "gauss", rng=0).fuzz(test.images[:5])
    >>> result.n_inputs
    5
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Content-keyed per-input dedupe caches, persistent across
        # fuzz_outcomes calls so recycled inputs (campaign waves,
        # executor chunks) re-enter with a warm working set.
        self._cache_pool = _CachePool()

    # -- campaign entry points ---------------------------------------------
    def fuzz(self, inputs: Sequence[Any], *, rng: RngLike = None) -> CampaignResult:
        """Fuzz every input in lock-step; aggregated :class:`CampaignResult`.

        Note the RNG discipline differs from the sequential
        :meth:`HDTest.fuzz` (which threads one generator through inputs
        sequentially): here each input gets an independent child
        generator spawned from *rng*, so outcomes match per-input
        :meth:`HDTest.fuzz_one` calls under the same spawning.
        """
        mark = self._obs.marker()
        with Stopwatch() as sw:
            outcomes = self.fuzz_outcomes(inputs, rng=rng)
        return CampaignResult(
            strategy=self._strategy.name,
            outcomes=outcomes,
            elapsed_seconds=sw.elapsed,
            guided=self._fitness.guided,
            executor="batched",
            n_members=self._target.n_members,
            telemetry=self._obs.since(mark),
        )

    def fuzz_outcomes(
        self,
        inputs: Sequence[Any],
        *,
        rng: RngLike = None,
        generators: Optional[Sequence[np.random.Generator]] = None,
    ) -> list[InputOutcome]:
        """Run Alg. 1 on all inputs at once; one outcome per input.

        Parameters
        ----------
        inputs:
            Raw inputs of the engine's domain, identical shape/length.
        rng:
            Root randomness; per-input child generators are spawned from
            it (ignored when *generators* is given).
        generators:
            Explicit per-input child generators — the executors use this
            to keep outcomes invariant to chunking.
        """
        n = len(inputs)
        if n == 0:
            return []
        if generators is None:
            root = ensure_rng(rng) if rng is not None else self._rng
            generators = spawn(root, n)
        elif len(generators) != n:
            raise ConfigurationError(
                f"{len(generators)} generators for {n} inputs"
            )
        originals = self._stack_inputs(inputs)
        cfg = self._config
        obs = self._obs
        obs.count("inputs", n)

        # One fused encode + predict per member for every reference
        # (Alg. 1 line 1, "y = HDC(t)", across the whole batch).
        surface = self._target.delta_surface(self._delta_encoder())
        with obs.phase("encode"):
            if surface is not None:
                ref_accs, ref_levels = surface.seed_side_data(originals)
                ref_bundle = surface.hvs_from_accumulators(ref_accs)
                pool = SeedPoolBatch(
                    originals, cfg.top_n, accumulators=ref_accs, levels=ref_levels
                )
            else:
                ref_bundle = self._target.encode_batch(originals)
                pool = SeedPoolBatch(originals, cfg.top_n)
        obs.count("seed_encodes", n)
        with obs.phase("query"):
            ref_predictions = self._target.predict_hvs(ref_bundle)
        obs.count("am_queries", n * self._target.n_members)

        active = []
        outcomes: list[Optional[InputOutcome]] = [None] * n
        for i in range(n):
            reference = self._target.reference(ref_predictions, i)
            if self._oracle.reference_discrepancy(reference.votes):
                # HDXplore-style seed discrepancy: members already
                # disagree on the unmutated input — retire immediately.
                example = self._seed_discrepancy_example(originals[i], reference)
                obs.record_success(0, example.disagreed_members)
                outcomes[i] = InputOutcome(
                    success=True,
                    iterations=0,
                    reference_label=reference.label,
                    example=example,
                )
                continue
            active.append(
                _ActiveInput(
                    i, originals[i], reference, generators[i],
                    originals[i].tobytes(),
                )
            )
        # One dedupe cache per input, keyed by content and shared with
        # previous calls, mirroring the sequential engine: per-input
        # working sets never evict each other.  Unlike the sequential
        # loop, many caches are live at once, so each gets a share of
        # cfg.cache_max_entries — floored at 32 entries, plenty for the
        # discrete working sets that actually hit — keeping the
        # aggregate bound independent of the chunk size.
        capacity = min(cfg.cache_max_entries, max(32, cfg.cache_max_entries // n))
        caches = self._cache_pool
        caches.reserve(n, capacity)

        for iteration in range(1, cfg.iter_times + 1):
            if not active:
                break
            obs.count("iterations", len(active))
            obs.heartbeat()
            with obs.phase("mutate"):
                plans = self._mutation_plans(active, pool)
            if plans:
                obs.count(
                    "encode_requests",
                    sum(len(children) for _, children, _ in plans),
                )
                with obs.phase("encode"):
                    if surface is not None:
                        encoded = self._encode_plans_delta(
                            surface, plans, pool, caches, capacity
                        )
                    else:
                        encoded = self._encode_plans_direct(plans, caches, capacity)
                # One fused prediction per encode block over every
                # input's children — the K-model lock-step step (a
                # shared-codebook ensemble emits a single block).
                all_predictions = self._predict_children(
                    tuple(
                        np.concatenate([e[0][m] for e in encoded], axis=0)
                        for m in range(self._target.n_encode_blocks)
                    )
                )
                retired: set[int] = set()
                offset = 0
                for (state, children, _), (bundle, accs, levels) in zip(
                    plans, encoded
                ):
                    predictions = all_predictions.slice(
                        offset, offset + len(children)
                    )
                    offset += len(children)
                    flips = self._discrepancies(state.reference, predictions)
                    if flips.any():
                        example = self._pick_success(
                            state.original, children, predictions.labels, flips,
                            state.reference, iteration,
                        )
                        obs.record_success(iteration, example.disagreed_members)
                        outcomes[state.index] = InputOutcome(
                            success=True,
                            iterations=iteration,
                            reference_label=state.reference.label,
                            example=example,
                        )
                        retired.add(state.index)
                        continue
                    scores = self._score_children(
                        state.reference, predictions, bundle, state.generator
                    )
                    pool.update(
                        state.index, children, scores,
                        generation=iteration, accumulators=accs, levels=levels,
                    )
                if retired:
                    active = [s for s in active if s.index not in retired]

        if active:
            obs.count("exhausted", len(active))
        for state in active:
            outcomes[state.index] = InputOutcome(
                success=False,
                iterations=cfg.iter_times,
                reference_label=state.reference.label,
            )
        return outcomes  # type: ignore[return-value]

    # -- lock-step internals -----------------------------------------------
    def _stack_inputs(self, inputs: Sequence[Any]) -> np.ndarray:
        """Raw inputs → the domain's stacked internal ``(n, …)`` batch."""
        return self._domain.stack(inputs)

    def _mutation_plans(self, active, pool: SeedPoolBatch):
        """Mutate + clip + budget-filter each active input's seeds.

        Returns ``(state, children, parent_ids)`` triples for inputs
        with at least one in-budget child; inputs whose children all
        blew the budget simply sit the iteration out (their seeds are
        retained and the iteration still counts, exactly as in the
        sequential loop).
        """
        cfg = self._config
        plans = []
        for state in active:
            batches = [
                self._strategy.mutate(seed, cfg.children_per_seed, rng=state.generator)
                for seed in pool.seeds(state.index)
            ]
            if not isinstance(batches[0], np.ndarray):
                raise FuzzingError(
                    f"strategy {self._strategy.name!r} returned "
                    f"{type(batches[0]).__name__} children for an array seed; "
                    "strategies must stay in the domain's internal representation"
                )
            children = np.concatenate(batches, axis=0)
            self._obs.count("children", len(children))
            self._obs.count_strategy(self._strategy.name, len(children))
            children = self._constraint.clip(children)
            keep = self._constraint.accept(state.original, children)
            self._obs.count("children_in_budget", int(keep.sum()))
            if not keep.any():
                continue
            # Derived from actual batch lengths, not children_per_seed,
            # so a strategy returning an off-count batch cannot silently
            # pair children with the wrong parent.
            parent_ids = np.repeat(
                np.arange(len(batches)), [len(batch) for batch in batches]
            )[keep]
            plans.append((state, children[keep], parent_ids))
        return plans

    def _encode_plans_delta(self, surface, plans, pool: SeedPoolBatch, caches, capacity):
        """Incremental path: children encoded from parent accumulators.

        Cache entries hold compact integer accumulators (they are
        exact — the hypervector is a deterministic function of them),
        so a hit skips even the delta work.

        Every per-child step is hoisted to the iteration's concatenated
        child block: quantisation, cache-key hashing (one ``tobytes``
        sliced per row), the ragged delta scatter, and the final
        accumulator → hypervector conversion each run **once** per
        iteration, regardless of how many inputs are active.  Lookups
        and insertions stay in each input's own LRU cache (the
        :func:`repro.utils.cache.resolve_with_cache` pinning discipline,
        spread across cache domains; duplicate inputs sharing a cache
        also share the pinned working dict, preserving their cross-plan
        dedupe).  With an ensemble target the accumulator rows carry a
        leading member axis: each member delta-encodes every child from
        *its own* parent accumulator, still one vectorised call per
        member per iteration.
        """
        bounds = np.concatenate(
            ([0], np.cumsum([len(children) for _, children, _ in plans]))
        )
        all_children = np.concatenate([children for _, children, _ in plans])
        all_levels = surface.child_levels(all_children)

        def fused_delta(positions_by_plan) -> np.ndarray:
            """One ``accumulate_delta`` over every plan's listed rows."""
            rows = [
                bounds[p] + np.asarray(pos, dtype=np.int64)
                for p, pos in enumerate(positions_by_plan)
                if len(pos)
            ]
            global_rows = np.concatenate(rows)
            self._count_encodes(len(global_rows))
            parent_levels, parent_accs = [], []
            for p, pos in enumerate(positions_by_plan):
                if not len(pos):
                    continue
                state, _, parent_ids = plans[p]
                parents = parent_ids[np.asarray(pos, dtype=np.int64)]
                parent_levels.append(pool.levels(state.index)[parents])
                parent_accs.append(pool.accumulators(state.index)[parents])
            return surface.accumulate_delta(
                all_levels[global_rows],
                np.concatenate(parent_levels),
                np.concatenate(parent_accs),
            )

        if self._config.dedupe:
            all_keys = self._child_keys(all_children)
            pinned: dict[int, dict[bytes, Any]] = {}  # shared per cache object
            plan_ctx = []  # (keys, local) per plan
            miss_by_plan: list[list[int]] = []
            miss_slots: list[tuple[dict, Any, bytes]] = []
            for p, (state, children, _) in enumerate(plans):
                cache = caches.get(state.cache_key, capacity)
                local = pinned.setdefault(id(cache), {})
                keys = all_keys[int(bounds[p]) : int(bounds[p + 1])]
                misses: list[int] = []
                for j, key in enumerate(keys):
                    if key not in local:
                        local[key] = cache.get(key)
                        if local[key] is None:
                            misses.append(j)
                            miss_slots.append((local, cache, key))
                plan_ctx.append((keys, local))
                miss_by_plan.append(misses)
            if miss_slots:
                fresh = fused_delta(miss_by_plan)
                for row, (local, cache, key) in zip(fresh, miss_slots):
                    local[key] = row
                    cache.put(key, row)
            if len(miss_slots) == len(all_keys):
                # Every child missed and no key repeated, so ``fresh``
                # already holds the rows in global order — skip the
                # per-row re-assembly stack (the common case early in a
                # campaign, when the caches are cold).
                all_accs = fresh
            else:
                all_accs = np.stack(
                    [local[key] for keys, local in plan_ctx for key in keys]
                )
        else:
            all_accs = fused_delta(
                [range(len(children)) for _, children, _ in plans]
            )
        all_bundle = surface.hvs_from_accumulators(all_accs)
        encoded = []
        for p in range(len(plans)):
            s, e = int(bounds[p]), int(bounds[p + 1])
            encoded.append((
                tuple(block[s:e] for block in all_bundle),
                all_accs[s:e],
                all_levels[s:e],
            ))
        return encoded

    def _encode_plans_direct(self, plans, caches, capacity):
        """Fallback path: one fused ``encode_batch`` for all cache misses.

        Misses from every plan are flattened into one stack so the whole
        iteration still costs a single model call *per member*, while
        lookups and insertions stay in each input's own cache (the same
        pinning discipline as :func:`repro.utils.cache.resolve_with_cache`,
        spread across cache domains).  Cache entries hold one row per
        encode block, so mixed-width ensembles share the machinery and
        shared-codebook ensembles cache a single row.
        """
        k = self._target.n_encode_blocks
        bounds = np.concatenate(
            ([0], np.cumsum([len(children) for _, children, _ in plans]))
        )
        all_children = np.concatenate([children for _, children, _ in plans])
        if not self._config.dedupe:
            self._count_encodes(len(all_children))
            all_bundle = self._target.encode_batch(all_children)
            return [
                (
                    tuple(
                        block[int(bounds[p]) : int(bounds[p + 1])]
                        for block in all_bundle
                    ),
                    None, None,
                )
                for p in range(len(plans))
            ]
        all_keys = self._child_keys(all_children)
        resolved = []  # (keys, local) per plan
        miss_rows: list[int] = []
        slots: list[tuple[dict, Any, bytes]] = []  # (local, cache, key) per miss
        for p, (state, children, _) in enumerate(plans):
            cache = caches.get(state.cache_key, capacity)
            keys = all_keys[int(bounds[p]) : int(bounds[p + 1])]
            local: dict[bytes, Optional[tuple]] = {}
            for j, key in enumerate(keys):
                if key not in local:
                    local[key] = cache.get(key)
                    if local[key] is None:
                        miss_rows.append(int(bounds[p]) + j)
                        slots.append((local, cache, key))
            resolved.append((keys, local))
        if miss_rows:
            self._count_encodes(len(miss_rows))
            fresh = self._target.encode_batch(
                all_children[np.asarray(miss_rows, dtype=np.int64)]
            )
            for j, (local, cache, key) in enumerate(slots):
                row = tuple(block[j] for block in fresh)
                local[key] = row
                cache.put(key, row)
        # One stack per encode block over every plan's rows, sliced back
        # per plan — not one stack per plan.
        rows = [local[key] for keys, local in resolved for key in keys]
        stacked = tuple(np.stack([row[m] for row in rows]) for m in range(k))
        return [
            (
                tuple(
                    block[int(bounds[p]) : int(bounds[p + 1])]
                    for block in stacked
                ),
                None, None,
            )
            for p in range(len(plans))
        ]
