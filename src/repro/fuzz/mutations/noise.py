"""Holographic noise strategies: ``gauss`` and ``rand`` (Table I).

The paper's two whole-image strategies behave very differently against
an HDC model with a *random* value memory (Sec. V-B):

* ``gauss`` blankets every pixel with small Gaussian noise.  Because any
  grey-level change — however small — swaps a pixel onto an unrelated
  value hypervector, one gauss step already re-randomises hundreds of
  pixel HVs, so adversarials appear within ~1.5 iterations but carry the
  largest L1/L2 footprint of the noise strategies (Table II: L1 2.91,
  5× rand's).
* ``rand`` perturbs only a few randomly-chosen pixels per step.  Each
  step drifts the query HV slightly, so many more iterations are needed
  (Table II: 12.18 on average) but the accumulated perturbation stays
  tiny (L1 0.58, L2 0.09 — the least visible adversarials).

Amplitudes below are expressed in grey levels (0–255 scale).
"""

from __future__ import annotations

import numpy as np

from repro.errors import MutationError
from repro.fuzz.mutations.base import (
    MutationStrategy,
    _mutate_image_common,
    register_strategy,
)
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_float, check_positive_int

__all__ = ["GaussianNoise", "RandomNoise"]


@register_strategy
class GaussianNoise(MutationStrategy):
    """``gauss``: i.i.d. Gaussian noise over the entire image.

    Parameters
    ----------
    sigma:
        Noise standard deviation in grey levels.  The default (2.5) is
        calibrated so a single step flips a few hundred pixels by one
        quantisation level, reproducing Table II's "fewest iterations,
        moderate distance" profile.
    """

    name = "gauss"
    domain = "image"

    def __init__(self, sigma: float = 2.5) -> None:
        self.sigma = check_positive_float(sigma, "sigma")

    def mutate(self, item, n: int, *, rng: RngLike = None) -> np.ndarray:
        n = check_positive_int(n, "n")
        image = _mutate_image_common(item)
        generator = ensure_rng(rng)
        noise = generator.normal(0.0, self.sigma, size=(n, *image.shape))
        return np.clip(image[None] + noise, 0.0, 255.0)


@register_strategy
class RandomNoise(MutationStrategy):
    """``rand``: uniform noise on a sparse random subset of pixels.

    Parameters
    ----------
    amplitude:
        Per-pixel noise is drawn uniformly from ``[-amplitude,
        +amplitude]`` grey levels.
    pixels_per_step:
        How many (distinct) pixels each child mutates.  Small values are
        what give ``rand`` its "minimal perturbation, many iterations"
        Table II signature.
    """

    name = "rand"
    domain = "image"

    def __init__(self, amplitude: float = 10.0, pixels_per_step: int = 8) -> None:
        self.amplitude = check_positive_float(amplitude, "amplitude")
        self.pixels_per_step = check_positive_int(pixels_per_step, "pixels_per_step")

    def mutate(self, item, n: int, *, rng: RngLike = None) -> np.ndarray:
        n = check_positive_int(n, "n")
        image = _mutate_image_common(item)
        n_pixels = image.size
        if self.pixels_per_step > n_pixels:
            raise MutationError(
                f"pixels_per_step={self.pixels_per_step} exceeds image size {n_pixels}"
            )
        generator = ensure_rng(rng)
        out = np.repeat(image.ravel()[None, :], n, axis=0)
        for child in range(n):
            idx = generator.choice(n_pixels, size=self.pixels_per_step, replace=False)
            delta = generator.uniform(-self.amplitude, self.amplitude, size=idx.size)
            out[child, idx] += delta
        return np.clip(out.reshape(n, *image.shape), 0.0, 255.0)
