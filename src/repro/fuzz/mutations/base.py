"""Mutation-strategy interface and registry (Table I of the paper).

A strategy turns one input into *n* mutated children.  Strategies are
domain-tagged (``"image"`` or ``"text"``) so the fuzzer can sanity-check
that a strategy matches the model's encoder.  The registry maps the
paper's strategy names (``"gauss"``, ``"rand"``, ``"row_rand"``,
``"col_rand"``, ``"row_col_rand"``, ``"shift"``) to classes so campaigns
can be configured from plain strings — as the CLI and benches do.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, ClassVar, Type

import numpy as np

from repro.errors import MutationError
from repro.utils.rng import RngLike, ensure_rng

__all__ = [
    "MutationStrategy",
    "register_strategy",
    "create_strategy",
    "strategy_names",
    "get_strategy_class",
]


class MutationStrategy(ABC):
    """Generates mutated children of an input (Alg. 1, Line 6).

    Subclasses set the class attributes:

    * ``name`` — the registry key (the paper's Table I name);
    * ``domain`` — the fuzzing-domain namespace the strategy belongs to
      (``"image"``, ``"text"``, or ``"record"``; see
      :mod:`repro.fuzz.domains`);
    * ``metric_free`` — True when perturbation distances are not
      meaningful for the strategy (Table II's ``shift`` footnote), in
      which case the domain defaults to
      :class:`~repro.fuzz.constraints.NullConstraint`.
    """

    name: ClassVar[str] = ""
    domain: ClassVar[str] = "image"
    metric_free: ClassVar[bool] = False

    @abstractmethod
    def mutate(self, item: Any, n: int, *, rng: RngLike = None) -> Any:
        """Produce *n* mutated children of *item*.

        Image strategies return an ``(n, H, W)`` float64 array clipped
        to [0, 255]; text strategies return a list of *n* strings.
        Children must be *new* objects — the caller relies on the
        original staying untouched.
        """

    def params(self) -> dict[str, Any]:
        """The strategy's configuration, for reports and reproducibility.

        Default: every non-underscore instance attribute.
        """
        return {k: v for k, v in vars(self).items() if not k.startswith("_")}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params().items()))
        return f"{type(self).__name__}({inner})"


_REGISTRY: dict[str, Type[MutationStrategy]] = {}


def register_strategy(cls: Type[MutationStrategy]) -> Type[MutationStrategy]:
    """Class decorator adding *cls* to the registry under ``cls.name``."""
    if not cls.name:
        raise MutationError(f"{cls.__name__} must define a non-empty `name`")
    if cls.name in _REGISTRY:
        raise MutationError(f"strategy name {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls
    return cls


def strategy_names(domain: str | None = None) -> list[str]:
    """Registered strategy names, optionally filtered by domain."""
    return sorted(
        name
        for name, cls in _REGISTRY.items()
        if domain is None or cls.domain == domain
    )


def get_strategy_class(name: str) -> Type[MutationStrategy]:
    """The class registered under *name* (raises on unknown names)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise MutationError(
            f"unknown mutation strategy {name!r}; available: {strategy_names()}"
        ) from None


def create_strategy(name: str, **params: Any) -> MutationStrategy:
    """Instantiate the strategy registered under *name* with *params*."""
    return get_strategy_class(name)(**params)


def _mutate_image_common(image: Any) -> np.ndarray:
    """Shared input coercion for image strategies: float64 (H, W) copy."""
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 2:
        raise MutationError(f"image must be 2-D (H, W), got shape {arr.shape}")
    return arr
