"""Text-domain mutation strategies.

Sec. V-E claims HDTest "can be naturally extended to other HDC model
structures because it considers a general greybox assumption with only
HV distance information".  These strategies realise that claim for the
n-gram language classifier: the same Alg. 1 loop, fitness, and oracle
run unchanged — only the mutation domain differs.

All strategies preserve string length (substitution / transposition),
so perturbation size is simply the Hamming distance in characters,
which :class:`~repro.fuzz.constraints.TextConstraint` budgets.

Two input forms are supported:

* **strings** — the historical convenience surface, returning a list
  of mutated strings;
* **uint8 code arrays** — the text domain's internal representation
  (indices into the alphabet), returning an ``(n, L)`` code block.
  This is the form both fuzzing engines use, so sequential and batched
  campaigns consume identical randomness and stay bit-identical.

The two forms draw from the generator differently (the array form
batches its draws), so a string call and a code call with the same
seed produce corresponding but not character-identical children.
"""

from __future__ import annotations

from typing import ClassVar, Union

import numpy as np

from repro.errors import MutationError
from repro.fuzz.mutations.base import MutationStrategy, register_strategy
from repro.hdc.encoders.ngram import DEFAULT_ALPHABET
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["CharSubstitution", "CharTransposition"]


def _check_text(item) -> str:
    if not isinstance(item, str):
        raise MutationError(f"text strategies require str inputs, got {type(item).__name__}")
    if not item:
        raise MutationError("cannot mutate an empty string")
    return item


def _check_codes(item: np.ndarray) -> np.ndarray:
    arr = np.asarray(item)
    if arr.ndim != 1 or not np.issubdtype(arr.dtype, np.integer):
        raise MutationError(
            f"text code arrays must be 1-D integer, got {arr.dtype} {arr.shape}"
        )
    if arr.size == 0:
        raise MutationError("cannot mutate an empty code array")
    return arr


@register_strategy
class CharSubstitution(MutationStrategy):
    """``char_sub``: replace a few characters with random alphabet members.

    Parameters
    ----------
    chars_per_step:
        Number of (distinct) positions substituted per child.
    alphabet:
        Replacement alphabet; defaults to the n-gram encoder's.  Code
        arrays draw replacement codes in ``[0, len(alphabet))``, so the
        strategy alphabet must match the fuzzing domain's.
    """

    name = "char_sub"
    domain = "text"

    def __init__(self, chars_per_step: int = 4, alphabet: str = DEFAULT_ALPHABET) -> None:
        self.chars_per_step = check_positive_int(chars_per_step, "chars_per_step")
        if not alphabet:
            raise MutationError("alphabet must be non-empty")
        self.alphabet = alphabet

    def _mutate_codes(
        self, codes: np.ndarray, n: int, generator: np.random.Generator
    ) -> np.ndarray:
        k = min(self.chars_per_step, codes.size)
        out = np.repeat(codes[None], n, axis=0)
        n_symbols = len(self.alphabet)
        for child in range(n):
            positions = generator.choice(codes.size, size=k, replace=False)
            out[child, positions] = generator.integers(0, n_symbols, size=k)
        return out

    def mutate(self, item, n: int, *, rng: RngLike = None) -> Union[np.ndarray, list[str]]:
        n = check_positive_int(n, "n")
        generator = ensure_rng(rng)
        if isinstance(item, np.ndarray):
            return self._mutate_codes(_check_codes(item), n, generator)
        text = _check_text(item)
        k = min(self.chars_per_step, len(text))
        children = []
        for _ in range(n):
            chars = list(text)
            positions = generator.choice(len(text), size=k, replace=False)
            for pos in positions:
                chars[pos] = self.alphabet[generator.integers(0, len(self.alphabet))]
            children.append("".join(chars))
        return children


@register_strategy
class CharTransposition(MutationStrategy):
    """``char_swap``: swap a few adjacent character pairs (typo model)."""

    name = "char_swap"
    domain = "text"

    def __init__(self, swaps_per_step: int = 1) -> None:
        self.swaps_per_step = check_positive_int(swaps_per_step, "swaps_per_step")

    def _mutate_codes(
        self, codes: np.ndarray, n: int, generator: np.random.Generator
    ) -> np.ndarray:
        out = np.repeat(codes[None], n, axis=0)
        for child in range(n):
            for _ in range(self.swaps_per_step):
                pos = int(generator.integers(0, codes.size - 1))
                out[child, pos], out[child, pos + 1] = (
                    out[child, pos + 1],
                    out[child, pos],
                )
        return out

    def mutate(self, item, n: int, *, rng: RngLike = None) -> Union[np.ndarray, list[str]]:
        n = check_positive_int(n, "n")
        generator = ensure_rng(rng)
        if isinstance(item, np.ndarray):
            codes = _check_codes(item)
            if codes.size < 2:
                raise MutationError("transposition requires at least two characters")
            return self._mutate_codes(codes, n, generator)
        text = _check_text(item)
        if len(text) < 2:
            raise MutationError("transposition requires at least two characters")
        children = []
        for _ in range(n):
            chars = list(text)
            for _ in range(self.swaps_per_step):
                pos = int(generator.integers(0, len(chars) - 1))
                chars[pos], chars[pos + 1] = chars[pos + 1], chars[pos]
            children.append("".join(chars))
        return children
