"""Text-domain mutation strategies.

Sec. V-E claims HDTest "can be naturally extended to other HDC model
structures because it considers a general greybox assumption with only
HV distance information".  These strategies realise that claim for the
n-gram language classifier: the same Alg. 1 loop, fitness, and oracle
run unchanged — only the mutation domain differs.

All strategies preserve string length (substitution / transposition),
so perturbation size is simply the Hamming distance in characters,
which :class:`~repro.fuzz.constraints.TextConstraint` budgets.
"""

from __future__ import annotations

from typing import ClassVar

import numpy as np

from repro.errors import MutationError
from repro.fuzz.mutations.base import MutationStrategy, register_strategy
from repro.hdc.encoders.ngram import DEFAULT_ALPHABET
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["CharSubstitution", "CharTransposition"]


def _check_text(item) -> str:
    if not isinstance(item, str):
        raise MutationError(f"text strategies require str inputs, got {type(item).__name__}")
    if not item:
        raise MutationError("cannot mutate an empty string")
    return item


@register_strategy
class CharSubstitution(MutationStrategy):
    """``char_sub``: replace a few characters with random alphabet members.

    Parameters
    ----------
    chars_per_step:
        Number of (distinct) positions substituted per child.
    alphabet:
        Replacement alphabet; defaults to the n-gram encoder's.
    """

    name = "char_sub"
    domain = "text"

    def __init__(self, chars_per_step: int = 4, alphabet: str = DEFAULT_ALPHABET) -> None:
        self.chars_per_step = check_positive_int(chars_per_step, "chars_per_step")
        if not alphabet:
            raise MutationError("alphabet must be non-empty")
        self.alphabet = alphabet

    def mutate(self, item, n: int, *, rng: RngLike = None) -> list[str]:
        n = check_positive_int(n, "n")
        text = _check_text(item)
        generator = ensure_rng(rng)
        k = min(self.chars_per_step, len(text))
        children = []
        for _ in range(n):
            chars = list(text)
            positions = generator.choice(len(text), size=k, replace=False)
            for pos in positions:
                chars[pos] = self.alphabet[generator.integers(0, len(self.alphabet))]
            children.append("".join(chars))
        return children


@register_strategy
class CharTransposition(MutationStrategy):
    """``char_swap``: swap a few adjacent character pairs (typo model)."""

    name = "char_swap"
    domain = "text"

    def __init__(self, swaps_per_step: int = 1) -> None:
        self.swaps_per_step = check_positive_int(swaps_per_step, "swaps_per_step")

    def mutate(self, item, n: int, *, rng: RngLike = None) -> list[str]:
        n = check_positive_int(n, "n")
        text = _check_text(item)
        if len(text) < 2:
            raise MutationError("transposition requires at least two characters")
        generator = ensure_rng(rng)
        children = []
        for _ in range(n):
            chars = list(text)
            for _ in range(self.swaps_per_step):
                pos = int(generator.integers(0, len(chars) - 1))
                chars[pos], chars[pos + 1] = chars[pos + 1], chars[pos]
            children.append("".join(chars))
        return children
