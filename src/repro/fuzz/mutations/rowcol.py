"""Row/column strategies: ``row_rand``, ``col_rand`` and their union.

Table I defines ``row rand`` ("randomly mutate all pixels in one single
row") and ``col rand``; Table II evaluates them jointly as
``row & col rand``.  All three are registered: the joint strategy picks
a row or a column per child with equal probability.
"""

from __future__ import annotations

import numpy as np

from repro.fuzz.mutations.base import (
    MutationStrategy,
    _mutate_image_common,
    register_strategy,
)
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_float, check_positive_int

__all__ = ["RowRandom", "ColRandom", "RowColRandom"]


class _LineRandom(MutationStrategy):
    """Shared implementation: uniform noise over one full row/column."""

    def __init__(self, amplitude: float = 30.0) -> None:
        #: noise is uniform in [-amplitude, +amplitude] grey levels.
        self.amplitude = check_positive_float(amplitude, "amplitude")

    def _axis_for_child(self, generator: np.random.Generator) -> int:
        raise NotImplementedError

    def mutate(self, item, n: int, *, rng: RngLike = None) -> np.ndarray:
        n = check_positive_int(n, "n")
        image = _mutate_image_common(item)
        h, w = image.shape
        generator = ensure_rng(rng)
        out = np.repeat(image[None], n, axis=0)
        for child in range(n):
            axis = self._axis_for_child(generator)
            if axis == 0:  # mutate one row
                row = generator.integers(0, h)
                out[child, row, :] += generator.uniform(-self.amplitude, self.amplitude, size=w)
            else:  # mutate one column
                col = generator.integers(0, w)
                out[child, :, col] += generator.uniform(-self.amplitude, self.amplitude, size=h)
        return np.clip(out, 0.0, 255.0)


@register_strategy
class RowRandom(_LineRandom):
    """``row_rand``: randomly mutate all pixels in one single row."""

    name = "row_rand"
    domain = "image"

    def _axis_for_child(self, generator: np.random.Generator) -> int:
        return 0


@register_strategy
class ColRandom(_LineRandom):
    """``col_rand``: randomly mutate all pixels in one single column."""

    name = "col_rand"
    domain = "image"

    def _axis_for_child(self, generator: np.random.Generator) -> int:
        return 1


@register_strategy
class RowColRandom(_LineRandom):
    """``row_col_rand``: Table II's joint "row & col rand" strategy."""

    name = "row_col_rand"
    domain = "image"

    def _axis_for_child(self, generator: np.random.Generator) -> int:
        return int(generator.integers(0, 2))
