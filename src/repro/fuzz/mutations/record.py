"""Mutation strategies for fixed-length feature records (third modality).

The record analogues of Table I's image strategies, used to fuzz
VoiceHD-style models (:mod:`repro.datasets.voice` +
:class:`~repro.hdc.encoders.record.RecordEncoder`):

* ``record_gauss`` — Gaussian noise over the whole record (gauss);
* ``record_rand`` — uniform noise on a few random features (rand);
* ``record_band`` — noise over one contiguous feature band (the
  spectral cousin of row/col rand);
* ``record_shift`` — shift the record along the feature axis (shift).

Records are 1-D float arrays; the valid range is configurable (``[0,1]``
for the synthetic voice data) and children are clipped into it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MutationError
from repro.fuzz.mutations.base import MutationStrategy, register_strategy
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_float, check_positive_int

__all__ = ["RecordGaussianNoise", "RecordRandomNoise", "RecordBandNoise", "RecordShift"]


def _check_record(item) -> np.ndarray:
    arr = np.asarray(item, dtype=np.float64)
    if arr.ndim != 1:
        raise MutationError(f"record must be 1-D, got shape {arr.shape}")
    if arr.size == 0:
        raise MutationError("record is empty")
    return arr


class _RecordStrategy(MutationStrategy):
    domain = "record"

    def __init__(self, value_range: tuple[float, float] = (0.0, 1.0)) -> None:
        low, high = float(value_range[0]), float(value_range[1])
        if not low < high:
            raise MutationError(f"value_range must satisfy low < high, got {value_range}")
        self.value_range = (low, high)

    def _clip(self, children: np.ndarray) -> np.ndarray:
        return np.clip(children, *self.value_range)


@register_strategy
class RecordGaussianNoise(_RecordStrategy):
    """``record_gauss``: i.i.d. Gaussian noise over every feature."""

    name = "record_gauss"

    def __init__(self, sigma: float = 0.05, value_range: tuple[float, float] = (0.0, 1.0)) -> None:
        super().__init__(value_range)
        self.sigma = check_positive_float(sigma, "sigma")

    def mutate(self, item, n: int, *, rng: RngLike = None) -> np.ndarray:
        n = check_positive_int(n, "n")
        record = _check_record(item)
        generator = ensure_rng(rng)
        noise = generator.normal(0.0, self.sigma, size=(n, record.size))
        return self._clip(record[None] + noise)


@register_strategy
class RecordRandomNoise(_RecordStrategy):
    """``record_rand``: uniform noise on a few random features."""

    name = "record_rand"

    def __init__(
        self,
        amplitude: float = 0.2,
        features_per_step: int = 4,
        value_range: tuple[float, float] = (0.0, 1.0),
    ) -> None:
        super().__init__(value_range)
        self.amplitude = check_positive_float(amplitude, "amplitude")
        self.features_per_step = check_positive_int(features_per_step, "features_per_step")

    def mutate(self, item, n: int, *, rng: RngLike = None) -> np.ndarray:
        n = check_positive_int(n, "n")
        record = _check_record(item)
        if self.features_per_step > record.size:
            raise MutationError(
                f"features_per_step={self.features_per_step} exceeds record "
                f"length {record.size}"
            )
        generator = ensure_rng(rng)
        out = np.repeat(record[None], n, axis=0)
        for child in range(n):
            idx = generator.choice(record.size, size=self.features_per_step, replace=False)
            out[child, idx] += generator.uniform(
                -self.amplitude, self.amplitude, size=idx.size
            )
        return self._clip(out)


@register_strategy
class RecordBandNoise(_RecordStrategy):
    """``record_band``: noise over one contiguous feature band."""

    name = "record_band"

    def __init__(
        self,
        amplitude: float = 0.1,
        band_width: int = 8,
        value_range: tuple[float, float] = (0.0, 1.0),
    ) -> None:
        super().__init__(value_range)
        self.amplitude = check_positive_float(amplitude, "amplitude")
        self.band_width = check_positive_int(band_width, "band_width")

    def mutate(self, item, n: int, *, rng: RngLike = None) -> np.ndarray:
        n = check_positive_int(n, "n")
        record = _check_record(item)
        width = min(self.band_width, record.size)
        generator = ensure_rng(rng)
        out = np.repeat(record[None], n, axis=0)
        for child in range(n):
            start = int(generator.integers(0, record.size - width + 1))
            out[child, start : start + width] += generator.uniform(
                -self.amplitude, self.amplitude, size=width
            )
        return self._clip(out)


@register_strategy
class RecordShift(_RecordStrategy):
    """``record_shift``: translate the record along the feature axis.

    Vacated features take the range minimum (silence), mirroring the
    image shift's zero fill.
    """

    name = "record_shift"
    metric_free = True

    def __init__(self, max_step: int = 1, value_range: tuple[float, float] = (0.0, 1.0)) -> None:
        super().__init__(value_range)
        self.max_step = check_positive_int(max_step, "max_step")

    def mutate(self, item, n: int, *, rng: RngLike = None) -> np.ndarray:
        n = check_positive_int(n, "n")
        record = _check_record(item)
        generator = ensure_rng(rng)
        fill = self.value_range[0]
        out = np.empty((n, record.size))
        for child in range(n):
            step = int(generator.integers(1, self.max_step + 1))
            delta = step if generator.integers(0, 2) else -step
            shifted = np.roll(record, delta)
            if delta > 0:
                shifted[:delta] = fill
            else:
                shifted[delta:] = fill
            out[child] = shifted
        return out
