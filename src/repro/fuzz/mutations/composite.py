"""Composite strategy: apply several Table I strategies jointly.

The paper notes its strategies "can be used independently or jointly";
:class:`JointStrategy` implements the joint case by splitting each batch
of children across member strategies (weighted round-robin), so one
fuzzing run explores several mutation families at once.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import MutationError
from repro.fuzz.mutations.base import MutationStrategy
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["JointStrategy"]


class JointStrategy(MutationStrategy):
    """Distribute children across member strategies.

    Parameters
    ----------
    strategies:
        Member strategies; must share one domain.
    weights:
        Optional relative share of children per member (defaults to
        uniform).  Shares are realised by sampling, so every member can
        contribute to every batch in expectation.
    """

    name = "joint"

    def __init__(
        self,
        strategies: Sequence[MutationStrategy],
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if not strategies:
            raise MutationError("JointStrategy needs at least one member strategy")
        domains = {s.domain for s in strategies}
        if len(domains) != 1:
            raise MutationError(f"member strategies span multiple domains: {sorted(domains)}")
        self.domain = domains.pop()  # instance attr shadows the class tag
        self.strategies = list(strategies)
        if weights is None:
            weights = [1.0] * len(self.strategies)
        if len(weights) != len(self.strategies):
            raise MutationError(
                f"{len(weights)} weights for {len(self.strategies)} strategies"
            )
        w = np.asarray(weights, dtype=np.float64)
        if (w < 0).any() or w.sum() <= 0:
            raise MutationError("weights must be non-negative and sum to > 0")
        self._probs = w / w.sum()

    def params(self) -> dict:
        return {
            "strategies": [s.name for s in self.strategies],
            "weights": self._probs.tolist(),
        }

    def mutate(self, item, n: int, *, rng: RngLike = None):
        n = check_positive_int(n, "n")
        generator = ensure_rng(rng)
        choices = generator.choice(len(self.strategies), size=n, p=self._probs)
        pieces = []
        for strat_idx, count in zip(*np.unique(choices, return_counts=True)):
            pieces.append(
                self.strategies[int(strat_idx)].mutate(item, int(count), rng=generator)
            )
        if self.domain == "text":
            return [child for piece in pieces for child in piece]
        return np.concatenate(pieces, axis=0)
