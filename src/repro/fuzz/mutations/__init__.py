"""Mutation strategies (Table I) plus text-domain and composite extras.

Importing this package registers every built-in strategy, so
``create_strategy("gauss")`` works immediately after
``import repro.fuzz``.
"""

from repro.fuzz.mutations.base import (
    MutationStrategy,
    create_strategy,
    get_strategy_class,
    register_strategy,
    strategy_names,
)
from repro.fuzz.mutations.composite import JointStrategy
from repro.fuzz.mutations.noise import GaussianNoise, RandomNoise
from repro.fuzz.mutations.record import (
    RecordBandNoise,
    RecordGaussianNoise,
    RecordRandomNoise,
    RecordShift,
)
from repro.fuzz.mutations.rowcol import ColRandom, RowColRandom, RowRandom
from repro.fuzz.mutations.shift import Shift
from repro.fuzz.mutations.text import CharSubstitution, CharTransposition

__all__ = [
    "CharSubstitution",
    "CharTransposition",
    "ColRandom",
    "GaussianNoise",
    "JointStrategy",
    "MutationStrategy",
    "RandomNoise",
    "RecordBandNoise",
    "RecordGaussianNoise",
    "RecordRandomNoise",
    "RecordShift",
    "RowColRandom",
    "RowRandom",
    "Shift",
    "create_strategy",
    "get_strategy_class",
    "register_strategy",
    "strategy_names",
]
