"""The ``shift`` strategy: translate the image by whole pixels.

Table I: "apply horizontal or vertical shifting to the image".  Shift
never changes pixel *values*, only their locations, which is why the
paper flags its L1/L2 numbers as not meaningful (Table II's ``*``) and
interprets its 4.25 average iterations as "4.25 pixels shifted".

Vacated pixels are filled with the background value 0 (matching how a
digit sliding out of frame behaves); a wrap-around mode is available
for study.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MutationError
from repro.fuzz.mutations.base import (
    MutationStrategy,
    _mutate_image_common,
    register_strategy,
)
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_in_choices, check_positive_int

__all__ = ["Shift"]


@register_strategy
class Shift(MutationStrategy):
    """``shift``: move the whole image one or more pixels along an axis.

    Parameters
    ----------
    max_step:
        Each child shifts by a uniformly-drawn step in
        ``1..max_step`` pixels (1 by default — one pixel per fuzzing
        iteration, the paper's granularity).
    mode:
        ``"fill"`` (vacated pixels become 0, default) or ``"wrap"``
        (cyclic roll).
    """

    name = "shift"
    domain = "image"
    metric_free = True

    _DIRECTIONS = ((0, 1), (0, -1), (1, 1), (1, -1))  # (axis, sign)

    def __init__(self, max_step: int = 1, mode: str = "fill") -> None:
        self.max_step = check_positive_int(max_step, "max_step")
        self.mode = check_in_choices(mode, "mode", ("fill", "wrap"))

    def shift_once(self, image: np.ndarray, axis: int, delta: int) -> np.ndarray:
        """Shift *image* by *delta* pixels along *axis* (public helper)."""
        arr = _mutate_image_common(image)
        if axis not in (0, 1):
            raise MutationError(f"axis must be 0 or 1, got {axis}")
        rolled = np.roll(arr, delta, axis=axis)
        if self.mode == "fill" and delta != 0:
            if axis == 0:
                if delta > 0:
                    rolled[:delta, :] = 0.0
                else:
                    rolled[delta:, :] = 0.0
            else:
                if delta > 0:
                    rolled[:, :delta] = 0.0
                else:
                    rolled[:, delta:] = 0.0
        return rolled

    def mutate(self, item, n: int, *, rng: RngLike = None) -> np.ndarray:
        n = check_positive_int(n, "n")
        image = _mutate_image_common(item)
        generator = ensure_rng(rng)
        out = np.empty((n, *image.shape), dtype=np.float64)
        for child in range(n):
            axis, sign = self._DIRECTIONS[generator.integers(0, 4)]
            step = int(generator.integers(1, self.max_step + 1))
            out[child] = self.shift_once(image, axis, sign * step)
        return out
