"""Pluggable campaign executors: how a fuzzing campaign is scheduled.

The fuzzing *algorithm* (Alg. 1) is fixed; how its per-input runs are
scheduled across the hardware is not.  A :class:`CampaignExecutor`
turns ``(model, strategy, inputs)`` into a
:class:`~repro.fuzz.results.CampaignResult`:

* :class:`SerialExecutor` — the paper-literal loop, one input at a time
  (exactly :meth:`repro.fuzz.fuzzer.HDTest.fuzz`);
* :class:`BatchedExecutor` — the lock-step vectorized engine
  (:class:`repro.fuzz.batch.BatchedHDTest`) over chunks of
  ``batch_size`` inputs;
* :class:`ProcessExecutor` — multiprocessing over contiguous input
  shards: the model is broadcast to each worker once, every input gets
  a deterministic seed derived in the parent, and each shard runs the
  batched engine.

RNG discipline: batched and process executors derive one 63-bit seed
per *input* from the root generator (the same stream
:func:`repro.utils.rng.spawn` draws).  With the default deterministic
(guided) fitness their per-input outcomes are identical to each other
and to sequential :meth:`~repro.fuzz.fuzzer.HDTest.fuzz_one` calls
under per-input spawned generators — invariant to ``batch_size`` and
``n_workers``.  The serial executor instead threads one generator
through inputs sequentially, preserving the seed implementation's
exact streams.

The *unguided* baseline (``HDTestConfig(guided=False)``) draws its
random survival scores from one stream shared across the whole batch,
so its outcomes are reproducible for a fixed seed **and fixed
scheduling parameters**, but not invariant to ``batch_size`` /
``n_workers`` and not equal across executors — random survival has no
per-input stream to pin.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Any, ClassVar, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.fuzz.batch import BatchedHDTest
from repro.fuzz.constraints import Constraint
from repro.fuzz.fitness import FitnessFunction
from repro.fuzz.fuzzer import HDTest, HDTestConfig
from repro.fuzz.mutations import MutationStrategy
from repro.fuzz.oracle import DifferentialOracle
from repro.fuzz.results import CampaignResult, InputOutcome
from repro.metrics.timing import Stopwatch
from repro.utils.rng import RngLike, derive_seeds, ensure_rng, spawn
from repro.utils.validation import check_positive_int

__all__ = [
    "CampaignExecutor",
    "SerialExecutor",
    "BatchedExecutor",
    "ProcessExecutor",
    "create_executor",
    "executor_names",
]


class CampaignExecutor(ABC):
    """Strategy object scheduling one fuzzing campaign over its inputs."""

    #: Registry key and the value recorded on produced results.
    name: ClassVar[str] = ""

    @abstractmethod
    def run(
        self,
        model: Any,
        strategy: Union[str, MutationStrategy],
        inputs: Sequence[Any],
        *,
        config: Optional[HDTestConfig] = None,
        constraint: Optional[Constraint] = None,
        fitness: Optional[FitnessFunction] = None,
        oracle: Optional[DifferentialOracle] = None,
        rng: RngLike = None,
    ) -> CampaignResult:
        """Fuzz *inputs* and return the aggregated campaign result."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialExecutor(CampaignExecutor):
    """One input at a time — the paper-literal schedule."""

    name = "serial"

    def run(self, model, strategy, inputs, *, config=None, constraint=None,
            fitness=None, oracle=None, rng: RngLike = None) -> CampaignResult:
        fuzzer = HDTest(
            model, strategy,
            config=config, constraint=constraint,
            fitness=fitness, oracle=oracle, rng=rng,
        )
        result = fuzzer.fuzz(inputs)
        result.executor = self.name
        return result


class BatchedExecutor(CampaignExecutor):
    """Lock-step vectorized schedule over chunks of *batch_size* inputs.

    Per-input child generators are spawned once for the whole campaign
    and sliced per chunk, so guided-mode outcomes are invariant to
    ``batch_size`` (see the module docstring for the unguided caveat).
    """

    def __init__(self, batch_size: int = 64) -> None:
        self.batch_size = check_positive_int(batch_size, "batch_size")

    name = "batched"

    def run(self, model, strategy, inputs, *, config=None, constraint=None,
            fitness=None, oracle=None, rng: RngLike = None) -> CampaignResult:
        fuzzer = BatchedHDTest(
            model, strategy,
            config=config, constraint=constraint,
            fitness=fitness, oracle=oracle, rng=rng,
        )
        generators = spawn(rng, len(inputs))
        outcomes: list[InputOutcome] = []
        with Stopwatch() as sw:
            for lo in range(0, len(inputs), self.batch_size):
                hi = min(lo + self.batch_size, len(inputs))
                outcomes.extend(
                    fuzzer.fuzz_outcomes(
                        inputs[lo:hi], generators=generators[lo:hi]
                    )
                )
        return CampaignResult(
            strategy=fuzzer.strategy.name,
            outcomes=outcomes,
            elapsed_seconds=sw.elapsed,
            guided=fuzzer._fitness.guided,  # noqa: SLF001 - same-module family
            executor=self.name,
        )

    def __repr__(self) -> str:
        return f"BatchedExecutor(batch_size={self.batch_size})"


# -- process pool plumbing (module-level for picklability) -----------------
_WORKER: dict[str, Any] = {}


def _process_worker_init(model, strategy, config, constraint, fitness, oracle,
                         batch_size) -> None:
    """Pool initializer: broadcast the campaign spec to this worker once."""
    _WORKER.update(
        model=model, strategy=strategy, config=config, constraint=constraint,
        fitness=fitness, oracle=oracle, batch_size=batch_size,
    )


def _process_worker_run(
    shard: tuple[list[Any], list[int], int]
) -> list[InputOutcome]:
    """Fuzz one contiguous input shard with its per-input seeds.

    The engine is (re)built per shard with the shard's own seed so that
    any stochastic component constructed inside it (the unguided
    baseline's ``RandomFitness``) is derived from the campaign's root
    generator, not from per-worker OS entropy — a fixed seed reproduces
    the campaign.
    """
    inputs, seeds, shard_seed = shard
    fuzzer = BatchedHDTest(
        _WORKER["model"], _WORKER["strategy"],
        config=_WORKER["config"], constraint=_WORKER["constraint"],
        fitness=_WORKER["fitness"], oracle=_WORKER["oracle"], rng=shard_seed,
    )
    batch_size: int = _WORKER["batch_size"]
    generators = [np.random.default_rng(int(s)) for s in seeds]
    outcomes: list[InputOutcome] = []
    for lo in range(0, len(inputs), batch_size):
        hi = min(lo + batch_size, len(inputs))
        outcomes.extend(
            fuzzer.fuzz_outcomes(inputs[lo:hi], generators=generators[lo:hi])
        )
    return outcomes


class ProcessExecutor(CampaignExecutor):
    """Multiprocessing over contiguous input shards.

    The trained model (with its codebooks) is broadcast to each worker
    once via the pool initializer; workers run the batched engine on
    their shard.  Every input's seed is derived in the parent from the
    root generator, so guided-mode results equal
    :class:`BatchedExecutor`'s for the same *rng* regardless of
    ``n_workers`` (unguided runs are reproducible per seed and worker
    count, but not executor-invariant — see the module docstring).

    Parameters
    ----------
    n_workers:
        Worker process count; defaults to ``os.cpu_count()``.
    batch_size:
        Lock-step chunk size inside each worker.
    """

    name = "process"

    def __init__(self, n_workers: Optional[int] = None, batch_size: int = 64) -> None:
        if n_workers is None:
            n_workers = os.cpu_count() or 1
        self.n_workers = check_positive_int(n_workers, "n_workers")
        self.batch_size = check_positive_int(batch_size, "batch_size")

    def run(self, model, strategy, inputs, *, config=None, constraint=None,
            fitness=None, oracle=None, rng: RngLike = None) -> CampaignResult:
        import multiprocessing as mp

        # Validate the spec (and resolve the strategy name) up front, in
        # the parent, where errors are debuggable.
        probe = BatchedHDTest(
            model, strategy,
            config=config, constraint=constraint, fitness=fitness, oracle=oracle,
        )
        root = ensure_rng(rng)
        seeds = derive_seeds(root, len(inputs))
        n_shards = min(self.n_workers, max(len(inputs), 1))
        # Drawn *after* the per-input seeds so the per-input stream stays
        # byte-identical to BatchedExecutor's for the same root.
        shard_seeds = derive_seeds(root, n_shards)
        shards = []
        bounds = np.linspace(0, len(inputs), n_shards + 1, dtype=int)
        for shard_id, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
            if hi > lo:
                shards.append(
                    (
                        list(inputs[lo:hi]),
                        [int(s) for s in seeds[lo:hi]],
                        int(shard_seeds[shard_id]),
                    )
                )
        outcomes: list[InputOutcome] = []
        with Stopwatch() as sw:
            if shards:
                ctx = mp.get_context()
                with ctx.Pool(
                    processes=min(self.n_workers, len(shards)),
                    initializer=_process_worker_init,
                    initargs=(model, probe.strategy, config, constraint,
                              fitness, oracle, self.batch_size),
                ) as pool:
                    for shard_outcomes in pool.map(_process_worker_run, shards):
                        outcomes.extend(shard_outcomes)
        return CampaignResult(
            strategy=probe.strategy.name,
            outcomes=outcomes,
            elapsed_seconds=sw.elapsed,
            guided=probe._fitness.guided,  # noqa: SLF001 - same-module family
            executor=self.name,
        )

    def __repr__(self) -> str:
        return f"ProcessExecutor(n_workers={self.n_workers}, batch_size={self.batch_size})"


_EXECUTORS: dict[str, type[CampaignExecutor]] = {
    cls.name: cls for cls in (SerialExecutor, BatchedExecutor, ProcessExecutor)
}


def executor_names() -> list[str]:
    """Registered executor names (CLI choices)."""
    return sorted(_EXECUTORS)


def create_executor(name: str, **params: Any) -> CampaignExecutor:
    """Instantiate the executor registered under *name* with *params*.

    Callers may pass one uniform ``batch_size``/``n_workers`` bundle:
    ``None`` always means *unset* — the executor's own default applies —
    while an explicit value for a knob the chosen executor cannot honour
    (e.g. ``n_workers`` with the batched executor) raises instead of
    being silently ignored.
    """
    try:
        cls = _EXECUTORS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown executor {name!r}; available: {executor_names()}"
        ) from None
    applicable = {
        SerialExecutor: (),
        BatchedExecutor: ("batch_size",),
        ProcessExecutor: ("batch_size", "n_workers"),
    }[cls]
    for key in list(params):
        if params[key] is None:
            del params[key]
        elif key not in applicable:
            raise ConfigurationError(
                f"{key}={params[key]!r} does not apply to the {name!r} executor"
            )
    return cls(**params)
