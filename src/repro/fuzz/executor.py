"""Pluggable campaign executors: how a fuzzing campaign is scheduled.

The fuzzing *algorithm* (Alg. 1) is fixed; how its per-input runs are
scheduled across the hardware is not.  A :class:`CampaignExecutor`
turns ``(model, strategy, inputs)`` into a
:class:`~repro.fuzz.results.CampaignResult` for any registered fuzzing
domain — image, text, or record campaigns all flow through the same
three schedules (the ``domain`` keyword is forwarded to the engines).
``model`` may equally be a
:class:`~repro.fuzz.targets.PredictionTarget`: K-member ensembles run
the same schedules, with the whole ensemble broadcast once per worker
in the process pool.  The schedules:

* :class:`SerialExecutor` — the paper-literal loop, one input at a time
  (exactly :meth:`repro.fuzz.fuzzer.HDTest.fuzz`);
* :class:`BatchedExecutor` — the lock-step vectorized engine
  (:class:`repro.fuzz.batch.BatchedHDTest`) over chunks of
  ``batch_size`` inputs;
* :class:`ProcessExecutor` — multiprocessing over contiguous input
  shards: the model is broadcast to each worker once, every input gets
  a deterministic seed derived in the parent, and each shard runs the
  batched engine.

RNG discipline: batched and process executors derive one 63-bit seed
per *input* from the root generator (the same stream
:func:`repro.utils.rng.spawn` draws).  Per-input outcomes — guided
*and* unguided — are identical to each other and to sequential
:meth:`~repro.fuzz.fuzzer.HDTest.fuzz_one` calls under per-input
spawned generators, invariant to ``batch_size`` and ``n_workers``: the
engines hand each input's generator to the fitness function too, so
the unguided baseline's random survival draws from the same per-input
stream as that input's mutations (see
:mod:`repro.fuzz.fitness`).  The serial executor instead threads one
generator through inputs sequentially, preserving the seed
implementation's exact streams for guided runs (unguided serial
streams changed when the fitness moved onto the shared generator).

Pool reuse: :class:`ProcessExecutor` keeps its worker pool (and each
worker's engine, with its content-keyed dedupe caches) alive across
:meth:`~CampaignExecutor.run` calls with the same campaign spec, so
wave-mode callers such as
:func:`~repro.fuzz.campaign.generate_adversarial_set` broadcast the
model once instead of once per wave.  Call :meth:`~CampaignExecutor.close`
(or mutate the model object) to force a re-broadcast.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from typing import Any, ClassVar, Optional, Sequence, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.fuzz.batch import BatchedHDTest
from repro.fuzz.constraints import Constraint
from repro.fuzz.domains import FuzzDomain
from repro.fuzz.fitness import FitnessFunction
from repro.fuzz.fuzzer import HDTest, HDTestConfig
from repro.fuzz.mutations import MutationStrategy
from repro.fuzz.oracle import DifferentialOracle
from repro.fuzz.results import CampaignResult, InputOutcome
from repro.obs.recorder import NULL_TELEMETRY, CampaignTelemetry, Stopwatch
from repro.utils.rng import RngLike, derive_seeds, ensure_rng, spawn
from repro.utils.shm import payload_nbytes
from repro.utils.validation import check_positive_int

__all__ = [
    "CampaignExecutor",
    "SerialExecutor",
    "BatchedExecutor",
    "ProcessExecutor",
    "MemberShardedExecutor",
    "create_executor",
    "default_pool_policy",
    "default_schedule_policy",
    "default_worker_count",
    "executor_names",
]

#: Environment variable overriding the default process-pool size.
WORKER_COUNT_ENV = "REPRO_FUZZ_WORKERS"

#: Fewest inputs a default-sized worker must amortise the model
#: broadcast and process start-up over before the policy grants it a
#: process (``benchmarks/bench_executor_scaling.py`` shows pools sized
#: past this lose to the batched engine on small campaigns).
MIN_INPUTS_PER_WORKER = 8

#: Default lock-step chunk size for the batched engine.
DEFAULT_BATCH_SIZE = 64


def default_worker_count() -> int:
    """Default :class:`ProcessExecutor` pool size for this machine.

    ``max(1, os.cpu_count() − 1)`` — saturate the cores while leaving
    one for the parent process (which stacks shard results and feeds the
    pool).  Deployments can pin a different default with the
    ``REPRO_FUZZ_WORKERS`` environment variable; an explicit
    ``n_workers`` argument always wins.
    """
    env = os.environ.get(WORKER_COUNT_ENV)
    if env:
        try:
            requested = int(env)
        except ValueError:
            raise ConfigurationError(
                f"{WORKER_COUNT_ENV} must be a positive integer, got {env!r}"
            ) from None
        return check_positive_int(requested, WORKER_COUNT_ENV)
    return max(1, (os.cpu_count() or 1) - 1)


def default_pool_policy(
    n_inputs: int,
    *,
    n_workers: Optional[int] = None,
    batch_size: Optional[int] = None,
) -> tuple[int, int]:
    """Resolve ``(n_workers, batch_size)`` for a campaign of *n_inputs*.

    The repo-wide sizing policy, measured by
    ``benchmarks/bench_executor_scaling.py``:

    * **workers** — explicit values win; otherwise
      :func:`default_worker_count` capped so each process amortises its
      model broadcast and start-up over at least
      :data:`MIN_INPUTS_PER_WORKER` inputs (small campaigns get small
      pools rather than a fleet of idle broadcast copies).
    * **batch size** — explicit values win; otherwise one lock-step
      chunk per worker shard, capped at :data:`DEFAULT_BATCH_SIZE`
      (chunks larger than a shard buy nothing, chunks much smaller than
      64 give up vectorisation).

    Outcomes are invariant to both knobs by the executors' RNG
    discipline; this policy only sets the performance defaults.
    """
    n_inputs = max(int(n_inputs), 1)
    if n_workers is None:
        amortised = max(1, n_inputs // MIN_INPUTS_PER_WORKER)
        n_workers = min(default_worker_count(), amortised)
    n_workers = check_positive_int(n_workers, "n_workers")
    if batch_size is None:
        shard = -(-n_inputs // n_workers)  # ceil
        batch_size = min(DEFAULT_BATCH_SIZE, shard)
    return n_workers, check_positive_int(batch_size, "batch_size")


#: Broadcast-everything footprint above which the schedule policy
#: prefers member sharding: K × member bytes replicated to every
#: input-shard worker starts to dominate pool start-up well before this,
#: but below it the batched engine's fused kernels usually win anyway.
MEMBER_FOOTPRINT_LIMIT = 256 * 2**20


def default_schedule_policy(
    n_inputs: int,
    *,
    n_members: int = 1,
    member_nbytes: int = 0,
    telemetry: Optional[Any] = None,
) -> str:
    """Pick an execution schedule: ``batched``/``process``/``member-sharded``.

    Layered on :func:`default_pool_policy` (which still sizes whatever
    schedule is chosen), using three signals:

    * **Campaign shape** — single models always shard by input; K ≥ 2
      ensembles shard by member when there are too few inputs to fill
      two input shards (each member still gets a whole worker) or when
      replicating all K members into every input-shard worker would
      exceed :data:`MEMBER_FOOTPRINT_LIMIT` bytes.
    * **Phase telemetry** — a recorder (or snapshot dict) from a prior
      comparable campaign: when its IPC phases (``broadcast`` +
      ``gather``) outweigh the member-compute phases (``encode`` +
      ``query``), sharding by member pays more in traffic than it wins
      in parallelism, so the policy falls back to input sharding.
    * **Hardware** — one usable core means no process schedule at all.

    Outcomes never depend on the choice (all schedules are bit-identical
    by the executors' RNG discipline); only throughput does.
    """
    n_inputs = max(int(n_inputs), 1)
    # Guard on the *hardware* core count as well as the resolved worker
    # count: REPRO_FUZZ_WORKERS can request a pool, but on a one-core
    # host every process schedule only adds broadcast/IPC overhead on
    # top of the same serial compute, so the in-process engine wins
    # unconditionally.
    if default_worker_count() <= 1 or (os.cpu_count() or 1) <= 1:
        return "batched"
    input_shards = n_inputs // MIN_INPUTS_PER_WORKER
    if n_members >= 2:
        if telemetry is not None:
            snap = (
                telemetry.snapshot()
                if isinstance(telemetry, CampaignTelemetry)
                else dict(telemetry)
            )
            phases = snap.get("phase_seconds", {})
            ipc = phases.get("broadcast", 0.0) + phases.get("gather", 0.0)
            member_compute = phases.get("encode", 0.0) + phases.get("query", 0.0)
            if member_compute > 0.0 and ipc <= member_compute:
                return "member-sharded"
            if ipc > member_compute > 0.0:
                return "process" if input_shards >= 2 else "batched"
        if input_shards < 2:
            return "member-sharded"
        if member_nbytes and member_nbytes * n_members > MEMBER_FOOTPRINT_LIMIT:
            return "member-sharded"
    return "process" if input_shards >= 2 else "batched"


class CampaignExecutor(ABC):
    """Strategy object scheduling one fuzzing campaign over its inputs."""

    #: Registry key and the value recorded on produced results.
    name: ClassVar[str] = ""

    @abstractmethod
    def run(
        self,
        model: Any,
        strategy: Union[str, MutationStrategy],
        inputs: Sequence[Any],
        *,
        domain: Union[None, str, FuzzDomain] = None,
        config: Optional[HDTestConfig] = None,
        constraint: Optional[Constraint] = None,
        fitness: Optional[FitnessFunction] = None,
        oracle: Optional[DifferentialOracle] = None,
        rng: RngLike = None,
        telemetry: Optional[CampaignTelemetry] = None,
    ) -> CampaignResult:
        """Fuzz *inputs* and return the aggregated campaign result.

        *domain* selects the input modality (name, instance, or ``None``
        to derive it from the strategy's namespace tag) and is passed
        through to the underlying engines unchanged.  *telemetry* is an
        optional :class:`~repro.obs.recorder.CampaignTelemetry` the
        engines record into; the produced result carries the campaign's
        telemetry delta.  Process pools record per worker and reduce the
        per-worker streams into *telemetry* order-invariantly.
        """

    def close(self) -> None:
        """Release any resources held across :meth:`run` calls (no-op here)."""

    def __enter__(self) -> "CampaignExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialExecutor(CampaignExecutor):
    """One input at a time — the paper-literal schedule."""

    name = "serial"

    def run(self, model, strategy, inputs, *, domain=None, config=None,
            constraint=None, fitness=None, oracle=None,
            rng: RngLike = None,
            telemetry: Optional[CampaignTelemetry] = None) -> CampaignResult:
        fuzzer = HDTest(
            model, strategy, domain=domain,
            config=config, constraint=constraint,
            fitness=fitness, oracle=oracle, rng=rng, telemetry=telemetry,
        )
        result = fuzzer.fuzz(inputs)
        result.executor = self.name
        return result


class BatchedExecutor(CampaignExecutor):
    """Lock-step vectorized schedule over chunks of *batch_size* inputs.

    Per-input child generators are spawned once for the whole campaign
    and sliced per chunk, so outcomes — guided and unguided alike — are
    invariant to ``batch_size`` (the fitness draws from each input's
    own generator; see the module docstring).
    """

    def __init__(self, batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        self.batch_size = check_positive_int(batch_size, "batch_size")

    name = "batched"

    def run(self, model, strategy, inputs, *, domain=None, config=None,
            constraint=None, fitness=None, oracle=None,
            rng: RngLike = None,
            telemetry: Optional[CampaignTelemetry] = None) -> CampaignResult:
        fuzzer = BatchedHDTest(
            model, strategy, domain=domain,
            config=config, constraint=constraint,
            fitness=fitness, oracle=oracle, rng=rng, telemetry=telemetry,
        )
        obs = fuzzer.telemetry
        mark = obs.marker()
        generators = spawn(rng, len(inputs))
        outcomes: list[InputOutcome] = []
        with Stopwatch() as sw:
            for lo in range(0, len(inputs), self.batch_size):
                hi = min(lo + self.batch_size, len(inputs))
                outcomes.extend(
                    fuzzer.fuzz_outcomes(
                        inputs[lo:hi], generators=generators[lo:hi]
                    )
                )
        return CampaignResult(
            strategy=fuzzer.strategy.name,
            outcomes=outcomes,
            elapsed_seconds=sw.elapsed,
            guided=fuzzer._fitness.guided,  # noqa: SLF001 - same-module family
            executor=self.name,
            n_members=fuzzer.target.n_members,
            telemetry=obs.since(mark),
        )

    def __repr__(self) -> str:
        return f"BatchedExecutor(batch_size={self.batch_size})"


# -- process pool plumbing (module-level for picklability) -----------------
_WORKER: dict[str, Any] = {}


def _process_worker_init(model, strategy, domain, config, constraint, fitness,
                         oracle, batch_size, telemetry_on=False) -> None:
    """Pool initializer: broadcast the campaign spec to this worker once."""
    _WORKER.clear()
    _WORKER.update(
        model=model, strategy=strategy, domain=domain, config=config,
        constraint=constraint, fitness=fitness, oracle=oracle,
        batch_size=batch_size, telemetry_on=telemetry_on,
    )


def _process_worker_run(
    shard: tuple[list[Any], list[int], int]
) -> tuple[list[InputOutcome], Optional[dict]]:
    """Fuzz one contiguous input shard with its per-input seeds.

    The engine is built once per worker (from the broadcast spec, with
    the first shard's seed so any stochastic component is derived from
    the campaign's root generator, not per-worker OS entropy) and
    reused for every subsequent shard — across waves of a reused pool
    too, which keeps its content-keyed dedupe caches warm for recycled
    inputs.  Outcomes are engine-state independent: per-input
    generators arrive explicitly, and the fitness draws from them.

    Returns the shard's outcomes plus, for instrumented campaigns, the
    shard's local telemetry *delta* (a snapshot dict) — the worker's
    long-lived recorder is cumulative across shards and waves, so each
    shard reports only what it added and the parent reduction stays
    order-invariant and double-count-free.
    """
    inputs, seeds, shard_seed = shard
    fuzzer = _WORKER.get("fuzzer")
    if fuzzer is None:
        fuzzer = _WORKER["fuzzer"] = BatchedHDTest(
            _WORKER["model"], _WORKER["strategy"], domain=_WORKER["domain"],
            config=_WORKER["config"], constraint=_WORKER["constraint"],
            fitness=_WORKER["fitness"], oracle=_WORKER["oracle"], rng=shard_seed,
            telemetry=(
                CampaignTelemetry() if _WORKER.get("telemetry_on") else None
            ),
        )
    batch_size: int = _WORKER["batch_size"]
    obs = fuzzer.telemetry
    mark = obs.marker()
    generators = [np.random.default_rng(int(s)) for s in seeds]
    outcomes: list[InputOutcome] = []
    for lo in range(0, len(inputs), batch_size):
        hi = min(lo + batch_size, len(inputs))
        outcomes.extend(
            fuzzer.fuzz_outcomes(inputs[lo:hi], generators=generators[lo:hi])
        )
    return outcomes, obs.since(mark)


class ProcessExecutor(CampaignExecutor):
    """Multiprocessing over contiguous input shards.

    The trained model (with its codebooks) is broadcast to each worker
    once via the pool initializer; workers run the batched engine on
    their shard.  Every input's seed is derived in the parent from the
    root generator, so results — guided and unguided — equal
    :class:`BatchedExecutor`'s for the same *rng* regardless of
    ``n_workers``.

    The pool persists across :meth:`run` calls with an unchanged
    campaign spec (same model / strategy / config / constraint /
    fitness / oracle objects and untouched training counts), so
    wave-mode generation pays the pool start-up and model broadcast
    once.  Any spec change rebuilds the pool automatically;
    :meth:`close` releases it explicitly and must be called after
    mutating the model *in place* without changing its training counts.

    Parameters
    ----------
    n_workers:
        Worker process count.  ``None`` resolves through
        :func:`default_worker_count` — ``max(1, os.cpu_count() − 1)``,
        overridable machine-wide with the ``REPRO_FUZZ_WORKERS``
        environment variable — as the *cap*; each :meth:`run` then
        sizes its pool through :func:`default_pool_policy`, so small
        campaigns never pay for broadcast copies they cannot amortise.
        An explicit count disables the per-run cap.
    batch_size:
        Lock-step chunk size inside each worker; ``None`` lets
        :func:`default_pool_policy` match it to the shard size per run.
    """

    name = "process"

    def __init__(
        self,
        n_workers: Optional[int] = None,
        batch_size: Optional[int] = None,
    ) -> None:
        self._explicit_workers = n_workers is not None
        self._explicit_batch = batch_size is not None
        if n_workers is None:
            n_workers = default_worker_count()
        if batch_size is None:
            batch_size = DEFAULT_BATCH_SIZE
        self.n_workers = check_positive_int(n_workers, "n_workers")
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self._pool = None
        self._pool_spec: Optional[tuple] = None
        # Strong references to the spec objects backing _pool_spec's
        # id()s — without them CPython could recycle a GC'd object's
        # address and falsely match a stale pool.
        self._pool_spec_refs: Optional[tuple] = None
        self._pool_processes = 0

    @staticmethod
    def _spec_key(model, strategy, domain, config, constraint, fitness, oracle,
                  telemetry_on=False):
        """Identity of the broadcast campaign spec, or None if not reusable.

        Object identities plus the model's training counts: every
        supported training path (``fit`` / ``retrain`` /
        ``fit_adaptive``) increments per-class counts, so a stale
        broadcast after retraining is detected without hashing the
        accumulators themselves.

        Workers keep their engine (and its unpickled components) alive
        across runs, so reuse is only safe when the fitness and oracle
        carry no evolving state — a reused worker's
        ``CoverageGuidedFitness`` would remember cells visited by the
        previous run and change outcomes.  Unknown (custom) fitness or
        oracle types therefore return ``None``: the pool is rebuilt per
        run, the pre-reuse behaviour.
        """
        from repro.fuzz.fitness import (
            AgreementMarginFitness,
            DistanceGuidedFitness,
            MarginFitness,
            RandomFitness,
        )
        from repro.fuzz.oracle import (
            CrossModelOracle,
            DifferentialOracle,
            MajorityOracle,
            TargetedOracle,
        )
        from repro.fuzz.targets import PredictionTarget

        # RandomFitness qualifies because the engines feed it per-input
        # generators; its constructor stream is never consulted.
        stateless_fitness = (
            DistanceGuidedFitness, RandomFitness, MarginFitness,
            AgreementMarginFitness,
        )
        stateless_oracles = (
            DifferentialOracle, TargetedOracle, CrossModelOracle, MajorityOracle,
        )
        if fitness is not None and type(fitness) not in stateless_fitness:
            return None
        if oracle is not None and type(oracle) not in stateless_oracles:
            return None
        if isinstance(model, PredictionTarget):
            # Ensembles: every member's training counts guard the
            # broadcast (retraining any one member must rebuild).
            counts = model.training_counts()
        else:
            am = getattr(model, "associative_memory", None)
            counts = am.counts.tobytes() if am is not None else b""
        strategy_key = strategy if isinstance(strategy, str) else id(strategy)
        domain_key = domain if isinstance(domain, str) else id(domain)
        # telemetry_on is part of the broadcast (workers build their
        # recorder at engine construction), so toggling it rebuilds.
        return (
            id(model), counts, strategy_key, domain_key,
            id(config), id(constraint), id(fitness), id(oracle),
            bool(telemetry_on),
        )

    def _ensure_pool(self, spec_key: tuple, spec_refs: tuple, initargs: tuple,
                     n_processes: int):
        """The live pool for *spec_key*, rebuilt on any spec change.

        The pool is sized to the shard count of the run that builds it
        (no idle broadcast copies for small campaigns) and grows by
        rebuild if a later run needs more parallelism than it has.
        """
        import multiprocessing as mp

        if (
            spec_key is not None
            and self._pool is not None
            and self._pool_spec == spec_key
            and self._pool_processes >= n_processes
        ):
            return self._pool
        self.close()
        ctx = mp.get_context()
        self._pool = ctx.Pool(
            processes=n_processes,
            initializer=_process_worker_init,
            initargs=initargs,
        )
        self._pool_spec = spec_key
        self._pool_spec_refs = spec_refs
        self._pool_processes = n_processes
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (next :meth:`run` rebuilds it).

        Graceful first: ``close()`` lets idle workers drain and exit 0
        (so coverage/atexit hooks inside workers run), ``join()`` reaps
        them, and only a pool that fails to wind down is terminated.
        """
        if self._pool is not None:
            try:
                self._pool.close()
                self._pool.join()
            except Exception:  # pragma: no cover - wedged pool
                self._pool.terminate()
                self._pool.join()
            self._pool = None
            self._pool_spec = None
            self._pool_spec_refs = None
            self._pool_processes = 0

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def run(self, model, strategy, inputs, *, domain=None, config=None,
            constraint=None, fitness=None, oracle=None,
            rng: RngLike = None,
            telemetry: Optional[CampaignTelemetry] = None) -> CampaignResult:
        # Validate the spec (and resolve the strategy name) up front, in
        # the parent, where errors are debuggable.
        probe = BatchedHDTest(
            model, strategy, domain=domain,
            config=config, constraint=constraint, fitness=fitness, oracle=oracle,
        )
        root = ensure_rng(rng)
        seeds = derive_seeds(root, len(inputs))
        # Input-aware sizing: explicitly-set knobs pass through, unset
        # ones resolve against this campaign's size.  Outcomes do not
        # depend on either (RNG discipline above), only throughput does.
        pool_workers, batch_size = default_pool_policy(
            len(inputs),
            n_workers=self.n_workers if self._explicit_workers else None,
            batch_size=self.batch_size if self._explicit_batch else None,
        )
        pool_workers = min(pool_workers, self.n_workers)
        n_shards = min(pool_workers, max(len(inputs), 1))
        # Drawn *after* the per-input seeds so the per-input stream stays
        # byte-identical to BatchedExecutor's for the same root.
        shard_seeds = derive_seeds(root, n_shards)
        shards = []
        bounds = np.linspace(0, len(inputs), n_shards + 1, dtype=int)
        for shard_id, (lo, hi) in enumerate(zip(bounds[:-1], bounds[1:])):
            if hi > lo:
                shards.append(
                    (
                        list(inputs[lo:hi]),
                        [int(s) for s in seeds[lo:hi]],
                        int(shard_seeds[shard_id]),
                    )
                )
        obs = telemetry if telemetry is not None else NULL_TELEMETRY
        telemetry_on = telemetry is not None
        mark = obs.marker()
        outcomes: list[InputOutcome] = []
        with Stopwatch() as sw:
            if shards:
                n_processes = min(pool_workers, len(shards))
                initargs = (model, probe.strategy, probe.domain, config,
                            constraint, fitness, oracle, batch_size, telemetry_on)
                previous_pool = self._pool
                with obs.phase("broadcast"):
                    pool = self._ensure_pool(
                        self._spec_key(model, strategy, domain, config, constraint,
                                       fitness, oracle, telemetry_on),
                        (model, strategy, domain, config, constraint, fitness,
                         oracle),
                        initargs,
                        n_processes,
                    )
                if telemetry_on:
                    # What this run shipped to the pool: the spec once per
                    # worker when (re)built, plus every shard's inputs.
                    if pool is not previous_pool:
                        obs.count(
                            "broadcast_bytes",
                            payload_nbytes(initargs) * n_processes,
                        )
                    obs.count("broadcast_bytes", payload_nbytes(shards))
                for shard_outcomes, shard_telemetry in pool.map(
                    _process_worker_run, shards
                ):
                    outcomes.extend(shard_outcomes)
                    if telemetry_on and shard_telemetry is not None:
                        # Spec-keyed, order-invariant reduction of the
                        # per-worker streams into the parent recorder.
                        obs.merge(shard_telemetry)
                obs.heartbeat()
        return CampaignResult(
            strategy=probe.strategy.name,
            outcomes=outcomes,
            elapsed_seconds=sw.elapsed,
            guided=probe._fitness.guided,  # noqa: SLF001 - same-module family
            executor=self.name,
            n_members=probe.target.n_members,
            telemetry=obs.since(mark),
        )

    def __repr__(self) -> str:
        return f"ProcessExecutor(n_workers={self.n_workers}, batch_size={self.batch_size})"


class MemberShardedExecutor(CampaignExecutor):
    """One persistent worker per ensemble member (K ≥ 2 targets only).

    The inverse sharding of :class:`ProcessExecutor`: instead of every
    worker holding all K members and a slice of the inputs, worker *m*
    holds exactly member *m* (its model — or just its associative
    memory for shared-codebook ensembles — plus that member's dedupe
    caches and survivor side arrays) and sees every input.  The parent
    runs mutation, oracle, fitness, and pool survival, so campaign
    outcomes are bit-identical to the serial / batched / process
    schedules; per-iteration traffic is one broadcast child block (a
    shared-memory handle by default) against K vote rows coming back.

    Choose it for *member-bound* campaigns — few inputs, many or large
    members — where input sharding can't fill two workers or would
    replicate a huge ensemble into each of them;
    :func:`default_schedule_policy` encodes that rule.

    The worker group persists across :meth:`run` calls with an
    unchanged campaign spec (same reuse key as the process pool), so
    wave-mode callers broadcast each member once.

    Parameters
    ----------
    batch_size:
        Parent-side lock-step chunk size; ``None`` matches the campaign
        size per run (capped at :data:`DEFAULT_BATCH_SIZE`).
    transport:
        ``"shm"`` (default) broadcasts arrays through shared-memory
        segments; ``"pickle"`` ships them through the worker queues
        (the comparison baseline in
        ``benchmarks/bench_member_sharding.py``).
    """

    name = "member-sharded"

    def __init__(
        self,
        batch_size: Optional[int] = None,
        transport: str = "shm",
    ) -> None:
        self._explicit_batch = batch_size is not None
        if batch_size is None:
            batch_size = DEFAULT_BATCH_SIZE
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.transport = transport
        self._group = None
        self._group_spec: Optional[tuple] = None
        self._group_spec_refs: Optional[tuple] = None

    def _ensure_group(self, spec_key, spec_refs, probe):
        """The live worker group for *spec_key*, rebuilt on spec change."""
        from repro.fuzz.member_sharded import MemberWorkerGroup

        if (
            spec_key is not None
            and self._group is not None
            and self._group_spec == spec_key
            and self._group.alive
        ):
            return self._group, False
        self.close()
        self._group = MemberWorkerGroup(
            probe.target.member_shards(), probe.domain, probe.config,
            transport=self.transport,
        )
        self._group_spec = spec_key
        self._group_spec_refs = spec_refs
        return self._group, True

    def close(self) -> None:
        """Stop and join the member workers (next :meth:`run` rebuilds)."""
        if self._group is not None:
            self._group.close()
            self._group = None
            self._group_spec = None
            self._group_spec_refs = None

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def run(self, model, strategy, inputs, *, domain=None, config=None,
            constraint=None, fitness=None, oracle=None,
            rng: RngLike = None,
            telemetry: Optional[CampaignTelemetry] = None) -> CampaignResult:
        from repro.fuzz.member_sharded import create_member_engine

        # Validate the spec in the parent (and resolve strategy/domain/
        # config defaults the worker group needs).
        probe = BatchedHDTest(
            model, strategy, domain=domain,
            config=config, constraint=constraint, fitness=fitness, oracle=oracle,
        )
        if probe.target.n_members < 2:
            raise ConfigurationError(
                "the member-sharded executor shards one worker per ensemble "
                "member and needs >= 2 members; use the batched or process "
                "executor for single models"
            )
        obs = telemetry if telemetry is not None else NULL_TELEMETRY
        telemetry_on = telemetry is not None
        mark = obs.marker()
        # Same reuse key as the process pool — but telemetry never
        # crosses into member workers (the parent records), so toggling
        # it must not rebuild the group.
        spec_key = ProcessExecutor._spec_key(
            model, strategy, domain, config, constraint, fitness, oracle
        )
        with obs.phase("broadcast"):
            group, built = self._ensure_group(
                spec_key,
                (model, strategy, domain, config, constraint, fitness, oracle),
                probe,
            )
        if telemetry_on and built:
            # The one-off member broadcast: each worker receives its own
            # shard only — 1/K of a broadcast-everything initializer.
            obs.count(
                "broadcast_bytes",
                sum(payload_nbytes(s) for s in probe.target.member_shards()),
            )
        engine = create_member_engine(
            group, model, strategy, domain=domain, config=config,
            constraint=constraint, fitness=fitness, oracle=oracle, rng=rng,
            telemetry=telemetry,
        )
        batch_size = (
            self.batch_size
            if self._explicit_batch
            else min(DEFAULT_BATCH_SIZE, max(len(inputs), 1))
        )
        generators = spawn(rng, len(inputs))
        outcomes: list[InputOutcome] = []
        with Stopwatch() as sw:
            for lo in range(0, len(inputs), batch_size):
                hi = min(lo + batch_size, len(inputs))
                outcomes.extend(
                    engine.fuzz_outcomes(
                        inputs[lo:hi], generators=generators[lo:hi]
                    )
                )
            if telemetry_on and not group.encodes_locally:
                # Shared-codebook mode: the stock engine never drains the
                # group, so fold the workers' AM-query wall-clock here
                # (independent mode folds inside the engine per chunk).
                stats = group.drain_stats()
                obs.merge({
                    "phase_seconds": {"query": stats["query_seconds"]},
                    "busy_seconds": stats["busy_seconds"],
                })
        return CampaignResult(
            strategy=engine.strategy.name,
            outcomes=outcomes,
            elapsed_seconds=sw.elapsed,
            guided=engine._fitness.guided,  # noqa: SLF001 - same-module family
            executor=self.name,
            n_members=probe.target.n_members,
            telemetry=obs.since(mark),
        )

    def __repr__(self) -> str:
        return (
            f"MemberShardedExecutor(batch_size={self.batch_size}, "
            f"transport={self.transport!r})"
        )


_EXECUTORS: dict[str, type[CampaignExecutor]] = {
    cls.name: cls
    for cls in (
        SerialExecutor, BatchedExecutor, ProcessExecutor, MemberShardedExecutor
    )
}


def executor_names() -> list[str]:
    """Registered executor names (CLI choices)."""
    return sorted(_EXECUTORS)


def create_executor(name: str, **params: Any) -> CampaignExecutor:
    """Instantiate the executor registered under *name* with *params*.

    Callers may pass one uniform ``batch_size``/``n_workers`` bundle:
    ``None`` always means *unset* — the executor's own default applies —
    while an explicit value for a knob the chosen executor cannot honour
    (e.g. ``n_workers`` with the batched executor) raises instead of
    being silently ignored.
    """
    try:
        cls = _EXECUTORS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown executor {name!r}; available: {executor_names()}"
        ) from None
    applicable = {
        SerialExecutor: (),
        BatchedExecutor: ("batch_size",),
        ProcessExecutor: ("batch_size", "n_workers"),
        # One worker per member by definition: n_workers does not apply.
        MemberShardedExecutor: ("batch_size",),
    }[cls]
    for key in list(params):
        if params[key] is None:
            del params[key]
        elif key not in applicable:
            raise ConfigurationError(
                f"{key}={params[key]!r} does not apply to the {name!r} executor"
            )
    return cls(**params)
